//! # accl-chaos — deterministic chaos harness
//!
//! Randomized fault-injection testing for the simulated ACCL+ cluster,
//! built on three properties the rest of the workspace already provides:
//!
//! 1. **Seeded fault schedules.** [`accl_net::FaultPlanGen`] samples a
//!    fully *explicit* [`accl_net::FaultPlan`] (per-frame drop / corrupt /
//!    duplicate / delay events, link flaps, degradation windows) as a pure
//!    function of `(profile, seed)`.
//! 2. **Deterministic replay.** The simulator is bit-replayable: the same
//!    `(workload, plan)` pair produces the same event count, the same
//!    payload bytes, and the same typed errors, every time, under either
//!    event-queue implementation.
//! 3. **Typed failure surfaces.** A collective either completes, or fails
//!    with a [`accl_core::CclError`]; a wedged simulation is reported by
//!    [`accl_core::AcclCluster::try_run_host_programs`] instead of
//!    panicking.
//!
//! On top of these, [`sweep::run_sweep`] drives an invariant-checked
//! workload ([`workload::run`]) across N seeds. When a seed violates an
//! invariant, the failing schedule is decomposed into
//! [`accl_net::FaultEvent`]s and [`shrink::ddmin`] delta-debugs it down to
//! a minimal still-failing subset, which [`repro::Repro`] serializes as a
//! small JSON file: the exact seed, the workload, and the (typically one
//! or two) fault events needed to reproduce the bug.
//!
//! The `chaos_sweep` binary wraps the sweep for CI: nightly jobs run
//! hundreds of seeds and upload the shrunk repro as an artifact on
//! failure; the checked-in repro under `tests/data/` pins the harness's
//! own detection power as a tier-1 regression.

#![warn(missing_docs)]

pub mod json;
pub mod repro;
pub mod shrink;
pub mod sweep;
pub mod workload;

pub use repro::Repro;
pub use shrink::ddmin;
pub use sweep::{run_sweep, SweepConfig, SweepFailure, SweepStats};
pub use workload::{CollKind, RunReport, Violation, WorkloadSpec};
