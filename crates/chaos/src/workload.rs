//! The invariant-checked workload: one collective under one fault plan.
//!
//! A chaos run is a *closed* experiment: the workload, the cluster
//! configuration and the fault schedule are all pure functions of the
//! run's parameters, so a violation found at seed N replays exactly —
//! which is what makes delta-debugging the schedule possible at all.
//!
//! Four invariants are checked, in order of severity:
//!
//! 1. **No wedging.** The simulation drains (or the engine watchdog
//!    fires); a stalled simulator or an unfinished host program is a
//!    harness violation, never a pass.
//! 2. **Completion or typed error.** Every rank's collective finishes
//!    with `Ok` or a [`CclError`]; under a *transparent* plan (no faults)
//!    any error at all is a violation.
//! 3. **Data integrity.** A rank whose call completed `Ok` must hold the
//!    bit-exact golden result (CPU-computed reduction/broadcast) — a
//!    transport is allowed to fail a call, but never to complete it with
//!    corrupted payload.
//! 4. **Metric sanity.** Counters must be consistent with the schedule:
//!    corrupted-frame discards cannot appear unless the plan injects
//!    corruption, and a completed call implies driver completions.

use accl_core::{
    AcclCluster, AlgoConfig, BufLoc, CclError, ClusterConfig, CollOp, CollSpec, DType, HostDriver,
    HostOp, RetryPolicy, Transport,
};
use accl_net::{FaultEvent, FaultPlan};

/// Watchdog window for chaos runs, µs. Comfortably above the worst
/// transient-recovery latency at the default profile (flaps ≤ 120 µs,
/// TCP RTO ladder ≤ ~10 ms), far below "wedged".
const WATCHDOG_US: u64 = 30_000;

/// Driver retries per call: transient faults that abort an attempt are
/// masked, sustained ones run the budget dry and surface typed.
const RETRIES: u32 = 4;

/// Which collective the workload issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    /// Sum-allreduce of i32 across all ranks; golden result is the CPU
    /// elementwise sum of every rank's pattern.
    AllReduce,
    /// Broadcast from rank 0; golden result is the root's pattern.
    Bcast,
}

/// A fully specified chaos workload: everything needed to rebuild the
/// cluster and rerun the experiment, bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// The collective under test.
    pub kind: CollKind,
    /// Cluster size.
    pub nodes: usize,
    /// Elements (i32) per rank.
    pub count: u64,
    /// Protocol offload engine.
    pub transport: Transport,
    /// Whether the TCP engine verifies frame check sequences at RX.
    /// `true` in every real configuration; the harness's self-test sets
    /// it `false` to plant a known integrity bug and confirm the sweep
    /// catches and shrinks it.
    pub verify_fcs: bool,
    /// Builds the cluster with every elastic resource capped
    /// ([`ClusterConfig::with_overload_limits`]): finite switch buffers
    /// with PFC pause, POE tx credit windows, uC admission limits and
    /// driver shedding. Required for the overload fault kinds (credit
    /// leaks, pause storms, buffer shrinks) to have anything to bite.
    pub overload: bool,
    /// Simulation seed (also the chaos seed that named this run).
    pub seed: u64,
    /// Simulator worker threads (`1` = sequential). Chaos outcomes are
    /// invariant under this knob — parallel runs produce identical
    /// results and digests — so sweeps can use it purely for throughput.
    pub workers: usize,
    /// Membership mode: after the scheduled faults play out, the harness
    /// runs the self-healing recovery loop — reinstate every restarted
    /// node and partition-minority member, readmit them via
    /// `Communicator::expand`, and reissue the collective on the rejoined
    /// world. The rejoined run MUST complete with golden data; a crash
    /// with no matching restart, or a recovery run that fails, is a
    /// [`Violation::MembershipUnhealed`].
    pub membership: bool,
}

impl WorkloadSpec {
    /// The per-seed workload of a sweep: alternates the collective by
    /// seed parity so both data paths (reduce rings and broadcast trees)
    /// see fault coverage.
    pub fn for_seed(seed: u64, nodes: usize, count: u64, transport: Transport) -> Self {
        WorkloadSpec {
            kind: if seed.is_multiple_of(2) {
                CollKind::AllReduce
            } else {
                CollKind::Bcast
            },
            nodes,
            count,
            transport,
            verify_fcs: true,
            overload: false,
            seed,
            workers: 1,
            membership: false,
        }
    }
}

/// An invariant violation — the thing a chaos sweep exists to find.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The simulation wedged: stalled mid-run or left a host program
    /// unfinished. Carries the cluster's diagnosis verbatim.
    Wedged(String),
    /// A rank completed `Ok` holding bytes that differ from the golden
    /// CPU result.
    DataMismatch {
        /// The lying rank.
        rank: u32,
        /// First differing byte offset.
        byte: usize,
    },
    /// A rank failed under a *transparent* plan — an error with no fault
    /// to blame.
    SpuriousError {
        /// The failing rank.
        rank: u32,
        /// Its typed error.
        error: CclError,
    },
    /// A counter disagreed with the schedule.
    MetricNonsense(String),
    /// Self-healing failed: a crashed node never restarted (rejoin is
    /// impossible), or the rejoined world could not complete the
    /// collective with golden data after every restart and heal had
    /// passed.
    MembershipUnhealed(String),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Wedged(why) => write!(f, "wedged: {why}"),
            Violation::DataMismatch { rank, byte } => {
                write!(
                    f,
                    "rank {rank} completed Ok with wrong data (first bad byte {byte})"
                )
            }
            Violation::SpuriousError { rank, error } => {
                write!(f, "rank {rank} failed ({error}) under a fault-free plan")
            }
            Violation::MetricNonsense(why) => write!(f, "metric nonsense: {why}"),
            Violation::MembershipUnhealed(why) => write!(f, "membership unhealed: {why}"),
        }
    }
}

/// The outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The first invariant violation found, if any.
    pub violation: Option<Violation>,
    /// Per-rank call results (empty if the run wedged).
    pub results: Vec<Result<(), CclError>>,
    /// Simulator events executed — the determinism digest.
    pub events_executed: u64,
    /// Frames the switch dropped (faults + schedule windows).
    pub frames_dropped: u64,
    /// Corrupted frames discarded at POE RX, summed over nodes.
    pub corrupted_drops: u64,
    /// Driver retries, summed over ranks.
    pub retries: u64,
}

impl RunReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

fn i32s(vals: impl Iterator<Item = i32>) -> Vec<u8> {
    vals.flat_map(|v| v.to_le_bytes()).collect()
}

fn pattern(rank: usize, count: u64) -> Vec<u8> {
    i32s((0..count as i32).map(|i| i.wrapping_mul(3).wrapping_add(rank as i32 * 97)))
}

fn golden(spec: &WorkloadSpec) -> Vec<u8> {
    match spec.kind {
        CollKind::AllReduce => i32s((0..spec.count as i32).map(|i| {
            (0..spec.nodes as i32)
                .map(|r| i.wrapping_mul(3).wrapping_add(r * 97))
                .fold(0i32, i32::wrapping_add)
        })),
        CollKind::Bcast => pattern(0, spec.count),
    }
}

/// Runs `spec` under `plan` and checks every invariant.
///
/// Takes the plan by value ([`FaultPlan`] holds an un-clonable predicate
/// slot); regenerate or rebuild from events to run the same schedule
/// again — both are cheap and exact.
pub fn run(spec: &WorkloadSpec, plan: FaultPlan) -> RunReport {
    let mut cfg = ClusterConfig::coyote_rdma(spec.nodes);
    cfg.transport = spec.transport;
    cfg.seed = spec.seed;
    cfg.cclo.collective_timeout_us = Some(WATCHDOG_US);
    cfg.tcp.verify_fcs = spec.verify_fcs;
    cfg.workers = spec.workers.max(1);
    if spec.overload {
        cfg = cfg.with_overload_limits();
    }
    let mut c = AcclCluster::build(cfg);
    c.set_retry_policy(RetryPolicy::retries(RETRIES));
    // Force the ring composition for allreduce: every rank transmits from
    // the start, maximizing the schedule's fault surface.
    c.set_algo_config(AlgoConfig {
        allreduce_ring_min_bytes: 1,
        ..AlgoConfig::default()
    });
    let transparent = plan.is_transparent();
    let event_list: Vec<FaultEvent> = if plan.is_explicit() {
        plan.to_events()
    } else {
        Vec::new()
    };
    let plan_corrupts = !plan.is_explicit()
        || event_list
            .iter()
            .any(|e| matches!(e, FaultEvent::Corrupt { .. }));
    c.set_fault_plan(plan);

    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for rank in 0..spec.nodes {
        let dst = c.alloc(rank, BufLoc::Device, spec.count * 4);
        let coll = match spec.kind {
            CollKind::AllReduce => {
                let src = c.alloc(rank, BufLoc::Device, spec.count * 4);
                c.write(&src, &pattern(rank, spec.count));
                CollSpec::new(CollOp::AllReduce, spec.count, DType::I32)
                    .src(src)
                    .dst(dst)
            }
            CollKind::Bcast => {
                if rank == 0 {
                    c.write(&dst, &pattern(0, spec.count));
                }
                CollSpec::new(CollOp::Bcast, spec.count, DType::I32).dst(dst)
            }
        };
        specs.push(coll);
        dsts.push(dst);
    }

    let programs = specs.into_iter().map(|s| vec![HostOp::Coll(s)]).collect();
    let records = match c.try_run_host_programs(programs) {
        Ok(records) => records,
        Err(why) => {
            return RunReport {
                violation: Some(Violation::Wedged(why)),
                results: Vec::new(),
                events_executed: c.sim.events_executed(),
                frames_dropped: c.network().frames_dropped(&c.sim),
                corrupted_drops: (0..spec.nodes).map(|i| c.corrupted_drops(i)).sum(),
                retries: 0,
            }
        }
    };

    let results: Vec<Result<(), CclError>> = records.iter().map(|r| r[0].result()).collect();
    let expected = golden(spec);
    let mut violation = None;
    for rank in 0..spec.nodes {
        match results[rank] {
            Ok(()) => {
                let got = c.read(&dsts[rank]);
                if let Some(byte) = first_mismatch(&got, &expected) {
                    violation = Some(Violation::DataMismatch {
                        rank: rank as u32,
                        byte,
                    });
                    break;
                }
                if c.node_stats(rank).driver_calls_completed == 0 {
                    violation = Some(Violation::MetricNonsense(format!(
                        "rank {rank} returned Ok with zero driver completions"
                    )));
                    break;
                }
            }
            Err(error) if transparent => {
                violation = Some(Violation::SpuriousError {
                    rank: rank as u32,
                    error,
                });
                break;
            }
            Err(_) => {}
        }
    }

    let corrupted_drops: u64 = (0..spec.nodes).map(|i| c.corrupted_drops(i)).sum();
    if violation.is_none() && corrupted_drops > 0 && !plan_corrupts {
        violation = Some(Violation::MetricNonsense(format!(
            "{corrupted_drops} corrupted-frame discards under a corruption-free plan"
        )));
    }
    if spec.membership && violation.is_none() {
        violation = run_recovery(&mut c, spec, &event_list, &expected);
    }

    RunReport {
        violation,
        results,
        events_executed: c.sim.events_executed(),
        frames_dropped: c.network().frames_dropped(&c.sim),
        corrupted_drops,
        retries: (0..spec.nodes)
            .map(|i| {
                c.sim
                    .component::<HostDriver>(c.node(i).driver)
                    .retries_attempted()
            })
            .sum(),
    }
}

/// The membership-mode recovery loop: after the scheduled faults (and
/// the failing run they caused) have played out, every crash must have a
/// matching restart, the fabric must have healed, and a collective
/// reissued on the rejoined world — restarted nodes readmitted via
/// `Communicator::expand` with their original numbering — must complete
/// with golden data on every rank. Anything less is a violation: the
/// cluster did not heal itself.
fn run_recovery(
    c: &mut AcclCluster,
    spec: &WorkloadSpec,
    events: &[FaultEvent],
    expected: &[u8],
) -> Option<Violation> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut crashes: BTreeMap<u32, accl_sim::time::Time> = BTreeMap::new();
    let mut restarts: BTreeMap<u32, accl_sim::time::Time> = BTreeMap::new();
    let mut masks: Vec<u64> = Vec::new();
    for ev in events {
        match *ev {
            FaultEvent::Crash { node, at } => {
                crashes.insert(node.0, at);
            }
            FaultEvent::Restart { node, at } => {
                restarts.insert(node.0, at);
            }
            FaultEvent::Partition { mask, .. } => masks.push(mask),
            _ => {}
        }
    }
    if crashes.is_empty() && masks.is_empty() {
        // Nothing severed membership: the normal invariants already ruled.
        return None;
    }
    // Heal gate: a crash with no (valid) restart can never rejoin.
    for (&node, &at) in &crashes {
        match restarts.get(&node) {
            Some(&r) if r > at => {}
            _ => {
                return Some(Violation::MembershipUnhealed(format!(
                    "node {node} crashed at {}ps and never restarts — rejoin impossible",
                    at.as_ps()
                )))
            }
        }
    }
    let world = accl_core::Communicator::world(spec.nodes);
    // Who needs transport reinstatement: every restarted node, plus every
    // partition-minority member (its sessions across the cut died too).
    let mut reinstate: BTreeSet<usize> = crashes.keys().map(|&n| n as usize).collect();
    for &mask in &masks {
        for n in 0..spec.nodes {
            if accl_core::resolve_partition(&world, n, mask) == Err(CclError::Partitioned) {
                reinstate.insert(n);
            }
        }
    }
    for &n in &reinstate {
        c.reinstate_node(n);
    }
    // Readmit at the communicator layer: shrink past the crashed nodes,
    // expand them back in — deterministic renumbering restores the world
    // order exactly, so the golden result is unchanged.
    let crashed: Vec<usize> = crashes.keys().map(|&n| n as usize).collect();
    let survivors = match world.shrink(1, &crashed) {
        Ok(s) => s,
        Err(e) => return Some(Violation::MembershipUnhealed(format!("shrink failed: {e}"))),
    };
    let rejoined = match survivors.expand(2, &crashed) {
        Ok(r) => r,
        Err(e) => return Some(Violation::MembershipUnhealed(format!("expand failed: {e}"))),
    };
    debug_assert_eq!(rejoined.members(), world.members());
    c.install_communicator(&rejoined);

    let mut dsts = Vec::new();
    let mut programs: Vec<Vec<HostOp>> = vec![Vec::new(); spec.nodes];
    for (rank, program) in programs.iter_mut().enumerate() {
        let dst = c.alloc(rank, BufLoc::Device, spec.count * 4);
        let coll = match spec.kind {
            CollKind::AllReduce => {
                let src = c.alloc(rank, BufLoc::Device, spec.count * 4);
                c.write(&src, &pattern(rank, spec.count));
                CollSpec::new(CollOp::AllReduce, spec.count, DType::I32)
                    .src(src)
                    .dst(dst)
            }
            CollKind::Bcast => {
                if rank == 0 {
                    c.write(&dst, &pattern(0, spec.count));
                }
                CollSpec::new(CollOp::Bcast, spec.count, DType::I32).dst(dst)
            }
        }
        .comm(rejoined.id());
        *program = vec![HostOp::Coll(coll)];
        dsts.push(dst);
    }
    let records = match c.try_run_host_programs(programs) {
        Ok(records) => records,
        Err(why) => {
            return Some(Violation::MembershipUnhealed(format!(
                "rejoined run wedged: {why}"
            )))
        }
    };
    for rank in 0..spec.nodes {
        if let Err(e) = records[rank][0].result() {
            return Some(Violation::MembershipUnhealed(format!(
                "rank {rank} failed on the rejoined world: {e}"
            )));
        }
        let got = c.read(&dsts[rank]);
        if let Some(byte) = first_mismatch(&got, expected) {
            return Some(Violation::MembershipUnhealed(format!(
                "rank {rank} rejoined with wrong data (first bad byte {byte})"
            )));
        }
    }
    None
}

fn first_mismatch(got: &[u8], expected: &[u8]) -> Option<usize> {
    if got.len() != expected.len() {
        return Some(got.len().min(expected.len()));
    }
    got.iter().zip(expected).position(|(g, e)| g != e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_runs_pass_on_every_transport() {
        for transport in [Transport::Tcp, Transport::Udp, Transport::Rdma] {
            for kind in [CollKind::AllReduce, CollKind::Bcast] {
                let spec = WorkloadSpec {
                    kind,
                    nodes: 2,
                    count: 256,
                    transport,
                    verify_fcs: true,
                    overload: false,
                    seed: 1,
                    workers: 1,
                    membership: false,
                };
                let report = run(&spec, FaultPlan::none());
                assert!(
                    report.passed(),
                    "{transport:?}/{kind:?}: {}",
                    report.violation.unwrap()
                );
                assert!(report.results.iter().all(|r| r.is_ok()));
            }
        }
    }

    /// The bounded cluster is behaviourally invisible without induced
    /// overload: the capped configuration must pass the same transparent
    /// plans the unbounded one does.
    #[test]
    fn fault_free_overload_runs_pass_on_every_transport() {
        for transport in [Transport::Tcp, Transport::Udp, Transport::Rdma] {
            let mut spec = WorkloadSpec::for_seed(0, 2, 256, transport);
            spec.overload = true;
            let report = run(&spec, FaultPlan::none());
            assert!(
                report.passed(),
                "{transport:?}: {}",
                report.violation.unwrap()
            );
            assert!(report.results.iter().all(|r| r.is_ok()));
        }
    }

    #[test]
    fn seed_parity_alternates_the_collective() {
        assert_eq!(
            WorkloadSpec::for_seed(0, 2, 64, Transport::Tcp).kind,
            CollKind::AllReduce
        );
        assert_eq!(
            WorkloadSpec::for_seed(1, 2, 64, Transport::Tcp).kind,
            CollKind::Bcast
        );
    }
}
