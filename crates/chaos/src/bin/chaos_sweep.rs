//! `chaos_sweep` — the CI chaos gate.
//!
//! Sweep mode (default) runs N seeded fault-injection experiments and
//! exits 0 if every invariant held at every seed. On the first violation
//! it shrinks the schedule to a minimal repro, writes it as JSON (for CI
//! artifact upload) and exits 1.
//!
//! Replay mode (`--replay FILE`) re-runs a repro file and reports whether
//! the violation still reproduces (exit 1) or the bug is fixed (exit 0).

use std::process::ExitCode;

use accl_chaos::{run_sweep, Repro, SweepConfig};
use accl_core::Transport;

const USAGE: &str = "\
usage: chaos_sweep [--seeds N] [--start-seed S] [--nodes N] [--count ELEMS]
                   [--transport tcp|udp|rdma] [--overload] [--membership]
                   [--break-fcs] [--threads N] [--out FILE] [-q]
       chaos_sweep --replay FILE

  --seeds N        seeds to run (default 8)
  --start-seed S   first seed (default 0); lets CI shards split a sweep
  --nodes N        cluster size (default 3)
  --count ELEMS    i32 elements per rank (default 65536; 16384 under
                   --overload)
  --transport T    protocol offload engine (default tcp)
  --overload       bound every cluster resource (switch buffers, tx credit
                   windows, uC admission, driver queue) and swap in the
                   resource-pressure fault mix: credit leaks, pause
                   storms, buffer shrinks
  --membership     swap in the membership fault mix (crash/restart pairs,
                   partition windows) and require every schedule to heal:
                   after the faults play out, restarted nodes are
                   reinstated and readmitted via expand, and the reissued
                   collective must complete with golden data
  --break-fcs      disable TCP FCS verification (harness self-test: the
                   sweep must catch the resulting silent corruption)
  --threads N      simulator worker threads per experiment (default 1 =
                   sequential); outcomes and repros are identical at any
                   thread count
  --out FILE       where to write the shrunk repro on failure
                   (default chaos-repro.json)
  -q               only print the verdict and failures
  --replay FILE    re-run a repro file instead of sweeping
";

struct Args {
    cfg: SweepConfig,
    out: String,
    replay: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: SweepConfig::new(8),
        out: "chaos-repro.json".to_string(),
        replay: None,
        quiet: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut count_set = false;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--seeds" => {
                args.cfg.seeds = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--start-seed" => {
                args.cfg.start_seed = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--start-seed: {e}"))?
            }
            "--nodes" => {
                args.cfg.nodes = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
                args.cfg.profile = accl_net::ChaosProfile::default_profile(args.cfg.nodes as u32);
            }
            "--count" => {
                args.cfg.count = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--count: {e}"))?;
                count_set = true;
            }
            "--transport" => {
                args.cfg.transport = match value(&mut i)?.as_str() {
                    "tcp" => Transport::Tcp,
                    "udp" => Transport::Udp,
                    "rdma" => Transport::Rdma,
                    other => return Err(format!("unknown transport `{other}`")),
                }
            }
            "--overload" => args.cfg.overload = true,
            "--membership" => args.cfg.membership = true,
            "--threads" => {
                args.cfg.workers = value(&mut i)?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1)
            }
            "--break-fcs" => args.cfg.verify_fcs = false,
            "--out" => args.out = value(&mut i)?,
            "--replay" => args.replay = Some(value(&mut i)?),
            "-q" | "--quiet" => args.quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    // Resolved after the loop so `--overload` composes with `--nodes` and
    // `--count` in any order.
    if args.cfg.overload {
        args.cfg.profile = accl_net::ChaosProfile::overload_profile(args.cfg.nodes as u32);
        if !count_set {
            args.cfg.count = 16384;
        }
    }
    if args.cfg.membership {
        if args.cfg.overload {
            return Err("--membership and --overload are separate fault mixes".into());
        }
        args.cfg.profile = accl_net::ChaosProfile::membership_profile(args.cfg.nodes as u32);
        if !count_set {
            args.cfg.count = 16384;
        }
    }
    Ok(args)
}

fn replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("chaos_sweep: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let repro = match Repro::from_json(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos_sweep: cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying seed {} ({} event(s), {:?} workload)",
        repro.seed,
        repro.events.len(),
        repro.spec.kind
    );
    let report = repro.replay();
    match &report.violation {
        Some(v) => {
            println!("REPRODUCED: {v}");
            ExitCode::FAILURE
        }
        None => {
            println!("clean: the repro no longer violates any invariant");
            ExitCode::SUCCESS
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos_sweep: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.replay {
        return replay(path);
    }

    let cfg = args.cfg;
    println!(
        "sweeping {} seed(s) from {} ({} nodes, {} elems, {:?}, fcs {}{})",
        cfg.seeds,
        cfg.start_seed,
        cfg.nodes,
        cfg.count,
        cfg.transport,
        if cfg.verify_fcs { "on" } else { "OFF" },
        if cfg.overload { ", overload" } else { "" },
    );
    if cfg.membership {
        println!("  membership mode: every schedule must self-heal");
    }
    let outcome = run_sweep(&cfg, |seed, report| {
        if !args.quiet {
            println!(
                "  seed {seed}: {} ({} events, {} dropped, {} corrupt-discards, {} retries)",
                if report.passed() { "ok" } else { "VIOLATION" },
                report.events_executed,
                report.frames_dropped,
                report.corrupted_drops,
                report.retries
            );
        }
    });
    match outcome {
        Ok(stats) => {
            println!(
                "PASS: {} seed(s), {} fault(s) scheduled, {} typed error(s), {} retr(ies), \
                 {} frame(s) dropped, {} corrupt discard(s)",
                stats.seeds_run,
                stats.faults_scheduled,
                stats.typed_errors,
                stats.retries,
                stats.frames_dropped,
                stats.corrupted_drops
            );
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("FAIL at seed {}: {}", failure.repro.seed, failure.violation);
            eprintln!(
                "  shrunk {} scheduled event(s) to {} in {} replay(s)",
                failure.original_events,
                failure.repro.events.len(),
                failure.replays
            );
            let json = failure.repro.to_json();
            match std::fs::write(&args.out, &json) {
                Ok(()) => eprintln!("  minimal repro written to {}", args.out),
                Err(e) => eprintln!("  cannot write {}: {e}; repro follows\n{json}", args.out),
            }
            eprintln!("  replay with: chaos_sweep --replay {}", args.out);
            ExitCode::FAILURE
        }
    }
}
