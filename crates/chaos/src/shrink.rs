//! Delta-debugging (`ddmin`) over fault-event schedules.
//!
//! A failing chaos seed typically carries a dozen-plus scheduled faults,
//! almost all of which are bystanders. Because every replay of the same
//! `(workload, plan)` pair is bit-identical, the classic ddmin algorithm
//! (Zeller & Hildebrandt) applies directly: partition the event list,
//! replay subsets and complements, keep whichever still fails, and refine
//! until the schedule is 1-minimal — removing *any single event* makes
//! the failure disappear.
//!
//! The test predicate is "the workload violates an invariant", not "the
//! same violation recurs": shrinking is allowed to slide between, say, a
//! data mismatch and a wedge, as long as each kept subset is a real
//! failure. In practice a corruption bug shrinks to the one `Corrupt`
//! event that hits a payload frame.

use accl_net::FaultEvent;

/// Minimizes `events` under `still_fails` with ddmin. Returns the
/// 1-minimal failing subset and the number of replays spent.
///
/// `still_fails(&events)` must be `true` on entry (the caller found the
/// failure); it is not re-checked. The predicate must be deterministic —
/// with the simulator's replay guarantee it is, as long as the caller
/// rebuilds the cluster from scratch per probe.
pub fn ddmin(
    events: &[FaultEvent],
    still_fails: &mut dyn FnMut(&[FaultEvent]) -> bool,
) -> (Vec<FaultEvent>, u32) {
    let mut current = events.to_vec();
    let mut replays = 0u32;
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunks = partition(&current, n);
        let mut reduced = false;

        // Try each chunk alone: a failing chunk is a much smaller input.
        for chunk in &chunks {
            replays += 1;
            if still_fails(chunk) {
                current = chunk.clone();
                n = 2;
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }

        // Try each complement: dropping one chunk while keeping the rest.
        if n > 2 {
            for skip in 0..chunks.len() {
                let complement: Vec<FaultEvent> = chunks
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .flat_map(|(_, c)| c.iter().copied())
                    .collect();
                replays += 1;
                if still_fails(&complement) {
                    current = complement;
                    n = (n - 1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if reduced {
            continue;
        }

        // No progress at this granularity: refine or stop.
        if n >= current.len() {
            break;
        }
        n = (n * 2).min(current.len());
    }
    (current, replays)
}

fn partition(events: &[FaultEvent], n: usize) -> Vec<Vec<FaultEvent>> {
    let n = n.min(events.len()).max(1);
    let chunk = events.len().div_ceil(n);
    events.chunks(chunk).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(index: u64) -> FaultEvent {
        FaultEvent::Drop { index }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let events: Vec<FaultEvent> = (0..16).map(ev).collect();
        let culprit = ev(11);
        let (min, replays) = ddmin(&events, &mut |subset| subset.contains(&culprit));
        assert_eq!(min, vec![culprit]);
        assert!(replays > 0);
    }

    #[test]
    fn shrinks_to_an_interacting_pair() {
        let events: Vec<FaultEvent> = (0..13).map(ev).collect();
        let (a, b) = (ev(2), ev(9));
        let (min, _) = ddmin(&events, &mut |s| s.contains(&a) && s.contains(&b));
        let mut sorted = min.clone();
        sorted.sort_by_key(|e| match e {
            FaultEvent::Drop { index } => *index,
            _ => unreachable!(),
        });
        assert_eq!(sorted, vec![a, b]);
        // 1-minimality: dropping either endpoint breaks the failure.
        assert!(!(min[1..].contains(&a) && min[1..].contains(&b)));
    }

    #[test]
    fn keeps_everything_when_all_events_matter() {
        let events: Vec<FaultEvent> = (0..5).map(ev).collect();
        let (min, _) = ddmin(&events, &mut |s| s.len() == 5);
        assert_eq!(min.len(), 5);
    }
}
