//! A minimal JSON reader/writer for the repro format.
//!
//! The workspace's vendored `serde` is an API-surface stub (no codegen),
//! so the repro files are read and written by hand. The dialect is the
//! subset the repro schema needs: objects, arrays, strings, booleans and
//! *unsigned integers* — every numeric field in a repro (frame index,
//! picosecond instant, ppm, seed) is a non-negative integer, so floats
//! are rejected rather than approximated.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the only number kind the schema uses).
    Num(u64),
    /// A string (escapes limited to `\" \\ \n \t`).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered pairs, not a map, so output is
    /// deterministic and duplicate keys round-trip visibly.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required-field lookup with a path-bearing error.
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// Serializes with 2-space indentation and a trailing newline, the
    /// style of the checked-in repro files.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(
            self.bytes.get(self.pos),
            Some(b'.' | b'e' | b'E' | b'-' | b'+')
        ) {
            return Err(format!(
                "non-integer number at byte {start} (the repro schema is integer-only)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => {
                            return Err(format!("unsupported escape {other:?}"));
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through byte-by-byte; the
                    // input is a &str so the bytes are always valid.
                    let ch_len = utf8_len(b);
                    let chunk = &self.bytes[self.pos..self.pos + ch_len];
                    out.push_str(std::str::from_utf8(chunk).expect("input is valid utf-8"));
                    self.pos += ch_len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::Obj(vec![
            ("seed".into(), Json::Num(42)),
            ("ok".into(), Json::Bool(true)),
            (
                "events".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("kind".into(), Json::Str("drop".into()))]),
                    Json::Num(7),
                ]),
            ),
            ("note".into(), Json::Str("a \"quoted\" μ-string\n".into())),
            ("none".into(), Json::Null),
        ]);
        let text = doc.pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = parse("{\"a\": {\"b\": [1, 2]}}").unwrap();
        let arr = doc
            .field("a")
            .unwrap()
            .field("b")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert!(doc.field("missing").is_err());
    }
}
