//! The seed sweep: N independent chaos experiments, shrink on failure.
//!
//! Each seed is a closed experiment: the seed picks the workload variant
//! (allreduce / bcast by parity), seeds the cluster, and — through
//! [`FaultPlanGen`] — samples the fault schedule. Seeds are independent,
//! so a sweep can be split across CI shards by `start_seed` ranges and
//! any reported failure replays in isolation.
//!
//! On the first invariant violation the sweep stops, decomposes the
//! schedule into [`accl_net::FaultEvent`]s, runs [`crate::shrink::ddmin`]
//! with "rebuild plan, rerun workload, did *any* invariant break?" as the
//! predicate, and returns a [`SweepFailure`] carrying the minimal
//! [`Repro`].

use crate::repro::Repro;
use crate::shrink::ddmin;
use crate::workload::{self, RunReport, Violation, WorkloadSpec};
use accl_core::Transport;
use accl_net::{ChaosProfile, FaultPlan, FaultPlanGen};

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// First seed (inclusive).
    pub start_seed: u64,
    /// Number of seeds to run.
    pub seeds: u64,
    /// Cluster size per experiment.
    pub nodes: usize,
    /// Elements (i32) per rank.
    pub count: u64,
    /// Protocol offload engine.
    pub transport: Transport,
    /// TCP FCS verification; `false` only for harness self-tests.
    pub verify_fcs: bool,
    /// Builds every experiment's cluster with finite capacities
    /// (`ClusterConfig::with_overload_limits`); pair with
    /// [`ChaosProfile::overload_profile`] so credit leaks, pause storms
    /// and buffer shrinks land on bounded resources.
    pub overload: bool,
    /// Fault intensity.
    pub profile: ChaosProfile,
    /// Simulator worker threads per experiment (`1` = sequential). Chaos
    /// outcomes and digests are invariant under this knob.
    pub workers: usize,
    /// Membership mode: every experiment runs the self-healing recovery
    /// loop after its faults play out (see `WorkloadSpec::membership`).
    /// Pair with [`ChaosProfile::membership_profile`] so schedules carry
    /// crash/restart pairs and partition windows.
    pub membership: bool,
}

impl SweepConfig {
    /// The default sweep: `seeds` experiments on a 3-node TCP cluster at
    /// the mild all-kinds fault profile.
    pub fn new(seeds: u64) -> Self {
        let nodes = 3usize;
        SweepConfig {
            start_seed: 0,
            seeds,
            nodes,
            count: 65536,
            transport: Transport::Tcp,
            verify_fcs: true,
            overload: false,
            profile: ChaosProfile::default_profile(nodes as u32),
            workers: 1,
            membership: false,
        }
    }

    /// The overload sweep: bounded clusters under the resource-pressure
    /// fault mix (credit leaks, pause storms, buffer shrinks plus mild
    /// delays). Smaller payloads than the default sweep — the pressure
    /// here is on queues and credit windows, not bandwidth.
    pub fn overload(seeds: u64) -> Self {
        let nodes = 3usize;
        SweepConfig {
            count: 16384,
            overload: true,
            profile: ChaosProfile::overload_profile(nodes as u32),
            ..Self::new(seeds)
        }
    }

    /// The membership sweep: crash/restart pairs and partition windows on
    /// otherwise clean fabrics, with the recovery loop required to heal
    /// every schedule. Smaller payloads — the pressure is on membership
    /// transitions, not bandwidth.
    pub fn membership(seeds: u64) -> Self {
        let nodes = 3usize;
        SweepConfig {
            count: 16384,
            membership: true,
            profile: ChaosProfile::membership_profile(nodes as u32),
            ..Self::new(seeds)
        }
    }

    /// The workload a given seed runs.
    pub fn spec(&self, seed: u64) -> WorkloadSpec {
        let mut spec = WorkloadSpec::for_seed(seed, self.nodes, self.count, self.transport);
        spec.verify_fcs = self.verify_fcs;
        spec.overload = self.overload;
        spec.workers = self.workers;
        spec.membership = self.membership;
        spec
    }

    /// The fault plan a given seed runs under.
    pub fn plan(&self, seed: u64) -> FaultPlan {
        FaultPlanGen::generate(&self.profile, seed)
    }
}

/// Aggregate statistics of a clean sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepStats {
    /// Seeds completed.
    pub seeds_run: u64,
    /// Fault events scheduled across all seeds.
    pub faults_scheduled: u64,
    /// Collective calls that finished with a typed error (allowed —
    /// masked faults exhaust retry budgets).
    pub typed_errors: u64,
    /// Driver retries spent masking transient faults.
    pub retries: u64,
    /// Frames the fabric dropped.
    pub frames_dropped: u64,
    /// Corrupted frames discarded at POE RX.
    pub corrupted_drops: u64,
}

/// A sweep failure: the violation, and its shrunk repro.
#[derive(Debug)]
pub struct SweepFailure {
    /// The minimal repro (exact seed, workload, shrunk schedule).
    pub repro: Repro,
    /// The violation the *original* schedule produced.
    pub violation: Violation,
    /// Scheduled events before shrinking.
    pub original_events: usize,
    /// Replays ddmin spent.
    pub replays: u32,
}

/// Runs the sweep; `progress` is called after every seed with its report.
/// Returns aggregate stats, or the first failure, shrunk.
pub fn run_sweep(
    cfg: &SweepConfig,
    mut progress: impl FnMut(u64, &RunReport),
) -> Result<SweepStats, Box<SweepFailure>> {
    let mut stats = SweepStats::default();
    for seed in cfg.start_seed..cfg.start_seed + cfg.seeds {
        let spec = cfg.spec(seed);
        let events = cfg.plan(seed).to_events();
        let report = workload::run(&spec, cfg.plan(seed));
        progress(seed, &report);
        if let Some(violation) = report.violation.clone() {
            let original_events = events.len();
            let (shrunk, replays) = ddmin(&events, &mut |subset| {
                workload::run(&spec, FaultPlan::from_events(subset))
                    .violation
                    .is_some()
            });
            return Err(Box::new(SweepFailure {
                repro: Repro {
                    seed,
                    spec,
                    events: shrunk,
                },
                violation,
                original_events,
                replays,
            }));
        }
        stats.seeds_run += 1;
        stats.faults_scheduled += events.len() as u64;
        stats.typed_errors += report.results.iter().filter(|r| r.is_err()).count() as u64;
        stats.retries += report.retries;
        stats.frames_dropped += report.frames_dropped;
        stats.corrupted_drops += report.corrupted_drops;
    }
    Ok(stats)
}
