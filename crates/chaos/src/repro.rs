//! The JSON repro format: a failing chaos run, pinned.
//!
//! A repro is the complete recipe for re-running one chaos failure: the
//! exact seed, the workload specification, and the (shrunk) fault-event
//! schedule. It is deliberately tiny and human-readable — the point of
//! shrinking is that the file a CI job uploads, or a developer checks in
//! as a regression, names *the* one or two faults that matter:
//!
//! ```json
//! {
//!   "format": 1,
//!   "seed": 17,
//!   "workload": {
//!     "op": "allreduce", "nodes": 3, "count": 2048,
//!     "transport": "tcp", "verify_fcs": false
//!   },
//!   "events": [
//!     {"kind": "corrupt", "index": 9}
//!   ]
//! }
//! ```

use crate::json::{parse, Json};
use crate::workload::{self, CollKind, RunReport, WorkloadSpec};
use accl_core::Transport;
use accl_net::{Degradation, FaultEvent, FaultPlan, NodeAddr};
use accl_sim::time::{Dur, Time};

/// Repro file format version; bumped on schema changes.
const FORMAT: u64 = 1;

/// A serializable chaos failure: seed + workload + minimal schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// The chaos seed the failure was found at.
    pub seed: u64,
    /// The workload that exposed it.
    pub spec: WorkloadSpec,
    /// The (typically shrunk) fault schedule.
    pub events: Vec<FaultEvent>,
}

impl Repro {
    /// Rebuilds the fault plan from the event list.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::from_events(&self.events)
    }

    /// Re-runs the workload under the repro's schedule.
    pub fn replay(&self) -> RunReport {
        workload::run(&self.spec, self.plan())
    }

    /// Serializes to the pretty JSON repro format.
    pub fn to_json(&self) -> String {
        let spec = Json::Obj(vec![
            (
                "op".into(),
                Json::Str(
                    match self.spec.kind {
                        CollKind::AllReduce => "allreduce",
                        CollKind::Bcast => "bcast",
                    }
                    .into(),
                ),
            ),
            ("nodes".into(), Json::Num(self.spec.nodes as u64)),
            ("count".into(), Json::Num(self.spec.count)),
            (
                "transport".into(),
                Json::Str(
                    match self.spec.transport {
                        Transport::Tcp => "tcp",
                        Transport::Udp => "udp",
                        Transport::Rdma => "rdma",
                    }
                    .into(),
                ),
            ),
            ("verify_fcs".into(), Json::Bool(self.spec.verify_fcs)),
            ("overload".into(), Json::Bool(self.spec.overload)),
            ("workers".into(), Json::Num(self.spec.workers as u64)),
            ("membership".into(), Json::Bool(self.spec.membership)),
        ]);
        Json::Obj(vec![
            ("format".into(), Json::Num(FORMAT)),
            ("seed".into(), Json::Num(self.seed)),
            ("workload".into(), spec),
            (
                "events".into(),
                Json::Arr(self.events.iter().map(event_to_json).collect()),
            ),
        ])
        .pretty()
    }

    /// Parses a repro file.
    pub fn from_json(text: &str) -> Result<Repro, String> {
        let doc = parse(text)?;
        let format = doc
            .field("format")?
            .as_u64()
            .ok_or("format: not a number")?;
        if format != FORMAT {
            return Err(format!(
                "unsupported repro format {format} (expected {FORMAT})"
            ));
        }
        let seed = doc.field("seed")?.as_u64().ok_or("seed: not a number")?;
        let w = doc.field("workload")?;
        let kind = match w.field("op")?.as_str().ok_or("op: not a string")? {
            "allreduce" => CollKind::AllReduce,
            "bcast" => CollKind::Bcast,
            other => return Err(format!("unknown op `{other}`")),
        };
        let transport = match w
            .field("transport")?
            .as_str()
            .ok_or("transport: not a string")?
        {
            "tcp" => Transport::Tcp,
            "udp" => Transport::Udp,
            "rdma" => Transport::Rdma,
            other => return Err(format!("unknown transport `{other}`")),
        };
        let spec = WorkloadSpec {
            kind,
            nodes: w.field("nodes")?.as_u64().ok_or("nodes: not a number")? as usize,
            count: w.field("count")?.as_u64().ok_or("count: not a number")?,
            transport,
            verify_fcs: w
                .field("verify_fcs")?
                .as_bool()
                .ok_or("verify_fcs: not a bool")?,
            // Absent in pre-overload repros: default to the unbounded
            // cluster those files were recorded against.
            overload: w
                .field("overload")
                .ok()
                .and_then(Json::as_bool)
                .unwrap_or(false),
            seed,
            // Absent in pre-parallel repros: those ran sequentially. The
            // field is advisory anyway — outcomes are worker-invariant.
            workers: w
                .field("workers")
                .ok()
                .and_then(Json::as_u64)
                .unwrap_or(1)
                .max(1) as usize,
            // Absent in pre-membership repros: those did not run the
            // self-healing recovery loop.
            membership: w
                .field("membership")
                .ok()
                .and_then(Json::as_bool)
                .unwrap_or(false),
        };
        let events = doc
            .field("events")?
            .as_arr()
            .ok_or("events: not an array")?
            .iter()
            .map(event_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Repro { seed, spec, events })
    }
}

fn event_to_json(ev: &FaultEvent) -> Json {
    let obj = |kind: &str, rest: Vec<(String, Json)>| {
        let mut pairs = vec![("kind".to_string(), Json::Str(kind.into()))];
        pairs.extend(rest);
        Json::Obj(pairs)
    };
    match *ev {
        FaultEvent::Drop { index } => obj("drop", vec![("index".into(), Json::Num(index))]),
        FaultEvent::Corrupt { index } => obj("corrupt", vec![("index".into(), Json::Num(index))]),
        FaultEvent::Duplicate { index } => {
            obj("duplicate", vec![("index".into(), Json::Num(index))])
        }
        FaultEvent::Delay { index, by } => obj(
            "delay",
            vec![
                ("index".into(), Json::Num(index)),
                ("by_ps".into(), Json::Num(by.as_ps())),
            ],
        ),
        FaultEvent::LinkDown { node, from, until } => obj(
            "link_down",
            vec![
                ("node".into(), Json::Num(node.0 as u64)),
                ("from_ps".into(), Json::Num(from.as_ps())),
                ("until_ps".into(), Json::Num(until.as_ps())),
            ],
        ),
        FaultEvent::Degrade { node, window } => obj(
            "degrade",
            vec![
                ("node".into(), Json::Num(node.0 as u64)),
                ("from_ps".into(), Json::Num(window.from.as_ps())),
                ("until_ps".into(), Json::Num(window.until.as_ps())),
                ("loss_ppm".into(), Json::Num(window.loss_ppm as u64)),
                (
                    "throttle_gbps_x100".into(),
                    Json::Num(window.throttle_gbps_x100 as u64),
                ),
            ],
        ),
        FaultEvent::Crash { node, at } => obj(
            "crash",
            vec![
                ("node".into(), Json::Num(node.0 as u64)),
                ("at_ps".into(), Json::Num(at.as_ps())),
            ],
        ),
        FaultEvent::CreditLeak { node, at, credits } => obj(
            "credit_leak",
            vec![
                ("node".into(), Json::Num(node.0 as u64)),
                ("at_ps".into(), Json::Num(at.as_ps())),
                ("credits".into(), Json::Num(credits as u64)),
            ],
        ),
        FaultEvent::PauseStorm { node, at, hold } => obj(
            "pause_storm",
            vec![
                ("node".into(), Json::Num(node.0 as u64)),
                ("at_ps".into(), Json::Num(at.as_ps())),
                ("hold_ps".into(), Json::Num(hold.as_ps())),
            ],
        ),
        FaultEvent::BufShrink { node, at, bufs } => obj(
            "buf_shrink",
            vec![
                ("node".into(), Json::Num(node.0 as u64)),
                ("at_ps".into(), Json::Num(at.as_ps())),
                ("bufs".into(), Json::Num(bufs as u64)),
            ],
        ),
        FaultEvent::Restart { node, at } => obj(
            "restart",
            vec![
                ("node".into(), Json::Num(node.0 as u64)),
                ("at_ps".into(), Json::Num(at.as_ps())),
            ],
        ),
        FaultEvent::Partition { mask, from, until } => obj(
            "partition",
            vec![
                ("mask".into(), Json::Num(mask)),
                ("from_ps".into(), Json::Num(from.as_ps())),
                ("until_ps".into(), Json::Num(until.as_ps())),
            ],
        ),
    }
}

fn event_from_json(v: &Json) -> Result<FaultEvent, String> {
    let num = |key: &str| -> Result<u64, String> {
        v.field(key)?
            .as_u64()
            .ok_or_else(|| format!("{key}: not a number"))
    };
    let node = |key: &str| -> Result<NodeAddr, String> { Ok(NodeAddr(num(key)? as u32)) };
    match v.field("kind")?.as_str().ok_or("kind: not a string")? {
        "drop" => Ok(FaultEvent::Drop {
            index: num("index")?,
        }),
        "corrupt" => Ok(FaultEvent::Corrupt {
            index: num("index")?,
        }),
        "duplicate" => Ok(FaultEvent::Duplicate {
            index: num("index")?,
        }),
        "delay" => Ok(FaultEvent::Delay {
            index: num("index")?,
            by: Dur::from_ps(num("by_ps")?),
        }),
        "link_down" => Ok(FaultEvent::LinkDown {
            node: node("node")?,
            from: Time::from_ps(num("from_ps")?),
            until: Time::from_ps(num("until_ps")?),
        }),
        "degrade" => Ok(FaultEvent::Degrade {
            node: node("node")?,
            window: Degradation {
                from: Time::from_ps(num("from_ps")?),
                until: Time::from_ps(num("until_ps")?),
                loss_ppm: num("loss_ppm")? as u32,
                throttle_gbps_x100: num("throttle_gbps_x100")? as u32,
            },
        }),
        "crash" => Ok(FaultEvent::Crash {
            node: node("node")?,
            at: Time::from_ps(num("at_ps")?),
        }),
        "credit_leak" => Ok(FaultEvent::CreditLeak {
            node: node("node")?,
            at: Time::from_ps(num("at_ps")?),
            credits: num("credits")? as u32,
        }),
        "pause_storm" => Ok(FaultEvent::PauseStorm {
            node: node("node")?,
            at: Time::from_ps(num("at_ps")?),
            hold: Dur::from_ps(num("hold_ps")?),
        }),
        "buf_shrink" => Ok(FaultEvent::BufShrink {
            node: node("node")?,
            at: Time::from_ps(num("at_ps")?),
            bufs: num("bufs")? as u32,
        }),
        "restart" => Ok(FaultEvent::Restart {
            node: node("node")?,
            at: Time::from_ps(num("at_ps")?),
        }),
        "partition" => Ok(FaultEvent::Partition {
            mask: num("mask")?,
            from: Time::from_ps(num("from_ps")?),
            until: Time::from_ps(num("until_ps")?),
        }),
        other => Err(format!("unknown event kind `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_kind_round_trips() {
        let repro = Repro {
            seed: 99,
            spec: WorkloadSpec {
                kind: CollKind::Bcast,
                nodes: 4,
                count: 512,
                transport: Transport::Udp,
                verify_fcs: true,
                overload: true,
                seed: 99,
                workers: 2,
                membership: true,
            },
            events: vec![
                FaultEvent::Drop { index: 3 },
                FaultEvent::Corrupt { index: 7 },
                FaultEvent::Duplicate { index: 11 },
                FaultEvent::Delay {
                    index: 13,
                    by: Dur::from_us(40),
                },
                FaultEvent::LinkDown {
                    node: NodeAddr(1),
                    from: Time::from_ps(500),
                    until: Time::from_ps(900),
                },
                FaultEvent::Degrade {
                    node: NodeAddr(2),
                    window: Degradation {
                        from: Time::from_ps(100),
                        until: Time::from_ps(200),
                        loss_ppm: 10_000,
                        throttle_gbps_x100: 2_500,
                    },
                },
                FaultEvent::Crash {
                    node: NodeAddr(3),
                    at: Time::from_ps(1234),
                },
                FaultEvent::CreditLeak {
                    node: NodeAddr(0),
                    at: Time::from_ps(2000),
                    credits: 3,
                },
                FaultEvent::PauseStorm {
                    node: NodeAddr(1),
                    at: Time::from_ps(3000),
                    hold: Dur::from_us(150),
                },
                FaultEvent::BufShrink {
                    node: NodeAddr(2),
                    at: Time::from_ps(4000),
                    bufs: 2,
                },
                FaultEvent::Crash {
                    node: NodeAddr(1),
                    at: Time::from_ps(5000),
                },
                FaultEvent::Restart {
                    node: NodeAddr(1),
                    at: Time::from_ps(6000),
                },
                FaultEvent::Partition {
                    mask: 0b10,
                    from: Time::from_ps(7000),
                    until: Time::from_ps(8000),
                },
            ],
        };
        let text = repro.to_json();
        assert_eq!(Repro::from_json(&text).unwrap(), repro);
        // The plan the events rebuild is itself explicit, so the event
        // decomposition round-trips through FaultPlan too.
        let plan = repro.plan();
        assert!(plan.is_explicit());
        let canonical = plan.to_events();
        assert_eq!(FaultPlan::from_events(&canonical).to_events(), canonical);
    }

    /// Repro files written before the overload flag existed must keep
    /// parsing, defaulting to the unbounded cluster.
    #[test]
    fn missing_overload_field_defaults_to_false() {
        let old = "{\"format\": 1, \"seed\": 5, \"workload\": {\"op\": \"allreduce\", \
                   \"nodes\": 3, \"count\": 64, \"transport\": \"tcp\", \
                   \"verify_fcs\": true}, \"events\": []}";
        let repro = Repro::from_json(old).unwrap();
        assert!(!repro.spec.overload);
        assert_eq!(repro.spec.workers, 1);
        assert!(!repro.spec.membership);
    }

    #[test]
    fn rejects_unknown_formats_and_kinds() {
        assert!(Repro::from_json("{\"format\": 2}").is_err());
        let bad = "{\"format\": 1, \"seed\": 0, \"workload\": {\"op\": \"gather\", \
                   \"nodes\": 2, \"count\": 1, \"transport\": \"tcp\", \
                   \"verify_fcs\": true}, \"events\": []}";
        assert!(Repro::from_json(bad).is_err());
    }
}
