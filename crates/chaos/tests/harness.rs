//! Tier-1 checks of the chaos harness itself: a clean sweep at the
//! default profile, the planted-bug self-test (the sweep must *catch* a
//! disabled FCS check and shrink it to a tiny repro), replay determinism,
//! the checked-in minimal-repro regression, and the overload battery:
//! 64-seed resource-pressure sweeps per transport plus the planted
//! credit-leak repro the deadlock detector must name exactly.

use accl_chaos::{run_sweep, Repro, SweepConfig, Violation};
use accl_core::{AcclCluster, BufLoc, ClusterConfig, CollOp, CollSpec, DType, HostOp, Transport};
use accl_net::{ChaosProfile, FaultEvent, FaultPlan, NodeAddr};
use accl_sim::time::Time;

/// Debug-friendly sweep parameters: the default profile against a
/// workload small enough that a test-profile sweep stays fast, but large
/// enough that sampled frame faults actually land on traffic.
fn test_config(seeds: u64) -> SweepConfig {
    let mut cfg = SweepConfig::new(seeds);
    cfg.count = 16384;
    cfg
}

/// At the default fault profile every seed must hold every invariant:
/// transient drops, corruption, duplicates, delays, flaps and degraded
/// links are all repaired (or surfaced typed) by the stack under test.
#[test]
fn default_profile_sweep_is_clean() {
    let stats = run_sweep(&test_config(8), |_, _| {}).unwrap_or_else(|failure| {
        panic!(
            "seed {} violated an invariant ({}) — shrunk repro:\n{}",
            failure.repro.seed,
            failure.violation,
            failure.repro.to_json()
        )
    });
    assert_eq!(stats.seeds_run, 8);
    // The profile schedules its full budget at every seed...
    let budget = ChaosProfile::default_profile(3).budget() as u64;
    assert_eq!(stats.faults_scheduled, 8 * budget);
    // ...and at least some of those faults must land on live traffic —
    // a sweep that never injects anything proves nothing.
    assert!(
        stats.frames_dropped + stats.corrupted_drops > 0,
        "no scheduled fault ever hit a frame"
    );
}

/// Replaying a seed is bit-identical: same event count, same results,
/// same fault counters. This is the property that makes schedule
/// shrinking sound (ddmin replays subsets assuming determinism).
#[test]
fn replaying_a_seed_is_bit_identical() {
    let cfg = test_config(1);
    for seed in [0u64, 1] {
        let a = accl_chaos::workload::run(&cfg.spec(seed), cfg.plan(seed));
        let b = accl_chaos::workload::run(&cfg.spec(seed), cfg.plan(seed));
        assert_eq!(a.events_executed, b.events_executed, "seed {seed}");
        assert_eq!(a.results, b.results, "seed {seed}");
        assert_eq!(a.frames_dropped, b.frames_dropped, "seed {seed}");
        assert_eq!(a.corrupted_drops, b.corrupted_drops, "seed {seed}");
    }
}

/// The harness self-test: plant a real integrity bug (disable the TCP
/// FCS check, so corrupted frames are *delivered* instead of discarded
/// and retransmitted), and demand that the sweep (a) catches it as a
/// data-integrity violation and (b) shrinks the schedule to at most 3
/// fault events — in practice the single corrupt that hit a payload
/// frame.
#[test]
fn planted_fcs_bug_is_caught_and_shrunk() {
    let mut cfg = test_config(16);
    cfg.verify_fcs = false;
    // Concentrate sampled frame indices on live traffic so the bug is
    // found within a few seeds even at the small test workload.
    cfg.profile.horizon_frames = 256;

    let failure = match run_sweep(&cfg, |_, _| {}) {
        Ok(stats) => panic!("sweep missed the planted FCS bug: {stats:?}"),
        Err(failure) => failure,
    };
    assert!(
        matches!(failure.violation, Violation::DataMismatch { .. }),
        "expected a data mismatch, got: {}",
        failure.violation
    );
    assert!(
        failure.repro.events.len() <= 3,
        "repro not minimal: {} events\n{}",
        failure.repro.events.len(),
        failure.repro.to_json()
    );
    assert!(failure.repro.events.len() < failure.original_events);
    assert!(
        failure
            .repro
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::Corrupt { .. })),
        "a corruption bug must shrink to a schedule containing a Corrupt event"
    );

    // The shrunk repro round-trips through JSON and still reproduces.
    let repro = Repro::from_json(&failure.repro.to_json()).unwrap();
    assert_eq!(repro, failure.repro);
    let report = repro.replay();
    assert!(
        matches!(report.violation, Some(Violation::DataMismatch { .. })),
        "shrunk repro no longer reproduces: {:?}",
        report.violation
    );

    // And with the bug fixed (FCS verification back on), the very same
    // schedule is repaired by retransmission: no violation, and the
    // corrupted frame shows up in the discard counters instead.
    let mut fixed = repro.clone();
    fixed.spec.verify_fcs = true;
    let report = fixed.replay();
    assert!(
        report.passed(),
        "repro should pass once FCS verification is restored: {}",
        report.violation.unwrap()
    );
    assert!(report.corrupted_drops > 0);
}

/// One 64-seed overload sweep: bounded clusters, resource-pressure fault
/// mix (credit leaks, pause storms, buffer shrinks, mild delays). Every
/// invariant must hold at every seed — collectives either complete with
/// golden data or surface a typed error; nothing wedges.
fn overload_sweep(transport: Transport) {
    let mut cfg = SweepConfig::overload(64);
    cfg.transport = transport;
    let stats = run_sweep(&cfg, |_, _| {}).unwrap_or_else(|failure| {
        panic!(
            "{transport:?} seed {} violated an invariant ({}) — shrunk repro:\n{}",
            failure.repro.seed,
            failure.violation,
            failure.repro.to_json()
        )
    });
    assert_eq!(stats.seeds_run, 64, "{transport:?}");
    assert!(stats.faults_scheduled > 0, "{transport:?}: empty profile");
}

#[test]
fn overload_sweep_is_clean_on_tcp() {
    overload_sweep(Transport::Tcp);
}

#[test]
fn overload_sweep_is_clean_on_udp() {
    overload_sweep(Transport::Udp);
}

#[test]
fn overload_sweep_is_clean_on_rdma() {
    overload_sweep(Transport::Rdma);
}

/// Replay determinism holds under the overload profile too: the ddmin
/// soundness argument extends to credit-leak/pause-storm/buf-shrink
/// schedules against bounded clusters.
#[test]
fn overload_replay_is_bit_identical() {
    let cfg = SweepConfig::overload(1);
    for seed in [0u64, 1] {
        let a = accl_chaos::workload::run(&cfg.spec(seed), cfg.plan(seed));
        let b = accl_chaos::workload::run(&cfg.spec(seed), cfg.plan(seed));
        assert_eq!(a.events_executed, b.events_executed, "seed {seed}");
        assert_eq!(a.results, b.results, "seed {seed}");
        assert_eq!(a.frames_dropped, b.frames_dropped, "seed {seed}");
        assert_eq!(a.retries, b.retries, "seed {seed}");
    }
}

/// The checked-in 1-event credit-leak repro: leaking rank 0's entire tx
/// credit window strands its POE's queued frames forever — an
/// unrecoverable wedge no retry budget can mask. The harness must (a)
/// catch it as a wedge and (b) hand back the deadlock detector's
/// diagnosis naming the exact leaked resource.
#[test]
fn checked_in_credit_leak_repro_is_caught_and_named() {
    let repro = Repro::from_json(include_str!("data/credit_leak_repro.json")).unwrap();
    assert_eq!(repro.events.len(), 1, "the checked-in repro is minimal");
    assert!(repro.spec.overload, "the leak needs a finite credit window");
    assert!(
        matches!(
            repro.events[0],
            FaultEvent::CreditLeak {
                node: NodeAddr(0),
                credits: 32,
                ..
            }
        ),
        "expected a full-window leak on rank 0: {:?}",
        repro.events[0]
    );

    let report = repro.replay();
    let why = match &report.violation {
        Some(Violation::Wedged(why)) => why,
        other => panic!("a full-window credit leak must wedge the run, got: {other:?}"),
    };
    assert!(
        why.contains("net.txcredit(n0)"),
        "wedge diagnosis does not name the leaked credit window:\n{why}"
    );
    assert!(
        why.contains("orphaned wait"),
        "the leak should diagnose as an orphaned wait:\n{why}"
    );

    // The identical schedule against an *unbounded* cluster is harmless:
    // with no finite window there is nothing to leak dry.
    let mut unbounded = repro.clone();
    unbounded.spec.overload = false;
    let report = unbounded.replay();
    assert!(
        report.passed(),
        "the same leak without capacity limits must be inert: {}",
        report.violation.unwrap()
    );
    assert!(report.results.iter().all(|r| r.is_ok()));
}

/// The same planted leak with the watchdog disarmed stalls the simulation
/// — and the deadlock detector must name the exact leaked resource: rank
/// 0's tx credit window, held by no live component (an orphaned wait, not
/// a cycle).
#[test]
fn credit_leak_wait_is_named_by_the_deadlock_detector() {
    let mut cfg = ClusterConfig::xrt_tcp(3).with_overload_limits();
    cfg.cclo.collective_timeout_us = None;
    let mut c = AcclCluster::build(cfg);
    c.set_fault_plan(FaultPlan::none().with_credit_leak(NodeAddr(0), Time::from_us(5), 32));

    let count = 1024u64;
    let mut programs = Vec::new();
    for node in 0..3 {
        let src = c.alloc(node, BufLoc::Host, count * 4);
        let dst = c.alloc(node, BufLoc::Host, count * 4);
        c.write(&src, &vec![node as u8 + 1; (count * 4) as usize]);
        let spec = CollSpec::new(CollOp::AllReduce, count, DType::I32)
            .src(src)
            .dst(dst);
        programs.push(vec![HostOp::Coll(spec)]);
    }
    let why = c
        .try_run_host_programs(programs)
        .expect_err("an unwatched full credit leak must stall the run");
    assert!(
        why.contains("net.txcredit(n0)"),
        "stall diagnosis does not name the leaked credit window:\n{why}"
    );
    assert!(
        why.contains("orphaned wait"),
        "the leak should diagnose as an orphaned wait, not a cycle:\n{why}"
    );
}

/// The wedge diagnosis survives the parallel engine: replaying the
/// checked-in credit-leak repro on 2 and 4 simulator workers must produce
/// the *same* deadlock-detector verdict, down to the exact leaked
/// resource. The detector runs against the reunited post-gather component
/// set, so a shard boundary between the leaking port and the waiting POE
/// must not blind it — rank 0's NIC, its POE and the switch live in
/// different partitions precisely to pin that.
#[test]
fn credit_leak_repro_is_named_identically_in_parallel_mode() {
    let repro = Repro::from_json(include_str!("data/credit_leak_repro.json")).unwrap();
    let sequential = repro.replay();
    let golden_why = match &sequential.violation {
        Some(Violation::Wedged(why)) => why.clone(),
        other => panic!("sequential replay must wedge, got: {other:?}"),
    };
    for workers in [2usize, 4] {
        let mut parallel = repro.clone();
        parallel.spec.workers = workers;
        let report = parallel.replay();
        let why = match &report.violation {
            Some(Violation::Wedged(why)) => why,
            other => panic!("{workers}-worker replay must wedge, got: {other:?}"),
        };
        assert!(
            why.contains("net.txcredit(n0)"),
            "{workers}-worker wedge diagnosis lost the leaked credit window:\n{why}"
        );
        assert!(
            why.contains("orphaned wait"),
            "{workers}-worker diagnosis should stay an orphaned wait:\n{why}"
        );
        assert_eq!(
            *why, golden_why,
            "{workers}-worker diagnosis text diverged from sequential"
        );
        assert_eq!(
            report.events_executed, sequential.events_executed,
            "{workers}-worker replay executed a different number of events"
        );
    }
}

/// The unwatched-stall path (no engine watchdog, the simulation simply
/// drains with parked work) reaches the same cross-shard diagnosis on the
/// parallel engine.
#[test]
fn credit_leak_wait_is_named_by_the_deadlock_detector_in_parallel_mode() {
    let mut cfg = ClusterConfig::xrt_tcp(3)
        .with_overload_limits()
        .with_workers(2);
    cfg.cclo.collective_timeout_us = None;
    let mut c = AcclCluster::build(cfg);
    c.set_fault_plan(FaultPlan::none().with_credit_leak(NodeAddr(0), Time::from_us(5), 32));

    let count = 1024u64;
    let mut programs = Vec::new();
    for node in 0..3 {
        let src = c.alloc(node, BufLoc::Host, count * 4);
        let dst = c.alloc(node, BufLoc::Host, count * 4);
        c.write(&src, &vec![node as u8 + 1; (count * 4) as usize]);
        let spec = CollSpec::new(CollOp::AllReduce, count, DType::I32)
            .src(src)
            .dst(dst);
        programs.push(vec![HostOp::Coll(spec)]);
    }
    let why = c
        .try_run_host_programs(programs)
        .expect_err("an unwatched full credit leak must stall the parallel run");
    assert!(
        why.contains("net.txcredit(n0)"),
        "parallel stall diagnosis does not name the leaked credit window:\n{why}"
    );
    assert!(
        why.contains("orphaned wait"),
        "the leak should diagnose as an orphaned wait, not a cycle:\n{why}"
    );
}

/// Membership-mode sweep: crash/restart pairs and partition windows play
/// out against the collective, then the harness demands the cluster
/// *self-heals* — restarted nodes are reinstated, the surviving group
/// shrinks and re-expands, and the reissued collective must complete
/// with golden data. A crash seed costs real simulated time (watchdog
/// timeouts and retries), so the PR gate runs a small seed count; the
/// 64-seed battery lives in the nightly CI sweep.
fn membership_sweep(transport: Transport) {
    let mut cfg = SweepConfig::membership(6);
    cfg.transport = transport;
    let stats = run_sweep(&cfg, |_, _| {}).unwrap_or_else(|failure| {
        panic!(
            "{transport:?} seed {} violated an invariant ({}) — shrunk repro:\n{}",
            failure.repro.seed,
            failure.violation,
            failure.repro.to_json()
        )
    });
    assert_eq!(stats.seeds_run, 6, "{transport:?}");
    assert!(stats.faults_scheduled > 0, "{transport:?}: empty profile");
}

#[test]
fn membership_sweep_is_clean_on_tcp() {
    membership_sweep(Transport::Tcp);
}

#[test]
fn membership_sweep_is_clean_on_udp() {
    membership_sweep(Transport::Udp);
}

#[test]
fn membership_sweep_is_clean_on_rdma() {
    membership_sweep(Transport::Rdma);
}

/// Replay determinism extends to membership schedules: crash, restart
/// and partition events — plus the shrink/expand recovery pass the
/// harness drives afterwards — replay bit-identically, so ddmin stays
/// sound for the new fault kinds.
#[test]
fn membership_replay_is_bit_identical() {
    let cfg = SweepConfig::membership(1);
    for seed in [0u64, 1] {
        let a = accl_chaos::workload::run(&cfg.spec(seed), cfg.plan(seed));
        let b = accl_chaos::workload::run(&cfg.spec(seed), cfg.plan(seed));
        assert_eq!(a.events_executed, b.events_executed, "seed {seed}");
        assert_eq!(a.results, b.results, "seed {seed}");
        assert_eq!(a.frames_dropped, b.frames_dropped, "seed {seed}");
        assert_eq!(a.retries, b.retries, "seed {seed}");
    }
}

/// The checked-in rejoin canary: a crash with *no* matching restart can
/// never heal, so membership mode must flag it (`MembershipUnhealed`).
/// CI replays this file with an inverted gate — if the replay ever comes
/// back clean, the self-healing checker itself has gone blind. Appending
/// the missing restart to the very same schedule must heal it: the node
/// is reinstated, readmitted via expand, and the reissued collective
/// completes with golden data.
#[test]
fn checked_in_rejoin_canary_fails_until_the_restart_heals_it() {
    let repro = Repro::from_json(include_str!("data/rejoin_canary.json")).unwrap();
    assert!(repro.spec.membership, "the canary runs in membership mode");
    assert_eq!(repro.events.len(), 1, "the checked-in canary is minimal");
    assert!(
        matches!(
            repro.events[0],
            FaultEvent::Crash {
                node: NodeAddr(2),
                ..
            }
        ),
        "expected a lone crash of node 2: {:?}",
        repro.events[0]
    );

    let report = repro.replay();
    match &report.violation {
        Some(Violation::MembershipUnhealed(why)) => assert!(
            why.contains("never restarts"),
            "diagnosis should say the node never restarts:\n{why}"
        ),
        other => panic!("a restart-less crash must be flagged unhealed, got: {other:?}"),
    }

    // The same schedule with the missing restart appended self-heals.
    let mut healed = repro.clone();
    healed.events.push(FaultEvent::Restart {
        node: NodeAddr(2),
        at: Time::from_us(400),
    });
    let report = healed.replay();
    assert!(
        report.passed(),
        "crash + restart must heal via rejoin/expand: {}",
        report.violation.unwrap()
    );
}

/// Pre-membership repro files (checked in by earlier PRs, before the
/// `membership` field and the restart/partition event kinds existed)
/// still parse — the new field defaults off and absent kinds are simply
/// never present. Guards backward compatibility of the repro format.
#[test]
fn pre_membership_repros_parse_with_membership_off() {
    for (name, text) in [
        ("minimal_repro", include_str!("data/minimal_repro.json")),
        (
            "credit_leak_repro",
            include_str!("data/credit_leak_repro.json"),
        ),
    ] {
        let repro = Repro::from_json(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            !repro.spec.membership,
            "{name}: membership must default off"
        );
    }
}

/// The checked-in minimal repro (emitted by a real `--break-fcs` sweep)
/// keeps reproducing: guards both the repro format and the harness's
/// detection power against regressions.
#[test]
fn checked_in_minimal_repro_still_reproduces() {
    let repro = Repro::from_json(include_str!("data/minimal_repro.json")).unwrap();
    assert_eq!(repro.events.len(), 1, "the checked-in repro is minimal");

    let report = repro.replay();
    assert!(
        matches!(report.violation, Some(Violation::DataMismatch { .. })),
        "checked-in repro stopped reproducing: {:?}",
        report.violation
    );

    let mut fixed = repro;
    fixed.spec.verify_fcs = true;
    let report = fixed.replay();
    assert!(
        report.passed(),
        "same schedule with FCS verification on must pass: {}",
        report.violation.unwrap()
    );
    assert!(report.corrupted_drops > 0);
}
