//! End-to-end software-MPI baseline tests: correctness of every collective
//! and the qualitative cost properties the paper's comparisons rely on.

use accl_cclo::command::CollOp;
use accl_cclo::msg::{DType, ReduceFn};
use accl_sim::time::Dur;
use accl_swmpi::{MpiCall, MpiCluster, MpiConfig, MpiOp};

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn pattern(rank: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| (rank as i32 + 1) * 10 + i as i32)
            .collect::<Vec<_>>(),
    )
}

fn summed(n: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| (0..n as i32).map(|r| (r + 1) * 10 + i as i32).sum())
            .collect::<Vec<_>>(),
    )
}

fn call(op: CollOp, count: u64, root: u32, src: Vec<u8>, dst_len: usize) -> MpiCall {
    MpiCall {
        op,
        count,
        dtype: DType::I32,
        root,
        func: ReduceFn::Sum,
        src,
        dst_len,
    }
}

#[test]
fn reduce_matches_reference_all_sizes_and_flavors() {
    for cfg in [MpiConfig::openmpi_rdma(), MpiConfig::mpich_tcp()] {
        // Spans all three algorithm regimes (Fig. 12).
        for n in [2usize, 5, 8] {
            for count in [64u64, 2048, 65536] {
                let mut c = MpiCluster::build(n, cfg, 3);
                let calls = (0..n)
                    .map(|r| {
                        call(
                            CollOp::Reduce,
                            count,
                            0,
                            pattern(r, count),
                            (count * 4) as usize,
                        )
                    })
                    .collect();
                c.collective(calls);
                assert_eq!(c.dst(0), summed(n, count), "n={n} count={count}");
            }
        }
    }
}

#[test]
fn bcast_allreduce_alltoall_match_reference() {
    let n = 6;
    let count = 1024u64;
    let cfg = MpiConfig::openmpi_rdma();

    // Bcast (operates on dst; root's src seeds it via a reduce-free path:
    // here we model it by placing the payload in root's dst via one-rank
    // schedule semantics — the firmware bcast reads root's dst, so pass the
    // payload as the root's dst through a preceding local copy using src).
    // Simpler: use allreduce and alltoall which carry data in src.
    let mut c = MpiCluster::build(n, cfg, 4);
    let calls = (0..n)
        .map(|r| {
            call(
                CollOp::AllReduce,
                count,
                0,
                pattern(r, count),
                (count * 4) as usize,
            )
        })
        .collect();
    c.collective(calls);
    for r in 0..n {
        assert_eq!(c.dst(r), summed(n, count), "allreduce rank {r}");
    }

    let mut c = MpiCluster::build(n, cfg, 5);
    let b = (count * 4) as usize;
    let calls = (0..n)
        .map(|r| {
            let blocks: Vec<u8> = (0..n).flat_map(|to| pattern(r * 100 + to, count)).collect();
            call(CollOp::AllToAll, count, 0, blocks, b * n)
        })
        .collect();
    c.collective(calls);
    for r in 0..n {
        let got = c.dst(r);
        for from in 0..n {
            assert_eq!(
                &got[from * b..(from + 1) * b],
                &pattern(from * 100 + r, count)[..],
                "alltoall rank {r} from {from}"
            );
        }
    }
}

#[test]
fn gather_collects_blocks_in_rank_order() {
    let n = 5;
    let count = 512u64;
    let mut c = MpiCluster::build(n, MpiConfig::openmpi_rdma(), 6);
    let calls = (0..n)
        .map(|r| {
            call(
                CollOp::Gather,
                count,
                0,
                pattern(r, count),
                (count * 4) as usize * n,
            )
        })
        .collect();
    c.collective(calls);
    let expect: Vec<u8> = (0..n).flat_map(|r| pattern(r, count)).collect();
    assert_eq!(c.dst(0), expect);
}

#[test]
fn rendezvous_engages_above_threshold() {
    // A transfer above the eager threshold must round-trip RTS/CTS: its
    // latency includes an extra RTT vs. a linear bandwidth extrapolation.
    let cfg = MpiConfig::openmpi_rdma();
    let time_for = |count: u64| -> f64 {
        let mut c = MpiCluster::build(2, cfg, 7);
        let calls = vec![
            call(CollOp::Send, count, 1, pattern(0, count), 0),
            call(CollOp::Recv, count, 0, vec![], (count * 4) as usize),
        ];
        let lat = c.collective(calls);
        assert_eq!(c.dst(1), pattern(0, count));
        lat[1].as_us_f64()
    };
    let eager = time_for(1024); // 4 KiB
    let rndzv = time_for(8192); // 32 KiB > 16 KiB threshold
                                // Scale the eager time by bytes; rendezvous should exceed it by the
                                // handshake round trip (~3-4 us), visible at these sizes.
    let scaled = eager * 8.0;
    assert!(rndzv > eager, "rndzv={rndzv} eager={eager}");
    assert!(
        rndzv < scaled,
        "handshake should not blow up {rndzv} vs {scaled}"
    );
}

#[test]
fn tcp_flavor_is_slower_than_rdma() {
    let count = 32768u64;
    let time_for = |cfg: MpiConfig| -> f64 {
        let mut c = MpiCluster::build(2, cfg, 8);
        let calls = vec![
            call(CollOp::Send, count, 1, pattern(0, count), 0),
            call(CollOp::Recv, count, 0, vec![], (count * 4) as usize),
        ];
        c.collective(calls)[1].as_us_f64()
    };
    let rdma = time_for(MpiConfig::openmpi_rdma());
    let tcp = time_for(MpiConfig::mpich_tcp());
    assert!(tcp > rdma * 1.3, "tcp={tcp}us rdma={rdma}us");
}

#[test]
fn compute_and_collectives_interleave() {
    let n = 2;
    let count = 256u64;
    let mut c = MpiCluster::build(n, MpiConfig::openmpi_rdma(), 9);
    let programs = vec![
        vec![
            MpiOp::Compute(Dur::from_us(100)),
            MpiOp::Coll(call(CollOp::Send, count, 1, pattern(0, count), 0)),
        ],
        vec![MpiOp::Coll(call(
            CollOp::Recv,
            count,
            0,
            vec![],
            (count * 4) as usize,
        ))],
    ];
    let records = c.run_programs(programs);
    // The recv completes only after the sender's 100 us compute.
    assert!(records[1][0].finished.as_us_f64() >= 100.0);
    assert_eq!(c.dst(1), pattern(0, count));
}

#[test]
fn small_message_latency_is_microsecond_class() {
    // MPI pt2pt small-message latency: a few microseconds (RoCE), matching
    // the baseline magnitudes in Fig. 10/11.
    let mut c = MpiCluster::build(2, MpiConfig::openmpi_rdma(), 10);
    let calls = vec![
        call(CollOp::Send, 256, 1, pattern(0, 256), 0),
        call(CollOp::Recv, 256, 0, vec![], 1024),
    ];
    let lat = c.collective(calls)[1].as_us_f64();
    assert!((2.0..15.0).contains(&lat), "latency {lat}us");
}

#[test]
fn cluster_is_reusable_across_phases() {
    let mut c = MpiCluster::build(2, MpiConfig::openmpi_rdma(), 11);
    for round in 0..3u64 {
        let count = 128 * (round + 1);
        let calls = vec![
            call(CollOp::Send, count, 1, pattern(round as usize, count), 0),
            call(CollOp::Recv, count, 0, vec![], (count * 4) as usize),
        ];
        c.collective(calls);
        assert_eq!(c.dst(1), pattern(round as usize, count), "round {round}");
    }
}

#[test]
fn nonzero_roots_work_across_collectives() {
    let n = 5;
    let count = 256u64;
    let cfg = MpiConfig::openmpi_rdma();
    for root in [1u32, 4] {
        // Reduce to a non-zero root.
        let mut c = MpiCluster::build(n, cfg, 31);
        let calls = (0..n)
            .map(|r| {
                call(
                    CollOp::Reduce,
                    count,
                    root,
                    pattern(r, count),
                    (count * 4) as usize,
                )
            })
            .collect();
        c.collective(calls);
        assert_eq!(c.dst(root as usize), summed(n, count), "reduce root {root}");

        // Scatter from a non-zero root.
        let mut c = MpiCluster::build(n, cfg, 32);
        let root_src: Vec<u8> = (0..n).flat_map(|b| pattern(b + 7, count)).collect();
        let calls = (0..n)
            .map(|r| {
                let src = if r == root as usize {
                    root_src.clone()
                } else {
                    vec![]
                };
                call(CollOp::Scatter, count, root, src, (count * 4) as usize)
            })
            .collect();
        c.collective(calls);
        for r in 0..n {
            assert_eq!(
                c.dst(r),
                pattern(r + 7, count),
                "scatter root {root} rank {r}"
            );
        }
    }
}

#[test]
fn reduce_scatter_blocks_land_per_rank() {
    let n = 4;
    let count = 64u64; // per-block elements
    let b = (count * 4) as usize;
    let mut c = MpiCluster::build(n, MpiConfig::openmpi_rdma(), 33);
    let calls = (0..n)
        .map(|r| {
            call(
                CollOp::ReduceScatter,
                count,
                0,
                pattern(r, count * n as u64),
                b,
            )
        })
        .collect();
    c.collective(calls);
    let full = summed(n, count * n as u64);
    for r in 0..n {
        assert_eq!(c.dst(r), full[r * b..(r + 1) * b].to_vec(), "rank {r}");
    }
}
