//! A software MPI rank: the baseline's CPU-side protocol engine.
//!
//! Executes collective schedules (shared IR with the CCLO firmware — a
//! communication schedule is implementation-neutral) entirely in software:
//! every posting, matching, copy and combine costs CPU time serialized
//! through one core, eager messages pay bounce-buffer copies, and large
//! messages run the RTS/CTS rendezvous with zero-copy NIC transfers —
//! the standard MPICH/OpenMPI structure the paper benchmarks against.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;

use accl_cclo::command::{CollOp, DataLoc};
use accl_cclo::firmware::{BufRef, DmpInstr, FirmwareTable, FwEnv, FwOp, SlotDst, SlotSrc};
use accl_cclo::msg::{DType, ReduceFn};
use accl_cclo::plugins;
use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, SpanId};

use crate::nic::{MpiWire, NicDeliver, NicSend};
use crate::tuning::MpiConfig;

/// One collective invocation.
#[derive(Debug, Clone)]
pub struct MpiCall {
    /// The collective.
    pub op: CollOp,
    /// Element count (MPI semantics).
    pub count: u64,
    /// Element type.
    pub dtype: DType,
    /// Root rank.
    pub root: u32,
    /// Reduction function.
    pub func: ReduceFn,
    /// This rank's input data.
    pub src: Vec<u8>,
    /// Bytes of output space.
    pub dst_len: usize,
}

/// One step of an MPI rank's program.
#[derive(Debug, Clone)]
pub enum MpiOp {
    /// A collective call.
    Coll(MpiCall),
    /// Local computation.
    Compute(Dur),
}

/// Completion record of one program step.
#[derive(Debug, Clone, Copy)]
pub struct MpiRecord {
    /// Step index.
    pub index: usize,
    /// Start time.
    pub started: Time,
    /// Completion time.
    pub finished: Time,
}

/// Ports of the [`MpiProcess`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Program start.
    pub const START: PortId = PortId(0);
    /// NIC deliveries.
    pub const NIC_RX: PortId = PortId(1);
    /// CPU work-item completion.
    pub const CPU: PortId = PortId(2);
}

/// A pending (blocked) instruction.
#[derive(Debug, Clone)]
struct Pending {
    instr: DmpInstr,
    /// Whether this receive already acknowledged a rendezvous RTS (at most
    /// one CTS per posted receive).
    cts_sent: bool,
}

/// A CPU work item whose cost has been paid; effects apply on expiry.
#[derive(Debug)]
enum CpuWork {
    /// Finish executing an instruction (apply its effects).
    Exec(DmpInstr),
    /// Send a CTS for a matched rendezvous.
    SendCts {
        /// Peer to acknowledge.
        src: u32,
        /// Matched tag.
        tag: u64,
    },
    /// Rendezvous data transmission after CTS.
    SendRndzvData {
        /// Destination rank.
        dst: u32,
        /// Tag.
        tag: u64,
        /// Payload.
        data: Bytes,
    },
    /// A `Compute` step finished.
    ComputeDone,
}

/// The software MPI rank component.
pub struct MpiProcess {
    cfg: MpiConfig,
    rank: u32,
    size: u32,
    nic_tx: Endpoint,
    firmware: FirmwareTable,
    program: VecDeque<MpiOp>,
    records: Vec<MpiRecord>,
    index: usize,
    step_started: Time,
    running: bool,
    finished_at: Option<Time>,
    call_seq: u64,
    // Current collective state.
    ops: VecDeque<FwOp>,
    pending: Vec<Pending>,
    src: Vec<u8>,
    dst: Vec<u8>,
    scratch: Vec<u8>,
    env: Option<FwEnv>,
    /// Earliest instant the (single) CPU core is free.
    cpu_free: Time,
    outstanding_cpu: u32,
    /// The active collective's root span.
    coll_span: SpanId,
    // Pt2pt matching state.
    arrived: BTreeMap<(u32, u64), VecDeque<Bytes>>,
    rts_seen: BTreeMap<(u32, u64), VecDeque<u64>>,
    cts_waiting: BTreeMap<(u32, u64), VecDeque<Bytes>>,
}

impl MpiProcess {
    /// Creates a rank of a `size`-rank job.
    pub fn new(
        cfg: MpiConfig,
        rank: u32,
        size: u32,
        nic_tx: Endpoint,
        program: Vec<MpiOp>,
    ) -> Self {
        MpiProcess {
            cfg,
            rank,
            size,
            nic_tx,
            firmware: FirmwareTable::stock(),
            program: program.into(),
            records: Vec::new(),
            index: 0,
            step_started: Time::ZERO,
            running: false,
            finished_at: None,
            call_seq: 0,
            ops: VecDeque::new(),
            pending: Vec::new(),
            src: Vec::new(),
            dst: Vec::new(),
            scratch: Vec::new(),
            env: None,
            cpu_free: Time::ZERO,
            outstanding_cpu: 0,
            coll_span: SpanId::NONE,
            arrived: BTreeMap::new(),
            rts_seen: BTreeMap::new(),
            cts_waiting: BTreeMap::new(),
        }
    }

    /// Per-step records after a run.
    pub fn records(&self) -> &[MpiRecord] {
        &self.records
    }

    /// When the program finished.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    /// Output buffer of the most recent collective.
    pub fn dst(&self) -> &[u8] {
        &self.dst
    }

    fn wire_tag(&self, tag: u64) -> u64 {
        (self.call_seq << 40) | tag
    }

    /// Charges `cost` of CPU time (serialized on the rank's single core)
    /// and schedules `work` at its end.
    fn cpu_defer(&mut self, ctx: &mut Ctx<'_>, cost: Dur, work: CpuWork) {
        let start = self.cpu_free.max(ctx.now());
        let end = start + cost;
        self.cpu_free = end;
        self.outstanding_cpu += 1;
        ctx.stats().add("mpi.cpu_ps", cost.as_ps());
        if ctx.spans_enabled() {
            let kind = match &work {
                CpuWork::Exec(_) => "exec",
                CpuWork::SendCts { .. } => "cts",
                CpuWork::SendRndzvData { .. } => "rndzv_data",
                CpuWork::ComputeDone => "compute",
            };
            ctx.span_interval_attrs(
                "mpi.cpu",
                self.coll_span,
                start,
                end,
                &[Attr {
                    key: "kind",
                    value: AttrValue::Str(kind),
                }],
            );
        }
        ctx.send_self(ports::CPU, end.since(ctx.now()), work);
    }

    fn next_step(&mut self, ctx: &mut Ctx<'_>) {
        self.step_started = ctx.now();
        let Some(op) = self.program.front().cloned() else {
            self.running = false;
            self.finished_at = Some(ctx.now());
            return;
        };
        match op {
            MpiOp::Compute(d) => {
                self.cpu_defer(ctx, d, CpuWork::ComputeDone);
            }
            MpiOp::Coll(call) => {
                self.begin_collective(ctx, call);
            }
        }
    }

    fn begin_collective(&mut self, ctx: &mut Ctx<'_>, call: MpiCall) {
        let bytes = call.count * call.dtype.size() as u64;
        ctx.stats().add("mpi.colls", 1);
        if ctx.spans_enabled() {
            self.coll_span = ctx.span_begin_attrs(
                "mpi.coll",
                SpanId::NONE,
                &[
                    Attr {
                        key: "op",
                        value: AttrValue::Str(call.op.name()),
                    },
                    Attr {
                        key: "bytes",
                        value: AttrValue::Bytes(bytes),
                    },
                    Attr {
                        key: "rank",
                        value: AttrValue::U64(u64::from(self.rank)),
                    },
                ],
            );
        }
        let env = FwEnv {
            rank: self.rank,
            size: self.size,
            count: call.count,
            dtype: call.dtype,
            func: call.func,
            root: call.root,
            bytes,
            eager: true, // software rendezvous handled per message below
            algorithm: self.cfg.algorithm(call.op, bytes, self.size),
            src: DataLoc::None,
            dst: DataLoc::None,
        };
        let schedule = self.firmware.schedule(call.op, &env);
        self.src = call.src;
        self.dst = vec![0; call.dst_len];
        self.scratch = vec![0; schedule.scratch_bytes as usize];
        self.ops = schedule.ops.into();
        self.env = Some(env);
        self.try_progress(ctx);
    }

    fn buf(&self, r: BufRef) -> &Vec<u8> {
        match r {
            BufRef::Src => &self.src,
            BufRef::Dst => &self.dst,
            BufRef::Scratch => &self.scratch,
        }
    }

    fn read_buf(&self, r: BufRef, off: u64, len: u64) -> Bytes {
        let b = self.buf(r);
        Bytes::copy_from_slice(&b[off as usize..(off + len) as usize])
    }

    fn write_buf(&mut self, r: BufRef, off: u64, data: &[u8]) {
        let b = match r {
            BufRef::Src => &mut self.src,
            BufRef::Dst => &mut self.dst,
            BufRef::Scratch => &mut self.scratch,
        };
        b[off as usize..off as usize + data.len()].copy_from_slice(data);
    }

    /// Whether an instruction's network inputs are available.
    fn inputs_ready(&self, instr: &DmpInstr) -> bool {
        for slot in [Some(&instr.op0), instr.op1.as_ref()].into_iter().flatten() {
            if let SlotSrc::EagerRx { peer, tag } = *slot {
                let key = (peer, self.wire_tag(tag));
                let ready = self.arrived.get(&key).is_some_and(|q| !q.is_empty());
                if !ready {
                    return false;
                }
            }
        }
        true
    }

    /// Issues at most one CTS per pending receive that matches an RTS.
    fn match_rts(&mut self, ctx: &mut Ctx<'_>) {
        let mut to_cts: Vec<(u32, u64)> = Vec::new();
        let call_seq = self.call_seq;
        for p in &mut self.pending {
            if p.cts_sent {
                continue;
            }
            for slot in [Some(&p.instr.op0), p.instr.op1.as_ref()]
                .into_iter()
                .flatten()
            {
                if let SlotSrc::EagerRx { peer, tag } = *slot {
                    let key = (peer, (call_seq << 40) | tag);
                    if self
                        .rts_seen
                        .get_mut(&key)
                        .and_then(VecDeque::pop_front)
                        .is_some()
                    {
                        p.cts_sent = true;
                        to_cts.push(key);
                    }
                }
            }
        }
        for (src, tag) in to_cts {
            let cost = self.cfg.rndzv_sw();
            self.cpu_defer(ctx, cost, CpuWork::SendCts { src, tag });
        }
    }

    /// Drives the schedule forward.
    fn try_progress(&mut self, ctx: &mut Ctx<'_>) {
        if self.env.is_none() {
            return;
        }
        self.match_rts(ctx);
        // Retry pending instructions.
        let pending = core::mem::take(&mut self.pending);
        for p in pending {
            if self.inputs_ready(&p.instr) {
                self.start_exec(ctx, p.instr);
            } else {
                self.pending.push(p);
            }
        }
        // Issue new ops.
        loop {
            let Some(op) = self.ops.front().cloned() else {
                let rndzv_unsent = self.cts_waiting.values().any(|q| !q.is_empty());
                if self.pending.is_empty() && self.outstanding_cpu == 0 && !rndzv_unsent {
                    self.finish_collective(ctx);
                }
                return;
            };
            match op {
                FwOp::WaitAll => {
                    if !self.pending.is_empty() || self.outstanding_cpu > 0 {
                        return;
                    }
                    self.ops.pop_front();
                }
                FwOp::Dmp(instr) => {
                    self.ops.pop_front();
                    if self.inputs_ready(&instr) {
                        self.start_exec(ctx, instr);
                    } else {
                        self.pending.push(Pending {
                            instr,
                            cts_sent: false,
                        });
                        self.match_rts(ctx);
                    }
                }
                FwOp::RndzvRecvInit { .. } | FwOp::WaitRndzvDone { .. } => {
                    unreachable!("software MPI schedules are built eager")
                }
            }
        }
    }

    /// Charges the instruction's CPU cost; effects apply at expiry.
    fn start_exec(&mut self, ctx: &mut Ctx<'_>, instr: DmpInstr) {
        let mut cost = Dur::ZERO;
        let is_send = matches!(instr.res, SlotDst::EagerTx { .. });
        let has_net_in = matches!(instr.op0, SlotSrc::EagerRx { .. })
            || matches!(instr.op1, Some(SlotSrc::EagerRx { .. }));
        if has_net_in {
            cost += self.cfg.overhead_recv();
            if instr.len <= self.cfg.eager_threshold {
                // Eager receive: copy out of the bounce buffer.
                cost += self.cfg.memcpy_time(instr.len);
            }
        }
        if is_send {
            cost += self.cfg.overhead_send();
            if instr.len <= self.cfg.eager_threshold {
                // Eager send: copy into the bounce buffer.
                cost += self.cfg.memcpy_time(instr.len);
            } else {
                cost += self.cfg.rndzv_sw();
            }
        }
        if instr.op1.is_some() {
            cost += self.cfg.combine_time(instr.len);
        }
        if !is_send && !has_net_in {
            // Pure local move.
            cost += self.cfg.memcpy_time(instr.len);
        }
        self.cpu_defer(ctx, cost, CpuWork::Exec(instr));
    }

    /// Applies an instruction's effects (inputs consumed now).
    fn apply_exec(&mut self, ctx: &mut Ctx<'_>, instr: DmpInstr) {
        let fetch = |p: &mut Self, slot: &SlotSrc| -> Bytes {
            match *slot {
                SlotSrc::Mem(buf, off) => p.read_buf(buf, off, instr.len),
                SlotSrc::EagerRx { peer, tag } => {
                    let key = (peer, p.wire_tag(tag));
                    let msg = p
                        .arrived
                        .get_mut(&key)
                        .and_then(VecDeque::pop_front)
                        .expect("inputs were ready");
                    assert_eq!(msg.len() as u64, instr.len, "message length mismatch");
                    msg
                }
                SlotSrc::Stream => panic!("software MPI has no kernel streams"),
            }
        };
        let a = fetch(self, &instr.op0);
        let env = self.env.as_ref().expect("no active collective");
        let (dtype, func) = (env.dtype, env.func);
        let out = match instr.op1 {
            None => a,
            Some(op1) => {
                let b = fetch(self, &op1);
                plugins::combine(dtype, func, &a, &b)
            }
        };
        match instr.res {
            SlotDst::Mem(buf, off) => self.write_buf(buf, off, &out),
            SlotDst::EagerTx { peer, tag } => {
                let tag = self.wire_tag(tag);
                if instr.len <= self.cfg.eager_threshold {
                    ctx.send(
                        self.nic_tx,
                        Dur::ZERO,
                        NicSend {
                            dst: peer,
                            msg: MpiWire::Eager { tag, data: out },
                            span: self.coll_span,
                        },
                    );
                } else {
                    // Rendezvous: RTS now, data after CTS.
                    ctx.send(
                        self.nic_tx,
                        Dur::ZERO,
                        NicSend {
                            dst: peer,
                            msg: MpiWire::Rts {
                                tag,
                                len: instr.len,
                            },
                            span: self.coll_span,
                        },
                    );
                    self.cts_waiting
                        .entry((peer, tag))
                        .or_default()
                        .push_back(out);
                }
            }
            SlotDst::RndzvTx { .. } => unreachable!("software MPI schedules are eager"),
            SlotDst::Stream => panic!("software MPI has no kernel streams"),
        }
    }

    fn finish_collective(&mut self, ctx: &mut Ctx<'_>) {
        self.env = None;
        self.call_seq += 1;
        ctx.span_end(self.coll_span);
        self.coll_span = SpanId::NONE;
        self.complete_step(ctx);
    }

    fn complete_step(&mut self, ctx: &mut Ctx<'_>) {
        self.program.pop_front();
        self.records.push(MpiRecord {
            index: self.index,
            started: self.step_started,
            finished: ctx.now(),
        });
        self.index += 1;
        self.next_step(ctx);
    }
}

impl Component for MpiProcess {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::START => {
                payload.downcast::<()>();
                assert!(!self.running, "MPI program started twice");
                self.running = true;
                self.next_step(ctx);
            }
            ports::NIC_RX => {
                let d = payload.downcast::<NicDeliver>();
                match d.msg {
                    MpiWire::Eager { tag, data } | MpiWire::RndzvData { tag, data } => {
                        self.arrived
                            .entry((d.src, tag))
                            .or_default()
                            .push_back(data);
                    }
                    MpiWire::Rts { tag, len } => {
                        self.rts_seen
                            .entry((d.src, tag))
                            .or_default()
                            .push_back(len);
                    }
                    MpiWire::Cts { tag } => {
                        let data = self
                            .cts_waiting
                            .get_mut(&(d.src, tag))
                            .and_then(VecDeque::pop_front)
                            .expect("CTS without a waiting rendezvous send");
                        let cost = self.cfg.rndzv_sw();
                        self.cpu_defer(
                            ctx,
                            cost,
                            CpuWork::SendRndzvData {
                                dst: d.src,
                                tag,
                                data,
                            },
                        );
                    }
                }
                self.try_progress(ctx);
            }
            ports::CPU => {
                self.outstanding_cpu -= 1;
                match payload.downcast::<CpuWork>() {
                    CpuWork::Exec(instr) => {
                        self.apply_exec(ctx, instr);
                    }
                    CpuWork::SendCts { src, tag } => {
                        ctx.send(
                            self.nic_tx,
                            Dur::ZERO,
                            NicSend {
                                dst: src,
                                msg: MpiWire::Cts { tag },
                                span: self.coll_span,
                            },
                        );
                    }
                    CpuWork::SendRndzvData { dst, tag, data } => {
                        ctx.send(
                            self.nic_tx,
                            Dur::ZERO,
                            NicSend {
                                dst,
                                msg: MpiWire::RndzvData { tag, data },
                                span: self.coll_span,
                            },
                        );
                    }
                    CpuWork::ComputeDone => {
                        self.complete_step(ctx);
                        return;
                    }
                }
                self.try_progress(ctx);
            }
            other => panic!("MPI process has no port {other:?}"),
        }
    }

    fn state_digest(&self) -> Option<u64> {
        // Program position, CPU horizon, per-step timings, and the
        // pt2pt matching populations (BTreeMap order is canonical).
        let mut h = 0u64;
        let mut fold = |v: u64| accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        for v in [
            self.index as u64,
            self.call_seq,
            u64::from(self.running),
            self.finished_at.map_or(0, |t| t.as_ps()),
            self.cpu_free.as_ps(),
            u64::from(self.outstanding_cpu),
        ] {
            fold(v);
        }
        for r in &self.records {
            fold(r.started.as_ps());
            fold(r.finished.as_ps());
        }
        for (map_salt, len) in [
            (1u64, self.arrived.len()),
            (2, self.rts_seen.len()),
            (3, self.cts_waiting.len()),
        ] {
            fold(map_salt);
            fold(len as u64);
        }
        Some(h)
    }
}
