//! The software-MPI baseline cluster: CPU nodes + commodity NICs.

use accl_net::{NetConfig, Network, NodeAddr};
use accl_sim::prelude::*;

use crate::nic::{ports as nic_ports, SwNic};
use crate::process::{ports as proc_ports, MpiOp, MpiProcess, MpiRecord};
use crate::tuning::MpiConfig;

/// A cluster of software MPI ranks.
pub struct MpiCluster {
    /// The simulator.
    pub sim: Simulator,
    cfg: MpiConfig,
    net: Network,
    nics: Vec<ComponentId>,
    procs: Vec<Option<ComponentId>>,
}

fn identity_addr(i: u32) -> NodeAddr {
    NodeAddr(i)
}

impl MpiCluster {
    /// Builds an `n`-rank cluster with the given MPI cost model.
    pub fn build(n: usize, cfg: MpiConfig, seed: u64) -> MpiCluster {
        let mut sim = Simulator::new(seed);
        let net = Network::build(&mut sim, NetConfig::default(), n);
        let nics = (0..n)
            .map(|i| sim.reserve(format!("mpi{i}.nic")))
            .collect::<Vec<_>>();
        for (i, &nic) in nics.iter().enumerate() {
            net.attach_rx(&mut sim, i, Endpoint::new(nic, nic_ports::NET_RX));
        }
        MpiCluster {
            sim,
            cfg,
            net,
            nics,
            procs: vec![None; n],
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.nics.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.nics.is_empty()
    }

    /// Runs one program per rank to completion; returns per-rank records.
    ///
    /// May be called repeatedly; each call installs fresh rank processes.
    pub fn run_programs(&mut self, programs: Vec<Vec<MpiOp>>) -> Vec<Vec<MpiRecord>> {
        assert_eq!(programs.len(), self.len(), "one program per rank");
        let n = self.len();
        let start = self.sim.now();
        let procs: Vec<ComponentId> = programs
            .into_iter()
            .enumerate()
            .map(|(i, prog)| {
                let proc = self.sim.add(
                    format!("mpi{i}.proc.{}", start.as_ps()),
                    MpiProcess::new(
                        self.cfg,
                        i as u32,
                        n as u32,
                        Endpoint::new(self.nics[i], nic_ports::TX),
                        prog,
                    ),
                );
                // (Re)wire the NIC delivery path to the new process.
                let nic = SwNic::new(
                    i as u32,
                    self.net.tx(i),
                    Endpoint::new(proc, proc_ports::NIC_RX),
                    identity_addr,
                    self.cfg.nic_gbps,
                    Dur::from_ns(self.cfg.nic_base_latency_ns),
                    self.cfg.mtu,
                );
                if self.procs[i].is_none() {
                    self.sim.install(self.nics[i], nic);
                } else {
                    *self.sim.component_mut::<SwNic>(self.nics[i]) = nic;
                }
                self.procs[i] = Some(proc);
                self.sim
                    .post(Endpoint::new(proc, proc_ports::START), start, ());
                proc
            })
            .collect();
        let outcome = self.sim.run();
        assert_eq!(outcome, RunOutcome::Drained, "MPI simulation stalled");
        procs
            .iter()
            .map(|&p| {
                let proc = self.sim.component::<MpiProcess>(p);
                assert!(
                    proc.finished_at().is_some(),
                    "an MPI rank did not finish (deadlock?)"
                );
                proc.records().to_vec()
            })
            .collect()
    }

    /// Runs a single collective on every rank; returns per-rank latency.
    pub fn collective(&mut self, calls: Vec<crate::process::MpiCall>) -> Vec<Dur> {
        let programs = calls.into_iter().map(|c| vec![MpiOp::Coll(c)]).collect();
        self.run_programs(programs)
            .into_iter()
            .map(|r| r[0].finished.since(r[0].started))
            .collect()
    }

    /// The output buffer of rank `i` after the last run.
    pub fn dst(&self, i: usize) -> Vec<u8> {
        let p = self.procs[i].expect("rank has not run yet");
        self.sim.component::<MpiProcess>(p).dst().to_vec()
    }
}
