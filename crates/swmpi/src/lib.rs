//! # accl-swmpi — the software MPI baseline
//!
//! A cost-modelled reproduction of the paper's comparison systems: OpenMPI
//! 4.1 + UCX over 100 Gb/s RoCE and MPICH 4.0 over kernel TCP (§5). Ranks
//! are simulated CPU processes with commodity NICs on the same switched
//! fabric as the FPGAs; software costs (per-call overheads, bounce-buffer
//! copies, rendezvous handshakes, SIMD combines) are charged on a single
//! serialized core, and collective algorithms are selected with the
//! fine-grained message-size/rank-count heuristics the paper describes for
//! Fig. 12.

#![warn(missing_docs)]

pub mod cluster;
pub mod nic;
pub mod process;
pub mod tuning;

pub use cluster::MpiCluster;
pub use nic::{MpiWire, NicDeliver, NicSend, SwNic};
pub use process::{MpiCall, MpiOp, MpiProcess, MpiRecord};
pub use tuning::{MpiConfig, MpiFlavor};
