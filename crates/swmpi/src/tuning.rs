//! Software-MPI configuration: flavors, costs, and the fine-grained
//! algorithm selection the paper credits for MPI's competitiveness in some
//! H2H scenarios (§5, Fig. 12).

use accl_cclo::command::CollOp;
use accl_cclo::config::Algorithm;
use accl_sim::time::Dur;
use serde::{Deserialize, Serialize};

/// Which MPI implementation is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpiFlavor {
    /// OpenMPI 4.1 + UCX over RoCE (RDMA-capable NIC path).
    OpenMpiRdma,
    /// MPICH 4.0 over kernel TCP sockets.
    MpichTcp,
}

/// Cost model of one software MPI installation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MpiConfig {
    /// Implementation flavor.
    pub flavor: MpiFlavor,
    /// Effective NIC bandwidth (kernel TCP is CPU-copy limited).
    pub nic_gbps: f64,
    /// NIC base latency per message, ns.
    pub nic_base_latency_ns: u64,
    /// Wire MTU.
    pub mtu: u32,
    /// Software overhead per send posting, µs.
    pub overhead_send_us: f64,
    /// Software overhead per receive completion, µs.
    pub overhead_recv_us: f64,
    /// Eager/rendezvous threshold, bytes.
    pub eager_threshold: u64,
    /// Host memcpy bandwidth (eager copies), Gb/s.
    pub memcpy_gbps: f64,
    /// Single-core SIMD reduction bandwidth, Gb/s.
    pub combine_gbps: f64,
    /// Software processing per rendezvous handshake message, µs.
    pub rndzv_sw_us: f64,
}

impl MpiConfig {
    /// OpenMPI + UCX over 100 Gb/s RoCE (the paper's RDMA baseline).
    pub fn openmpi_rdma() -> Self {
        MpiConfig {
            flavor: MpiFlavor::OpenMpiRdma,
            nic_gbps: 97.0,
            nic_base_latency_ns: 600,
            mtu: 4096,
            overhead_send_us: 0.7,
            overhead_recv_us: 0.7,
            eager_threshold: 16 * 1024,
            memcpy_gbps: 88.0,
            combine_gbps: 160.0,
            rndzv_sw_us: 0.8,
        }
    }

    /// MPICH over kernel TCP (the paper's TCP baseline).
    pub fn mpich_tcp() -> Self {
        MpiConfig {
            flavor: MpiFlavor::MpichTcp,
            nic_gbps: 55.0,
            nic_base_latency_ns: 4_000,
            mtu: 8960,
            overhead_send_us: 4.0,
            overhead_recv_us: 4.0,
            eager_threshold: 64 * 1024,
            memcpy_gbps: 88.0,
            combine_gbps: 160.0,
            rndzv_sw_us: 4.0,
        }
    }

    /// Send-posting overhead as a duration.
    pub fn overhead_send(&self) -> Dur {
        Dur::from_us_f64(self.overhead_send_us)
    }

    /// Receive-completion overhead as a duration.
    pub fn overhead_recv(&self) -> Dur {
        Dur::from_us_f64(self.overhead_recv_us)
    }

    /// Rendezvous handshake processing as a duration.
    pub fn rndzv_sw(&self) -> Dur {
        Dur::from_us_f64(self.rndzv_sw_us)
    }

    /// Time to memcpy `bytes` on the host.
    pub fn memcpy_time(&self, bytes: u64) -> Dur {
        Dur::for_bytes_gbps(bytes, self.memcpy_gbps)
    }

    /// Time to combine `bytes` with SIMD.
    pub fn combine_time(&self, bytes: u64) -> Dur {
        Dur::for_bytes_gbps(bytes, self.combine_gbps)
    }

    /// The implementation's algorithm choice for `op` at `bytes` per block
    /// over `ranks` ranks — the fine-grained selection of Fig. 12: three
    /// regimes for small reduces (all-to-one < 4 ranks, ring 4–7, binomial
    /// at 8+) and two for large (all-to-one ≤ 3, binomial above).
    pub fn algorithm(&self, op: CollOp, bytes: u64, ranks: u32) -> Algorithm {
        match op {
            CollOp::Reduce | CollOp::Gather => {
                if bytes <= 32 * 1024 {
                    if ranks < 4 {
                        Algorithm::OneToAll
                    } else if ranks < 8 {
                        Algorithm::Ring
                    } else {
                        Algorithm::BinaryTree
                    }
                } else if ranks <= 3 {
                    Algorithm::OneToAll
                } else {
                    Algorithm::BinaryTree
                }
            }
            CollOp::Bcast => {
                if ranks <= 4 {
                    Algorithm::OneToAll
                } else {
                    Algorithm::RecursiveDoubling
                }
            }
            CollOp::AllReduce => {
                if bytes <= 32 * 1024 {
                    Algorithm::OneToAll
                } else {
                    Algorithm::BinaryTree
                }
            }
            CollOp::AllGather | CollOp::ReduceScatter => Algorithm::Ring,
            _ => Algorithm::Linear,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_selection_has_three_small_regimes() {
        let cfg = MpiConfig::openmpi_rdma();
        assert_eq!(
            cfg.algorithm(CollOp::Reduce, 8 << 10, 2),
            Algorithm::OneToAll
        );
        assert_eq!(cfg.algorithm(CollOp::Reduce, 8 << 10, 5), Algorithm::Ring);
        assert_eq!(
            cfg.algorithm(CollOp::Reduce, 8 << 10, 8),
            Algorithm::BinaryTree
        );
        assert_eq!(
            cfg.algorithm(CollOp::Reduce, 128 << 10, 3),
            Algorithm::OneToAll
        );
        assert_eq!(
            cfg.algorithm(CollOp::Reduce, 128 << 10, 4),
            Algorithm::BinaryTree
        );
    }

    #[test]
    fn tcp_flavor_is_slower_everywhere() {
        let rdma = MpiConfig::openmpi_rdma();
        let tcp = MpiConfig::mpich_tcp();
        assert!(tcp.nic_gbps < rdma.nic_gbps);
        assert!(tcp.overhead_send() > rdma.overhead_send());
        assert!(tcp.nic_base_latency_ns > rdma.nic_base_latency_ns);
    }

    #[test]
    fn cost_helpers_scale_linearly() {
        let cfg = MpiConfig::openmpi_rdma();
        assert_eq!(
            cfg.memcpy_time(2_000_000).as_ps(),
            2 * cfg.memcpy_time(1_000_000).as_ps()
        );
        assert!(cfg.combine_time(1 << 20) < cfg.memcpy_time(1 << 20) * 2);
    }
}
