//! Commodity NIC model for the software-MPI baseline.
//!
//! Each CPU in the evaluation cluster has a 100 Gb/s Mellanox NIC on the
//! same switched fabric as the FPGAs. The model segments messages at the
//! MTU, serializes them through the node's network port, and reassembles at
//! the receiver — reliability is assumed (lossless RoCE / kernel TCP
//! recovery is not the bottleneck in any baseline experiment). A
//! configurable bandwidth cap below line rate models the kernel-TCP path's
//! CPU copy limits.

use std::collections::BTreeMap;

use bytes::Bytes;

use accl_net::{Frame, NodeAddr};
use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, SpanId};

/// MPI wire messages carried by the NIC.
#[derive(Debug, Clone)]
pub enum MpiWire {
    /// Eager message: tag + payload.
    Eager {
        /// Match tag.
        tag: u64,
        /// The payload.
        data: Bytes,
    },
    /// Rendezvous request-to-send.
    Rts {
        /// Match tag.
        tag: u64,
        /// Message length.
        len: u64,
    },
    /// Rendezvous clear-to-send.
    Cts {
        /// Match tag.
        tag: u64,
    },
    /// Rendezvous payload.
    RndzvData {
        /// Match tag.
        tag: u64,
        /// The payload.
        data: Bytes,
    },
}

/// A fully reassembled arrival, delivered to the MPI process.
#[derive(Debug, Clone)]
pub struct NicDeliver {
    /// Sending node (cluster index).
    pub src: u32,
    /// The message.
    pub msg: MpiWire,
}

/// A transmission request from the MPI process.
#[derive(Debug, Clone)]
pub struct NicSend {
    /// Destination node (cluster index).
    pub dst: u32,
    /// The message.
    pub msg: MpiWire,
    /// Causal parent for the NIC's `mpi.nic.tx` span ([`SpanId::NONE`]
    /// when the caller does not trace).
    pub span: SpanId,
}

/// One segment on the wire.
#[derive(Debug, Clone)]
struct Segment {
    src_node: u32,
    msg_id: u64,
    offset: u64,
    total: u64,
    tag: u64,
    kind: u8, // 0=eager, 1=rts, 2=cts, 3=data
    len_field: u64,
    data: Bytes,
}

/// Ports of the [`SwNic`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Transmission requests ([`super::NicSend`]).
    pub const TX: PortId = PortId(0);
    /// Frames from the fabric.
    pub const NET_RX: PortId = PortId(1);
}

/// Reassembly state: (bytes received, pieces, the head segment's metadata).
type RxEntry = (u64, Vec<(u64, Bytes)>, Segment);

/// The commodity NIC component.
pub struct SwNic {
    node: u32,
    net_tx: Endpoint,
    deliver_to: Endpoint,
    addr_of: fn(u32) -> NodeAddr,
    mtu: u32,
    /// Effective bandwidth cap (kernel TCP < line rate).
    shaper: Pipe,
    /// Base latency per message (NIC/doorbell processing).
    base_latency: Dur,
    next_msg_id: u64,
    /// Reassembly: (src, msg_id) → (received, segments).
    rx: BTreeMap<(u32, u64), RxEntry>,
    messages_sent: u64,
}

impl SwNic {
    /// Creates a NIC for cluster node `node`.
    ///
    /// `addr_of` maps cluster node indices to fabric addresses (the MPI
    /// cluster may share a fabric with FPGAs at different port numbers).
    pub fn new(
        node: u32,
        net_tx: Endpoint,
        deliver_to: Endpoint,
        addr_of: fn(u32) -> NodeAddr,
        max_gbps: f64,
        base_latency: Dur,
        mtu: u32,
    ) -> Self {
        SwNic {
            node,
            net_tx,
            deliver_to,
            addr_of,
            mtu,
            shaper: Pipe::gbps(max_gbps),
            base_latency,
            next_msg_id: 0,
            rx: BTreeMap::new(),
            messages_sent: 0,
        }
    }

    /// Messages transmitted so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, req: NicSend) {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        self.messages_sent += 1;
        let (kind, tag, len_field, data) = match req.msg {
            MpiWire::Eager { tag, data } => (0u8, tag, 0, data),
            MpiWire::Rts { tag, len } => (1, tag, len, Bytes::new()),
            MpiWire::Cts { tag } => (2, tag, 0, Bytes::new()),
            MpiWire::RndzvData { tag, data } => (3, tag, 0, data),
        };
        let total = data.len() as u64;
        ctx.stats().add("mpi.nic.msgs", 1);
        ctx.stats().add("mpi.nic.bytes", total);
        let mut tx_span = SpanId::NONE;
        if ctx.spans_enabled() {
            tx_span = ctx.span_begin_attrs(
                "mpi.nic.tx",
                req.span,
                &[Attr {
                    key: "bytes",
                    value: AttrValue::Bytes(total),
                }],
            );
        }
        let dst_addr = (self.addr_of)(req.dst);
        let mtu = u64::from(self.mtu);
        let mut off = 0u64;
        let mut last_ready = ctx.now();
        loop {
            let n = mtu.min(total - off);
            let seg = Segment {
                src_node: self.node,
                msg_id,
                offset: off,
                total,
                tag,
                kind,
                len_field,
                data: data.slice(off as usize..(off + n) as usize),
            };
            let (_, ready) = self
                .shaper
                .reserve(ctx.now() + self.base_latency, n.max(64));
            last_ready = last_ready.max(ready);
            ctx.send_at(
                self.net_tx,
                ready,
                Frame::new(NodeAddr(0), dst_addr, n as u32 + 16, seg).with_span(tx_span),
            );
            off += n;
            if off >= total {
                break;
            }
        }
        ctx.span_end_at(tx_span, last_ready);
    }

    fn receive(&mut self, ctx: &mut Ctx<'_>, seg: Segment, span: SpanId) {
        let key = (seg.src_node, seg.msg_id);
        let entry = self
            .rx
            .entry(key)
            .or_insert_with(|| (0, Vec::new(), seg.clone()));
        entry.0 += seg.data.len() as u64;
        if !seg.data.is_empty() {
            entry.1.push((seg.offset, seg.data.clone()));
        }
        if entry.0 < seg.total {
            return;
        }
        let (_, mut pieces, head) = self.rx.remove(&key).unwrap();
        pieces.sort_by_key(|(off, _)| *off);
        let mut buf = Vec::with_capacity(head.total as usize);
        for (off, piece) in pieces {
            debug_assert_eq!(off as usize, buf.len());
            buf.extend_from_slice(&piece);
        }
        let data = Bytes::from(buf);
        let msg = match head.kind {
            0 => MpiWire::Eager {
                tag: head.tag,
                data,
            },
            1 => MpiWire::Rts {
                tag: head.tag,
                len: head.len_field,
            },
            2 => MpiWire::Cts { tag: head.tag },
            3 => MpiWire::RndzvData {
                tag: head.tag,
                data,
            },
            k => panic!("corrupt NIC segment kind {k}"),
        };
        if ctx.spans_enabled() {
            ctx.span_instant_attrs(
                "mpi.nic.rx",
                span,
                &[Attr {
                    key: "bytes",
                    value: AttrValue::Bytes(head.total),
                }],
            );
        }
        ctx.send(
            self.deliver_to,
            self.base_latency,
            NicDeliver {
                src: head.src_node,
                msg,
            },
        );
    }
}

impl Component for SwNic {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::TX => {
                let req = payload.downcast::<NicSend>();
                self.send(ctx, req);
            }
            ports::NET_RX => {
                let frame = payload.downcast::<Frame>();
                let span = frame.span;
                let seg = frame.body.downcast::<Segment>();
                self.receive(ctx, seg, span);
            }
            other => panic!("NIC has no port {other:?}"),
        }
    }

    fn state_digest(&self) -> Option<u64> {
        let mut h = 0u64;
        for v in [
            self.messages_sent,
            self.next_msg_id,
            self.rx.len() as u64,
            self.shaper.next_free().as_ps(),
        ] {
            accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accl_net::{NetConfig, Network};

    fn addr_of(i: u32) -> NodeAddr {
        NodeAddr(i)
    }

    fn world(n: usize, max_gbps: f64) -> (Simulator, Vec<ComponentId>, Vec<ComponentId>) {
        let mut sim = Simulator::new(0);
        let net = Network::build(&mut sim, NetConfig::default(), n);
        let mut nics = Vec::new();
        let mut sinks = Vec::new();
        for i in 0..n {
            let sink = sim.add(format!("sink{i}"), Mailbox::<NicDeliver>::new());
            let nic = sim.add(
                format!("nic{i}"),
                SwNic::new(
                    i as u32,
                    net.tx(i),
                    Endpoint::of(sink),
                    addr_of,
                    max_gbps,
                    Dur::from_ns(600),
                    4096,
                ),
            );
            net.attach_rx(&mut sim, i, Endpoint::new(nic, ports::NET_RX));
            nics.push(nic);
            sinks.push(sink);
        }
        (sim, nics, sinks)
    }

    #[test]
    fn eager_message_roundtrips() {
        let (mut sim, nics, sinks) = world(2, 100.0);
        let data: Vec<u8> = (0..20_000).map(|i| (i % 251) as u8).collect();
        sim.post(
            Endpoint::new(nics[0], ports::TX),
            Time::ZERO,
            NicSend {
                dst: 1,
                msg: MpiWire::Eager {
                    tag: 7,
                    data: Bytes::from(data.clone()),
                },
                span: SpanId::NONE,
            },
        );
        sim.run();
        let mb = sim.component::<Mailbox<NicDeliver>>(sinks[1]);
        assert_eq!(mb.len(), 1);
        let d = &mb.items()[0].1;
        assert_eq!(d.src, 0);
        match &d.msg {
            MpiWire::Eager { tag, data: got } => {
                assert_eq!(*tag, 7);
                assert_eq!(&got[..], &data[..]);
            }
            other => panic!("wrong message {other:?}"),
        }
    }

    #[test]
    fn control_messages_are_cheap_and_ordered() {
        let (mut sim, nics, sinks) = world(2, 100.0);
        sim.post(
            Endpoint::new(nics[0], ports::TX),
            Time::ZERO,
            NicSend {
                dst: 1,
                msg: MpiWire::Rts {
                    tag: 1,
                    len: 1 << 20,
                },
                span: SpanId::NONE,
            },
        );
        sim.run();
        let mb = sim.component::<Mailbox<NicDeliver>>(sinks[1]);
        assert!(matches!(
            mb.items()[0].1.msg,
            MpiWire::Rts { tag: 1, len } if len == 1 << 20
        ));
        // Small control message: ~1.5 us one way.
        assert!(mb.items()[0].0.as_us_f64() < 3.0);
    }

    #[test]
    fn bandwidth_cap_throttles_tcp_flavor() {
        let measure = |gbps: f64| -> f64 {
            let (mut sim, nics, sinks) = world(2, gbps);
            let len = 4 << 20;
            sim.post(
                Endpoint::new(nics[0], ports::TX),
                Time::ZERO,
                NicSend {
                    dst: 1,
                    msg: MpiWire::Eager {
                        tag: 0,
                        data: Bytes::from(vec![1u8; len]),
                    },
                    span: SpanId::NONE,
                },
            );
            sim.run();
            let t = sim
                .component::<Mailbox<NicDeliver>>(sinks[1])
                .last_arrival()
                .unwrap();
            (len as f64) * 8.0 / t.as_ns_f64()
        };
        let fast = measure(97.0);
        let slow = measure(55.0);
        assert!(fast > 90.0, "rdma-class {fast:.1}");
        assert!(slow < 60.0 && slow > 45.0, "tcp-class {slow:.1}");
    }

    #[test]
    fn interleaved_sources_reassemble_correctly() {
        let (mut sim, nics, sinks) = world(3, 100.0);
        for src in 0..2u32 {
            sim.post(
                Endpoint::new(nics[src as usize], ports::TX),
                Time::ZERO,
                NicSend {
                    dst: 2,
                    msg: MpiWire::Eager {
                        tag: u64::from(src),
                        data: Bytes::from(vec![src as u8 + 1; 30_000]),
                    },
                    span: SpanId::NONE,
                },
            );
        }
        sim.run();
        let mb = sim.component::<Mailbox<NicDeliver>>(sinks[2]);
        assert_eq!(mb.len(), 2);
        for (_, d) in mb.items() {
            match &d.msg {
                MpiWire::Eager { data, .. } => {
                    assert!(data.iter().all(|&b| b == d.src as u8 + 1));
                    assert_eq!(data.len(), 30_000);
                }
                other => panic!("wrong message {other:?}"),
            }
        }
    }
}
