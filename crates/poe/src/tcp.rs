//! TCP protocol offload engine.
//!
//! Models the 100 Gb/s hardware TCP stack (EasyNet, refs. 40/85): per-session reliable
//! byte streams with sliding-window flow control, out-of-order reassembly,
//! retransmission (RTO with exponential backoff plus fast retransmit on
//! three duplicate ACKs) and support for up to 1000 concurrent sessions.
//! Messages are framed inside the stream with a length prefix so the engine
//! can present the POE-independent message-oriented meta/data interface
//! upward (paper §4.3: "the meta interfaces contain op code, data length,
//! communication session IDs").

use std::collections::{BTreeMap, VecDeque};

use bytes::{Bytes, BytesMut};

use accl_net::Frame;
use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, FlowId, SpanId};

use crate::iface::{
    ports, PoeRxMeta, PoeSessionError, PoeTxCmd, PoeTxDone, PoeUpward, RxChunk, SessionErrorKind,
    SessionId, SessionTable, StreamChunk, TxCreditGate, TxCreditLeak, TxKind,
};

/// In-stream message header: 8-byte little-endian length prefix.
pub const TCP_MSG_HEADER_BYTES: usize = 8;

/// A TCP data segment PDU.
#[derive(Debug, Clone)]
pub struct TcpSegment {
    /// Receiver-local session.
    pub dst_session: SessionId,
    /// Stream offset of the first payload byte.
    pub seq: u64,
    /// Payload bytes.
    pub data: Bytes,
}

/// A (pure) TCP acknowledgement PDU.
#[derive(Debug, Clone, Copy)]
pub struct TcpAck {
    /// Receiver-local session (the original sender's side).
    pub dst_session: SessionId,
    /// Cumulative acknowledgement: next expected stream offset.
    pub ack: u64,
    /// Advertised receive window, bytes.
    pub window: u64,
}

/// Retransmission timer message (self-addressed).
#[derive(Debug, Clone, Copy)]
struct RtoTimer {
    session: SessionId,
    gen: u64,
}

/// Configuration of the TCP engine.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: u32,
    /// Pipelined per-segment processing latency, ns.
    pub processing_ns: u64,
    /// Advertised receive window, bytes. With window scaling the hardware
    /// stack sustains 100 Gb/s across data-center RTTs; 1 MiB is ample for
    /// the BDP here.
    pub rwnd_bytes: u64,
    /// Initial retransmission timeout, µs.
    pub init_rto_us: u64,
    /// Minimum retransmission timeout, µs.
    pub min_rto_us: u64,
    /// Maximum retransmission timeout, µs.
    pub max_rto_us: u64,
    /// Consecutive RTO expirations without forward progress before the
    /// session is declared dead (fail-stop peer detection). Mirrors Linux
    /// `tcp_retries2`, scaled down to data-center RTOs.
    pub max_retransmits: u32,
    /// Segments coalesced per simulation event (≥ 1).
    ///
    /// With `coalesce = k`, one Tx event carries up to `k` MSS segments in
    /// a single [`Frame`] whose wire occupancy equals the per-segment
    /// schedule (headers are charged per segment, see
    /// [`Frame::with_segments`]). Bytes on the wire, ACK counts and
    /// timing are unchanged; only simulator event counts shrink. The
    /// default of 1 reproduces the historical one-event-per-segment
    /// behaviour.
    pub coalesce: u32,
    /// Verify the frame check sequence at RX and discard corrupted frames
    /// (the hardware MAC's behaviour, always on in practice).
    ///
    /// Exists only so the chaos harness can validate itself: with the
    /// check *disabled*, a corrupted segment is delivered with a flipped
    /// payload byte, which the harness's golden-result invariant must
    /// catch and shrink to a minimal repro.
    pub verify_fcs: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: accl_net::DEFAULT_MTU,
            processing_ns: 100,
            rwnd_bytes: 1 << 20,
            init_rto_us: 100,
            min_rto_us: 25,
            max_rto_us: 10_000,
            max_retransmits: 8,
            coalesce: 1,
            verify_fcs: true,
        }
    }
}

/// Sender-side per-session state.
#[derive(Debug, Default)]
struct TxState {
    snd_una: u64,
    snd_nxt: u64,
    unacked: VecDeque<(u64, Bytes)>,
    pending: VecDeque<Bytes>,
    pending_len: u64,
    peer_rwnd: u64,
    dup_acks: u32,
    srtt_us: Option<f64>,
    rttvar_us: f64,
    rto: Dur,
    timer_gen: u64,
    timer_armed: bool,
    rtt_probe: Option<(u64, Time)>,
    retransmits: u64,
    /// Total bytes offered to this session's stream (headers included).
    pushed: u64,
    /// Tracing only: `(stream offset, span)` marks recording which message
    /// span owns each byte range of the stream, so outgoing segments can be
    /// stamped with their causal parent. Empty when tracing is disabled.
    marks: VecDeque<(u64, SpanId)>,
    /// Consecutive RTO expirations since the last forward ACK.
    consec_rto: u32,
    /// Set once the session is declared dead; no further transmission.
    error: Option<SessionErrorKind>,
}

/// Receiver-side per-session state.
#[derive(Debug, Default)]
struct RxState {
    rcv_nxt: u64,
    ooo: BTreeMap<u64, Bytes>,
    deframer: Deframer,
}

/// Extracts length-prefixed messages from the in-order byte stream.
#[derive(Debug, Default)]
struct Deframer {
    header: Vec<u8>,
    msg_len: u64,
    msg_off: u64,
    next_msg_id: u64,
}

impl Deframer {
    fn push(&mut self, session: SessionId, mut data: Bytes) -> Vec<(Option<PoeRxMeta>, RxChunk)> {
        let mut out = Vec::new();
        while !data.is_empty() {
            if self.msg_len == 0 {
                // Reading a header.
                let need = TCP_MSG_HEADER_BYTES - self.header.len();
                let take = need.min(data.len());
                self.header.extend_from_slice(&data.split_to(take));
                if self.header.len() < TCP_MSG_HEADER_BYTES {
                    continue;
                }
                let mut len_bytes = [0u8; 8];
                len_bytes.copy_from_slice(&self.header);
                self.header.clear();
                self.msg_len = u64::from_le_bytes(len_bytes);
                self.msg_off = 0;
                assert!(self.msg_len > 0, "zero-length framed message");
                continue;
            }
            let take = ((self.msg_len - self.msg_off) as usize).min(data.len());
            let chunk = data.split_to(take);
            // Span is stamped by the caller, which knows the arriving
            // frame's causality; the deframer only sees the byte stream.
            let meta = (self.msg_off == 0).then_some(PoeRxMeta {
                session,
                msg_id: self.next_msg_id,
                len: self.msg_len,
                span: SpanId::NONE,
            });
            let offset = self.msg_off;
            self.msg_off += take as u64;
            let last = self.msg_off == self.msg_len;
            out.push((
                meta,
                RxChunk {
                    session,
                    msg_id: self.next_msg_id,
                    offset,
                    data: chunk,
                    last,
                },
            ));
            if last {
                self.next_msg_id += 1;
                self.msg_len = 0;
                self.msg_off = 0;
            }
        }
        out
    }
}

/// A queued outbound message still waiting for its stream bytes.
#[derive(Debug)]
struct OutMsg {
    cmd: PoeTxCmd,
    remaining: u64,
    header_sent: bool,
}

/// The TCP protocol offload engine component.
pub struct TcpPoe {
    cfg: TcpConfig,
    net_tx: Endpoint,
    up: PoeUpward,
    sessions: SessionTable,
    tx: BTreeMap<SessionId, TxState>,
    rx: BTreeMap<SessionId, RxState>,
    /// Outbound messages in command order (AXI stream discipline).
    out_q: VecDeque<OutMsg>,
    /// Tx data not yet attributed to a message.
    raw: VecDeque<Bytes>,
    raw_len: u64,
    gate: TxCreditGate,
    segments_sent: u64,
    acks_sent: u64,
    frames_corrupted_discarded: u64,
}

impl TcpPoe {
    /// Creates a TCP engine.
    pub fn new(cfg: TcpConfig, net_tx: Endpoint, up: PoeUpward, sessions: SessionTable) -> Self {
        TcpPoe {
            cfg,
            net_tx,
            up,
            sessions,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
            out_q: VecDeque::new(),
            raw: VecDeque::new(),
            raw_len: 0,
            gate: TxCreditGate::new(),
            segments_sent: 0,
            acks_sent: 0,
            frames_corrupted_discarded: 0,
        }
    }

    /// Total data segments transmitted (including retransmissions).
    pub fn segments_sent(&self) -> u64 {
        self.segments_sent
    }

    /// Frames discarded at RX because their FCS check failed.
    pub fn frames_corrupted_discarded(&self) -> u64 {
        self.frames_corrupted_discarded
    }

    /// Total retransmitted segments across all sessions.
    pub fn retransmissions(&self) -> u64 {
        self.tx.values().map(|s| s.retransmits).sum()
    }

    /// Sessions declared dead so far, in session order (the `tx` map is
    /// keyed by session, so iteration is already ordered).
    pub fn failed_sessions(&self) -> Vec<(SessionId, SessionErrorKind)> {
        self.tx
            .iter()
            .filter_map(|(&s, st)| st.error.map(|k| (s, k)))
            .collect()
    }

    /// Re-establishes `session` after a peer restart: discards the dead
    /// connection's sender and receiver state (error flag, retransmission
    /// ladder, sequence cursors, reassembly buffers) so the next message
    /// opens a fresh conversation with the peer's new incarnation. Both
    /// sides of a session pair must be reinstated together, or sequence
    /// numbers desynchronize — the cluster's rejoin path does that.
    pub fn reinstate_session(&mut self, session: SessionId) {
        self.tx.remove(&session);
        self.rx.remove(&session);
    }

    /// Bounds the engine to `window` in-flight (unserialized) data frames,
    /// attributing waits to `resource` (conventionally `net.txcredit(nX)`).
    /// ACKs bypass the gate — gating the segments that open the peer's
    /// window would deadlock the protocol itself. `None` (the default)
    /// keeps the historical ungated behavior.
    pub fn set_tx_credit_window(&mut self, window: Option<u32>, resource: impl Into<String>) {
        self.gate.set_window(window, resource);
    }

    /// The tx credit gate (for introspection in tests and diagnostics).
    pub fn tx_credit_gate(&self) -> &TxCreditGate {
        &self.gate
    }

    fn send_gated(&mut self, ctx: &mut Ctx<'_>, latency: Dur, frame: Frame) {
        let credit_ep = Endpoint::new(ctx.self_id(), ports::CREDIT);
        if let Some(frame) = self.gate.admit(frame, credit_ep) {
            ctx.send(self.net_tx, latency, frame);
        } else {
            ctx.stats().add("poe.tcp.tx_credit_blocked", 1);
        }
    }

    fn latency(&self) -> Dur {
        Dur::from_ns(self.cfg.processing_ns)
    }

    fn tx_state(&mut self, session: SessionId) -> &mut TxState {
        let cfg = self.cfg;
        self.tx.entry(session).or_insert_with(|| TxState {
            peer_rwnd: cfg.rwnd_bytes,
            rto: Dur::from_us(cfg.init_rto_us),
            ..TxState::default()
        })
    }

    /// Moves attributable raw bytes into per-session streams, emitting
    /// message headers and local completions along the way.
    fn attribute_data(&mut self, ctx: &mut Ctx<'_>) {
        let latency = self.latency();
        while let Some(head) = self.out_q.front_mut() {
            if !head.header_sent {
                let header = Bytes::from((head.cmd.len).to_le_bytes().to_vec());
                let session = head.cmd.session;
                let span = head.cmd.span;
                head.header_sent = true;
                if ctx.spans_enabled() {
                    let st = self.tx_state(session);
                    st.marks.push_back((st.pushed, span));
                }
                self.stream_push(ctx, session, header);
                continue;
            }
            if self.raw_len == 0 {
                break;
            }
            let head = self.out_q.front_mut().unwrap();
            let take = head.remaining.min(self.raw_len);
            let mut moved = 0u64;
            let session = head.cmd.session;
            while moved < take {
                let mut buf = self.raw.pop_front().unwrap();
                let n = (take - moved).min(buf.len() as u64);
                let piece = buf.split_to(n as usize);
                if !buf.is_empty() {
                    self.raw.push_front(buf);
                }
                moved += n;
                self.raw_len -= n;
                self.stream_push(ctx, session, piece);
            }
            let head = self.out_q.front_mut().unwrap();
            head.remaining -= take;
            if head.remaining == 0 {
                let msg = self.out_q.pop_front().unwrap();
                match self.session_error(msg.cmd.session) {
                    // A command attributed to a dead session completes in
                    // error: its bytes were consumed but never leave.
                    Some(kind) => ctx.send(
                        self.up.tx_done,
                        latency,
                        PoeSessionError {
                            session: msg.cmd.session,
                            kind,
                            tag: Some(msg.cmd.tag),
                        },
                    ),
                    None => ctx.send(
                        self.up.tx_done,
                        latency,
                        PoeTxDone {
                            session: msg.cmd.session,
                            len: msg.cmd.len,
                            tag: msg.cmd.tag,
                        },
                    ),
                }
            } else {
                break;
            }
        }
    }

    /// The error a session died with, if any.
    fn session_error(&self, session: SessionId) -> Option<SessionErrorKind> {
        self.tx.get(&session).and_then(|st| st.error)
    }

    /// Declares `session` dead: releases all buffered stream state, disarms
    /// the timer and emits the session-fatal error completion. Commands
    /// still queued (or issued later) for the session complete in error as
    /// their stream bytes are consumed.
    fn abort_session(&mut self, ctx: &mut Ctx<'_>, session: SessionId, kind: SessionErrorKind) {
        let latency = self.latency();
        let st = self.tx_state(session);
        st.error = Some(kind);
        st.timer_armed = false;
        st.unacked.clear();
        st.pending.clear();
        st.pending_len = 0;
        st.rtt_probe = None;
        st.marks.clear();
        ctx.stats().add("poe.tcp.session_errors", 1);
        ctx.send(
            self.up.tx_done,
            latency,
            PoeSessionError {
                session,
                kind,
                tag: None,
            },
        );
    }

    fn stream_push(&mut self, ctx: &mut Ctx<'_>, session: SessionId, data: Bytes) {
        let st = self.tx_state(session);
        st.pushed += data.len() as u64;
        if st.error.is_some() {
            // Dead session: consume (and discard) the bytes so attribution
            // of later commands on other sessions keeps flowing.
            return;
        }
        st.pending_len += data.len() as u64;
        st.pending.push_back(data);
        self.try_send(ctx, session);
    }

    /// The span owning stream byte `seq`: the last mark at or before it.
    fn mark_span(st: &TxState, seq: u64) -> SpanId {
        let mut span = SpanId::NONE;
        for &(start, s) in &st.marks {
            if start <= seq {
                span = s;
            } else {
                break;
            }
        }
        span
    }

    fn try_send(&mut self, ctx: &mut Ctx<'_>, session: SessionId) {
        let mss = u64::from(self.cfg.mss);
        let unit = mss * u64::from(self.cfg.coalesce.max(1));
        let latency = self.latency();
        let (peer, peer_session) = self.sessions.peer(session);
        let st = self.tx_state(session);
        let mut sent = 0u64;
        let mut frames = Vec::new();
        loop {
            let inflight = st.snd_nxt - st.snd_una;
            if st.pending_len == 0 || inflight >= st.peer_rwnd {
                break;
            }
            let n = unit.min(st.pending_len).min(st.peer_rwnd - inflight);
            // Zero-copy fast path: the head buffer covers the whole send
            // unit, so slice it instead of copying — the common case when
            // a DMA read delivered the message as one refcounted chunk.
            let head = st.pending.front_mut().unwrap();
            let data = if head.len() as u64 >= n {
                let piece = head.split_to(n as usize);
                if head.is_empty() {
                    st.pending.pop_front();
                }
                piece
            } else {
                // Gather across pending chunks into one buffer.
                let mut buf = BytesMut::with_capacity(n as usize);
                while (buf.len() as u64) < n {
                    let head = st.pending.front_mut().unwrap();
                    let take = ((n as usize) - buf.len()).min(head.len());
                    buf.extend_from_slice(&head.split_to(take));
                    if head.is_empty() {
                        st.pending.pop_front();
                    }
                }
                buf.freeze()
            };
            st.pending_len -= n;
            let seq = st.snd_nxt;
            st.snd_nxt += n;
            st.unacked.push_back((seq, data.clone()));
            if st.rtt_probe.is_none() {
                st.rtt_probe = Some((seq + n, ctx.now()));
            }
            let segments = n.div_ceil(mss) as u32;
            sent += u64::from(segments);
            let mut wire_span = SpanId::NONE;
            if ctx.spans_enabled() {
                let parent = Self::mark_span(st, seq);
                wire_span = ctx.span_interval_attrs(
                    "poe.seg",
                    parent,
                    ctx.now(),
                    ctx.now() + latency,
                    &[Attr {
                        key: "bytes",
                        value: AttrValue::Bytes(n),
                    }],
                );
            }
            let flow = ctx.flow_begin("poe.flow", wire_span);
            let frame = Frame::new(
                accl_net::NodeAddr(0),
                peer,
                data.len() as u32,
                TcpSegment {
                    dst_session: peer_session,
                    seq,
                    data,
                },
            )
            .with_segments(segments)
            .with_span(wire_span)
            .with_flow(flow);
            frames.push(frame);
        }
        self.segments_sent += sent;
        for frame in frames {
            self.send_gated(ctx, latency, frame);
        }
        let st = self.tx_state(session);
        if !st.unacked.is_empty() && !st.timer_armed {
            Self::arm_timer_inner(ctx, st, session);
        }
    }

    fn arm_timer_inner(ctx: &mut Ctx<'_>, st: &mut TxState, session: SessionId) {
        st.timer_gen += 1;
        st.timer_armed = true;
        let rto = st.rto;
        ctx.send_self(
            ports::TIMER,
            rto,
            RtoTimer {
                session,
                gen: st.timer_gen,
            },
        );
    }

    fn retransmit_head(&mut self, ctx: &mut Ctx<'_>, session: SessionId) {
        let latency = self.latency();
        let (peer, peer_session) = self.sessions.peer(session);
        let st = self.tx_state(session);
        let Some(&(seq, ref data)) = st.unacked.front() else {
            return;
        };
        let data = data.clone();
        st.retransmits += 1;
        // An RTT measured across a retransmission would be ambiguous (Karn).
        st.rtt_probe = None;
        let parent = Self::mark_span(st, seq);
        ctx.stats().add("poe.tcp.retransmits", 1);
        accl_sim::trace_instant!(ctx, "poe.retransmit", parent);
        let segments = (data.len() as u64).div_ceil(u64::from(self.cfg.mss)).max(1) as u32;
        self.segments_sent += u64::from(segments);
        let flow = ctx.flow_begin("poe.flow", parent);
        let frame = Frame::new(
            accl_net::NodeAddr(0),
            peer,
            data.len() as u32,
            TcpSegment {
                dst_session: peer_session,
                seq,
                data,
            },
        )
        .with_segments(segments)
        .with_span(parent)
        .with_flow(flow);
        self.send_gated(ctx, latency, frame);
    }

    fn on_ack(&mut self, ctx: &mut Ctx<'_>, ack: TcpAck) {
        let session = ack.dst_session;
        let min_rto = Dur::from_us(self.cfg.min_rto_us);
        let max_rto = Dur::from_us(self.cfg.max_rto_us);
        let now = ctx.now();
        let st = self.tx_state(session);
        if st.error.is_some() {
            // Late ACK to a session already declared dead.
            return;
        }
        st.peer_rwnd = ack.window;
        if ack.ack > st.snd_una {
            st.snd_una = ack.ack;
            st.dup_acks = 0;
            st.consec_rto = 0;
            // Marks below the cumulative ACK can no longer be retransmitted.
            while st.marks.len() >= 2 && st.marks[1].0 <= st.snd_una {
                st.marks.pop_front();
            }
            while let Some(&(seq, ref data)) = st.unacked.front() {
                if seq + data.len() as u64 <= st.snd_una {
                    st.unacked.pop_front();
                } else {
                    break;
                }
            }
            if let Some((probe_end, sent_at)) = st.rtt_probe {
                if st.snd_una >= probe_end {
                    let sample = now.since(sent_at).as_us_f64();
                    match st.srtt_us {
                        None => {
                            st.srtt_us = Some(sample);
                            st.rttvar_us = sample / 2.0;
                        }
                        Some(srtt) => {
                            st.rttvar_us = 0.75 * st.rttvar_us + 0.25 * (srtt - sample).abs();
                            st.srtt_us = Some(0.875 * srtt + 0.125 * sample);
                        }
                    }
                    let rto = Dur::from_us_f64(st.srtt_us.unwrap() + 4.0 * st.rttvar_us);
                    st.rto = rto.max(min_rto).min(max_rto);
                    st.rtt_probe = None;
                }
            }
            if st.unacked.is_empty() {
                st.timer_armed = false;
            } else {
                Self::arm_timer_inner(ctx, st, session);
            }
            self.try_send(ctx, session);
        } else if !st.unacked.is_empty() {
            st.dup_acks += 1;
            if st.dup_acks == 3 {
                st.dup_acks = 0;
                self.retransmit_head(ctx, session);
            }
        }
    }

    fn on_segment(&mut self, ctx: &mut Ctx<'_>, seg: TcpSegment, wire_span: SpanId, flow: FlowId) {
        let latency = self.latency();
        let rx_span = if ctx.spans_enabled() {
            ctx.span_interval("poe.rx", wire_span, ctx.now(), ctx.now() + latency)
        } else {
            SpanId::NONE
        };
        ctx.flow_end("poe.flow", flow, rx_span);
        let session = seg.dst_session;
        let (peer, peer_session) = self.sessions.peer(session);
        let rwnd = self.cfg.rwnd_bytes;
        let st = self.rx.entry(session).or_default();
        let mut deliveries = Vec::new();
        let seg_len = seg.data.len() as u64;
        if seg.seq == st.rcv_nxt {
            st.rcv_nxt += seg_len;
            deliveries.extend(st.deframer.push(session, seg.data));
            // Drain now-contiguous out-of-order segments.
            while let Some((&seq, _)) = st.ooo.first_key_value() {
                if seq != st.rcv_nxt {
                    break;
                }
                let (_, data) = st.ooo.pop_first().unwrap();
                st.rcv_nxt += data.len() as u64;
                deliveries.extend(st.deframer.push(session, data));
            }
        } else if seg.seq > st.rcv_nxt {
            st.ooo.entry(seg.seq).or_insert(seg.data);
        } // else: duplicate of already-delivered data; drop.
        let ack_val = st.rcv_nxt;
        self.acks_sent += 1;
        let frame = Frame::new(
            accl_net::NodeAddr(0),
            peer,
            0,
            TcpAck {
                dst_session: peer_session,
                ack: ack_val,
                window: rwnd,
            },
        )
        .with_span(rx_span);
        ctx.send(self.net_tx, latency, frame);
        for (meta, chunk) in deliveries {
            if let Some(mut meta) = meta {
                meta.span = rx_span;
                ctx.send(self.up.rx_meta, latency, meta);
            }
            ctx.send(self.up.rx_data, latency, chunk);
        }
    }
}

impl Component for TcpPoe {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::TX_CMD => {
                let cmd = payload.downcast::<PoeTxCmd>();
                assert!(
                    matches!(cmd.kind, TxKind::Send),
                    "TCP engine supports only two-sided sends, got {:?}",
                    cmd.kind
                );
                assert!(cmd.len > 0, "zero-length Tx command");
                self.out_q.push_back(OutMsg {
                    cmd,
                    remaining: cmd.len,
                    header_sent: false,
                });
                self.attribute_data(ctx);
            }
            ports::TX_DATA => {
                let chunk = payload.downcast::<StreamChunk>();
                self.raw_len += chunk.data.len() as u64;
                self.raw.push_back(chunk.data);
                self.attribute_data(ctx);
            }
            ports::NET_RX => {
                let frame = payload.downcast::<Frame>();
                let corrupted = !frame.fcs_ok();
                if corrupted && self.cfg.verify_fcs {
                    // Bad CRC: drop at the MAC. The sender's RTO / fast
                    // retransmit recovers the lost bytes.
                    self.frames_corrupted_discarded += 1;
                    ctx.stats().add("poe.tcp.frames_corrupted_discarded", 1);
                    accl_sim::trace_instant!(ctx, "poe.fcs_drop", frame.span);
                    return;
                }
                let wire_span = frame.span;
                let flow = frame.flow;
                match frame.body.try_downcast::<TcpSegment>() {
                    Ok(mut seg) => {
                        if corrupted && !seg.data.is_empty() {
                            // FCS check deliberately disabled (chaos-harness
                            // self-test): the corruption reaches the stream.
                            let mut bytes = seg.data.to_vec();
                            bytes[0] ^= 0xff;
                            seg.data = Bytes::from(bytes);
                        }
                        self.on_segment(ctx, seg, wire_span, flow)
                    }
                    Err(body) => self.on_ack(ctx, body.downcast::<TcpAck>()),
                }
            }
            ports::TIMER => {
                let timer = payload.downcast::<RtoTimer>();
                let max_rto = Dur::from_us(self.cfg.max_rto_us);
                let max_retransmits = self.cfg.max_retransmits;
                let st = self.tx_state(timer.session);
                if !st.timer_armed || st.timer_gen != timer.gen || st.unacked.is_empty() {
                    return;
                }
                let session = timer.session;
                st.consec_rto += 1;
                if st.consec_rto > max_retransmits {
                    // Fail-stop detection: the peer never acknowledged any
                    // progress across the whole backoff ladder.
                    self.abort_session(ctx, session, SessionErrorKind::RetransmitLimit);
                    return;
                }
                st.rto = (st.rto * 2).min(max_rto);
                self.retransmit_head(ctx, session);
                let st = self.tx_state(session);
                Self::arm_timer_inner(ctx, st, session);
            }
            ports::CREDIT => {
                let latency = self.latency();
                let credit_ep = Endpoint::new(ctx.self_id(), ports::CREDIT);
                match payload.try_downcast::<accl_net::CreditReturn>() {
                    Ok(ret) => {
                        for frame in self.gate.credit(ret.credits, credit_ep) {
                            ctx.send(self.net_tx, latency, frame);
                        }
                    }
                    Err(other) => {
                        let leak = other.downcast::<TxCreditLeak>();
                        self.gate.leak(leak.credits);
                        ctx.stats()
                            .add("poe.tcp.credits_leaked", u64::from(leak.credits));
                        accl_sim::trace_instant!(ctx, "poe.credit_leak", SpanId::NONE);
                    }
                }
            }
            other => panic!("TCP engine has no port {other:?}"),
        }
    }

    fn resource_state(&self) -> Option<ResourceState> {
        self.gate.state()
    }

    fn parked_work(&self) -> Option<ParkedWork> {
        // Frames stuck behind a dry tx credit window block everything else.
        if let Some(parked) = self.gate.parked_work() {
            return Some(parked);
        }
        // Oldest command still waiting for its stream bytes: attribution is
        // FIFO across sessions, so a starved head blocks everything behind.
        if let Some(head) = self.out_q.front() {
            return Some(ParkedWork {
                rank: None,
                op: format!(
                    "tcp tx tag={} session={}: awaiting {} stream bytes",
                    head.cmd.tag, head.cmd.session.0, head.remaining
                ),
            });
        }
        // Live sessions holding unsent or unacknowledged bytes (lowest
        // session id first, for deterministic reports).
        let stuck = self
            .tx
            .iter()
            .filter(|(_, st)| st.error.is_none() && (st.pending_len > 0 || !st.unacked.is_empty()))
            .min_by_key(|(&s, _)| s);
        if let Some((&s, st)) = stuck {
            let unacked: u64 = st.unacked.iter().map(|(_, d)| d.len() as u64).sum();
            return Some(ParkedWork {
                rank: None,
                op: format!(
                    "tcp session {}: {} bytes unacked, {} bytes pending",
                    s.0, unacked, st.pending_len
                ),
            });
        }
        // Receive side: a message cut off mid-stream.
        let partial = self
            .rx
            .iter()
            .filter(|(_, st)| {
                !st.ooo.is_empty() || st.deframer.msg_len > 0 || !st.deframer.header.is_empty()
            })
            .min_by_key(|(&s, _)| s);
        if let Some((&s, st)) = partial {
            return Some(ParkedWork {
                rank: None,
                op: format!(
                    "tcp session {}: partial rx message at offset {} of {}",
                    s.0, st.deframer.msg_off, st.deframer.msg_len
                ),
            });
        }
        None
    }

    fn state_digest(&self) -> Option<u64> {
        // Wire totals, queue depths, credit-window accounting, and the
        // per-session stream positions (BTreeMap order is canonical).
        let mut h = 0u64;
        let mut fold = |v: u64| accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        for v in [
            self.segments_sent,
            self.acks_sent,
            self.frames_corrupted_discarded,
            self.raw_len,
            self.out_q.len() as u64,
        ] {
            fold(v);
        }
        for (s, st) in &self.tx {
            fold(u64::from(s.0));
            fold(st.snd_una);
            fold(st.snd_nxt);
            fold(st.retransmits);
        }
        for (s, st) in &self.rx {
            fold(u64::from(s.0));
            fold(st.rcv_nxt);
            fold(st.ooo.len() as u64);
        }
        self.gate.fold_digest(&mut h);
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::CompletionLog;
    use accl_net::{FaultPlan, NetConfig, Network};

    struct Bench {
        sim: Simulator,
        net: Network,
        poes: Vec<ComponentId>,
        metas: Vec<ComponentId>,
        datas: Vec<ComponentId>,
        dones: Vec<ComponentId>,
    }

    fn bench_cfg(n: usize, cfg: TcpConfig) -> Bench {
        let mut sim = Simulator::new(0);
        let net = Network::build(&mut sim, NetConfig::default(), n);
        let (mut poes, mut metas, mut datas, mut dones) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for i in 0..n {
            let meta = sim.add(format!("meta{i}"), Mailbox::<PoeRxMeta>::new());
            let data = sim.add(format!("data{i}"), Mailbox::<RxChunk>::new());
            let done = sim.add(format!("done{i}"), CompletionLog::new());
            let mut sessions = SessionTable::new();
            for j in 0..n {
                if i != j {
                    sessions.connect(SessionId(j as u32), net.addr(j), SessionId(i as u32));
                }
            }
            let poe = sim.add(
                format!("tcp{i}"),
                TcpPoe::new(
                    cfg,
                    net.tx(i),
                    PoeUpward {
                        rx_meta: Endpoint::of(meta),
                        rx_data: Endpoint::of(data),
                        tx_done: Endpoint::of(done),
                    },
                    sessions,
                ),
            );
            net.attach_rx(&mut sim, i, Endpoint::new(poe, ports::NET_RX));
            poes.push(poe);
            metas.push(meta);
            datas.push(data);
            dones.push(done);
        }
        Bench {
            sim,
            net,
            poes,
            metas,
            datas,
            dones,
        }
    }

    fn bench(n: usize) -> Bench {
        bench_cfg(n, TcpConfig::default())
    }

    fn send(b: &mut Bench, from: usize, to: usize, data: Vec<u8>, tag: u64) {
        let len = data.len() as u64;
        b.sim.post(
            Endpoint::new(b.poes[from], ports::TX_CMD),
            b.sim.now(),
            PoeTxCmd {
                session: SessionId(to as u32),
                len,
                kind: TxKind::Send,
                tag,
                span: SpanId::NONE,
            },
        );
        b.sim.post(
            Endpoint::new(b.poes[from], ports::TX_DATA),
            b.sim.now(),
            StreamChunk {
                data: Bytes::from(data),
                last: true,
            },
        );
    }

    fn received(b: &Bench, node: usize, len: usize) -> Vec<u8> {
        let mut got = vec![0u8; len];
        for (_, c) in b.sim.component::<Mailbox<RxChunk>>(b.datas[node]).items() {
            got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
        }
        got
    }

    #[test]
    fn message_delivered_reliably_and_framed() {
        let mut b = bench(2);
        let msg: Vec<u8> = (0..50_000u32).map(|i| (i % 253) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 9);
        b.sim.run();
        let metas = b.sim.component::<Mailbox<PoeRxMeta>>(b.metas[1]);
        assert_eq!(metas.len(), 1);
        assert_eq!(metas.items()[0].1.len, 50_000);
        assert_eq!(received(&b, 1, msg.len()), msg);
        assert_eq!(
            b.sim.component::<CompletionLog>(b.dones[0]).dones()[0]
                .1
                .tag,
            9
        );
        assert_eq!(b.sim.component::<TcpPoe>(b.poes[0]).retransmissions(), 0);
    }

    #[test]
    fn multiple_messages_framed_separately() {
        let mut b = bench(2);
        send(&mut b, 0, 1, vec![1u8; 6000], 1);
        send(&mut b, 0, 1, vec![2u8; 3000], 2);
        b.sim.run();
        let metas = b.sim.component::<Mailbox<PoeRxMeta>>(b.metas[1]);
        assert_eq!(metas.len(), 2);
        assert_eq!(metas.items()[0].1.len, 6000);
        assert_eq!(metas.items()[1].1.len, 3000);
        assert_eq!(metas.items()[0].1.msg_id, 0);
        assert_eq!(metas.items()[1].1.msg_id, 1);
        // All chunk bytes of msg 1 are the value 2.
        let datas = b.sim.component::<Mailbox<RxChunk>>(b.datas[1]);
        for (_, c) in datas.items() {
            if c.msg_id == 1 {
                assert!(c.data.iter().all(|&x| x == 2));
            }
        }
    }

    #[test]
    fn drop_recovers_by_retransmission() {
        let mut b = bench(2);
        // Drop the 3rd frame the switch sees (a data segment mid-message).
        b.net
            .set_fault_plan(&mut b.sim, FaultPlan::drop_frames([2]));
        let msg: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 0);
        b.sim.run();
        assert_eq!(received(&b, 1, msg.len()), msg);
        assert!(b.sim.component::<TcpPoe>(b.poes[0]).retransmissions() >= 1);
        // The last chunk must carry the completion flag exactly once.
        let lasts = b
            .sim
            .component::<Mailbox<RxChunk>>(b.datas[1])
            .values()
            .filter(|c| c.last)
            .count();
        assert_eq!(lasts, 1);
    }

    #[test]
    fn corruption_is_discarded_and_recovers_by_retransmission() {
        let mut b = bench(2);
        // Flip bits in the 3rd frame the switch sees (a data segment).
        b.net
            .set_fault_plan(&mut b.sim, FaultPlan::corrupt_frames([2]));
        let msg: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 0);
        b.sim.run();
        // FCS check discards the mangled segment; the retransmit path
        // restores the exact bytes.
        assert_eq!(received(&b, 1, msg.len()), msg);
        let rx_poe = b.sim.component::<TcpPoe>(b.poes[1]);
        assert_eq!(rx_poe.frames_corrupted_discarded(), 1);
        assert!(b.sim.component::<TcpPoe>(b.poes[0]).retransmissions() >= 1);
    }

    #[test]
    fn disabled_fcs_check_delivers_corrupted_bytes() {
        // Self-test for the chaos harness: with verification off, the
        // corrupted segment reaches the application and the payload is
        // observably wrong. This is the "deliberately injected bug" the
        // invariant checker must catch.
        let cfg = TcpConfig {
            verify_fcs: false,
            ..TcpConfig::default()
        };
        let mut b = bench_cfg(2, cfg);
        b.net
            .set_fault_plan(&mut b.sim, FaultPlan::corrupt_frames([2]));
        let msg: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 0);
        b.sim.run();
        let got = received(&b, 1, msg.len());
        assert_ne!(got, msg, "corruption should be visible with FCS off");
        assert_eq!(
            b.sim
                .component::<TcpPoe>(b.poes[1])
                .frames_corrupted_discarded(),
            0
        );
    }

    #[test]
    fn duplicated_frames_deliver_exactly_once() {
        let mut b = bench(2);
        b.net
            .set_fault_plan(&mut b.sim, FaultPlan::duplicate_frames([1, 3]));
        let msg: Vec<u8> = (0..40_000u32).map(|i| (i % 249) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 0);
        b.sim.run();
        assert_eq!(received(&b, 1, msg.len()), msg);
        // Duplicate segments are old news to the cumulative-ACK receiver:
        // total delivered bytes must match exactly.
        let total: usize = b
            .sim
            .component::<Mailbox<RxChunk>>(b.datas[1])
            .values()
            .map(|c| c.data.len())
            .sum();
        assert_eq!(total, msg.len(), "duplicate delivery leaked upward");
    }

    #[test]
    fn heavy_random_loss_still_delivers_exactly_once() {
        let mut b = bench(2);
        b.net
            .set_fault_plan(&mut b.sim, FaultPlan::random_loss(0.05));
        let msg: Vec<u8> = (0..100_000u32).map(|i| (i % 247) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 0);
        b.sim.run();
        assert_eq!(received(&b, 1, msg.len()), msg);
        let total: usize = b
            .sim
            .component::<Mailbox<RxChunk>>(b.datas[1])
            .values()
            .map(|c| c.data.len())
            .sum();
        assert_eq!(total, msg.len(), "duplicate or missing delivery");
    }

    #[test]
    fn reordering_is_repaired_by_ooo_buffer() {
        let mut b = bench(2);
        b.net
            .set_fault_plan(&mut b.sim, FaultPlan::delay_frames([1], Dur::from_us(50)));
        let msg: Vec<u8> = (0..40_000u32).map(|i| (i % 241) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 0);
        b.sim.run();
        assert_eq!(received(&b, 1, msg.len()), msg);
        // Offsets must be delivered upward in order despite wire reordering.
        let offs: Vec<u64> = b
            .sim
            .component::<Mailbox<RxChunk>>(b.datas[1])
            .values()
            .map(|c| c.offset)
            .collect();
        let mut sorted = offs.clone();
        sorted.sort_unstable();
        assert_eq!(offs, sorted);
    }

    #[test]
    fn window_limits_inflight_bytes() {
        // Tiny window: 2 segments' worth. Transfer still completes, just
        // with ACK-paced round trips.
        let cfg = TcpConfig {
            rwnd_bytes: 8192,
            ..TcpConfig::default()
        };
        let mut b = bench_cfg(2, cfg);
        let msg = vec![5u8; 64 * 1024];
        send(&mut b, 0, 1, msg.clone(), 0);
        b.sim.run();
        assert_eq!(received(&b, 1, msg.len()), msg);
        // With ~2.2 us RTT and 8 KiB windows, 64 KiB takes at least 8 RTTs.
        assert!(b.sim.now().as_us_f64() > 15.0, "now={}", b.sim.now());
    }

    #[test]
    fn throughput_near_line_rate_with_default_window() {
        let mut b = bench(2);
        let len = 4 << 20;
        send(&mut b, 0, 1, vec![3u8; len], 0);
        b.sim.run();
        let t = b
            .sim
            .component::<Mailbox<RxChunk>>(b.datas[1])
            .last_arrival()
            .unwrap();
        let gbps = (len as f64) * 8.0 / t.as_ns_f64();
        assert!(gbps > 90.0, "goodput={gbps:.1} Gb/s");
    }

    #[test]
    fn coalescing_preserves_bytes_and_throughput_with_fewer_events() {
        let len = 4 << 20;
        let msg: Vec<u8> = (0..len as u32).map(|i| (i % 239) as u8).collect();
        let run = |coalesce: u32| {
            let cfg = TcpConfig {
                coalesce,
                ..TcpConfig::default()
            };
            let mut b = bench_cfg(2, cfg);
            send(&mut b, 0, 1, msg.clone(), 0);
            b.sim.run();
            assert_eq!(received(&b, 1, len), msg, "coalesce={coalesce}");
            let poe = b.sim.component::<TcpPoe>(b.poes[0]);
            let t = b
                .sim
                .component::<Mailbox<RxChunk>>(b.datas[1])
                .last_arrival()
                .unwrap();
            (
                poe.segments_sent(),
                b.sim.events_executed(),
                b.net.port_counters(&b.sim, 1).bytes_out,
                (len as f64) * 8.0 / t.as_ns_f64(),
            )
        };
        let (segs1, events1, bytes1, gbps1) = run(1);
        let (segs8, events8, bytes8, gbps8) = run(8);
        // Same wire segments and bytes — headers are charged per segment —
        // but far fewer simulator events.
        assert_eq!(segs1, segs8);
        assert_eq!(bytes1, bytes8);
        assert!(
            events8 * 2 < events1,
            "coalescing saved too few events: {events8} vs {events1}"
        );
        // Throughput stays at line rate; only the store-and-forward
        // pipelining granularity coarsens (bounded, small at this size).
        assert!(gbps1 > 90.0, "goodput={gbps1:.1}");
        assert!(gbps8 > 90.0, "goodput={gbps8:.1}");
    }

    #[test]
    fn bidirectional_sessions_are_independent() {
        let mut b = bench(2);
        send(&mut b, 0, 1, vec![1u8; 10_000], 0);
        send(&mut b, 1, 0, vec![2u8; 20_000], 0);
        b.sim.run();
        assert_eq!(received(&b, 1, 10_000), vec![1u8; 10_000]);
        assert_eq!(received(&b, 0, 20_000), vec![2u8; 20_000]);
    }

    #[test]
    fn many_sessions_one_node() {
        // One sender fanning out to 7 receivers concurrently.
        let mut b = bench(8);
        for dst in 1..8 {
            send(&mut b, 0, dst, vec![dst as u8; 8192], dst as u64);
        }
        b.sim.run();
        for dst in 1..8 {
            assert_eq!(received(&b, dst, 8192), vec![dst as u8; 8192]);
        }
        assert_eq!(
            b.sim.component::<CompletionLog>(b.dones[0]).dones().len(),
            7
        );
    }

    #[test]
    fn peer_crash_aborts_after_bounded_retransmissions() {
        let mut b = bench(2);
        // Node 1 fail-stops before anything is exchanged.
        b.net.crash_node(&mut b.sim, 1, Time::ZERO);
        send(&mut b, 0, 1, vec![9u8; 20_000], 7);
        let out = b.sim.run();
        // The abort releases all parked state, so the run drains cleanly
        // instead of hanging or looping on retransmissions forever.
        assert_eq!(out, RunOutcome::Drained, "outcome: {out:?}");
        let log = b.sim.component::<CompletionLog>(b.dones[0]);
        assert_eq!(log.errors().len(), 1, "errors: {:?}", log.errors());
        let (at, err) = log.errors()[0];
        assert_eq!(err.session, SessionId(1));
        assert_eq!(err.kind, SessionErrorKind::RetransmitLimit);
        assert_eq!(err.tag, None);
        // Exactly the configured number of RTO retransmissions happened.
        let poe = b.sim.component::<TcpPoe>(b.poes[0]);
        assert_eq!(
            poe.retransmissions(),
            u64::from(TcpConfig::default().max_retransmits)
        );
        assert_eq!(
            poe.failed_sessions(),
            vec![(SessionId(1), SessionErrorKind::RetransmitLimit)]
        );
        // Detection latency is bounded by the RTO backoff ladder.
        assert!(at < Time::from_ms(100), "abort at {at}");
        // Nothing ever reached the crashed peer.
        assert_eq!(b.sim.component::<Mailbox<PoeRxMeta>>(b.metas[1]).len(), 0);
    }

    #[test]
    fn link_flap_recovers_within_retransmit_budget() {
        let mut b = bench(2);
        // Node 1's link is dark for the first 500 µs, then heals.
        b.net
            .link_down(&mut b.sim, 1, Time::ZERO, Time::from_us(500));
        let msg: Vec<u8> = (0..30_000u32).map(|i| (i % 227) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 4);
        b.sim.run();
        // Retransmission rode out the outage: delivered exactly once, no
        // session error.
        assert_eq!(received(&b, 1, msg.len()), msg);
        let poe = b.sim.component::<TcpPoe>(b.poes[0]);
        assert!(poe.retransmissions() >= 1);
        assert!(poe.failed_sessions().is_empty());
        assert!(b
            .sim
            .component::<CompletionLog>(b.dones[0])
            .errors()
            .is_empty());
    }

    #[test]
    fn command_on_dead_session_completes_in_error() {
        let mut b = bench(2);
        b.net.crash_node(&mut b.sim, 1, Time::ZERO);
        send(&mut b, 0, 1, vec![1u8; 4096], 1);
        b.sim.run();
        // Session is dead now; a later command still gets a completion —
        // an error one, tagged with the command's tag.
        send(&mut b, 0, 1, vec![2u8; 4096], 2);
        let out = b.sim.run();
        assert_eq!(out, RunOutcome::Drained, "outcome: {out:?}");
        let log = b.sim.component::<CompletionLog>(b.dones[0]);
        let tags: Vec<Option<u64>> = log.errors().iter().map(|&(_, e)| e.tag).collect();
        assert!(
            tags.contains(&None),
            "session-fatal error missing: {tags:?}"
        );
        assert!(tags.contains(&Some(2)), "command error missing: {tags:?}");
    }

    #[test]
    fn tx_credit_window_backpressures_and_still_delivers() {
        let mut b = bench(2);
        b.sim
            .component_mut::<TcpPoe>(b.poes[0])
            .set_tx_credit_window(Some(2), "net.txcredit(n0)");
        let msg: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 1);
        b.sim.run();
        assert_eq!(received(&b, 1, msg.len()), msg);
        let gate = b.sim.component::<TcpPoe>(b.poes[0]).tx_credit_gate();
        assert!(!gate.blocked(), "gate must drain once the wire frees up");
        assert_eq!(gate.in_flight(), 0, "all credits returned");
    }

    #[test]
    fn leaked_credits_wedge_tx_and_deadlock_detector_names_the_orphan() {
        let mut b = bench(2);
        b.sim
            .component_mut::<TcpPoe>(b.poes[0])
            .set_tx_credit_window(Some(2), "net.txcredit(n0)");
        // The planted bug: both credits leak before any frame is admitted,
        // so the gate can never open again.
        b.sim.post(
            Endpoint::new(b.poes[0], ports::CREDIT),
            Time::ZERO,
            TxCreditLeak { credits: 2 },
        );
        send(&mut b, 0, 1, vec![1u8; 20_000], 9);
        match b.sim.run() {
            RunOutcome::Stalled(report) => {
                assert!(
                    report.op.contains("awaiting tx credits"),
                    "op: {}",
                    report.op
                );
                let dl = report.deadlock.as_ref().expect("deadlock analysis");
                assert_eq!(dl.kind, DeadlockKind::OrphanedWait);
                assert!(
                    dl.chain.iter().any(|s| s.contains("net.txcredit(n0)")),
                    "chain must name the leaked resource: {:?}",
                    dl.chain
                );
            }
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn stall_watchdog_names_starved_tx_command() {
        let mut b = bench(2);
        // A command whose stream data never arrives: the engine parks it.
        b.sim.post(
            Endpoint::new(b.poes[0], ports::TX_CMD),
            Time::ZERO,
            PoeTxCmd {
                session: SessionId(1),
                len: 1000,
                kind: TxKind::Send,
                tag: 42,
                span: SpanId::NONE,
            },
        );
        match b.sim.run() {
            RunOutcome::Stalled(report) => {
                assert_eq!(report.component, "tcp0");
                assert!(
                    report.op.contains("awaiting 1000 stream bytes"),
                    "op: {}",
                    report.op
                );
            }
            other => panic!("expected stall, got {other:?}"),
        }
    }
}
