//! UDP protocol offload engine.
//!
//! Models the VNx-style 100 Gb/s hardware UDP stack (ref. 98): connectionless,
//! unreliable, line-rate datagram segmentation. Messages lost to the fabric
//! stay lost — which is why the paper's eager collectives over UDP stick to
//! simple ring/one-to-all algorithms that minimize in-flight fan-in
//! (§4.4.4, Table 1).

use bytes::Bytes;

use accl_net::Frame;
use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, SpanId};

use crate::iface::{
    ports, PoeTxCmd, PoeTxDone, PoeUpward, RxDemux, SessionTable, StreamChunk, TxAssembler,
    TxCreditGate, TxCreditLeak, TxKind, TxSegment,
};

/// Per-datagram header modelled on the wire (message id, offset, total).
pub const UDP_SEG_HEADER_BYTES: u32 = 16;

/// A UDP datagram PDU: one segment of a message.
#[derive(Debug, Clone)]
pub struct UdpDgram {
    /// Receiver-local session the datagram targets.
    pub dst_session: crate::iface::SessionId,
    /// Sender-assigned message id.
    pub msg_id: u64,
    /// Offset of this segment within the message.
    pub offset: u64,
    /// Total message length.
    pub total: u64,
    /// Segment payload.
    pub data: Bytes,
}

/// Configuration of the UDP engine.
#[derive(Debug, Clone, Copy)]
pub struct UdpConfig {
    /// Maximum payload per datagram.
    pub mtu: u32,
    /// Pipelined per-datagram processing latency, ns.
    pub processing_ns: u64,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            mtu: accl_net::DEFAULT_MTU,
            processing_ns: 80,
        }
    }
}

/// The UDP protocol offload engine component.
pub struct UdpPoe {
    cfg: UdpConfig,
    net_tx: Endpoint,
    up: PoeUpward,
    sessions: SessionTable,
    assembler: TxAssembler,
    demux: RxDemux,
    gate: TxCreditGate,
    dgrams_sent: u64,
    dgrams_received: u64,
    dgrams_corrupted_dropped: u64,
}

impl UdpPoe {
    /// Creates a UDP engine sending frames to `net_tx` and delivering
    /// upward to `up`.
    pub fn new(cfg: UdpConfig, net_tx: Endpoint, up: PoeUpward, sessions: SessionTable) -> Self {
        UdpPoe {
            cfg,
            net_tx,
            up,
            sessions,
            assembler: TxAssembler::new(),
            demux: RxDemux::new(),
            gate: TxCreditGate::new(),
            dgrams_sent: 0,
            dgrams_received: 0,
            dgrams_corrupted_dropped: 0,
        }
    }

    /// Datagrams sent so far.
    pub fn dgrams_sent(&self) -> u64 {
        self.dgrams_sent
    }

    /// Datagrams received so far.
    pub fn dgrams_received(&self) -> u64 {
        self.dgrams_received
    }

    /// Datagrams dropped at RX for a bad frame check sequence. UDP has no
    /// recovery: these bytes are simply gone, like wire loss.
    pub fn dgrams_corrupted_dropped(&self) -> u64 {
        self.dgrams_corrupted_dropped
    }

    /// Datagrams discarded as duplicates of already-received segments.
    pub fn dgrams_duplicates_dropped(&self) -> u64 {
        self.demux.duplicates_discarded()
    }

    /// Bounds the engine to `window` in-flight (unserialized) datagrams,
    /// attributing waits to `resource` (conventionally `net.txcredit(nX)`).
    /// `None` (the default) keeps the historical ungated behavior.
    pub fn set_tx_credit_window(&mut self, window: Option<u32>, resource: impl Into<String>) {
        self.gate.set_window(window, resource);
    }

    /// The tx credit gate (for introspection in tests and diagnostics).
    pub fn tx_credit_gate(&self) -> &TxCreditGate {
        &self.gate
    }

    fn send_gated(&mut self, ctx: &mut Ctx<'_>, latency: Dur, frame: Frame) {
        let credit_ep = Endpoint::new(ctx.self_id(), ports::CREDIT);
        if let Some(frame) = self.gate.admit(frame, credit_ep) {
            ctx.send(self.net_tx, latency, frame);
        } else {
            ctx.stats().add("poe.udp.tx_credit_blocked", 1);
        }
    }

    fn latency(&self) -> Dur {
        Dur::from_ns(self.cfg.processing_ns)
    }

    /// Sends assembled segments to the wire (and completion notices for
    /// message-final segments).
    fn emit_segments(&mut self, ctx: &mut Ctx<'_>, segs: Vec<TxSegment>) {
        let latency = self.latency();
        for seg in segs {
            let (peer, peer_session) = self.sessions.peer(seg.cmd.session);
            self.dgrams_sent += 1;
            let dgram = UdpDgram {
                dst_session: peer_session,
                msg_id: seg.msg_id,
                offset: seg.offset,
                total: seg.cmd.len,
                data: seg.data.clone(),
            };
            let payload_bytes = seg.data.len() as u32 + UDP_SEG_HEADER_BYTES;
            let mut wire_span = SpanId::NONE;
            if ctx.spans_enabled() {
                wire_span = ctx.span_interval_attrs(
                    "poe.seg",
                    seg.cmd.span,
                    ctx.now(),
                    ctx.now() + latency,
                    &[Attr {
                        key: "bytes",
                        value: AttrValue::Bytes(seg.data.len() as u64),
                    }],
                );
            }
            let flow = ctx.flow_begin("poe.flow", wire_span);
            // `src` is stamped by the NetPort.
            let frame = Frame::new(accl_net::NodeAddr(0), peer, payload_bytes, dgram)
                .with_span(wire_span)
                .with_flow(flow);
            self.send_gated(ctx, latency, frame);
            if seg.last {
                ctx.send(
                    self.up.tx_done,
                    latency,
                    PoeTxDone {
                        session: seg.cmd.session,
                        len: seg.cmd.len,
                        tag: seg.cmd.tag,
                    },
                );
            }
        }
    }
}

impl Component for UdpPoe {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::TX_CMD => {
                let cmd = payload.downcast::<PoeTxCmd>();
                assert!(
                    matches!(cmd.kind, TxKind::Send),
                    "UDP engine supports only two-sided sends, got {:?}",
                    cmd.kind
                );
                let segs = self.assembler.push_cmd(cmd, self.cfg.mtu);
                self.emit_segments(ctx, segs);
            }
            ports::TX_DATA => {
                let chunk = payload.downcast::<StreamChunk>();
                let segs = self.assembler.push_data(chunk.data, self.cfg.mtu);
                self.emit_segments(ctx, segs);
            }
            ports::NET_RX => {
                let frame = payload.downcast::<Frame>();
                if !frame.fcs_ok() {
                    // Connectionless engine: a mangled datagram is
                    // indistinguishable from loss once dropped.
                    self.dgrams_corrupted_dropped += 1;
                    ctx.stats().add("poe.udp.dgrams_corrupted_dropped", 1);
                    accl_sim::trace_instant!(ctx, "poe.fcs_drop", frame.span);
                    return;
                }
                let wire_span = frame.span;
                let dgram = frame.body.downcast::<UdpDgram>();
                self.dgrams_received += 1;
                let latency = self.latency();
                let rx_span = if ctx.spans_enabled() {
                    ctx.span_interval("poe.rx", wire_span, ctx.now(), ctx.now() + latency)
                } else {
                    SpanId::NONE
                };
                ctx.flow_end("poe.flow", frame.flow, rx_span);
                let accepted = self.demux.accept(
                    dgram.dst_session,
                    dgram.msg_id,
                    dgram.offset,
                    dgram.total,
                    dgram.data,
                    rx_span,
                );
                let Some((meta, chunk)) = accepted else {
                    ctx.stats().add("poe.udp.dgrams_duplicates_dropped", 1);
                    return;
                };
                if let Some(meta) = meta {
                    ctx.send(self.up.rx_meta, latency, meta);
                }
                ctx.send(self.up.rx_data, latency, chunk);
            }
            ports::CREDIT => {
                let latency = self.latency();
                let credit_ep = Endpoint::new(ctx.self_id(), ports::CREDIT);
                match payload.try_downcast::<accl_net::CreditReturn>() {
                    Ok(ret) => {
                        for frame in self.gate.credit(ret.credits, credit_ep) {
                            ctx.send(self.net_tx, latency, frame);
                        }
                    }
                    Err(other) => {
                        let leak = other.downcast::<TxCreditLeak>();
                        self.gate.leak(leak.credits);
                        ctx.stats()
                            .add("poe.udp.credits_leaked", u64::from(leak.credits));
                        accl_sim::trace_instant!(ctx, "poe.credit_leak", SpanId::NONE);
                    }
                }
            }
            other => panic!("UDP engine has no port {other:?}"),
        }
    }

    fn parked_work(&self) -> Option<ParkedWork> {
        self.gate.parked_work()
    }

    fn resource_state(&self) -> Option<ResourceState> {
        self.gate.state()
    }

    fn state_digest(&self) -> Option<u64> {
        // Datagram totals plus the credit-window accounting: two runs that
        // moved the same traffic agree on all of these regardless of
        // same-timestamp delivery order.
        let mut h = 0u64;
        for v in [
            self.dgrams_sent,
            self.dgrams_received,
            self.dgrams_corrupted_dropped,
        ] {
            accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        }
        self.gate.fold_digest(&mut h);
        Some(h)
    }
}

// Re-exported for doc-links.
pub use crate::iface::RxChunk;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{PoeRxMeta, SessionId};
    use accl_net::{FaultPlan, NetConfig, Network};

    struct Bench {
        sim: Simulator,
        net: Network,
        poes: Vec<ComponentId>,
        metas: Vec<ComponentId>,
        datas: Vec<ComponentId>,
        dones: Vec<ComponentId>,
    }

    /// Two nodes, fully connected with one session each way (0<->0).
    fn bench(n: usize) -> Bench {
        let mut sim = Simulator::new(0);
        let net = Network::build(&mut sim, NetConfig::default(), n);
        let mut poes = Vec::new();
        let mut metas = Vec::new();
        let mut datas = Vec::new();
        let mut dones = Vec::new();
        for i in 0..n {
            let meta = sim.add(format!("meta{i}"), Mailbox::<PoeRxMeta>::new());
            let data = sim.add(format!("data{i}"), Mailbox::<RxChunk>::new());
            let done = sim.add(format!("done{i}"), Mailbox::<PoeTxDone>::new());
            let mut sessions = SessionTable::new();
            // Session j talks to node j (self entry unused).
            for j in 0..n {
                if i != j {
                    sessions.connect(SessionId(j as u32), net.addr(j), SessionId(i as u32));
                }
            }
            let poe = sim.add(
                format!("udp{i}"),
                UdpPoe::new(
                    UdpConfig::default(),
                    net.tx(i),
                    PoeUpward {
                        rx_meta: Endpoint::of(meta),
                        rx_data: Endpoint::of(data),
                        tx_done: Endpoint::of(done),
                    },
                    sessions,
                ),
            );
            net.attach_rx(&mut sim, i, Endpoint::new(poe, ports::NET_RX));
            poes.push(poe);
            metas.push(meta);
            datas.push(data);
            dones.push(done);
        }
        Bench {
            sim,
            net,
            poes,
            metas,
            datas,
            dones,
        }
    }

    fn send(b: &mut Bench, from: usize, to: usize, data: Vec<u8>, tag: u64) {
        let len = data.len() as u64;
        b.sim.post(
            Endpoint::new(b.poes[from], ports::TX_CMD),
            b.sim.now(),
            PoeTxCmd {
                session: SessionId(to as u32),
                len,
                kind: TxKind::Send,
                tag,
                span: SpanId::NONE,
            },
        );
        b.sim.post(
            Endpoint::new(b.poes[from], ports::TX_DATA),
            b.sim.now(),
            StreamChunk {
                data: Bytes::from(data),
                last: true,
            },
        );
    }

    #[test]
    fn message_crosses_the_wire_intact() {
        let mut b = bench(2);
        let msg: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 256) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 5);
        b.sim.run();
        let metas = b.sim.component::<Mailbox<PoeRxMeta>>(b.metas[1]);
        assert_eq!(metas.len(), 1);
        assert_eq!(metas.items()[0].1.len, 10_000);
        assert_eq!(metas.items()[0].1.session, SessionId(0));
        let mut got = vec![0u8; 10_000];
        let chunks = b.sim.component::<Mailbox<RxChunk>>(b.datas[1]);
        assert_eq!(chunks.len(), 3);
        for (_, c) in chunks.items() {
            got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
        }
        assert_eq!(got, msg);
        assert!(chunks.items()[2].1.last);
        // Sender saw a local completion.
        let dones = b.sim.component::<Mailbox<PoeTxDone>>(b.dones[0]);
        assert_eq!(dones.len(), 1);
        assert_eq!(dones.items()[0].1.tag, 5);
    }

    #[test]
    fn throughput_approaches_line_rate() {
        let mut b = bench(2);
        let len = 4 << 20; // 4 MiB
        send(&mut b, 0, 1, vec![9u8; len], 0);
        b.sim.run();
        let t = b
            .sim
            .component::<Mailbox<RxChunk>>(b.datas[1])
            .last_arrival()
            .unwrap();
        let gbps = (len as f64) * 8.0 / t.as_ns_f64();
        // Wire + per-segment header overhead keeps goodput just under 100G.
        assert!(gbps > 90.0 && gbps < 100.0, "goodput={gbps:.1} Gb/s");
    }

    #[test]
    fn loss_means_message_never_completes() {
        let mut b = bench(2);
        b.net
            .set_fault_plan(&mut b.sim, FaultPlan::drop_frames([1]));
        send(&mut b, 0, 1, vec![1u8; 10_000], 0);
        b.sim.run();
        let chunks = b.sim.component::<Mailbox<RxChunk>>(b.datas[1]);
        // 3 segments sent, middle one dropped, no recovery: 2 arrive and
        // none is marked last.
        assert_eq!(chunks.len(), 2);
        assert!(chunks.values().all(|c| !c.last));
    }

    #[test]
    fn corruption_is_typed_loss() {
        let mut b = bench(2);
        b.net
            .set_fault_plan(&mut b.sim, FaultPlan::corrupt_frames([1]));
        send(&mut b, 0, 1, vec![1u8; 10_000], 0);
        b.sim.run();
        // Same observable shape as loss — but the receiver knows why.
        let chunks = b.sim.component::<Mailbox<RxChunk>>(b.datas[1]);
        assert_eq!(chunks.len(), 2);
        assert!(chunks.values().all(|c| !c.last));
        let poe = b.sim.component::<UdpPoe>(b.poes[1]);
        assert_eq!(poe.dgrams_corrupted_dropped(), 1);
        assert_eq!(poe.dgrams_received(), 2);
    }

    #[test]
    fn duplicates_are_discarded_and_counted() {
        let mut b = bench(2);
        b.net
            .set_fault_plan(&mut b.sim, FaultPlan::duplicate_frames([0, 2]));
        let msg: Vec<u8> = (0..10_000u32).map(|i| (i * 3 % 256) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 0);
        b.sim.run();
        let chunks = b.sim.component::<Mailbox<RxChunk>>(b.datas[1]);
        assert_eq!(chunks.len(), 3, "duplicates must not reach the app");
        let mut got = vec![0u8; msg.len()];
        for (_, c) in chunks.items() {
            got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
        }
        assert_eq!(got, msg);
        let poe = b.sim.component::<UdpPoe>(b.poes[1]);
        assert_eq!(poe.dgrams_duplicates_dropped(), 2);
    }

    #[test]
    fn concurrent_messages_to_different_peers() {
        let mut b = bench(3);
        send(&mut b, 0, 1, vec![1u8; 5000], 1);
        send(&mut b, 0, 2, vec![2u8; 5000], 2);
        b.sim.run();
        for dst in [1, 2] {
            let metas = b.sim.component::<Mailbox<PoeRxMeta>>(b.metas[dst]);
            assert_eq!(metas.len(), 1, "dst={dst}");
        }
        assert_eq!(b.sim.component::<UdpPoe>(b.poes[0]).dgrams_sent(), 4);
    }

    #[test]
    fn tx_credit_window_paces_datagrams_without_loss() {
        let mut b = bench(2);
        b.sim
            .component_mut::<UdpPoe>(b.poes[0])
            .set_tx_credit_window(Some(1), "net.txcredit(n0)");
        let msg: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 256) as u8).collect();
        send(&mut b, 0, 1, msg.clone(), 5);
        b.sim.run();
        let mut got = vec![0u8; msg.len()];
        let chunks = b.sim.component::<Mailbox<RxChunk>>(b.datas[1]);
        assert_eq!(chunks.len(), 3, "credit pacing must not lose datagrams");
        for (_, c) in chunks.items() {
            got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
        }
        assert_eq!(got, msg);
        let gate = b.sim.component::<UdpPoe>(b.poes[0]).tx_credit_gate();
        assert!(!gate.blocked());
        assert_eq!(gate.in_flight(), 0, "all credits returned");
    }

    #[test]
    #[should_panic(expected = "only two-sided sends")]
    fn write_command_is_rejected() {
        let mut b = bench(2);
        b.sim.post(
            Endpoint::new(b.poes[0], ports::TX_CMD),
            Time::ZERO,
            PoeTxCmd {
                session: SessionId(1),
                len: 4,
                kind: TxKind::Write { remote_addr: 0 },
                tag: 0,
                span: SpanId::NONE,
            },
        );
        b.sim.run();
    }
}
