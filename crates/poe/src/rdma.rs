//! RDMA protocol offload engine.
//!
//! Models the Coyote RDMA stack (RoCE-style) the paper builds on: queue
//! pairs, two-sided SEND verbs delivered through the Rx meta/data
//! interfaces, one-sided WRITE verbs placed directly into the passive
//! side's virtualized memory (bypassing the CCLO, §4.3), and token-based
//! flow control — the property that makes rendezvous collectives with
//! tree/recursive-doubling patterns safe on this transport (§4.4.4).

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;

use accl_mem::bus::{ports as mem_ports, MemAddr, MemWriteReq};
use accl_net::Frame;
use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, SpanId};

use crate::iface::{
    ports, PoeSessionError, PoeTxCmd, PoeTxDone, PoeUpward, RxDemux, SessionErrorKind, SessionId,
    SessionTable, StreamChunk, TxAssembler, TxCreditGate, TxCreditLeak, TxKind, TxSegment,
};

/// Token-starvation watchdog timer (self-addressed).
#[derive(Debug, Clone, Copy)]
struct StarveTimer {
    qp: SessionId,
    gen: u64,
}

/// Retransmission-timeout timer (self-addressed).
#[derive(Debug, Clone, Copy)]
struct RtoTimer {
    qp: SessionId,
    gen: u64,
}

/// RDMA wire protocol data units.
#[derive(Debug, Clone)]
pub enum RdmaPdu {
    /// Two-sided SEND fragment.
    Send {
        /// Receiver-local queue pair.
        dst_qp: SessionId,
        /// Packet sequence number of the first MTU fragment in this frame
        /// (per direction per QP, counted in MTU-fragment units).
        psn: u64,
        /// Sender-assigned message id.
        msg_id: u64,
        /// Fragment offset within the message.
        offset: u64,
        /// Total message length.
        total: u64,
        /// Fragment payload.
        data: Bytes,
    },
    /// One-sided WRITE fragment.
    Write {
        /// Receiver-local queue pair.
        dst_qp: SessionId,
        /// Packet sequence number of the first MTU fragment in this frame.
        psn: u64,
        /// Message id (distinguishes interleaved writes for stream delivery).
        msg_id: u64,
        /// Base virtual address of the destination buffer.
        addr: u64,
        /// Fragment offset within the message.
        offset: u64,
        /// Total message length.
        total: u64,
        /// Fragment payload.
        data: Bytes,
    },
    /// Cumulative acknowledgement doubling as flow-control credit return.
    Credit {
        /// Receiver-local queue pair (the original sender's side).
        dst_qp: SessionId,
        /// Highest in-order PSN received, exclusive: everything below this
        /// landed and its tokens are free again.
        ack_psn: u64,
    },
    /// Out-of-order arrival report: asks the sender to go back to
    /// `expected_psn` and retransmit from there.
    Nak {
        /// Receiver-local queue pair (the original sender's side).
        dst_qp: SessionId,
        /// Next PSN the receiver expects (doubles as a cumulative ack).
        expected_psn: u64,
    },
}

/// Where the passive side puts incoming WRITE payloads.
#[derive(Debug, Clone, Copy)]
pub enum WriteDelivery {
    /// Into the node's virtualized memory through the memory bus (default;
    /// the Coyote configuration of Fig. 4).
    Memory,
    /// Streamed to an application kernel endpoint (the compile-time
    /// datapath option of §4.3).
    Stream,
}

/// Configuration of the RDMA engine.
#[derive(Debug, Clone, Copy)]
pub struct RdmaConfig {
    /// Maximum payload per fragment.
    pub mtu: u32,
    /// Pipelined per-fragment processing latency, ns.
    pub processing_ns: u64,
    /// Token window: maximum in-flight (uncredited) fragments per QP.
    pub token_window: u32,
    /// Receiver returns credits in batches of this many fragments.
    pub credit_batch: u32,
    /// Passive-side WRITE delivery target.
    pub write_delivery: WriteDelivery,
    /// A queue pair stalled on tokens for this long with no credit arriving
    /// transitions to the error state (fail-stop peer detection). Credit
    /// round trips are a few µs here, so the default is very conservative.
    pub starvation_timeout_us: u64,
    /// MTU fragments coalesced per simulation event (≥ 1).
    ///
    /// With `coalesce = k`, one Tx event carries up to `k` MTU fragments
    /// in a single [`Frame`]; tokens and credits are accounted **per
    /// MTU**, so the flow-control window, wire bytes (headers are charged
    /// per fragment) and timing all match the one-event-per-fragment
    /// schedule. The default of 1 reproduces the historical behaviour.
    pub coalesce: u32,
    /// Initial retransmission timeout, µs. Doubles on each consecutive
    /// go-back-N round without ack progress (capped at 64×). Must be well
    /// below `starvation_timeout_us` for transient loss to be repaired
    /// before the fail-stop watchdog gives up, and the cumulative ladder
    /// to `max_retransmits` must exceed it so a genuinely dead peer is
    /// diagnosed as starvation, not as a retransmission failure.
    pub rto_us: u64,
    /// Consecutive go-back-N rounds without cumulative-ack progress before
    /// the QP transitions to the error state.
    pub max_retransmits: u32,
}

impl Default for RdmaConfig {
    fn default() -> Self {
        RdmaConfig {
            mtu: accl_net::DEFAULT_MTU,
            processing_ns: 60,
            token_window: 64,
            credit_batch: 16,
            write_delivery: WriteDelivery::Memory,
            starvation_timeout_us: 1_000,
            coalesce: 1,
            rto_us: 100,
            max_retransmits: 8,
        }
    }
}

/// MTU-fragment tokens a payload of `len` bytes occupies (free function so
/// call sites holding field borrows can use it).
fn frag_tokens(mtu: u32, len: usize) -> u64 {
    (len as u64).div_ceil(u64::from(mtu)).max(1)
}

/// Per-queue-pair reliable-delivery sender state (go-back-N).
#[derive(Debug, Default)]
struct QpTx {
    /// PSN of the next fresh fragment, in MTU-fragment units.
    next_psn: u64,
    /// Cumulative PSN acknowledged by the peer (exclusive).
    acked_psn: u64,
    /// Transmitted, unacknowledged segments with their start PSNs.
    unacked: VecDeque<(u64, TxSegment)>,
    /// Consecutive retransmission rounds without ack progress.
    retries: u32,
    /// RTO-timer generation; a pending timer with an older gen is stale.
    rto_gen: u64,
}

/// The RDMA protocol offload engine component.
pub struct RdmaPoe {
    cfg: RdmaConfig,
    net_tx: Endpoint,
    up: PoeUpward,
    sessions: SessionTable,
    /// The local memory bus, for passive-side WRITE placement.
    mem_bus: Option<ComponentId>,
    /// Stream endpoint for [`WriteDelivery::Stream`].
    write_stream_to: Option<Endpoint>,
    assembler: TxAssembler,
    demux: RxDemux,
    write_demux: RxDemux,
    /// Per-QP reliable sender state (window accounting + go-back-N).
    tx: BTreeMap<SessionId, QpTx>,
    /// Fragments waiting for tokens, per QP.
    stalled: BTreeMap<SessionId, VecDeque<TxSegment>>,
    /// Receiver-side next expected PSN per local QP.
    expected_psn: BTreeMap<SessionId, u64>,
    /// `expected_psn` value of the last NAK sent per local QP; one NAK per
    /// gap, not one per out-of-order arrival behind it.
    last_nak: BTreeMap<SessionId, u64>,
    /// Receiver-side pending credit counts per peer QP.
    owed_credits: BTreeMap<SessionId, u32>,
    /// Starvation-timer generation per QP; bumped on every credit so a
    /// pending timer from before the progress is recognized as stale.
    starve_gen: BTreeMap<SessionId, u64>,
    /// Queue pairs in the error state.
    qp_error: BTreeMap<SessionId, SessionErrorKind>,
    gate: TxCreditGate,
    frames_sent: u64,
    frames_received: u64,
    retransmissions: u64,
    frames_corrupted_discarded: u64,
}

impl RdmaPoe {
    /// Creates an RDMA engine.
    pub fn new(cfg: RdmaConfig, net_tx: Endpoint, up: PoeUpward, sessions: SessionTable) -> Self {
        RdmaPoe {
            cfg,
            net_tx,
            up,
            sessions,
            mem_bus: None,
            write_stream_to: None,
            assembler: TxAssembler::new(),
            demux: RxDemux::new(),
            write_demux: RxDemux::new(),
            tx: BTreeMap::new(),
            stalled: BTreeMap::new(),
            expected_psn: BTreeMap::new(),
            last_nak: BTreeMap::new(),
            owed_credits: BTreeMap::new(),
            starve_gen: BTreeMap::new(),
            qp_error: BTreeMap::new(),
            gate: TxCreditGate::new(),
            frames_sent: 0,
            frames_received: 0,
            retransmissions: 0,
            frames_corrupted_discarded: 0,
        }
    }

    /// Attaches the local memory bus used for passive WRITE placement.
    pub fn with_mem_bus(mut self, bus: ComponentId) -> Self {
        self.mem_bus = Some(bus);
        self
    }

    /// Routes passive WRITE payloads to an application kernel stream.
    pub fn with_write_stream(mut self, to: Endpoint) -> Self {
        self.write_stream_to = Some(to);
        self
    }

    /// Fragments transmitted so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Fragments received so far.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Go-back-N segment retransmissions so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Frames dropped at RX for a bad frame check sequence.
    pub fn frames_corrupted_discarded(&self) -> u64 {
        self.frames_corrupted_discarded
    }

    /// Queue pairs in the error state, in QP order (the map is keyed by
    /// QP, so iteration is already ordered).
    pub fn failed_qps(&self) -> Vec<(SessionId, SessionErrorKind)> {
        self.qp_error.iter().map(|(&q, &k)| (q, k)).collect()
    }

    /// Re-establishes `qp` after a peer restart: drops the error state and
    /// every per-QP protocol variable (window accounting, PSN cursors,
    /// stalled fragments, owed credits) so the next message starts a fresh
    /// conversation with the peer's new incarnation. Both directions of a
    /// QP pair must be reinstated together — the cluster's rejoin path
    /// does that.
    pub fn reinstate_qp(&mut self, qp: SessionId) {
        self.qp_error.remove(&qp);
        self.tx.remove(&qp);
        self.stalled.remove(&qp);
        self.expected_psn.remove(&qp);
        self.last_nak.remove(&qp);
        self.owed_credits.remove(&qp);
        self.starve_gen.remove(&qp);
    }

    /// Bounds the engine to `window` in-flight (unserialized) data frames,
    /// attributing waits to `resource` (conventionally `net.txcredit(nX)`).
    /// Credits and NAKs bypass the gate — gating the messages that release
    /// the peer's tokens would deadlock the protocol itself. `None` (the
    /// default) keeps the historical ungated behavior.
    pub fn set_tx_credit_window(&mut self, window: Option<u32>, resource: impl Into<String>) {
        self.gate.set_window(window, resource);
    }

    /// The tx credit gate (for introspection in tests and diagnostics).
    pub fn tx_credit_gate(&self) -> &TxCreditGate {
        &self.gate
    }

    fn send_gated(&mut self, ctx: &mut Ctx<'_>, latency: Dur, frame: Frame) {
        let credit_ep = Endpoint::new(ctx.self_id(), ports::CREDIT);
        if let Some(frame) = self.gate.admit(frame, credit_ep) {
            ctx.send(self.net_tx, latency, frame);
        } else {
            ctx.stats().add("poe.rdma.tx_credit_blocked", 1);
        }
    }

    fn latency(&self) -> Dur {
        Dur::from_ns(self.cfg.processing_ns)
    }

    /// MTU-fragment tokens a segment of `len` payload bytes occupies.
    fn tokens_for(&self, len: usize) -> u32 {
        frag_tokens(self.cfg.mtu, len)
            .try_into()
            .expect("token count overflow")
    }

    /// In-flight (unacknowledged) fragment tokens on `qp`.
    fn inflight_tokens(&self, qp: SessionId) -> u32 {
        self.tx
            .get(&qp)
            .map_or(0, |st| (st.next_psn - st.acked_psn) as u32)
    }

    fn arm_starve_timer(&mut self, ctx: &mut Ctx<'_>, qp: SessionId) {
        let gen = *self.starve_gen.entry(qp).or_insert(0);
        ctx.send_self(
            ports::TIMER,
            Dur::from_us(self.cfg.starvation_timeout_us),
            StarveTimer { qp, gen },
        );
    }

    fn arm_rto(&mut self, ctx: &mut Ctx<'_>, qp: SessionId) {
        let Some(st) = self.tx.get(&qp) else { return };
        let backoff = st.retries.min(6);
        ctx.send_self(
            ports::TIMER,
            Dur::from_us(self.cfg.rto_us << backoff),
            RtoTimer {
                qp,
                gen: st.rto_gen,
            },
        );
    }

    /// Sends or stalls a segment depending on the QP's token budget.
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, seg: TxSegment) {
        let qp = seg.cmd.session;
        if let Some(&kind) = self.qp_error.get(&qp) {
            // Error-state QP: discard, completing the command in error once
            // its final fragment is consumed.
            if seg.last {
                ctx.send(
                    self.up.tx_done,
                    self.latency(),
                    PoeSessionError {
                        session: qp,
                        kind,
                        tag: Some(seg.cmd.tag),
                    },
                );
            }
            return;
        }
        let tokens = self.tokens_for(seg.data.len());
        let inflight = self.inflight_tokens(qp);
        // Tokens are per MTU fragment, so a coalesced segment charges the
        // same window budget its fragments would. A segment wider than the
        // whole window still goes out when the QP is idle (no deadlock).
        let fits = inflight + tokens <= self.cfg.token_window || inflight == 0;
        if !fits || self.stalled.get(&qp).is_some_and(|q| !q.is_empty()) {
            let q = self.stalled.entry(qp).or_default();
            let first = q.is_empty();
            q.push_back(seg);
            if first {
                self.arm_starve_timer(ctx, qp);
            }
            return;
        }
        self.transmit(ctx, seg);
    }

    /// Transitions `qp` to the error state: drops its stalled fragments and
    /// emits the session-fatal error completion plus one error completion
    /// per command whose final fragment was dropped.
    fn fail_qp(&mut self, ctx: &mut Ctx<'_>, qp: SessionId, kind: SessionErrorKind) {
        let latency = self.latency();
        self.qp_error.insert(qp, kind);
        *self.starve_gen.entry(qp).or_insert(0) += 1;
        if let Some(st) = self.tx.get_mut(&qp) {
            // Transmitted `last` fragments already reported local success;
            // only never-transmitted (stalled) commands complete in error.
            st.unacked.clear();
            st.rto_gen += 1;
        }
        ctx.stats().add("poe.rdma.qp_errors", 1);
        ctx.send(
            self.up.tx_done,
            latency,
            PoeSessionError {
                session: qp,
                kind,
                tag: None,
            },
        );
        for seg in self.stalled.remove(&qp).unwrap_or_default() {
            if seg.last {
                ctx.send(
                    self.up.tx_done,
                    latency,
                    PoeSessionError {
                        session: qp,
                        kind,
                        tag: Some(seg.cmd.tag),
                    },
                );
            }
        }
    }

    /// First transmission of a segment: assigns its PSN, charges the token
    /// window, buffers it for go-back-N retransmission, and reports local
    /// completion on the final fragment.
    fn transmit(&mut self, ctx: &mut Ctx<'_>, seg: TxSegment) {
        let qp = seg.cmd.session;
        let fragments = self.tokens_for(seg.data.len());
        let st = self.tx.entry(qp).or_default();
        let psn = st.next_psn;
        st.next_psn += u64::from(fragments);
        let was_idle = st.unacked.is_empty();
        st.unacked.push_back((psn, seg.clone()));
        if was_idle {
            st.rto_gen += 1;
            self.arm_rto(ctx, qp);
        }
        self.send_on_wire(ctx, &seg, psn);
        if seg.last {
            ctx.send(
                self.up.tx_done,
                self.latency(),
                PoeTxDone {
                    session: qp,
                    len: seg.cmd.len,
                    tag: seg.cmd.tag,
                },
            );
        }
    }

    /// Emits one data frame carrying `seg` at `psn` (fresh or retransmit).
    fn send_on_wire(&mut self, ctx: &mut Ctx<'_>, seg: &TxSegment, psn: u64) {
        let (peer, peer_qp) = self.sessions.peer(seg.cmd.session);
        let latency = self.latency();
        let pdu = match seg.cmd.kind {
            TxKind::Send => RdmaPdu::Send {
                dst_qp: peer_qp,
                psn,
                msg_id: seg.msg_id,
                offset: seg.offset,
                total: seg.cmd.len,
                data: seg.data.clone(),
            },
            TxKind::Write { remote_addr } => RdmaPdu::Write {
                dst_qp: peer_qp,
                psn,
                msg_id: seg.msg_id,
                addr: remote_addr,
                offset: seg.offset,
                total: seg.cmd.len,
                data: seg.data.clone(),
            },
        };
        let fragments = self.tokens_for(seg.data.len());
        self.frames_sent += u64::from(fragments);
        let mut wire_span = SpanId::NONE;
        if ctx.spans_enabled() {
            wire_span = ctx.span_interval_attrs(
                "poe.seg",
                seg.cmd.span,
                ctx.now(),
                ctx.now() + latency,
                &[Attr {
                    key: "bytes",
                    value: AttrValue::Bytes(seg.data.len() as u64),
                }],
            );
        }
        let flow = ctx.flow_begin("poe.flow", wire_span);
        let frame = Frame::new(accl_net::NodeAddr(0), peer, seg.data.len() as u32, pdu)
            .with_segments(fragments)
            .with_span(wire_span)
            .with_flow(flow);
        self.send_gated(ctx, latency, frame);
    }

    /// Go-back-N: retransmits every unacknowledged segment in PSN order.
    fn go_back(&mut self, ctx: &mut Ctx<'_>, qp: SessionId) {
        let resend: Vec<(u64, TxSegment)> = self
            .tx
            .get(&qp)
            .map(|st| st.unacked.iter().cloned().collect())
            .unwrap_or_default();
        for (psn, seg) in &resend {
            self.retransmissions += 1;
            ctx.stats().add("poe.rdma.retransmissions", 1);
            self.send_on_wire(ctx, seg, *psn);
        }
    }

    /// One retransmission round (NAK- or RTO-triggered); fails the QP when
    /// the consecutive-round budget is exhausted.
    fn retry_round(&mut self, ctx: &mut Ctx<'_>, qp: SessionId) {
        let exhausted = {
            let st = self.tx.entry(qp).or_default();
            st.retries += 1;
            st.rto_gen += 1;
            st.retries > self.cfg.max_retransmits
        };
        if exhausted {
            self.fail_qp(ctx, qp, SessionErrorKind::RetransmitLimit);
            return;
        }
        self.go_back(ctx, qp);
        self.arm_rto(ctx, qp);
    }

    /// Accumulates receiver-side credits (in MTU-fragment units) and
    /// returns them in batches as cumulative acks.
    fn credit(&mut self, ctx: &mut Ctx<'_>, src_qp: SessionId, units: u32, flush: bool) {
        let owed = self.owed_credits.entry(src_qp).or_insert(0);
        *owed += units;
        if *owed >= self.cfg.credit_batch || flush {
            core::mem::take(owed);
            let ack_psn = self.expected_psn.get(&src_qp).copied().unwrap_or(0);
            let (peer, peer_qp) = self.sessions.peer(src_qp);
            let latency = self.latency();
            let frame = Frame::new(
                accl_net::NodeAddr(0),
                peer,
                0,
                RdmaPdu::Credit {
                    dst_qp: peer_qp,
                    ack_psn,
                },
            );
            ctx.send(self.net_tx, latency, frame);
        }
    }

    fn on_credit(&mut self, ctx: &mut Ctx<'_>, qp: SessionId, ack_psn: u64) {
        if self.qp_error.contains_key(&qp) {
            return;
        }
        let mtu = self.cfg.mtu;
        let advanced = {
            let st = self.tx.entry(qp).or_default();
            if ack_psn <= st.acked_psn {
                false // stale duplicate ack
            } else {
                st.acked_psn = ack_psn;
                while let Some((start, seg)) = st.unacked.front() {
                    if start + frag_tokens(mtu, seg.data.len()) <= ack_psn {
                        st.unacked.pop_front();
                    } else {
                        break;
                    }
                }
                // Progress: reset the retry ladder, void pending timers.
                st.retries = 0;
                st.rto_gen += 1;
                true
            }
        };
        if !advanced {
            return;
        }
        // Any ack progress also resets the starvation watchdog.
        *self.starve_gen.entry(qp).or_insert(0) += 1;
        if self.tx.get(&qp).is_some_and(|st| !st.unacked.is_empty()) {
            self.arm_rto(ctx, qp);
        }
        // Release stalled segments into the freed window.
        loop {
            let inflight = self.inflight_tokens(qp);
            let Some(head_len) = self
                .stalled
                .get(&qp)
                .and_then(|q| q.front())
                .map(|s| s.data.len())
            else {
                break;
            };
            let tokens = self.tokens_for(head_len);
            if inflight + tokens > self.cfg.token_window && inflight > 0 {
                break;
            }
            let seg = self.stalled.get_mut(&qp).unwrap().pop_front().unwrap();
            self.transmit(ctx, seg);
        }
        if self.stalled.get(&qp).is_some_and(|q| !q.is_empty()) {
            self.arm_starve_timer(ctx, qp);
        }
    }

    fn on_nak(&mut self, ctx: &mut Ctx<'_>, qp: SessionId, expected_psn: u64) {
        if self.qp_error.contains_key(&qp) {
            return;
        }
        // A NAK carries a cumulative ack: everything below `expected`
        // landed, so bank that progress first.
        if expected_psn > self.tx.get(&qp).map_or(0, |st| st.acked_psn) {
            self.on_credit(ctx, qp, expected_psn);
        }
        if self.qp_error.contains_key(&qp) {
            return;
        }
        if self.tx.get(&qp).is_some_and(|st| !st.unacked.is_empty()) {
            self.retry_round(ctx, qp);
        }
    }

    /// PSN gate for arriving data fragments. Returns `true` when the frame
    /// is the next expected in-order delivery; otherwise discards it: a
    /// future PSN (the gap left by a lost or corrupted frame) triggers one
    /// NAK per gap, and a past PSN (go-back-N overshoot or a wire
    /// duplicate) refreshes the peer's cumulative ack so a lost credit
    /// cannot wedge the sender.
    fn rx_in_order(&mut self, ctx: &mut Ctx<'_>, qp: SessionId, psn: u64, fragments: u32) -> bool {
        let expected = *self.expected_psn.entry(qp).or_insert(0);
        if psn == expected {
            self.expected_psn
                .insert(qp, expected + u64::from(fragments));
            self.last_nak.remove(&qp);
            return true;
        }
        let latency = self.latency();
        let (peer, peer_qp) = self.sessions.peer(qp);
        if psn > expected {
            ctx.stats().add("poe.rdma.rx_gap_naks", 1);
            if self.last_nak.get(&qp) != Some(&expected) {
                self.last_nak.insert(qp, expected);
                let frame = Frame::new(
                    accl_net::NodeAddr(0),
                    peer,
                    0,
                    RdmaPdu::Nak {
                        dst_qp: peer_qp,
                        expected_psn: expected,
                    },
                );
                ctx.send(self.net_tx, latency, frame);
            }
        } else {
            ctx.stats().add("poe.rdma.rx_duplicates", 1);
            let frame = Frame::new(
                accl_net::NodeAddr(0),
                peer,
                0,
                RdmaPdu::Credit {
                    dst_qp: peer_qp,
                    ack_psn: expected,
                },
            );
            ctx.send(self.net_tx, latency, frame);
        }
        false
    }
}

impl Component for RdmaPoe {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::TX_CMD => {
                let cmd = payload.downcast::<PoeTxCmd>();
                let unit = self.cfg.mtu.saturating_mul(self.cfg.coalesce.max(1));
                let segs = self.assembler.push_cmd(cmd, unit);
                for seg in segs {
                    self.dispatch(ctx, seg);
                }
            }
            ports::TX_DATA => {
                let chunk = payload.downcast::<StreamChunk>();
                // Segment at `coalesce` MTUs per event; tokens, credits and
                // wire headers stay per-MTU (see `RdmaConfig::coalesce`).
                let unit = self.cfg.mtu.saturating_mul(self.cfg.coalesce.max(1));
                let segs = self.assembler.push_data(chunk.data, unit);
                for seg in segs {
                    self.dispatch(ctx, seg);
                }
            }
            ports::NET_RX => {
                let frame = payload.downcast::<Frame>();
                if !frame.fcs_ok() {
                    // A failed check taints every header field: drop the
                    // whole frame and let go-back-N close the PSN gap.
                    self.frames_corrupted_discarded += 1;
                    ctx.stats().add("poe.rdma.frames_corrupted_discarded", 1);
                    accl_sim::trace_instant!(ctx, "poe.fcs_drop", frame.span);
                    return;
                }
                let wire_span = frame.span;
                let fragments = frame.segments;
                self.frames_received += u64::from(fragments);
                let latency = self.latency();
                let rx_span = if ctx.spans_enabled() && !wire_span.is_none() {
                    ctx.span_interval("poe.rx", wire_span, ctx.now(), ctx.now() + latency)
                } else {
                    SpanId::NONE
                };
                ctx.flow_end("poe.flow", frame.flow, rx_span);
                match frame.body.downcast::<RdmaPdu>() {
                    RdmaPdu::Send {
                        dst_qp,
                        psn,
                        msg_id,
                        offset,
                        total,
                        data,
                    } => {
                        if !self.rx_in_order(ctx, dst_qp, psn, fragments) {
                            return;
                        }
                        let units = self.tokens_for(data.len());
                        // The PSN gate admits each fragment exactly once, so
                        // the demux cannot see duplicates.
                        let (meta, chunk) = self
                            .demux
                            .accept(dst_qp, msg_id, offset, total, data, rx_span)
                            .expect("in-order PSN admitted a duplicate");
                        let flush = chunk.last;
                        if let Some(meta) = meta {
                            ctx.send(self.up.rx_meta, latency, meta);
                        }
                        ctx.send(self.up.rx_data, latency, chunk);
                        self.credit(ctx, dst_qp, units, flush);
                    }
                    RdmaPdu::Write {
                        dst_qp,
                        psn,
                        msg_id,
                        addr,
                        offset,
                        total,
                        data,
                    } => {
                        if !self.rx_in_order(ctx, dst_qp, psn, fragments) {
                            return;
                        }
                        let units = self.tokens_for(data.len());
                        match self.cfg.write_delivery {
                            WriteDelivery::Memory => {
                                let bus = self.mem_bus.unwrap_or_else(|| {
                                    panic!("RDMA WRITE received but no memory bus attached")
                                });
                                ctx.send(
                                    Endpoint::new(bus, mem_ports::WRITE),
                                    latency,
                                    MemWriteReq {
                                        addr: MemAddr::Virt(addr + offset),
                                        data: data.clone(),
                                        done_to: None,
                                        tag: msg_id,
                                        span: rx_span,
                                    },
                                );
                                // The CCLO is bypassed; only flow control sees
                                // the fragment.
                                let last = offset + data.len() as u64 == total;
                                self.credit(ctx, dst_qp, units, last);
                            }
                            WriteDelivery::Stream => {
                                let to = self.write_stream_to.unwrap_or_else(|| {
                                    panic!("stream WRITE delivery configured without endpoint")
                                });
                                let (meta, chunk) = self
                                    .write_demux
                                    .accept(dst_qp, msg_id, offset, total, data, rx_span)
                                    .expect("in-order PSN admitted a duplicate");
                                let flush = chunk.last;
                                if let Some(meta) = meta {
                                    ctx.send(self.up.rx_meta, latency, meta);
                                }
                                ctx.send(to, latency, chunk);
                                self.credit(ctx, dst_qp, units, flush);
                            }
                        }
                    }
                    RdmaPdu::Credit { dst_qp, ack_psn } => {
                        self.on_credit(ctx, dst_qp, ack_psn);
                    }
                    RdmaPdu::Nak {
                        dst_qp,
                        expected_psn,
                    } => {
                        self.on_nak(ctx, dst_qp, expected_psn);
                    }
                }
            }
            ports::TIMER => match payload.try_downcast::<StarveTimer>() {
                Ok(timer) => {
                    let stale = self.starve_gen.get(&timer.qp).copied().unwrap_or(0) != timer.gen;
                    let still_stalled = self.stalled.get(&timer.qp).is_some_and(|q| !q.is_empty());
                    if stale || !still_stalled || self.qp_error.contains_key(&timer.qp) {
                        return;
                    }
                    self.fail_qp(ctx, timer.qp, SessionErrorKind::TokenStarvation);
                }
                Err(other) => {
                    let timer = other.downcast::<RtoTimer>();
                    let live = self
                        .tx
                        .get(&timer.qp)
                        .is_some_and(|st| st.rto_gen == timer.gen && !st.unacked.is_empty());
                    if !live || self.qp_error.contains_key(&timer.qp) {
                        return;
                    }
                    ctx.stats().add("poe.rdma.rto_fired", 1);
                    self.retry_round(ctx, timer.qp);
                }
            },
            ports::CREDIT => {
                let latency = self.latency();
                let credit_ep = Endpoint::new(ctx.self_id(), ports::CREDIT);
                match payload.try_downcast::<accl_net::CreditReturn>() {
                    Ok(ret) => {
                        for frame in self.gate.credit(ret.credits, credit_ep) {
                            ctx.send(self.net_tx, latency, frame);
                        }
                    }
                    Err(other) => {
                        let leak = other.downcast::<TxCreditLeak>();
                        self.gate.leak(leak.credits);
                        ctx.stats()
                            .add("poe.rdma.credits_leaked", u64::from(leak.credits));
                        accl_sim::trace_instant!(ctx, "poe.credit_leak", SpanId::NONE);
                    }
                }
            }
            other => panic!("RDMA engine has no port {other:?}"),
        }
    }

    fn resource_state(&self) -> Option<ResourceState> {
        self.gate.state()
    }

    fn parked_work(&self) -> Option<ParkedWork> {
        // Frames stuck behind a dry tx credit window block everything else.
        if let Some(parked) = self.gate.parked_work() {
            return Some(parked);
        }
        // Token-starved queue pairs (lowest QP first, deterministically).
        let starved = self
            .stalled
            .iter()
            .filter(|(qp, q)| !q.is_empty() && !self.qp_error.contains_key(qp))
            .min_by_key(|(&qp, _)| qp);
        if let Some((&qp, q)) = starved {
            return Some(ParkedWork {
                rank: None,
                op: format!("rdma qp {}: {} fragments token-starved", qp.0, q.len()),
            });
        }
        // Unacknowledged fragments whose retransmission clock ran dry.
        let unacked = self
            .tx
            .iter()
            .filter(|(qp, st)| !st.unacked.is_empty() && !self.qp_error.contains_key(qp))
            .min_by_key(|(&qp, _)| qp);
        if let Some((&qp, st)) = unacked {
            return Some(ParkedWork {
                rank: None,
                op: format!(
                    "rdma qp {}: {} segments unacked past psn {}",
                    qp.0,
                    st.unacked.len(),
                    st.acked_psn
                ),
            });
        }
        // Commands still waiting for their stream bytes.
        let queued = self.assembler.queued_cmds();
        if queued > 0 {
            return Some(ParkedWork {
                rank: None,
                op: format!("rdma tx: {queued} commands awaiting stream data"),
            });
        }
        // Partially received messages that will never complete.
        let partial = self.demux.inflight() + self.write_demux.inflight();
        if partial > 0 {
            return Some(ParkedWork {
                rank: None,
                op: format!("rdma rx: {partial} partial messages"),
            });
        }
        None
    }

    fn state_digest(&self) -> Option<u64> {
        // Frame totals, the go-back-N positions of every queue pair, the
        // receiver PSN horizon, error-state population, and the credit
        // window (BTreeMap order is canonical).
        let mut h = 0u64;
        let mut fold = |v: u64| accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        for v in [
            self.frames_sent,
            self.frames_received,
            self.retransmissions,
            self.frames_corrupted_discarded,
        ] {
            fold(v);
        }
        for (qp, st) in &self.tx {
            fold(u64::from(qp.0));
            fold(st.next_psn);
            fold(st.acked_psn);
            fold(st.unacked.len() as u64);
        }
        for (qp, psn) in &self.expected_psn {
            fold(u64::from(qp.0));
            fold(*psn);
        }
        fold(self.qp_error.len() as u64);
        self.gate.fold_digest(&mut h);
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{CompletionLog, PoeRxMeta, RxChunk};
    use accl_mem::{MemBusConfig, MemTarget, MemoryBus};
    use accl_net::{NetConfig, Network};

    struct Bench {
        sim: Simulator,
        net: Network,
        poes: Vec<ComponentId>,
        metas: Vec<ComponentId>,
        datas: Vec<ComponentId>,
        dones: Vec<ComponentId>,
        buses: Vec<ComponentId>,
    }

    fn bench_cfg(n: usize, cfg: RdmaConfig, stream_node: Option<usize>) -> Bench {
        let mut sim = Simulator::new(0);
        let net = Network::build(&mut sim, NetConfig::default(), n);
        let (mut poes, mut metas, mut datas, mut dones, mut buses) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for i in 0..n {
            let meta = sim.add(format!("meta{i}"), Mailbox::<PoeRxMeta>::new());
            let data = sim.add(format!("data{i}"), Mailbox::<RxChunk>::new());
            let done = sim.add(format!("done{i}"), CompletionLog::new());
            let bus = sim.add(format!("bus{i}"), MemoryBus::new(MemBusConfig::coyote()));
            let mut sessions = SessionTable::new();
            for j in 0..n {
                if i != j {
                    sessions.connect(SessionId(j as u32), net.addr(j), SessionId(i as u32));
                }
            }
            let mut poe = RdmaPoe::new(
                cfg,
                net.tx(i),
                PoeUpward {
                    rx_meta: Endpoint::of(meta),
                    rx_data: Endpoint::of(data),
                    tx_done: Endpoint::of(done),
                },
                sessions,
            )
            .with_mem_bus(bus);
            if stream_node == Some(i) {
                poe = poe.with_write_stream(Endpoint::of(data));
            }
            let poe = sim.add(format!("rdma{i}"), poe);
            net.attach_rx(&mut sim, i, Endpoint::new(poe, ports::NET_RX));
            poes.push(poe);
            metas.push(meta);
            datas.push(data);
            dones.push(done);
            buses.push(bus);
        }
        Bench {
            sim,
            net,
            poes,
            metas,
            datas,
            dones,
            buses,
        }
    }

    fn bench(n: usize) -> Bench {
        bench_cfg(n, RdmaConfig::default(), None)
    }

    fn issue(b: &mut Bench, from: usize, to: usize, kind: TxKind, data: Vec<u8>, tag: u64) {
        let len = data.len() as u64;
        b.sim.post(
            Endpoint::new(b.poes[from], ports::TX_CMD),
            b.sim.now(),
            PoeTxCmd {
                session: SessionId(to as u32),
                len,
                kind,
                tag,
                span: SpanId::NONE,
            },
        );
        b.sim.post(
            Endpoint::new(b.poes[from], ports::TX_DATA),
            b.sim.now(),
            StreamChunk {
                data: Bytes::from(data),
                last: true,
            },
        );
    }

    #[test]
    fn two_sided_send_delivers_meta_and_data() {
        let mut b = bench(2);
        let msg: Vec<u8> = (0..30_000u32).map(|i| (i % 239) as u8).collect();
        issue(&mut b, 0, 1, TxKind::Send, msg.clone(), 3);
        b.sim.run();
        let metas = b.sim.component::<Mailbox<PoeRxMeta>>(b.metas[1]);
        assert_eq!(metas.len(), 1);
        assert_eq!(metas.items()[0].1.len, 30_000);
        let mut got = vec![0u8; msg.len()];
        for (_, c) in b.sim.component::<Mailbox<RxChunk>>(b.datas[1]).items() {
            got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
        }
        assert_eq!(got, msg);
        assert_eq!(
            b.sim.component::<CompletionLog>(b.dones[0]).dones()[0]
                .1
                .tag,
            3
        );
    }

    #[test]
    fn one_sided_write_bypasses_cclo_into_memory() {
        let mut b = bench(2);
        // Map the target range in node 1's TLB to device memory.
        b.sim.component_mut::<MemoryBus>(b.buses[1]).map_range(
            0x10_0000,
            1 << 20,
            MemTarget::Device,
        );
        let msg: Vec<u8> = (0..20_000u32).map(|i| (i % 233) as u8).collect();
        issue(
            &mut b,
            0,
            1,
            TxKind::Write {
                remote_addr: 0x10_0000,
            },
            msg.clone(),
            0,
        );
        b.sim.run();
        // No Rx meta/data reached the CCLO side.
        assert_eq!(b.sim.component::<Mailbox<PoeRxMeta>>(b.metas[1]).len(), 0);
        assert_eq!(b.sim.component::<Mailbox<RxChunk>>(b.datas[1]).len(), 0);
        // The bytes landed in the virtualized memory (device target).
        assert_eq!(
            b.sim
                .component::<MemoryBus>(b.buses[1])
                .device_read(0x10_0000, msg.len()),
            msg
        );
        // The initiator saw a local completion.
        assert_eq!(
            b.sim.component::<CompletionLog>(b.dones[0]).dones().len(),
            1
        );
    }

    #[test]
    fn write_with_stream_delivery_reaches_kernel() {
        let mut b = bench_cfg(
            2,
            RdmaConfig {
                write_delivery: WriteDelivery::Stream,
                ..RdmaConfig::default()
            },
            Some(1),
        );
        let msg = vec![0x5au8; 9000];
        issue(
            &mut b,
            0,
            1,
            TxKind::Write { remote_addr: 0 },
            msg.clone(),
            0,
        );
        b.sim.run();
        let chunks = b.sim.component::<Mailbox<RxChunk>>(b.datas[1]);
        let total: usize = chunks.values().map(|c| c.data.len()).sum();
        assert_eq!(total, 9000);
        assert!(chunks.values().any(|c| c.last));
        // Memory untouched.
        assert_eq!(
            b.sim.component::<MemoryBus>(b.buses[1]).device_read(0, 16),
            vec![0u8; 16]
        );
    }

    #[test]
    fn token_window_throttles_then_credits_release() {
        // Window of 4 fragments, credits every 2: a 64 KiB message (16
        // fragments) needs several credit round trips but completes.
        let cfg = RdmaConfig {
            token_window: 4,
            credit_batch: 2,
            ..RdmaConfig::default()
        };
        let mut b = bench_cfg(2, cfg, None);
        let msg = vec![7u8; 64 * 1024];
        issue(&mut b, 0, 1, TxKind::Send, msg.clone(), 0);
        b.sim.run();
        let mut got = vec![0u8; msg.len()];
        for (_, c) in b.sim.component::<Mailbox<RxChunk>>(b.datas[1]).items() {
            got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
        }
        assert_eq!(got, msg);
        // Strictly more frames received than sent fragments (credits flow).
        assert!(b.sim.component::<RdmaPoe>(b.poes[0]).frames_received() > 0);
        // Ordinary credit-paced flow never trips the starvation watchdog.
        assert!(b
            .sim
            .component::<RdmaPoe>(b.poes[0])
            .failed_qps()
            .is_empty());
        assert!(b
            .sim
            .component::<CompletionLog>(b.dones[0])
            .errors()
            .is_empty());
    }

    #[test]
    fn receiver_crash_starves_tokens_into_qp_error() {
        // Window of 4 and a crashed receiver: the first 4 fragments vanish,
        // no credits ever return, and the starvation watchdog must move the
        // QP to the error state instead of parking forever.
        let cfg = RdmaConfig {
            token_window: 4,
            credit_batch: 2,
            ..RdmaConfig::default()
        };
        let mut b = bench_cfg(2, cfg, None);
        b.net.crash_node(&mut b.sim, 1, Time::ZERO);
        issue(&mut b, 0, 1, TxKind::Send, vec![7u8; 64 * 1024], 5);
        let out = b.sim.run();
        assert_eq!(out, RunOutcome::Drained, "outcome: {out:?}");
        let poe = b.sim.component::<RdmaPoe>(b.poes[0]);
        assert_eq!(
            poe.failed_qps(),
            vec![(SessionId(1), SessionErrorKind::TokenStarvation)]
        );
        let log = b.sim.component::<CompletionLog>(b.dones[0]);
        let tags: Vec<Option<u64>> = log.errors().iter().map(|&(_, e)| e.tag).collect();
        // Session-fatal notification plus the error completion of the
        // command whose final fragment was dropped.
        assert_eq!(tags, vec![None, Some(5)]);
        // Detection happens one starvation timeout after the stall began.
        let (at, _) = log.errors()[0];
        assert!(
            at >= Time::from_us(cfg.starvation_timeout_us) && at < Time::from_ms(10),
            "error at {at}"
        );
        // Nothing was delivered upward on the dead side.
        assert_eq!(b.sim.component::<Mailbox<PoeRxMeta>>(b.metas[1]).len(), 0);
    }

    #[test]
    fn deadline_watchdog_names_token_starved_qp() {
        // Starvation detection disabled far beyond the horizon: the stall
        // deadline sweep must still name the starved QP.
        let cfg = RdmaConfig {
            token_window: 4,
            credit_batch: 2,
            starvation_timeout_us: 1_000_000,
            ..RdmaConfig::default()
        };
        let mut b = bench_cfg(2, cfg, None);
        b.net.crash_node(&mut b.sim, 1, Time::ZERO);
        issue(&mut b, 0, 1, TxKind::Send, vec![7u8; 64 * 1024], 5);
        b.sim.set_stall_deadline(Time::from_ms(1));
        match b.sim.run() {
            RunOutcome::Stalled(report) => {
                assert_eq!(report.component, "rdma0");
                assert!(report.op.contains("token-starved"), "op: {}", report.op);
            }
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_frame_is_discarded_and_repaired_by_go_back_n() {
        let mut b = bench(2);
        b.net
            .set_fault_plan(&mut b.sim, accl_net::FaultPlan::corrupt_frames([2]));
        let msg: Vec<u8> = (0..30_000u32).map(|i| (i % 239) as u8).collect();
        issue(&mut b, 0, 1, TxKind::Send, msg.clone(), 0);
        b.sim.run();
        let mut got = vec![0u8; msg.len()];
        for (_, c) in b.sim.component::<Mailbox<RxChunk>>(b.datas[1]).items() {
            got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
        }
        assert_eq!(got, msg, "delivered bytes must be bit-exact");
        let rx = b.sim.component::<RdmaPoe>(b.poes[1]);
        assert_eq!(rx.frames_corrupted_discarded(), 1);
        let tx = b.sim.component::<RdmaPoe>(b.poes[0]);
        assert!(tx.retransmissions() >= 1);
        assert!(tx.failed_qps().is_empty());
    }

    #[test]
    fn random_loss_is_repaired_by_go_back_n() {
        let mut b = bench(2);
        b.net
            .set_fault_plan(&mut b.sim, accl_net::FaultPlan::random_loss(0.02));
        let msg: Vec<u8> = (0..100_000u32).map(|i| (i % 247) as u8).collect();
        issue(&mut b, 0, 1, TxKind::Send, msg.clone(), 0);
        b.sim.run();
        let mut got = vec![0u8; msg.len()];
        let mut total = 0usize;
        for (_, c) in b.sim.component::<Mailbox<RxChunk>>(b.datas[1]).items() {
            got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
            total += c.data.len();
        }
        assert_eq!(got, msg);
        assert_eq!(total, msg.len(), "duplicate or missing delivery");
        assert!(b
            .sim
            .component::<RdmaPoe>(b.poes[0])
            .failed_qps()
            .is_empty());
    }

    #[test]
    fn duplicated_frames_are_filtered_by_psn() {
        let mut b = bench(2);
        b.net
            .set_fault_plan(&mut b.sim, accl_net::FaultPlan::duplicate_frames([1, 2]));
        let msg: Vec<u8> = (0..30_000u32).map(|i| (i % 233) as u8).collect();
        issue(&mut b, 0, 1, TxKind::Send, msg.clone(), 0);
        b.sim.run();
        let chunks = b.sim.component::<Mailbox<RxChunk>>(b.datas[1]);
        let total: usize = chunks.values().map(|c| c.data.len()).sum();
        assert_eq!(total, msg.len(), "duplicates leaked upward");
        let mut got = vec![0u8; msg.len()];
        for (_, c) in chunks.items() {
            got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
        }
        assert_eq!(got, msg);
    }

    #[test]
    fn unreachable_peer_with_open_window_exhausts_retransmits() {
        // Window wider than the whole message: nothing ever stalls on
        // tokens, so the starvation watchdog never arms and the RTO retry
        // ladder must be the path that diagnoses the dead peer.
        let cfg = RdmaConfig {
            rto_us: 20,
            max_retransmits: 3,
            ..RdmaConfig::default()
        };
        let mut b = bench_cfg(2, cfg, None);
        b.net.crash_node(&mut b.sim, 1, Time::ZERO);
        issue(&mut b, 0, 1, TxKind::Send, vec![7u8; 16 * 1024], 4);
        let out = b.sim.run();
        assert_eq!(out, RunOutcome::Drained, "outcome: {out:?}");
        let poe = b.sim.component::<RdmaPoe>(b.poes[0]);
        assert_eq!(
            poe.failed_qps(),
            vec![(SessionId(1), SessionErrorKind::RetransmitLimit)]
        );
        // 4 rounds over the 4-fragment message before giving up.
        assert_eq!(poe.retransmissions(), 3 * 4);
        let log = b.sim.component::<CompletionLog>(b.dones[0]);
        assert_eq!(log.errors().len(), 1);
        // Ladder: 20 + 40 + 80 + 160 µs before the budget check fails.
        let (at, _) = log.errors()[0];
        assert!(at >= Time::from_us(300) && at < Time::from_us(400), "{at}");
    }

    #[test]
    fn reordering_triggers_nak_and_recovers() {
        let mut b = bench(2);
        b.net.set_fault_plan(
            &mut b.sim,
            accl_net::FaultPlan::delay_frames([1], Dur::from_us(50)),
        );
        let msg: Vec<u8> = (0..40_000u32).map(|i| (i % 229) as u8).collect();
        issue(&mut b, 0, 1, TxKind::Send, msg.clone(), 0);
        b.sim.run();
        let chunks = b.sim.component::<Mailbox<RxChunk>>(b.datas[1]);
        let total: usize = chunks.values().map(|c| c.data.len()).sum();
        assert_eq!(total, msg.len());
        let mut got = vec![0u8; msg.len()];
        for (_, c) in chunks.items() {
            got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
        }
        assert_eq!(got, msg);
        assert!(b
            .sim
            .component::<RdmaPoe>(b.poes[0])
            .failed_qps()
            .is_empty());
    }

    #[test]
    fn throughput_near_line_rate() {
        let mut b = bench(2);
        let len = 4 << 20;
        issue(&mut b, 0, 1, TxKind::Send, vec![1u8; len], 0);
        b.sim.run();
        let t = b
            .sim
            .component::<Mailbox<RxChunk>>(b.datas[1])
            .last_arrival()
            .unwrap();
        let gbps = (len as f64) * 8.0 / t.as_ns_f64();
        assert!(gbps > 90.0, "goodput={gbps:.1} Gb/s");
    }

    #[test]
    fn coalescing_preserves_flow_control_with_fewer_events() {
        let len = 2 << 20;
        let msg: Vec<u8> = (0..len as u32).map(|i| (i % 229) as u8).collect();
        let run = |coalesce: u32| {
            let cfg = RdmaConfig {
                token_window: 16,
                credit_batch: 4,
                coalesce,
                ..RdmaConfig::default()
            };
            let mut b = bench_cfg(2, cfg, None);
            issue(&mut b, 0, 1, TxKind::Send, msg.clone(), 0);
            b.sim.run();
            let mut got = vec![0u8; len];
            for (_, c) in b.sim.component::<Mailbox<RxChunk>>(b.datas[1]).items() {
                got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
            }
            assert_eq!(got, msg, "coalesce={coalesce}");
            let poe = b.sim.component::<RdmaPoe>(b.poes[0]);
            assert!(poe.failed_qps().is_empty(), "coalesce={coalesce}");
            (
                poe.frames_sent(),
                b.sim.events_executed(),
                b.net.port_counters(&b.sim, 1).bytes_out,
            )
        };
        let (frames1, events1, bytes1) = run(1);
        let (frames4, events4, bytes4) = run(4);
        // Tokens, credits and headers are per MTU, so the wire story is
        // identical; only the event count shrinks.
        assert_eq!(frames1, frames4);
        assert_eq!(bytes1, bytes4);
        assert!(
            events4 * 2 < events1,
            "coalescing saved too few events: {events4} vs {events1}"
        );
    }

    #[test]
    fn tx_credit_window_composes_with_token_flow_control() {
        let mut b = bench(2);
        b.sim
            .component_mut::<RdmaPoe>(b.poes[0])
            .set_tx_credit_window(Some(2), "net.txcredit(n0)");
        let msg: Vec<u8> = (0..60_000u32).map(|i| (i % 239) as u8).collect();
        issue(&mut b, 0, 1, TxKind::Send, msg.clone(), 0);
        b.sim.run();
        let mut got = vec![0u8; msg.len()];
        for (_, c) in b.sim.component::<Mailbox<RxChunk>>(b.datas[1]).items() {
            got[c.offset as usize..c.offset as usize + c.data.len()].copy_from_slice(&c.data);
        }
        assert_eq!(got, msg);
        let poe = b.sim.component::<RdmaPoe>(b.poes[0]);
        assert!(poe.failed_qps().is_empty());
        assert!(!poe.tx_credit_gate().blocked());
        assert_eq!(poe.tx_credit_gate().in_flight(), 0, "all credits returned");
    }

    #[test]
    fn interleaved_sends_from_two_peers() {
        let mut b = bench(3);
        issue(&mut b, 0, 2, TxKind::Send, vec![1u8; 40_000], 1);
        issue(&mut b, 1, 2, TxKind::Send, vec![2u8; 40_000], 2);
        b.sim.run();
        let metas = b.sim.component::<Mailbox<PoeRxMeta>>(b.metas[2]);
        assert_eq!(metas.len(), 2);
        // Chunks from both sessions complete.
        let lasts = b
            .sim
            .component::<Mailbox<RxChunk>>(b.datas[2])
            .values()
            .filter(|c| c.last)
            .count();
        assert_eq!(lasts, 2);
    }
}
