//! The POE-independent interface (paper §4.3).
//!
//! The CCLO engine talks to every protocol offload engine through the same
//! two pairs of meta/data streaming interfaces (one Tx, one Rx). The meta
//! side carries op code, length and session id; the data side carries the
//! payload in chunks. Protocol specifics (segmentation, reliability,
//! rendezvous WRITE placement) live entirely behind this interface, which is
//! what makes the CCLO engine protocol-portable.

use bytes::Bytes;

use accl_sim::prelude::*;
use accl_sim::trace::SpanId;

/// Identifies one communication session of a POE.
///
/// Maps onto a TCP session, an RDMA queue pair, or a UDP peer entry,
/// depending on the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u32);

/// What a Tx command asks the engine to do with the data that follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxKind {
    /// Two-sided transfer: deliver to the peer's Rx meta/data interfaces
    /// (UDP datagram, TCP stream message, RDMA SEND).
    Send,
    /// One-sided RDMA WRITE to `remote_addr` (a virtual address in the
    /// peer's unified memory). Only the RDMA engine accepts this.
    Write {
        /// Destination virtual address at the passive side.
        remote_addr: u64,
    },
}

/// A Tx command: "the next `len` bytes on the Tx data stream go to `session`".
#[derive(Debug, Clone, Copy)]
pub struct PoeTxCmd {
    /// Destination session.
    pub session: SessionId,
    /// Message length in bytes.
    pub len: u64,
    /// Transfer kind.
    pub kind: TxKind,
    /// Caller tag, echoed in [`PoeTxDone`].
    pub tag: u64,
    /// Causal parent span of the issuer ([`SpanId::NONE`] if untraced).
    /// Engines parent their per-segment spans under it and hand it across
    /// the wire via [`accl_net::Frame::with_span`].
    pub span: SpanId,
}

/// A chunk of streaming data (Tx or Rx direction).
#[derive(Debug, Clone)]
pub struct StreamChunk {
    /// The bytes.
    pub data: Bytes,
    /// Whether this chunk ends the current message.
    pub last: bool,
}

/// Completion of a Tx command (all bytes handed to the wire).
#[derive(Debug, Clone, Copy)]
pub struct PoeTxDone {
    /// Session of the completed command.
    pub session: SessionId,
    /// Bytes sent.
    pub len: u64,
    /// Tag from the originating [`PoeTxCmd`].
    pub tag: u64,
}

/// Why a POE declared a session dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionErrorKind {
    /// TCP: the retransmission limit was exhausted without the peer ever
    /// acknowledging forward progress — the peer or its link is gone.
    RetransmitLimit,
    /// RDMA: the queue pair was token-starved for longer than the
    /// starvation timeout — no flow-control credits came back.
    TokenStarvation,
}

impl core::fmt::Display for SessionErrorKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SessionErrorKind::RetransmitLimit => write!(f, "retransmission limit exhausted"),
            SessionErrorKind::TokenStarvation => write!(f, "flow-control token starvation"),
        }
    }
}

/// Fatal session failure, delivered on the same endpoint as [`PoeTxDone`]
/// (completion-queue discipline: every command eventually yields either a
/// success or an error completion, and a session-fatal event is reported
/// once with `tag: None`). Consumers must `try_downcast` completions.
#[derive(Debug, Clone, Copy)]
pub struct PoeSessionError {
    /// The failed session.
    pub session: SessionId,
    /// Failure cause.
    pub kind: SessionErrorKind,
    /// Tag of the command this error completes, or `None` for the
    /// session-fatal notification itself.
    pub tag: Option<u64>,
}

/// Rx meta: a message is arriving on `session`.
///
/// Emitted once per message, before (or with) its first data chunk.
#[derive(Debug, Clone, Copy)]
pub struct PoeRxMeta {
    /// Source session.
    pub session: SessionId,
    /// Engine-assigned message id, unique per session.
    pub msg_id: u64,
    /// Total message length in bytes.
    pub len: u64,
    /// Causal span carried across the wire from the sender (the engine's
    /// receive-side span when tracing; [`SpanId::NONE`] otherwise).
    pub span: SpanId,
}

/// Rx data: a chunk of the message identified by `(session, msg_id)`.
#[derive(Debug, Clone)]
pub struct RxChunk {
    /// Source session.
    pub session: SessionId,
    /// Message id from the corresponding [`PoeRxMeta`].
    pub msg_id: u64,
    /// Offset of this chunk within the message.
    pub offset: u64,
    /// The bytes.
    pub data: Bytes,
    /// Whether the message is complete after this chunk.
    pub last: bool,
}

/// Where a POE delivers its upward-facing events.
#[derive(Debug, Clone, Copy)]
pub struct PoeUpward {
    /// Receives [`PoeRxMeta`].
    pub rx_meta: Endpoint,
    /// Receives [`RxChunk`].
    pub rx_data: Endpoint,
    /// Receives [`PoeTxDone`].
    pub tx_done: Endpoint,
}

/// Harness component collecting both success and error completions from a
/// POE `tx_done` endpoint (which carries [`PoeTxDone`] and
/// [`PoeSessionError`] interleaved, completion-queue style).
#[derive(Debug, Default)]
pub struct CompletionLog {
    dones: Vec<(Time, PoeTxDone)>,
    errors: Vec<(Time, PoeSessionError)>,
}

impl CompletionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Successful completions in arrival order.
    pub fn dones(&self) -> &[(Time, PoeTxDone)] {
        &self.dones
    }

    /// Error completions in arrival order.
    pub fn errors(&self) -> &[(Time, PoeSessionError)] {
        &self.errors
    }
}

impl Component for CompletionLog {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        match payload.try_downcast::<PoeTxDone>() {
            Ok(done) => self.dones.push((ctx.now(), done)),
            Err(other) => self
                .errors
                .push((ctx.now(), other.downcast::<PoeSessionError>())),
        }
    }

    fn state_digest(&self) -> Option<u64> {
        // The log is append-ordered, and same-timestamp completions from
        // different sessions may legally arrive in either order — so each
        // entry is hashed on its own and combined commutatively, keeping
        // the digest canonical under tie permutation.
        let mut h = 0u64;
        let mut fold = |vs: &[u64]| {
            let mut e = 0u64;
            for v in vs {
                accl_sim::digest::fnv_fold(&mut e, &v.to_le_bytes());
            }
            h = h.wrapping_add(e);
        };
        for (t, d) in &self.dones {
            fold(&[t.as_ps(), u64::from(d.session.0), d.len, d.tag]);
        }
        for (t, e) in &self.errors {
            fold(&[t.as_ps(), u64::from(e.session.0)]);
        }
        accl_sim::digest::fnv_fold(&mut h, &(self.dones.len() as u64).to_le_bytes());
        accl_sim::digest::fnv_fold(&mut h, &(self.errors.len() as u64).to_le_bytes());
        Some(h)
    }
}

/// Standard input ports shared by all POE components.
pub mod ports {
    use accl_sim::event::PortId;

    /// Tx commands ([`super::PoeTxCmd`]).
    pub const TX_CMD: PortId = PortId(0);
    /// Tx data ([`super::StreamChunk`]), in command order.
    pub const TX_DATA: PortId = PortId(1);
    /// Frames arriving from the network ([`accl_net::Frame`]).
    pub const NET_RX: PortId = PortId(2);
    /// Internal timers.
    pub const TIMER: PortId = PortId(3);
    /// Tx-window credit returns from the NIC
    /// ([`accl_net::CreditReturn`]) and injected credit-leak faults
    /// ([`super::TxCreditLeak`]).
    pub const CREDIT: PortId = PortId(4);
}

/// Injected credit-leak fault (chaos): `credits` tx-window credits are
/// consumed and never returned, permanently shrinking the engine's window.
/// Delivered on [`ports::CREDIT`].
#[derive(Debug, Clone, Copy)]
pub struct TxCreditLeak {
    /// Credits to leak.
    pub credits: u32,
}

/// Credit-accounted gate between a POE and its NIC: bounds the number of
/// in-flight (not-yet-serialized) data frames per engine.
///
/// Every data frame admitted through the gate consumes one credit and is
/// stamped with a [`accl_net::Frame::credit_return`] endpoint (the engine's
/// [`ports::CREDIT`] port); the NIC returns the credit when the frame has
/// fully serialized onto the uplink — so a paused NIC holds the engine's
/// credits hostage, propagating backpressure end to end. With no window
/// configured (the default) the gate is a strict pass-through: frames are
/// neither stamped nor queued and the simulation timeline is untouched.
///
/// Control frames (ACKs, NAKs, RDMA credits) must bypass the gate: gating
/// the very messages that release peer-side resources can deadlock the
/// protocol itself rather than model overload.
#[derive(Debug, Default)]
pub struct TxCreditGate {
    window: Option<u32>,
    in_flight: u32,
    leaked: u32,
    queued: std::collections::VecDeque<accl_net::Frame>,
    resource: String,
}

impl TxCreditGate {
    /// Creates a pass-through gate (no window).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds the gate to `window` in-flight frames, naming the credit
    /// resource (conventionally `net.txcredit(nX)`, matching the hold the
    /// node's NIC publishes) for wait-for-graph attribution. `None`
    /// restores pass-through.
    pub fn set_window(&mut self, window: Option<u32>, resource: impl Into<String>) {
        if let Some(w) = window {
            assert!(w >= 1, "credit window needs at least one credit");
        }
        self.window = window;
        self.resource = resource.into();
    }

    /// Admits `frame` through the gate. Returns the (credit-stamped) frame
    /// when a credit is available — or immediately, unstamped, when no
    /// window is configured. Returns `None` when the frame was queued
    /// awaiting credits; [`TxCreditGate::credit`] releases it later.
    pub fn admit(
        &mut self,
        frame: accl_net::Frame,
        credit_ep: Endpoint,
    ) -> Option<accl_net::Frame> {
        let Some(window) = self.window else {
            return Some(frame);
        };
        if self.in_flight < window && self.queued.is_empty() {
            self.in_flight += 1;
            Some(frame.with_credit_return(credit_ep))
        } else {
            self.queued.push_back(frame);
            None
        }
    }

    /// Returns `credits` to the window and drains queued frames into the
    /// freed budget, stamping each with `credit_ep`. The caller must put
    /// the returned frames on the wire.
    pub fn credit(&mut self, credits: u32, credit_ep: Endpoint) -> Vec<accl_net::Frame> {
        self.in_flight = self.in_flight.saturating_sub(credits);
        let Some(window) = self.window else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while self.in_flight < window {
            let Some(frame) = self.queued.pop_front() else {
                break;
            };
            self.in_flight += 1;
            out.push(frame.with_credit_return(credit_ep));
        }
        out
    }

    /// Injected fault: `credits` vanish from the window for good (consumed
    /// as if in flight, never returned).
    pub fn leak(&mut self, credits: u32) {
        self.leaked += credits;
        self.in_flight += credits;
    }

    /// Whether frames are queued awaiting credits.
    pub fn blocked(&self) -> bool {
        !self.queued.is_empty()
    }

    /// Frames queued awaiting credits.
    pub fn queued_frames(&self) -> usize {
        self.queued.len()
    }

    /// Credits consumed by injected leaks so far.
    pub fn leaked(&self) -> u32 {
        self.leaked
    }

    /// Credits currently in flight (including leaked ones).
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// The configured window, if bounded.
    pub fn window(&self) -> Option<u32> {
        self.window
    }

    /// Folds the gate's externally-meaningful state — window accounting
    /// and queue depth — into a running `state_digest`.
    pub fn fold_digest(&self, h: &mut u64) {
        for v in [
            u64::from(self.in_flight),
            u64::from(self.leaked),
            self.queued.len() as u64,
        ] {
            accl_sim::digest::fnv_fold(h, &v.to_le_bytes());
        }
    }

    /// The gate's contribution to its engine's
    /// [`Component::resource_state`]: a wait on the credit resource while
    /// blocked, plus occupancy gauges. `None` when pass-through.
    pub fn state(&self) -> Option<ResourceState> {
        let window = self.window?;
        let mut st = ResourceState::default();
        if self.blocked() {
            st.waits.push(self.resource.clone());
        }
        st.gauges.push(ResourceGauge {
            name: self.resource.clone(),
            used: u64::from(self.in_flight),
            capacity: Some(u64::from(window)),
        });
        if !self.queued.is_empty() {
            st.gauges.push(ResourceGauge {
                name: format!("{}.queued", self.resource),
                used: self.queued.len() as u64,
                capacity: None,
            });
        }
        Some(st)
    }

    /// The gate's parked work, for stall reports: frames stuck behind a
    /// dry credit window.
    pub fn parked_work(&self) -> Option<ParkedWork> {
        (!self.queued.is_empty()).then(|| ParkedWork {
            rank: None,
            op: format!(
                "{} frames awaiting tx credits ({}/{} in flight, {} leaked)",
                self.queued.len(),
                self.in_flight,
                self.window.unwrap_or(0),
                self.leaked
            ),
        })
    }
}

/// Session table: local session id → (peer address, peer session id).
///
/// Populated by the host driver at communicator construction time — the
/// paper's "a TCP session / queue pair needs to be established between each
/// node" (§4.3).
#[derive(Debug, Default, Clone)]
pub struct SessionTable {
    entries: Vec<Option<(accl_net::NodeAddr, SessionId)>>,
}

impl SessionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs `local → (peer, peer_session)`.
    pub fn connect(&mut self, local: SessionId, peer: accl_net::NodeAddr, peer_session: SessionId) {
        let idx = local.0 as usize;
        if self.entries.len() <= idx {
            self.entries.resize(idx + 1, None);
        }
        assert!(
            self.entries[idx].is_none(),
            "session {local:?} connected twice"
        );
        self.entries[idx] = Some((peer, peer_session));
    }

    /// Looks up the peer of `local`.
    ///
    /// # Panics
    ///
    /// Panics on an unconnected session — commands to unknown sessions are
    /// driver bugs, not recoverable protocol conditions.
    pub fn peer(&self, local: SessionId) -> (accl_net::NodeAddr, SessionId) {
        self.entries
            .get(local.0 as usize)
            .and_then(|e| *e)
            .unwrap_or_else(|| panic!("session {local:?} not connected"))
    }

    /// Number of connected sessions.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Whether no session is connected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Associates in-order Tx data chunks with the queue of Tx commands.
///
/// AXI-Stream semantics: data arrives in exactly the order commands were
/// issued; the assembler slices the byte stream back into per-command
/// messages and hands out MTU-sized segments as soon as bytes are available,
/// so transmission pipelines with the data source.
///
/// Commands and data reach the engine as separate events that may share a
/// simulated timestamp, so the assembler must not care which executes
/// first: bytes arriving ahead of their command are buffered and drained
/// when [`TxAssembler::push_cmd`] runs. (The sim-time race detector
/// exercises exactly this reordering — see accl-sim's `race` module.)
#[derive(Debug, Default)]
pub struct TxAssembler {
    cmds: std::collections::VecDeque<(PoeTxCmd, u64)>,
    /// Bytes already emitted for the head command.
    emitted: u64,
    /// Buffered bytes not yet emitted (within the head command).
    pending: Vec<Bytes>,
    pending_len: u64,
    next_msg_id: u64,
}

/// A segment ready for transmission, produced by [`TxAssembler`].
#[derive(Debug, Clone)]
pub struct TxSegment {
    /// The command this segment belongs to.
    pub cmd: PoeTxCmd,
    /// Engine-assigned message id (one per command).
    pub msg_id: u64,
    /// Offset of the segment within the message.
    pub offset: u64,
    /// Segment payload.
    pub data: Bytes,
    /// Whether this is the message's final segment.
    pub last: bool,
}

impl TxAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a command (assigning it the next message id) and drains
    /// any segments completed by bytes that arrived ahead of it.
    pub fn push_cmd(&mut self, cmd: PoeTxCmd, mtu: u32) -> Vec<TxSegment> {
        assert!(cmd.len > 0, "zero-length Tx command");
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.cmds.push_back((cmd, id));
        self.drain(mtu)
    }

    /// Feeds data and drains every full-MTU (or message-final) segment.
    pub fn push_data(&mut self, data: Bytes, mtu: u32) -> Vec<TxSegment> {
        self.pending_len += data.len() as u64;
        self.pending.push(data);
        self.drain(mtu)
    }

    /// Commands currently queued (including the in-progress head).
    pub fn queued_cmds(&self) -> usize {
        self.cmds.len()
    }

    fn drain(&mut self, mtu: u32) -> Vec<TxSegment> {
        let mtu = u64::from(mtu);
        let mut out = Vec::new();
        // When `cmds` runs dry with bytes still pending, those bytes
        // arrived ahead of their command (possible when both events share
        // a timestamp): keep them buffered for `push_cmd`.
        while let Some(&(cmd, msg_id)) = self.cmds.front() {
            let remaining = cmd.len - self.emitted;
            let want = remaining.min(mtu);
            if self.pending_len < want {
                break;
            }
            let seg = self.take_bytes(want as usize);
            let offset = self.emitted;
            self.emitted += want;
            let last = self.emitted == cmd.len;
            out.push(TxSegment {
                cmd,
                msg_id,
                offset,
                data: seg,
                last,
            });
            if last {
                self.cmds.pop_front();
                self.emitted = 0;
            }
        }
        out
    }

    fn take_bytes(&mut self, n: usize) -> Bytes {
        self.pending_len -= n as u64;
        let first = &mut self.pending[0];
        if first.len() > n {
            // Fast path: slice off the front of the first buffer.
            return first.split_to(n);
        }
        if first.len() == n {
            return self.pending.remove(0);
        }
        // Slow path: concatenate across buffers.
        let mut buf = Vec::with_capacity(n);
        while buf.len() < n {
            let need = n - buf.len();
            let head = &mut self.pending[0];
            if head.len() <= need {
                buf.extend_from_slice(head);
                self.pending.remove(0);
            } else {
                buf.extend_from_slice(&head.split_to(need));
            }
        }
        Bytes::from(buf)
    }
}

/// Reassembles segment-oriented arrivals (UDP datagrams, RDMA SEND frames)
/// into upward Meta + Chunk deliveries.
///
/// Each wire segment carries `(session, msg_id, offset, total)`; the demux
/// emits one [`PoeRxMeta`] on the first segment of a message and tracks
/// received byte ranges to set the `last` flag, tolerating reordering and
/// *duplication*: a segment whose bytes were already received (network
/// duplicate, spurious retransmit) is discarded rather than double-counted
/// toward message completion.
#[derive(Debug, Default)]
pub struct RxDemux {
    /// Per-message sorted disjoint received `[lo, hi)` byte ranges.
    inflight: std::collections::BTreeMap<(SessionId, u64), Vec<(u64, u64)>>,
    /// Fully delivered messages, kept so a straggling duplicate of a
    /// completed message cannot resurrect it as a fresh arrival.
    completed: std::collections::BTreeSet<(SessionId, u64)>,
    duplicates: u64,
}

impl RxDemux {
    /// Creates an empty demux.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes one arriving segment.
    ///
    /// Returns `Some((meta, chunk))` for a segment carrying new bytes,
    /// where `meta` is `Some` for the first segment of a message; `span`
    /// is attached to that meta so receive-side consumers can parent their
    /// spans under the sender's causality. Returns `None` for a duplicate
    /// (bytes already received), which callers must discard.
    pub fn accept(
        &mut self,
        session: SessionId,
        msg_id: u64,
        offset: u64,
        total: u64,
        data: Bytes,
        span: SpanId,
    ) -> Option<(Option<PoeRxMeta>, RxChunk)> {
        let key = (session, msg_id);
        if self.completed.contains(&key) {
            self.duplicates += 1;
            return None;
        }
        let first = !self.inflight.contains_key(&key);
        let ranges = self.inflight.entry(key).or_default();
        let (lo, hi) = (offset, offset + data.len() as u64);
        debug_assert!(hi <= total, "segment beyond message length");
        if ranges.iter().any(|&(a, b)| lo < b && a < hi) {
            // Segment boundaries are stable per message (MTU grid), so any
            // overlap means the whole segment was already received.
            self.duplicates += 1;
            return None;
        }
        ranges.push((lo, hi));
        ranges.sort_unstable();
        let got: u64 = ranges.iter().map(|&(a, b)| b - a).sum();
        debug_assert!(got <= total, "received more bytes than message length");
        let last = got == total;
        if last {
            self.inflight.remove(&key);
            self.completed.insert(key);
        }
        let meta = first.then_some(PoeRxMeta {
            session,
            msg_id,
            len: total,
            span,
        });
        Some((
            meta,
            RxChunk {
                session,
                msg_id,
                offset,
                data,
                last,
            },
        ))
    }

    /// Messages currently partially received.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Duplicate segments discarded so far.
    pub fn duplicates_discarded(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accl_net::NodeAddr;

    fn cmd(len: u64, tag: u64) -> PoeTxCmd {
        PoeTxCmd {
            session: SessionId(1),
            len,
            kind: TxKind::Send,
            tag,
            span: SpanId::NONE,
        }
    }

    #[test]
    fn session_table_connects_and_resolves() {
        let mut t = SessionTable::new();
        t.connect(SessionId(0), NodeAddr(3), SessionId(7));
        assert_eq!(t.peer(SessionId(0)), (NodeAddr(3), SessionId(7)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn unconnected_session_panics() {
        SessionTable::new().peer(SessionId(5));
    }

    #[test]
    fn assembler_segments_at_mtu() {
        let mut a = TxAssembler::new();
        assert!(a.push_cmd(cmd(10_000, 1), 4096).is_empty());
        let segs = a.push_data(Bytes::from(vec![7u8; 10_000]), 4096);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].data.len(), 4096);
        assert_eq!(segs[2].data.len(), 10_000 - 8192);
        assert!(segs[2].last && !segs[0].last);
        assert_eq!(segs[1].offset, 4096);
        assert_eq!(a.queued_cmds(), 0);
    }

    #[test]
    fn assembler_pipelines_partial_data() {
        let mut a = TxAssembler::new();
        a.push_cmd(cmd(8192, 1), 4096);
        // First 4 KiB: one full segment emitted immediately.
        let segs = a.push_data(Bytes::from(vec![1u8; 4096]), 4096);
        assert_eq!(segs.len(), 1);
        // 2 KiB more: not a full MTU and not message end — buffered.
        assert!(a.push_data(Bytes::from(vec![2u8; 2048]), 4096).is_empty());
        // Final 2 KiB completes the message.
        let segs = a.push_data(Bytes::from(vec![3u8; 2048]), 4096);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].last);
        assert_eq!(segs[0].data.len(), 4096);
        // Byte order preserved across the buffer boundary.
        assert_eq!(&segs[0].data[0..2048], &[2u8; 2048][..]);
        assert_eq!(&segs[0].data[2048..], &[3u8; 2048][..]);
    }

    #[test]
    fn assembler_spans_multiple_commands() {
        let mut a = TxAssembler::new();
        a.push_cmd(cmd(100, 1), 4096);
        a.push_cmd(cmd(200, 2), 4096);
        let segs = a.push_data(Bytes::from(vec![0u8; 300]), 4096);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].cmd.tag, 1);
        assert_eq!(segs[0].data.len(), 100);
        assert_eq!(segs[1].cmd.tag, 2);
        assert_eq!(segs[1].data.len(), 200);
        assert!(segs[0].last && segs[1].last);
    }

    #[test]
    fn data_before_command_is_buffered_then_drained() {
        // Command and first data chunk may share a timestamp; either
        // execution order must produce the same segments.
        let mut a = TxAssembler::new();
        assert!(a.push_data(Bytes::from(vec![9u8; 100]), 4096).is_empty());
        let segs = a.push_cmd(cmd(100, 1), 4096);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].last);
        assert_eq!(segs[0].cmd.tag, 1);
        assert_eq!(&segs[0].data[..], &[9u8; 100][..]);
        assert_eq!(a.queued_cmds(), 0);
    }

    #[test]
    fn demux_emits_meta_once_and_last_flag() {
        let mut d = RxDemux::new();
        let (m1, c1) = d
            .accept(
                SessionId(2),
                9,
                0,
                10,
                Bytes::from(vec![0u8; 6]),
                SpanId::NONE,
            )
            .unwrap();
        assert!(m1.is_some());
        assert_eq!(m1.unwrap().len, 10);
        assert!(!c1.last);
        let (m2, c2) = d
            .accept(
                SessionId(2),
                9,
                6,
                10,
                Bytes::from(vec![0u8; 4]),
                SpanId::NONE,
            )
            .unwrap();
        assert!(m2.is_none());
        assert!(c2.last);
        assert_eq!(d.inflight(), 0);
    }

    #[test]
    fn demux_tolerates_reordering() {
        let mut d = RxDemux::new();
        let (m1, c1) = d
            .accept(
                SessionId(0),
                1,
                6,
                10,
                Bytes::from(vec![0u8; 4]),
                SpanId::NONE,
            )
            .unwrap();
        assert!(m1.is_some());
        assert!(!c1.last);
        let (_, c2) = d
            .accept(
                SessionId(0),
                1,
                0,
                10,
                Bytes::from(vec![0u8; 6]),
                SpanId::NONE,
            )
            .unwrap();
        assert!(c2.last);
    }

    #[test]
    fn demux_discards_duplicates() {
        let mut d = RxDemux::new();
        let seg = |d: &mut RxDemux, offset, len| {
            d.accept(
                SessionId(0),
                1,
                offset,
                10,
                Bytes::from(vec![0u8; len]),
                SpanId::NONE,
            )
        };
        assert!(seg(&mut d, 0, 6).is_some());
        // Same segment again mid-message: duplicate, not progress.
        assert!(seg(&mut d, 0, 6).is_none());
        assert_eq!(d.duplicates_discarded(), 1);
        let (_, c) = seg(&mut d, 6, 4).unwrap();
        assert!(c.last, "duplicates must not inflate the byte count");
        // A straggler after completion cannot resurrect the message.
        assert!(seg(&mut d, 6, 4).is_none());
        assert_eq!(d.duplicates_discarded(), 2);
        assert_eq!(d.inflight(), 0);
    }

    #[test]
    fn demux_keeps_sessions_separate() {
        let mut d = RxDemux::new();
        d.accept(
            SessionId(0),
            1,
            0,
            10,
            Bytes::from(vec![0u8; 4]),
            SpanId::NONE,
        );
        d.accept(
            SessionId(1),
            1,
            0,
            10,
            Bytes::from(vec![0u8; 4]),
            SpanId::NONE,
        );
        assert_eq!(d.inflight(), 2);
    }

    fn gate_frame() -> accl_net::Frame {
        accl_net::Frame::new(accl_net::NodeAddr(0), accl_net::NodeAddr(1), 64, 0u8)
    }

    fn gate_ep() -> Endpoint {
        let mut sim = Simulator::new(0);
        let id = sim.add("gate-owner", Mailbox::<u8>::new());
        Endpoint::new(id, ports::CREDIT)
    }

    #[test]
    fn gate_without_window_passes_through_unstamped() {
        let mut g = TxCreditGate::new();
        let out = g.admit(gate_frame(), gate_ep()).expect("pass-through");
        assert!(out.credit_return.is_none(), "must not stamp when ungated");
        assert_eq!(g.in_flight(), 0);
        assert!(g.state().is_none());
        assert!(g.parked_work().is_none());
    }

    #[test]
    fn gate_window_queues_overflow_and_credits_release_in_order() {
        let mut g = TxCreditGate::new();
        g.set_window(Some(2), "net.txcredit(n0)");
        let a = g.admit(gate_frame(), gate_ep());
        let b = g.admit(gate_frame(), gate_ep());
        assert!(a.is_some() && b.is_some());
        assert_eq!(a.unwrap().credit_return, Some(gate_ep()));
        assert!(g.admit(gate_frame(), gate_ep()).is_none(), "window full");
        assert!(g.blocked());
        assert_eq!(g.queued_frames(), 1);
        let st = g.state().expect("bounded gate has state");
        assert_eq!(st.waits, vec!["net.txcredit(n0)".to_string()]);
        let released = g.credit(1, gate_ep());
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].credit_return, Some(gate_ep()));
        assert!(!g.blocked());
        assert_eq!(g.in_flight(), 2);
    }

    #[test]
    fn gate_leak_shrinks_window_permanently() {
        let mut g = TxCreditGate::new();
        g.set_window(Some(2), "net.txcredit(n0)");
        g.leak(2);
        assert!(
            g.admit(gate_frame(), gate_ep()).is_none(),
            "window leaked dry"
        );
        // Credits that never existed cannot come back: still blocked.
        assert!(g.credit(0, gate_ep()).is_empty());
        assert!(g.blocked());
        assert_eq!(g.leaked(), 2);
        let parked = g.parked_work().expect("blocked gate parks work");
        assert!(parked.op.contains("2 leaked"), "op: {}", parked.op);
    }
}
