//! # accl-poe — protocol offload engines
//!
//! The three 100 Gb/s hardware network stacks ACCL+ supports (paper §4.3),
//! rebuilt as packet-level simulation components behind one POE-independent
//! meta/data streaming interface:
//!
//! - [`udp::UdpPoe`] — connectionless, unreliable datagrams (VNx-style).
//! - [`tcp::TcpPoe`] — reliable byte streams with sliding windows,
//!   out-of-order reassembly and retransmission, up to 1000 sessions.
//! - [`rdma::RdmaPoe`] — queue pairs with two-sided SEND, one-sided WRITE
//!   into virtualized memory (bypassing the CCLO on the passive side) and
//!   token-based flow control.
//!
//! The shared interface lives in [`iface`]; the CCLO engine (`accl-cclo`)
//! drives any engine through it without protocol-specific logic.

#![warn(missing_docs)]

pub mod iface;
pub mod mux;
pub mod rdma;
pub mod tcp;
pub mod udp;

pub use iface::{
    ports, CompletionLog, PoeRxMeta, PoeSessionError, PoeTxCmd, PoeTxDone, PoeUpward, RxChunk,
    RxDemux, SessionErrorKind, SessionId, SessionTable, StreamChunk, TxAssembler, TxKind,
    TxSegment,
};
pub use mux::{EpochFence, RxMux};
pub use rdma::{RdmaConfig, RdmaPdu, RdmaPoe, WriteDelivery};
pub use tcp::{TcpConfig, TcpPoe, TcpSegment};
pub use udp::{UdpConfig, UdpDgram, UdpPoe};
