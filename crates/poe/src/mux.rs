//! Inbound frame demultiplexer and epoch fence for a node's POEs.
//!
//! A node running a primary RDMA engine with a standby TCP engine (the
//! graceful-degradation path) has one physical network port but two
//! protocol stacks behind it. [`RxMux`] models the NIC-level protocol
//! demux in front of stacked offload engines: every inbound frame is
//! routed to the engine whose PDU type it carries. Forwarding is
//! zero-latency, so the timing of a mux-fronted engine is identical to a
//! directly attached one.
//!
//! The mux is also the node's **epoch fence**: every frame carries the
//! sender's incarnation number (`Frame::epoch`, stamped by the NIC), and
//! the mux keeps a per-source minimum acceptable epoch. When a peer
//! restarts, the cluster posts an [`EpochFence`] control event to every
//! survivor's mux; frames from the peer's *previous* incarnation — stale
//! traffic still buffered in the fabric at crash time — arrive with an
//! old epoch, fail the fence, and are dropped before they can confuse the
//! rejoined session's matching logic.

use std::collections::BTreeMap;

use accl_net::{Frame, NodeAddr};
use accl_sim::prelude::*;

use crate::rdma::RdmaPdu;

/// Ports of the [`RxMux`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Inbound frames from the network (same index as the POEs' `NET_RX`
    /// so the mux can stand in for a POE at the fabric attachment point).
    /// [`super::EpochFence`] control events arrive here too.
    pub const NET_RX: PortId = crate::iface::ports::NET_RX;
}

/// Control event raising the minimum acceptable epoch for frames from
/// `src`: posted to every survivor's mux when `src` restarts, so the old
/// incarnation's in-flight frames are fenced out.
#[derive(Debug, Clone, Copy)]
pub struct EpochFence {
    /// The peer whose old incarnation is being fenced.
    pub src: NodeAddr,
    /// Frames from `src` with `epoch < min_epoch` are dropped.
    pub min_epoch: u32,
}

/// Routes one node's inbound frames between two co-resident POEs by PDU
/// type (RDMA PDUs to the RDMA engine, everything else to the fallback)
/// and fences frames from stale peer incarnations.
pub struct RxMux {
    rdma: Endpoint,
    other: Endpoint,
    frames_to_rdma: u64,
    frames_to_other: u64,
    /// Minimum acceptable `Frame::epoch` per source; absent = 0.
    fences: BTreeMap<u32, u32>,
    stale_epoch_drops: u64,
}

impl RxMux {
    /// Creates a mux feeding `rdma` (RDMA PDUs) and `other` (the rest).
    /// Both endpoints are the respective POE's `NET_RX` port.
    pub fn new(rdma: Endpoint, other: Endpoint) -> Self {
        RxMux {
            rdma,
            other,
            frames_to_rdma: 0,
            frames_to_other: 0,
            fences: BTreeMap::new(),
            stale_epoch_drops: 0,
        }
    }

    /// Creates a fence-only mux for a single-POE node: every surviving
    /// frame goes to `engine`. (Routing is trivial; the value is the epoch
    /// fence sitting in front of the engine, identical for every
    /// transport.)
    pub fn single(engine: Endpoint) -> Self {
        RxMux::new(engine, engine)
    }

    /// Frames routed to the RDMA engine so far.
    pub fn frames_to_rdma(&self) -> u64 {
        self.frames_to_rdma
    }

    /// Frames routed to the fallback engine so far.
    pub fn frames_to_other(&self) -> u64 {
        self.frames_to_other
    }

    /// Frames dropped for carrying a stale incarnation epoch so far.
    pub fn stale_epoch_drops(&self) -> u64 {
        self.stale_epoch_drops
    }

    /// The minimum acceptable epoch currently enforced for `src`.
    pub fn min_epoch(&self, src: NodeAddr) -> u32 {
        self.fences.get(&src.0).copied().unwrap_or(0)
    }
}

impl Component for RxMux {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        assert_eq!(port, ports::NET_RX, "Rx mux has only the NET_RX port");
        let payload = match payload.try_downcast::<EpochFence>() {
            Ok(fence) => {
                let e = self.fences.entry(fence.src.0).or_insert(0);
                *e = (*e).max(fence.min_epoch);
                return;
            }
            Err(other) => other,
        };
        let frame = payload.downcast::<Frame>();
        if frame.epoch < self.min_epoch(frame.src) {
            self.stale_epoch_drops += 1;
            ctx.stats().add("poe.mux.stale_epoch_drops", 1);
            if ctx.spans_enabled() {
                ctx.span_instant("poe.stale_drop", frame.span);
            }
            return;
        }
        let to = if frame.body.is::<RdmaPdu>() {
            self.frames_to_rdma += 1;
            self.rdma
        } else {
            self.frames_to_other += 1;
            self.other
        };
        ctx.send(to, Dur::ZERO, frame);
    }

    fn state_digest(&self) -> Option<u64> {
        let mut h = 0u64;
        for v in [
            self.frames_to_rdma,
            self.frames_to_other,
            self.stale_epoch_drops,
            self.fences.len() as u64,
        ] {
            accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        }
        for (&src, &min) in &self.fences {
            accl_sim::digest::fnv_fold(&mut h, &u64::from(src).to_le_bytes());
            accl_sim::digest::fnv_fold(&mut h, &u64::from(min).to_le_bytes());
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accl_net::NodeAddr;
    use accl_sim::trace::SpanId;
    use bytes::Bytes;

    use crate::iface::SessionId;
    use crate::tcp::TcpSegment;

    fn frame<T: std::any::Any + Send + Clone>(body: T) -> Frame {
        Frame::new(NodeAddr(0), NodeAddr(1), 64, body).with_span(SpanId::NONE)
    }

    #[test]
    fn routes_by_pdu_type() {
        let mut sim = Simulator::new(0);
        let rdma = sim.add("rdma", Mailbox::<Frame>::new());
        let tcp = sim.add("tcp", Mailbox::<Frame>::new());
        let mux = sim.add("mux", RxMux::new(Endpoint::of(rdma), Endpoint::of(tcp)));
        sim.post(
            Endpoint::new(mux, ports::NET_RX),
            Time::ZERO,
            frame(RdmaPdu::Credit {
                dst_qp: SessionId(0),
                ack_psn: 1,
            }),
        );
        sim.post(
            Endpoint::new(mux, ports::NET_RX),
            Time::ZERO,
            frame(TcpSegment {
                dst_session: SessionId(0),
                seq: 0,
                data: Bytes::from_static(b"x"),
            }),
        );
        sim.run();
        assert_eq!(sim.component::<Mailbox<Frame>>(rdma).len(), 1);
        assert_eq!(sim.component::<Mailbox<Frame>>(tcp).len(), 1);
        let m = sim.component::<RxMux>(mux);
        assert_eq!((m.frames_to_rdma(), m.frames_to_other()), (1, 1));
    }

    #[test]
    fn stale_epochs_are_fenced() {
        let mut sim = Simulator::new(0);
        let sink = sim.add("sink", Mailbox::<Frame>::new());
        let mux = sim.add("mux", RxMux::single(Endpoint::of(sink)));
        let at = Endpoint::new(mux, ports::NET_RX);
        // Epoch-0 frame before any fence: delivered.
        sim.post(at, Time::ZERO, frame(7u32));
        // Fence source 0 at epoch 1; subsequent epoch-0 frames drop,
        // epoch-1 frames pass.
        sim.post(
            at,
            Time::from_us(1),
            EpochFence {
                src: NodeAddr(0),
                min_epoch: 1,
            },
        );
        sim.post(at, Time::from_us(2), frame(8u32));
        let mut fresh = frame(9u32);
        fresh.epoch = 1;
        sim.post(at, Time::from_us(3), fresh);
        // Frames from *other* sources are unaffected by the fence.
        let mut other_src = frame(10u32);
        other_src.src = NodeAddr(3);
        sim.post(at, Time::from_us(4), other_src);
        sim.run();
        assert_eq!(sim.component::<Mailbox<Frame>>(sink).len(), 3);
        let m = sim.component::<RxMux>(mux);
        assert_eq!(m.stale_epoch_drops(), 1);
        assert_eq!(m.min_epoch(NodeAddr(0)), 1);
        assert_eq!(m.min_epoch(NodeAddr(3)), 0);
    }

    #[test]
    fn fences_fold_into_the_digest() {
        let base = RxMux::single(Endpoint::of(ComponentId::from_index(0)));
        let mut fenced = RxMux::single(Endpoint::of(ComponentId::from_index(0)));
        fenced.fences.insert(2, 1);
        assert_ne!(base.state_digest(), fenced.state_digest());
    }
}
