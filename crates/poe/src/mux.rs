//! Inbound frame demultiplexer for dual-POE nodes.
//!
//! A node running a primary RDMA engine with a standby TCP engine (the
//! graceful-degradation path) has one physical network port but two
//! protocol stacks behind it. [`RxMux`] models the NIC-level protocol
//! demux in front of stacked offload engines: every inbound frame is
//! routed to the engine whose PDU type it carries. Forwarding is
//! zero-latency, so the timing of a mux-fronted engine is identical to a
//! directly attached one.

use accl_net::Frame;
use accl_sim::prelude::*;

use crate::rdma::RdmaPdu;

/// Ports of the [`RxMux`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Inbound frames from the network (same index as the POEs' `NET_RX`
    /// so the mux can stand in for a POE at the fabric attachment point).
    pub const NET_RX: PortId = crate::iface::ports::NET_RX;
}

/// Routes one node's inbound frames between two co-resident POEs by PDU
/// type: RDMA PDUs to the RDMA engine, everything else to the fallback.
pub struct RxMux {
    rdma: Endpoint,
    other: Endpoint,
    frames_to_rdma: u64,
    frames_to_other: u64,
}

impl RxMux {
    /// Creates a mux feeding `rdma` (RDMA PDUs) and `other` (the rest).
    /// Both endpoints are the respective POE's `NET_RX` port.
    pub fn new(rdma: Endpoint, other: Endpoint) -> Self {
        RxMux {
            rdma,
            other,
            frames_to_rdma: 0,
            frames_to_other: 0,
        }
    }

    /// Frames routed to the RDMA engine so far.
    pub fn frames_to_rdma(&self) -> u64 {
        self.frames_to_rdma
    }

    /// Frames routed to the fallback engine so far.
    pub fn frames_to_other(&self) -> u64 {
        self.frames_to_other
    }
}

impl Component for RxMux {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        assert_eq!(port, ports::NET_RX, "Rx mux has only the NET_RX port");
        let frame = payload.downcast::<Frame>();
        let to = if frame.body.is::<RdmaPdu>() {
            self.frames_to_rdma += 1;
            self.rdma
        } else {
            self.frames_to_other += 1;
            self.other
        };
        ctx.send(to, Dur::ZERO, frame);
    }

    fn state_digest(&self) -> Option<u64> {
        let mut h = 0u64;
        for v in [self.frames_to_rdma, self.frames_to_other] {
            accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accl_net::NodeAddr;
    use accl_sim::trace::SpanId;
    use bytes::Bytes;

    use crate::iface::SessionId;
    use crate::tcp::TcpSegment;

    fn frame<T: std::any::Any + Send + Clone>(body: T) -> Frame {
        Frame::new(NodeAddr(0), NodeAddr(1), 64, body).with_span(SpanId::NONE)
    }

    #[test]
    fn routes_by_pdu_type() {
        let mut sim = Simulator::new(0);
        let rdma = sim.add("rdma", Mailbox::<Frame>::new());
        let tcp = sim.add("tcp", Mailbox::<Frame>::new());
        let mux = sim.add("mux", RxMux::new(Endpoint::of(rdma), Endpoint::of(tcp)));
        sim.post(
            Endpoint::new(mux, ports::NET_RX),
            Time::ZERO,
            frame(RdmaPdu::Credit {
                dst_qp: SessionId(0),
                ack_psn: 1,
            }),
        );
        sim.post(
            Endpoint::new(mux, ports::NET_RX),
            Time::ZERO,
            frame(TcpSegment {
                dst_session: SessionId(0),
                seq: 0,
                data: Bytes::from_static(b"x"),
            }),
        );
        sim.run();
        assert_eq!(sim.component::<Mailbox<Frame>>(rdma).len(), 1);
        assert_eq!(sim.component::<Mailbox<Frame>>(tcp).len(), 1);
        let m = sim.component::<RxMux>(mux);
        assert_eq!((m.frames_to_rdma(), m.frames_to_other()), (1, 1));
    }
}
