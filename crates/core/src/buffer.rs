//! Driver-side buffer management (the `BaseBuffer` hierarchy of §4.2).
//!
//! Buffers wrap a region of simulated memory plus the platform-specific
//! information the CCL driver needs: where the bytes physically live and
//! how the CCLO addresses them. On Coyote, buffers live in unified virtual
//! memory and are eagerly mapped into the shell TLB at allocation (the
//! `CoyoteBuffer` behaviour the paper highlights); on Vitis/XRT, host and
//! device buffers are distinct and host data must be staged.

use accl_cclo::command::DataLoc;
use accl_mem::{MemAddr, MemTarget};

/// Which memory a buffer's bytes live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufLoc {
    /// Host DRAM.
    Host,
    /// FPGA card memory (HBM).
    Device,
}

impl BufLoc {
    /// The memory-bus target for this location.
    pub fn target(self) -> MemTarget {
        match self {
            BufLoc::Host => MemTarget::Host,
            BufLoc::Device => MemTarget::Device,
        }
    }
}

/// A handle to an allocated buffer on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferHandle {
    /// Owning node.
    pub node: usize,
    /// Location of the bytes.
    pub loc: BufLoc,
    /// Address within that location's space. On Coyote this is also the
    /// unified virtual address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
    /// Whether the owning platform exposes unified virtual memory.
    pub unified: bool,
    /// For partitioned platforms: the device-side staging shadow address
    /// (allocated lazily by the driver for host buffers).
    pub staging_addr: Option<u64>,
}

impl BufferHandle {
    /// The address the CCLO uses to reach this buffer *without staging*.
    ///
    /// On unified-memory platforms any buffer is directly addressable; on
    /// partitioned platforms only device buffers are.
    pub fn direct_addr(&self) -> Option<MemAddr> {
        if self.unified {
            Some(MemAddr::Virt(self.addr))
        } else if self.loc == BufLoc::Device {
            Some(MemAddr::Phys(MemTarget::Device, self.addr))
        } else {
            None
        }
    }

    /// The address the CCLO uses after the driver staged this buffer.
    pub fn staged_addr(&self) -> MemAddr {
        match self.direct_addr() {
            Some(a) => a,
            None => MemAddr::Phys(
                MemTarget::Device,
                self.staging_addr
                    .expect("host buffer was not assigned a staging shadow"),
            ),
        }
    }

    /// The command-argument form of this buffer (post-staging address).
    pub fn data_loc(&self) -> DataLoc {
        DataLoc::Mem(self.staged_addr())
    }

    /// Whether a collective touching this buffer needs staging copies.
    pub fn needs_staging(&self) -> bool {
        !self.unified && self.loc == BufLoc::Host
    }
}

/// Address-space layout of one simulated node, shared by the driver.
///
/// Regions are disjoint by construction; the scratch region is reserved for
/// the CCLO engine's collective internals.
#[derive(Debug)]
pub struct NodeSpaces {
    host: accl_mem::AddrSpace,
    device: accl_mem::AddrSpace,
}

/// Base of the host allocation region.
pub const HOST_REGION_BASE: u64 = 0x0100_0000_0000;
/// Base of the device allocation region.
pub const DEVICE_REGION_BASE: u64 = 0x0000_1000_0000;
/// Base of the CCLO scratch region (device memory).
pub const SCRATCH_BASE: u64 = 0x0000_c000_0000;
/// Size of the CCLO scratch region.
pub const SCRATCH_BYTES: u64 = 1 << 30;

impl NodeSpaces {
    /// Creates the standard layout: 256 GiB of host space, 2 GiB of device
    /// space (a U55C has 16 GiB HBM; 2 GiB of *allocatable* space keeps the
    /// sparse store small while leaving room for scratch).
    pub fn new() -> Self {
        NodeSpaces {
            host: accl_mem::AddrSpace::new(HOST_REGION_BASE, 256 << 30),
            device: accl_mem::AddrSpace::new(DEVICE_REGION_BASE, 2 << 30),
        }
    }

    /// Allocates `len` bytes in `loc`, 4 KiB aligned.
    pub fn alloc(&mut self, loc: BufLoc, len: u64) -> u64 {
        let space = match loc {
            BufLoc::Host => &mut self.host,
            BufLoc::Device => &mut self.device,
        };
        space
            .alloc(len.max(1), 4096)
            .unwrap_or_else(|| panic!("out of {loc:?} buffer space ({len} B)"))
            .addr
    }

    /// Frees a previously allocated region.
    pub fn free(&mut self, loc: BufLoc, addr: u64, len: u64) {
        let space = match loc {
            BufLoc::Host => &mut self.host,
            BufLoc::Device => &mut self.device,
        };
        space.free(accl_mem::Region {
            addr,
            len: len.max(1),
        });
    }
}

impl Default for NodeSpaces {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(unified: bool, loc: BufLoc, staging: Option<u64>) -> BufferHandle {
        BufferHandle {
            node: 0,
            loc,
            addr: 0x1000,
            len: 64,
            unified,
            staging_addr: staging,
        }
    }

    #[test]
    fn unified_buffers_are_always_direct() {
        let h = handle(true, BufLoc::Host, None);
        assert_eq!(h.direct_addr(), Some(MemAddr::Virt(0x1000)));
        assert!(!h.needs_staging());
        let d = handle(true, BufLoc::Device, None);
        assert_eq!(d.direct_addr(), Some(MemAddr::Virt(0x1000)));
    }

    #[test]
    fn partitioned_host_buffers_need_staging() {
        let h = handle(false, BufLoc::Host, Some(0x9000));
        assert_eq!(h.direct_addr(), None);
        assert!(h.needs_staging());
        assert_eq!(h.staged_addr(), MemAddr::Phys(MemTarget::Device, 0x9000));
    }

    #[test]
    #[should_panic(expected = "staging shadow")]
    fn unstaged_host_buffer_panics() {
        handle(false, BufLoc::Host, None).staged_addr();
    }

    #[test]
    fn node_spaces_are_disjoint() {
        let mut s = NodeSpaces::new();
        let h = s.alloc(BufLoc::Host, 4096);
        let d = s.alloc(BufLoc::Device, 4096);
        assert!(h >= HOST_REGION_BASE);
        assert!((DEVICE_REGION_BASE..HOST_REGION_BASE).contains(&d));
        s.free(BufLoc::Host, h, 4096);
        s.free(BufLoc::Device, d, 4096);
    }

    #[test]
    fn scratch_region_does_not_overlap_device_allocs() {
        let mut s = NodeSpaces::new();
        for _ in 0..100 {
            let d = s.alloc(BufLoc::Device, 1 << 20);
            assert!(d + (1 << 20) <= SCRATCH_BASE);
        }
    }
}
