//! # accl-core — the ACCL+ public API
//!
//! The driver-level library applications program against (paper §4.1–4.2):
//!
//! - [`cluster::AcclCluster`] — builds a simulated cluster of CPU+FPGA
//!   nodes on a switched 100 Gb/s fabric, one CCLO engine per FPGA.
//! - [`buffer`] — the `BaseBuffer`-style platform-aware buffer handles.
//! - [`driver`] — the host CCL driver: invocation latency, staging,
//!   per-phase breakdowns; [`driver::CollSpec`] mirrors Listing 1.
//! - [`host`] — MPI-like host programs (memory-based collectives).
//! - [`kernel`] — streaming kernel programs (Listing 2's flow).
//! - [`platform`] — Coyote vs. Vitis/XRT, UDP/TCP/RDMA presets.
//! - [`error`] — typed collective failures ([`error::CclError`]) and the
//!   driver's retry policy (fail-stop fault model).
//! - [`comm`] — communicator handles and ULFM-style
//!   [`comm::Communicator::shrink`] / [`comm::Communicator::expand`]
//!   recovery.
//! - [`membership`] — the self-healing membership lifecycle
//!   (suspect → confirm → restart → rejoin) and split-brain-safe
//!   partition resolution.

#![warn(missing_docs)]

pub mod buffer;
pub mod cluster;
pub mod comm;
pub mod driver;
pub mod error;
pub mod host;
pub mod kernel;
pub mod membership;
pub mod platform;

pub use buffer::{BufLoc, BufferHandle};
pub use cluster::{AcclCluster, NodeHandles, NodeStats};
pub use comm::Communicator;
pub use driver::{CollSpec, DriverDone, HostDriver};
pub use error::{CclError, RetryPolicy};
pub use host::{HostOp, HostProc, Program};
pub use kernel::{KernelOp, KernelProc};
pub use membership::{partition_sides, resolve_partition, MembershipEvent};
pub use platform::{ClusterConfig, Platform, Transport};

// Re-export the layers below for one-stop consumption.
pub use accl_cclo::{
    AdaptiveWatchdogCfg, AlgoConfig, Algorithm, CcloConfig, CollOp, CollectiveProgram, DType,
    ReduceFn, SyncProto,
};
pub use accl_poe::{RdmaConfig, TcpConfig};
