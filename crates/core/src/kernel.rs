//! FPGA kernel processes: streaming collective clients (Listing 2).
//!
//! A [`KernelProc`] models an HLS kernel wired directly to the CCLO: it
//! issues commands over the hardware command interface (no host invocation
//! latency), pushes data into the engine's stream-in port at datapath rate,
//! and consumes stream-out chunks. Ops sequence like the Listing 2 flow:
//! `cclo.send(...)`, `data.push(...)` loop, `cclo.finalize()`.

use std::collections::VecDeque;

use bytes::Bytes;

use accl_cclo::command::{CcloCommand, CcloDone, DataLoc};
use accl_cclo::dmp::KernelPush;
use accl_cclo::rbm::RbmStream;
use accl_sim::prelude::*;

use crate::driver::CollSpec;

/// One step of a kernel program.
#[derive(Debug, Clone)]
pub enum KernelOp {
    /// Issue a collective command to the CCLO without waiting (streaming
    /// calls must push their data afterwards).
    Issue(CollSpec),
    /// Push bytes into the CCLO stream-in interface, paced at the kernel's
    /// production rate.
    Push(Bytes),
    /// Wait until all issued commands have completed (`cclo.finalize()`).
    Finalize,
    /// Wait until at least `len` cumulative bytes have arrived on the
    /// stream-out interface (across all messages so far).
    Expect(u64),
    /// Busy the kernel for a fixed duration (modelled pipeline work).
    Compute(Dur),
}

/// Ports of the [`KernelProc`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Program start trigger.
    pub const START: PortId = PortId(0);
    /// CCLO completions.
    pub const CCLO_DONE: PortId = PortId(1);
    /// Stream-out chunks from the CCLO.
    pub const STREAM_RX: PortId = PortId(2);
    /// Compute-delay expiry.
    pub const TIMER: PortId = PortId(3);
}

/// A simulated FPGA application kernel attached to one CCLO.
pub struct KernelProc {
    cclo_cmd: Endpoint,
    cclo_stream_in: Endpoint,
    /// Kernel data production rate (64 B/cycle at the engine clock).
    push_rate: Pipe,
    ops: VecDeque<KernelOp>,
    outstanding: u32,
    /// Per-message receive buffers in ticket (arrival-stream) order.
    received_msgs: Vec<(u64, Vec<u8>)>,
    /// Ticket → index into `received_msgs`.
    received_index: std::collections::BTreeMap<u64, usize>,
    received_bytes: u64,
    expect_target: Option<u64>,
    /// A `Compute` op is in progress; the op stream is blocked until its
    /// timer fires (completions arriving meanwhile must not advance it).
    computing: bool,
    running: bool,
    finished_at: Option<Time>,
    issued_ticket: u64,
    op_times: Vec<(usize, Time)>,
    index: usize,
}

impl KernelProc {
    /// Creates a kernel wired to the given CCLO endpoints.
    pub fn new(
        cclo_cmd: Endpoint,
        cclo_stream_in: Endpoint,
        clock_mhz: f64,
        ops: Vec<KernelOp>,
    ) -> Self {
        KernelProc {
            cclo_cmd,
            cclo_stream_in,
            push_rate: Pipe::bytes_per_sec(64.0 * clock_mhz * 1e6),
            ops: ops.into(),
            outstanding: 0,
            received_msgs: Vec::new(),
            received_index: std::collections::BTreeMap::new(),
            received_bytes: 0,
            expect_target: None,
            computing: false,
            running: false,
            finished_at: None,
            issued_ticket: 0,
            op_times: Vec::new(),
            index: 0,
        }
    }

    /// All received bytes, concatenated in message order.
    pub fn received(&self) -> Vec<u8> {
        self.received_msgs
            .iter()
            .flat_map(|(_, m)| m.iter().copied())
            .collect()
    }

    /// Per-message receive buffers, in arrival-stream order.
    pub fn received_msgs(&self) -> Vec<&[u8]> {
        self.received_msgs
            .iter()
            .map(|(_, m)| m.as_slice())
            .collect()
    }

    /// When the program finished, if it did.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    /// `(op index, completion time)` pairs.
    pub fn op_times(&self) -> &[(usize, Time)] {
        &self.op_times
    }

    fn advance(&mut self, ctx: &mut Ctx<'_>) {
        if self.computing {
            return; // blocked until the Compute timer fires
        }
        loop {
            let Some(op) = self.ops.front().cloned() else {
                if !self.running {
                    return;
                }
                self.running = false;
                self.finished_at = Some(ctx.now());
                return;
            };
            match op {
                KernelOp::Issue(spec) => {
                    let ticket = self.issued_ticket;
                    self.issued_ticket += 1;
                    self.outstanding += 1;
                    let cmd = CcloCommand {
                        op: spec.op,
                        count: spec.count,
                        dtype: spec.dtype,
                        root: spec.root,
                        tag: spec.tag,
                        comm: spec.comm,
                        func: spec.func,
                        src: spec.src.map_or(DataLoc::Stream, |b| b.data_loc()),
                        dst: spec.dst.map_or(DataLoc::Stream, |b| b.data_loc()),
                        sync: spec.sync,
                        reply_to: Endpoint::new(ctx.self_id(), ports::CCLO_DONE),
                        ticket,
                        // Kernel calls bypass the host driver, so the
                        // engine's `uc.call` span is the trace root.
                        span: accl_sim::trace::SpanId::NONE,
                    };
                    // One engine-interface hop: a couple of cycles.
                    ctx.send(self.cclo_cmd, Dur::from_ns(8), cmd);
                    self.done_op(ctx);
                }
                KernelOp::Push(data) => {
                    // Pace the push at the kernel's production rate.
                    let (_, end) = self.push_rate.reserve(ctx.now(), data.len() as u64);
                    ctx.send_at(self.cclo_stream_in, end, KernelPush { data });
                    self.done_op(ctx);
                }
                KernelOp::Finalize => {
                    if self.outstanding > 0 {
                        return; // resumed by CCLO_DONE
                    }
                    self.done_op(ctx);
                }
                KernelOp::Expect(len) => {
                    if self.received_bytes < len {
                        self.expect_target = Some(len);
                        return; // resumed by STREAM_RX
                    }
                    self.expect_target = None;
                    self.done_op(ctx);
                }
                KernelOp::Compute(d) => {
                    self.ops.pop_front();
                    self.index += 1;
                    self.computing = true;
                    ctx.send_self(ports::TIMER, d, ());
                    return;
                }
            }
        }
    }

    fn done_op(&mut self, ctx: &mut Ctx<'_>) {
        self.ops.pop_front();
        self.op_times.push((self.index, ctx.now()));
        self.index += 1;
    }
}

impl Component for KernelProc {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::START => {
                payload.downcast::<()>();
                assert!(!self.running, "kernel program started twice");
                self.running = true;
                self.advance(ctx);
            }
            ports::CCLO_DONE => {
                payload.downcast::<CcloDone>();
                assert!(self.outstanding > 0, "unexpected CCLO completion");
                self.outstanding -= 1;
                if self.running {
                    self.advance(ctx);
                }
            }
            ports::STREAM_RX => {
                let chunk = payload.downcast::<RbmStream>();
                let idx = *self.received_index.entry(chunk.ticket).or_insert_with(|| {
                    self.received_msgs.push((chunk.ticket, Vec::new()));
                    self.received_msgs.len() - 1
                });
                let msg = &mut self.received_msgs[idx].1;
                let off = chunk.offset as usize;
                let end = off + chunk.data.len();
                if msg.len() < end {
                    msg.resize(end, 0);
                }
                msg[off..end].copy_from_slice(&chunk.data);
                self.received_bytes += chunk.data.len() as u64;
                if let Some(target) = self.expect_target {
                    if self.received_bytes >= target && self.running {
                        self.expect_target = None;
                        self.done_op(ctx);
                        self.advance(ctx);
                    }
                }
            }
            ports::TIMER => {
                payload.downcast::<()>();
                debug_assert!(self.computing, "stray kernel compute timer");
                self.computing = false;
                self.op_times.push((self.index - 1, ctx.now()));
                if self.running {
                    self.advance(ctx);
                }
            }
            other => panic!("kernel has no port {other:?}"),
        }
    }

    fn state_digest(&self) -> Option<u64> {
        // Stream position, op progress, and a content checksum of every
        // received message keyed by ticket (BTreeMap order is canonical).
        let mut h = 0u64;
        let mut fold = |v: u64| accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        for v in [
            self.index as u64,
            u64::from(self.outstanding),
            self.received_bytes,
            self.issued_ticket,
            u64::from(self.running),
            self.finished_at.map_or(0, |t| t.as_ps()),
        ] {
            fold(v);
        }
        for (ticket, &idx) in &self.received_index {
            let mut m = 0u64;
            accl_sim::digest::fnv_fold(&mut m, &ticket.to_le_bytes());
            accl_sim::digest::fnv_fold(&mut m, &self.received_msgs[idx].1);
            h = h.wrapping_add(m);
        }
        Some(h)
    }
}
