//! Communicator handles and ULFM-style recovery.
//!
//! A [`Communicator`] is the host-side description of a rank group: an
//! ordered list of member nodes. The world communicator (id 0) covers
//! every node and exists from cluster construction. After a fail-stop
//! fault is reported as [`crate::error::CclError::PeerFailed`], the
//! application excludes the dead nodes with [`Communicator::shrink`] —
//! the User-Level Failure Mitigation (`MPI_Comm_shrink`) workflow —
//! installs the survivor group via
//! [`crate::cluster::AcclCluster::install_communicator`], and reissues
//! the collective on it. When a failed node restarts and rejoins,
//! [`Communicator::expand`] (the dual of shrink) readmits it with
//! deterministic renumbering.

use crate::error::CclError;

/// An ordered group of nodes acting as ranks of one communicator.
///
/// Entry `r` of [`Communicator::members`] is the node serving rank `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Communicator {
    id: u32,
    members: Vec<usize>,
}

impl Communicator {
    /// The built-in world communicator over `nodes` nodes (id 0, node `i`
    /// is rank `i`).
    pub fn world(nodes: usize) -> Self {
        Communicator {
            id: 0,
            members: (0..nodes).collect(),
        }
    }

    /// A communicator `id` whose rank `r` is served by `members[r]`.
    ///
    /// # Panics
    ///
    /// Panics on an empty member list or duplicate members.
    pub fn new(id: u32, members: Vec<usize>) -> Self {
        assert!(
            !members.is_empty(),
            "communicator needs at least one member"
        );
        let unique: std::collections::BTreeSet<_> = members.iter().collect();
        assert_eq!(unique.len(), members.len(), "duplicate communicator member");
        Communicator { id, members }
    }

    /// The communicator id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The member nodes, in rank order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.members.len() as u32
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: usize) -> bool {
        self.members.contains(&node)
    }

    /// The rank `node` serves, if it is a member.
    pub fn rank_of(&self, node: usize) -> Option<u32> {
        self.members
            .iter()
            .position(|&m| m == node)
            .map(|r| r as u32)
    }

    /// ULFM-style shrink: a new communicator `new_id` over the surviving
    /// members, excluding every node in `failed`. Rank order of the
    /// survivors is preserved (ranks are renumbered densely).
    ///
    /// This is a pure description; install it on a cluster with
    /// [`crate::cluster::AcclCluster::install_communicator`].
    ///
    /// # Errors
    ///
    /// [`CclError::InvalidGroup`] if no member survives — a recoverable
    /// condition (total-failure accusations are often a partition in
    /// disguise), so it is a typed error rather than a panic.
    pub fn shrink(&self, new_id: u32, failed: &[usize]) -> Result<Communicator, CclError> {
        let members: Vec<usize> = self
            .members
            .iter()
            .copied()
            .filter(|m| !failed.contains(m))
            .collect();
        if members.is_empty() {
            return Err(CclError::InvalidGroup);
        }
        Ok(Communicator {
            id: new_id,
            members,
        })
    }

    /// Dual of [`Communicator::shrink`]: a new communicator `new_id` that
    /// readmits every node in `rejoining`. Renumbering is deterministic:
    /// each rejoining node (processed in ascending node order) is inserted
    /// before the first existing member with a larger node id, so
    /// re-expanding a shrunk world communicator restores the original
    /// world numbering exactly.
    ///
    /// # Errors
    ///
    /// [`CclError::InvalidGroup`] if `rejoining` contains a node that is
    /// already a member (the rejoin announcement raced an earlier expand;
    /// re-resolve membership and retry).
    pub fn expand(&self, new_id: u32, rejoining: &[usize]) -> Result<Communicator, CclError> {
        let mut adds: Vec<usize> = rejoining.to_vec();
        adds.sort_unstable();
        adds.dedup();
        if adds.iter().any(|n| self.members.contains(n)) || adds.len() != rejoining.len() {
            return Err(CclError::InvalidGroup);
        }
        let mut members = self.members.clone();
        for node in adds {
            let pos = members
                .iter()
                .position(|&m| m > node)
                .unwrap_or(members.len());
            members.insert(pos, node);
        }
        Ok(Communicator {
            id: new_id,
            members,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_covers_all_nodes() {
        let w = Communicator::world(4);
        assert_eq!(w.id(), 0);
        assert_eq!(w.size(), 4);
        assert_eq!(w.rank_of(2), Some(2));
        assert_eq!(w.rank_of(4), None);
    }

    #[test]
    fn shrink_renumbers_survivors() {
        let w = Communicator::world(4);
        let s = w.shrink(1, &[1]).unwrap();
        assert_eq!(s.id(), 1);
        assert_eq!(s.members(), &[0, 2, 3]);
        assert_eq!(s.rank_of(2), Some(1));
        assert_eq!(s.rank_of(3), Some(2));
        assert!(!s.contains(1));
    }

    #[test]
    fn shrink_to_nothing_is_a_typed_error() {
        assert_eq!(
            Communicator::world(2).shrink(1, &[0, 1]),
            Err(CclError::InvalidGroup)
        );
    }

    #[test]
    fn expand_restores_world_numbering() {
        let w = Communicator::world(4);
        let s = w.shrink(1, &[1]).unwrap();
        let e = s.expand(2, &[1]).unwrap();
        assert_eq!(e.id(), 2);
        assert_eq!(e.members(), &[0, 1, 2, 3]);
        assert_eq!(e.rank_of(1), Some(1));
        assert_eq!(e.rank_of(3), Some(3));
    }

    #[test]
    fn expand_inserts_multiple_rejoiners_deterministically() {
        let w = Communicator::world(5);
        let s = w.shrink(1, &[1, 3]).unwrap();
        assert_eq!(s.members(), &[0, 2, 4]);
        // Order of the rejoining list must not matter.
        let a = s.expand(2, &[3, 1]).unwrap();
        let b = s.expand(2, &[1, 3]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.members(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn expand_rejects_existing_members() {
        let w = Communicator::world(3);
        assert_eq!(w.expand(1, &[2]), Err(CclError::InvalidGroup));
        assert_eq!(
            w.shrink(1, &[0]).unwrap().expand(2, &[1, 1]),
            Err(CclError::InvalidGroup)
        );
    }

    #[test]
    #[should_panic(expected = "duplicate communicator member")]
    fn duplicate_members_rejected() {
        Communicator::new(1, vec![0, 0]);
    }
}
