//! Communicator handles and ULFM-style recovery.
//!
//! A [`Communicator`] is the host-side description of a rank group: an
//! ordered list of member nodes. The world communicator (id 0) covers
//! every node and exists from cluster construction. After a fail-stop
//! fault is reported as [`crate::error::CclError::PeerFailed`], the
//! application excludes the dead nodes with [`Communicator::shrink`] —
//! the User-Level Failure Mitigation (`MPI_Comm_shrink`) workflow —
//! installs the survivor group via
//! [`crate::cluster::AcclCluster::install_communicator`], and reissues
//! the collective on it.

/// An ordered group of nodes acting as ranks of one communicator.
///
/// Entry `r` of [`Communicator::members`] is the node serving rank `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Communicator {
    id: u32,
    members: Vec<usize>,
}

impl Communicator {
    /// The built-in world communicator over `nodes` nodes (id 0, node `i`
    /// is rank `i`).
    pub fn world(nodes: usize) -> Self {
        Communicator {
            id: 0,
            members: (0..nodes).collect(),
        }
    }

    /// A communicator `id` whose rank `r` is served by `members[r]`.
    ///
    /// # Panics
    ///
    /// Panics on an empty member list or duplicate members.
    pub fn new(id: u32, members: Vec<usize>) -> Self {
        assert!(
            !members.is_empty(),
            "communicator needs at least one member"
        );
        let unique: std::collections::BTreeSet<_> = members.iter().collect();
        assert_eq!(unique.len(), members.len(), "duplicate communicator member");
        Communicator { id, members }
    }

    /// The communicator id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The member nodes, in rank order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.members.len() as u32
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: usize) -> bool {
        self.members.contains(&node)
    }

    /// The rank `node` serves, if it is a member.
    pub fn rank_of(&self, node: usize) -> Option<u32> {
        self.members
            .iter()
            .position(|&m| m == node)
            .map(|r| r as u32)
    }

    /// ULFM-style shrink: a new communicator `new_id` over the surviving
    /// members, excluding every node in `failed`. Rank order of the
    /// survivors is preserved (ranks are renumbered densely).
    ///
    /// This is a pure description; install it on a cluster with
    /// [`crate::cluster::AcclCluster::install_communicator`].
    ///
    /// # Panics
    ///
    /// Panics if no member survives.
    pub fn shrink(&self, new_id: u32, failed: &[usize]) -> Communicator {
        let members: Vec<usize> = self
            .members
            .iter()
            .copied()
            .filter(|m| !failed.contains(m))
            .collect();
        assert!(!members.is_empty(), "shrink left no surviving members");
        Communicator {
            id: new_id,
            members,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_covers_all_nodes() {
        let w = Communicator::world(4);
        assert_eq!(w.id(), 0);
        assert_eq!(w.size(), 4);
        assert_eq!(w.rank_of(2), Some(2));
        assert_eq!(w.rank_of(4), None);
    }

    #[test]
    fn shrink_renumbers_survivors() {
        let w = Communicator::world(4);
        let s = w.shrink(1, &[1]);
        assert_eq!(s.id(), 1);
        assert_eq!(s.members(), &[0, 2, 3]);
        assert_eq!(s.rank_of(2), Some(1));
        assert_eq!(s.rank_of(3), Some(2));
        assert!(!s.contains(1));
    }

    #[test]
    #[should_panic(expected = "no surviving members")]
    fn shrink_to_nothing_panics() {
        Communicator::world(2).shrink(1, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "duplicate communicator member")]
    fn duplicate_members_rejected() {
        Communicator::new(1, vec![0, 0]);
    }
}
