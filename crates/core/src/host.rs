//! Host application processes: MPI-like programs on simulated CPUs.
//!
//! A [`HostProc`] executes a sequence of [`HostOp`]s — collective calls
//! through the CCL driver, interleaved with modelled compute — the way an
//! MPI rank alternates computation and communication. Op completion times
//! are recorded for the benchmark harnesses.

use std::collections::VecDeque;

use accl_sim::prelude::*;

use crate::driver::{CollSpec, DriverCall, DriverDone};
use crate::error::CclError;

/// One step of a host program.
#[derive(Debug, Clone)]
pub enum HostOp {
    /// Invoke a collective through the CCL driver and wait for completion
    /// (the `sync` flag of Listing 1).
    Coll(CollSpec),
    /// Busy the CPU for a fixed duration (modelled computation).
    Compute(Dur),
}

/// Record of one completed op.
#[derive(Debug, Clone, Copy)]
pub struct OpRecord {
    /// Index within the program.
    pub index: usize,
    /// When the op started.
    pub started: Time,
    /// When it completed.
    pub finished: Time,
    /// For collectives: the driver's phase breakdown.
    pub breakdown: Option<DriverDone>,
}

impl OpRecord {
    /// The op's outcome: compute ops always succeed, collectives report
    /// the driver's result.
    pub fn result(&self) -> Result<(), CclError> {
        self.breakdown.map_or(Ok(()), |b| b.result)
    }
}

/// Ports of the [`HostProc`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Program start trigger.
    pub const START: PortId = PortId(0);
    /// Driver completions.
    pub const DRIVER_DONE: PortId = PortId(1);
    /// Compute-delay expiry.
    pub const TIMER: PortId = PortId(2);
}

/// A simulated host process bound to one node's CCL driver.
pub struct HostProc {
    driver: Endpoint,
    ops: VecDeque<HostOp>,
    records: Vec<OpRecord>,
    index: usize,
    op_started: Time,
    running: bool,
    finished_at: Option<Time>,
}

impl HostProc {
    /// Creates a process that will run `ops` against `driver` when started.
    pub fn new(driver: Endpoint, ops: Vec<HostOp>) -> Self {
        HostProc {
            driver,
            ops: ops.into(),
            records: Vec::new(),
            index: 0,
            op_started: Time::ZERO,
            running: false,
            finished_at: None,
        }
    }

    /// Per-op completion records (after the run).
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// When the program finished, if it did.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    fn next_op(&mut self, ctx: &mut Ctx<'_>) {
        self.op_started = ctx.now();
        let Some(op) = self.ops.front().cloned() else {
            self.running = false;
            self.finished_at = Some(ctx.now());
            return;
        };
        match op {
            HostOp::Coll(spec) => {
                ctx.send(
                    self.driver,
                    Dur::ZERO,
                    DriverCall {
                        spec,
                        reply_to: Endpoint::new(ctx.self_id(), ports::DRIVER_DONE),
                        ticket: self.index as u64,
                    },
                );
            }
            HostOp::Compute(d) => {
                ctx.send_self(ports::TIMER, d, ());
            }
        }
    }

    fn complete_op(&mut self, ctx: &mut Ctx<'_>, breakdown: Option<DriverDone>) {
        self.ops.pop_front();
        self.records.push(OpRecord {
            index: self.index,
            started: self.op_started,
            finished: ctx.now(),
            breakdown,
        });
        self.index += 1;
        self.next_op(ctx);
    }
}

impl Component for HostProc {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::START => {
                payload.downcast::<()>();
                assert!(!self.running, "host program started twice");
                self.running = true;
                self.next_op(ctx);
            }
            ports::DRIVER_DONE => {
                let done = payload.downcast::<DriverDone>();
                self.complete_op(ctx, Some(done));
            }
            ports::TIMER => {
                payload.downcast::<()>();
                self.complete_op(ctx, None);
            }
            other => panic!("host process has no port {other:?}"),
        }
    }

    fn state_digest(&self) -> Option<u64> {
        // Program position plus each completed op's start/finish instants
        // (the records are in program order, which is deterministic).
        let mut h = 0u64;
        let mut fold = |v: u64| accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        fold(self.index as u64);
        fold(u64::from(self.running));
        fold(self.finished_at.map_or(0, |t| t.as_ps()));
        for r in &self.records {
            fold(r.started.as_ps());
            fold(r.finished.as_ps());
        }
        Some(h)
    }
}

/// Fluent builder for host programs, mirroring the MPI-like API surface.
///
/// # Examples
///
/// ```
/// use accl_core::host::Program;
/// use accl_core::driver::CollSpec;
/// use accl_cclo::{CollOp, DType};
/// use accl_sim::time::Dur;
///
/// let prog = Program::new()
///     .compute(Dur::from_us(10))
///     .coll(CollSpec::new(CollOp::Barrier, 0, DType::U8))
///     .build();
/// assert_eq!(prog.len(), 2);
/// ```
#[derive(Default)]
pub struct Program {
    ops: Vec<HostOp>,
}

impl Program {
    /// Starts an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a collective call.
    pub fn coll(mut self, spec: CollSpec) -> Self {
        self.ops.push(HostOp::Coll(spec));
        self
    }

    /// Appends modelled computation.
    pub fn compute(mut self, d: Dur) -> Self {
        self.ops.push(HostOp::Compute(d));
        self
    }

    /// Finalizes into the op list.
    pub fn build(self) -> Vec<HostOp> {
        self.ops
    }
}
