//! Self-healing membership: the event vocabulary and partition resolution.
//!
//! The cluster's failure handling is a pipeline of membership events: the
//! adaptive detector *suspects* a silent peer, silence past the confirm
//! deadline *confirms* the failure, survivors shrink the communicator, a
//! restarted node re-announces itself and is *readmitted* via
//! [`crate::comm::Communicator::expand`]. When a link schedule severs the
//! fabric into two subgraphs, both sides see the other as failed — a
//! symmetric accusation that must NOT be resolved as two independent
//! shrinks, or both halves would keep running "the" communicator
//! (split-brain). [`resolve_partition`] breaks the symmetry: the majority
//! side keeps the communicator (ties go to the side holding the
//! lowest-numbered member), the minority fails fast with
//! [`CclError::Partitioned`] and waits for the partition to heal.
//!
//! Partitions are described by the same 64-bit node mask the network
//! fault layer uses (`accl_net::Partition`): bit `n & 63` gives node `n`'s
//! side, frames crossing the cut are dropped.

use crate::comm::Communicator;
use crate::error::CclError;

/// A membership transition observed by the cluster harness. The variants
/// follow the detect → suspect → confirm → restart → rejoin lifecycle and
/// are matched exhaustively everywhere (the lint's protocol-enum rule
/// forbids catch-all arms), so adding a state forces every consumer to
/// decide how to handle it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MembershipEvent {
    /// The adaptive detector's suspect deadline passed for a peer: soft
    /// suspicion, recoverable, no action beyond bookkeeping.
    Suspected {
        /// The suspected node's index.
        node: usize,
    },
    /// The confirm deadline passed (or the transport declared the session
    /// dead): the peer is treated as failed and excluded by shrink.
    Confirmed {
        /// The failed node's index.
        node: usize,
    },
    /// A failed node's new incarnation came back up (its NIC re-announced
    /// with a bumped epoch); it is not yet a communicator member.
    Restarted {
        /// The restarted node's index.
        node: usize,
    },
    /// A restarted node was readmitted into a communicator via expand.
    Rejoined {
        /// The rejoined node's index.
        node: usize,
    },
    /// Symmetric accusations matched a partition cut: the fabric is split
    /// along `mask` (bit `n & 63` = node `n`'s side).
    Partitioned {
        /// The cut's node mask.
        mask: u64,
    },
    /// A previously detected partition healed; minority members may now
    /// rejoin via expand.
    Healed {
        /// The healed cut's node mask.
        mask: u64,
    },
}

impl MembershipEvent {
    /// Stable label for stats/trace keys.
    pub fn label(&self) -> &'static str {
        match self {
            MembershipEvent::Suspected { .. } => "suspected",
            MembershipEvent::Confirmed { .. } => "confirmed",
            MembershipEvent::Restarted { .. } => "restarted",
            MembershipEvent::Rejoined { .. } => "rejoined",
            MembershipEvent::Partitioned { .. } => "partitioned",
            MembershipEvent::Healed { .. } => "healed",
        }
    }

    /// Whether the event is part of the recovery half of the lifecycle
    /// (the cluster is getting healthier, not sicker).
    pub fn is_recovery(&self) -> bool {
        match self {
            MembershipEvent::Suspected { .. }
            | MembershipEvent::Confirmed { .. }
            | MembershipEvent::Partitioned { .. } => false,
            MembershipEvent::Restarted { .. }
            | MembershipEvent::Rejoined { .. }
            | MembershipEvent::Healed { .. } => true,
        }
    }
}

impl core::fmt::Display for MembershipEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MembershipEvent::Suspected { node } => write!(f, "node {node} suspected"),
            MembershipEvent::Confirmed { node } => write!(f, "node {node} confirmed failed"),
            MembershipEvent::Restarted { node } => write!(f, "node {node} restarted"),
            MembershipEvent::Rejoined { node } => write!(f, "node {node} rejoined"),
            MembershipEvent::Partitioned { mask } => {
                write!(f, "network partitioned (mask {mask:#x})")
            }
            MembershipEvent::Healed { mask } => {
                write!(f, "partition healed (mask {mask:#x})")
            }
        }
    }
}

/// Which side of a partition `mask` a node is on (`false`/`true` are the
/// two subgraphs; same convention as `accl_net::Partition::severs`).
pub fn partition_side(mask: u64, node: usize) -> bool {
    (mask >> (node as u64 & 63)) & 1 == 1
}

/// Splits a communicator's members into the two sides of a partition
/// `mask`, preserving rank order within each side.
pub fn partition_sides(comm: &Communicator, mask: u64) -> (Vec<usize>, Vec<usize>) {
    let mut zero = Vec::new();
    let mut one = Vec::new();
    for &m in comm.members() {
        if partition_side(mask, m) {
            one.push(m);
        } else {
            zero.push(m);
        }
    }
    (zero, one)
}

/// Resolves a partition of `comm` consistently on every member: the
/// majority side shrinks to the survivors **keeping the communicator id**
/// (so its collectives continue under the same handle), the minority side
/// gets [`CclError::Partitioned`] and must wait for the heal. A tie is
/// broken deterministically in favour of the side holding the communicator's
/// lowest-numbered member, so every node — computing this locally from the
/// same accusations — reaches the same verdict.
///
/// # Errors
///
/// [`CclError::Partitioned`] when `my_node` is on the losing side;
/// [`CclError::InvalidGroup`] when `my_node` is not a member or the mask
/// does not actually split the communicator.
pub fn resolve_partition(
    comm: &Communicator,
    my_node: usize,
    mask: u64,
) -> Result<Communicator, CclError> {
    if !comm.contains(my_node) {
        return Err(CclError::InvalidGroup);
    }
    let (zero, one) = partition_sides(comm, mask);
    if zero.is_empty() || one.is_empty() {
        // The cut does not sever this communicator: nothing to resolve.
        return Err(CclError::InvalidGroup);
    }
    let lowest = *comm.members().iter().min().expect("non-empty communicator");
    let zero_wins = match zero.len().cmp(&one.len()) {
        core::cmp::Ordering::Greater => true,
        core::cmp::Ordering::Less => false,
        core::cmp::Ordering::Equal => !partition_side(mask, lowest),
    };
    let my_side_wins = zero_wins != partition_side(mask, my_node);
    if !my_side_wins {
        return Err(CclError::Partitioned);
    }
    let losers: Vec<usize> = if zero_wins { one } else { zero };
    comm.shrink(comm.id(), &losers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_side_keeps_the_communicator() {
        let w = Communicator::world(4);
        // Mask 0b0001: node 0 alone vs nodes 1-3.
        let kept = resolve_partition(&w, 2, 0b0001).unwrap();
        assert_eq!(kept.id(), 0, "majority keeps the communicator id");
        assert_eq!(kept.members(), &[1, 2, 3]);
        assert_eq!(resolve_partition(&w, 0, 0b0001), Err(CclError::Partitioned));
    }

    #[test]
    fn ties_break_toward_the_lowest_member() {
        let w = Communicator::world(4);
        // 2 vs 2: the side holding node 0 wins.
        let mask = 0b1100;
        let kept = resolve_partition(&w, 1, mask).unwrap();
        assert_eq!(kept.members(), &[0, 1]);
        assert_eq!(resolve_partition(&w, 2, mask), Err(CclError::Partitioned));
        assert_eq!(resolve_partition(&w, 3, mask), Err(CclError::Partitioned));
    }

    #[test]
    fn every_member_reaches_the_same_verdict() {
        let w = Communicator::world(6);
        // Odd nodes on side one: a 3 vs 3 tie, broken toward the side
        // holding the lowest member (node 0), i.e. the even nodes.
        let mask = 0b101010;
        let mut kept_by: Vec<usize> = Vec::new();
        for &m in w.members() {
            match resolve_partition(&w, m, mask) {
                Ok(c) => {
                    assert_eq!(c.members(), &[0, 2, 4]);
                    kept_by.push(m);
                }
                Err(e) => assert_eq!(e, CclError::Partitioned),
            }
        }
        assert_eq!(kept_by, vec![0, 2, 4]);
    }

    #[test]
    fn non_severing_masks_are_rejected() {
        let w = Communicator::world(3);
        assert_eq!(resolve_partition(&w, 0, 0), Err(CclError::InvalidGroup));
        assert_eq!(resolve_partition(&w, 0, 0b111), Err(CclError::InvalidGroup));
        assert_eq!(resolve_partition(&w, 9, 0b1), Err(CclError::InvalidGroup));
    }

    #[test]
    fn event_labels_and_recovery_split() {
        let down = [
            MembershipEvent::Suspected { node: 1 },
            MembershipEvent::Confirmed { node: 1 },
            MembershipEvent::Partitioned { mask: 2 },
        ];
        let up = [
            MembershipEvent::Restarted { node: 1 },
            MembershipEvent::Rejoined { node: 1 },
            MembershipEvent::Healed { mask: 2 },
        ];
        for e in down {
            assert!(!e.is_recovery(), "{e}");
        }
        for e in up {
            assert!(e.is_recovery(), "{e}");
        }
        assert_eq!(MembershipEvent::Rejoined { node: 3 }.label(), "rejoined");
    }
}
