//! The host-side CCL driver (paper §4.1).
//!
//! One driver instance per node mediates between CPU applications and the
//! CCLO engine: it charges the platform's invocation latency, performs
//! staging copies on partitioned-memory platforms (XRT), submits the CCLO
//! command, and reports completion with a per-phase time breakdown — the
//! quantities behind Fig. 8, 9, 11 and 13.

use std::collections::VecDeque;

use accl_cclo::command::{CcloCommand, CcloDone, CmdStatus, CollOp, DataLoc, SyncProto};
use accl_cclo::msg::{DType, ReduceFn};
use accl_mem::xdma::{ports as xdma_ports, XdmaCopy, XdmaDir, XdmaDone};
use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, SpanId};

use crate::buffer::BufferHandle;
use crate::error::{CclError, RetryPolicy};

/// A collective call specification, mirroring the MPI-like API of Listing 1.
#[derive(Debug, Clone, Copy)]
pub struct CollSpec {
    /// The collective.
    pub op: CollOp,
    /// Element count (MPI semantics per collective).
    pub count: u64,
    /// Element datatype.
    pub dtype: DType,
    /// Root rank / point-to-point peer.
    pub root: u32,
    /// Reduction function.
    pub func: ReduceFn,
    /// User tag.
    pub tag: u64,
    /// Synchronization protocol.
    pub sync: SyncProto,
    /// Communicator id (0 = the world communicator).
    pub comm: u32,
    /// Source buffer (None for ops without one or streaming kernels).
    pub src: Option<BufferHandle>,
    /// Destination buffer.
    pub dst: Option<BufferHandle>,
}

impl CollSpec {
    /// A minimal spec for `op` with `count` elements of `dtype`.
    pub fn new(op: CollOp, count: u64, dtype: DType) -> Self {
        CollSpec {
            op,
            count,
            dtype,
            root: 0,
            func: ReduceFn::Sum,
            tag: 0,
            sync: SyncProto::Auto,
            comm: 0,
            src: None,
            dst: None,
        }
    }

    /// Sets the root / peer rank.
    pub fn root(mut self, root: u32) -> Self {
        self.root = root;
        self
    }

    /// Sets the source buffer.
    pub fn src(mut self, buf: BufferHandle) -> Self {
        self.src = Some(buf);
        self
    }

    /// Sets the destination buffer.
    pub fn dst(mut self, buf: BufferHandle) -> Self {
        self.dst = Some(buf);
        self
    }

    /// Forces a synchronization protocol.
    pub fn sync(mut self, sync: SyncProto) -> Self {
        self.sync = sync;
        self
    }

    /// Sets the reduction function.
    pub fn func(mut self, func: ReduceFn) -> Self {
        self.func = func;
        self
    }

    /// Sets the user tag.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Targets a communicator other than the world (see
    /// `AcclCluster::add_communicator`).
    pub fn comm(mut self, comm: u32) -> Self {
        self.comm = comm;
        self
    }
}

/// A call submitted to the driver.
#[derive(Debug, Clone, Copy)]
pub struct DriverCall {
    /// What to execute.
    pub spec: CollSpec,
    /// Completion destination.
    pub reply_to: Endpoint,
    /// Ticket echoed in the reply.
    pub ticket: u64,
}

/// Driver completion, with the per-phase breakdown.
#[derive(Debug, Clone, Copy)]
pub struct DriverDone {
    /// Ticket from the call.
    pub ticket: u64,
    /// The call's outcome. On `Err` the destination buffers are undefined
    /// and no device→host staging was performed.
    pub result: Result<(), CclError>,
    /// Time spent staging inputs host→device (zero on unified platforms).
    pub stage_in: Dur,
    /// Invocation latency (PCIe write/read or ioctl path). With retries,
    /// the cumulative latency across attempts.
    pub invoke: Dur,
    /// CCLO execution time (command accepted to completion). With retries,
    /// the cumulative time across attempts (backoff waits excluded).
    pub collective: Dur,
    /// Time staging outputs device→host.
    pub stage_out: Dur,
    /// Total wall time of the call.
    pub total: Dur,
}

/// Ports of the [`HostDriver`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Call submissions ([`super::DriverCall`]).
    pub const CALL: PortId = PortId(0);
    /// XDMA staging completions.
    pub const XDMA_DONE: PortId = PortId(1);
    /// CCLO completions.
    pub const CCLO_DONE: PortId = PortId(2);
    /// Internal sequencing.
    pub const STEP: PortId = PortId(3);
    /// Retry backoff expiry.
    pub const RETRY: PortId = PortId(4);
}

/// Phases of an active driver call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    StageIn { remaining: u32 },
    Invoke,
    Collective,
    StageOut { remaining: u32 },
}

struct Active {
    call: DriverCall,
    phase: Phase,
    started: Time,
    phase_started: Time,
    stage_in: Dur,
    invoke: Dur,
    collective: Dur,
    /// Completed attempts that timed out (0 while the first one runs).
    attempt: u32,
    /// Busy rejections bounced at engine admission so far for this call.
    busy_attempts: u32,
    /// Status of the last CCLO error completion (colors the final error).
    last_status: Option<CmdStatus>,
    /// The call's root `driver.coll` span.
    span: SpanId,
    /// The open phase span (`driver.stage_in` / `driver.invoke` / ...).
    phase_span: SpanId,
}

/// Which buffers a collective reads and writes on this rank.
///
/// Drives staging decisions: inputs are staged host→device before the call,
/// outputs device→host after.
pub fn buffer_roles(spec: &CollSpec, rank: u32) -> (Vec<BufferHandle>, Vec<BufferHandle>) {
    let is_root = rank == spec.root;
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    match spec.op {
        CollOp::Nop | CollOp::Barrier => {}
        CollOp::Send => inputs.extend(spec.src),
        CollOp::Recv => outputs.extend(spec.dst),
        CollOp::Bcast => {
            // Bcast operates on dst; the root provides it, everyone receives.
            if is_root {
                inputs.extend(spec.dst);
            } else {
                outputs.extend(spec.dst);
            }
        }
        CollOp::Reduce => {
            inputs.extend(spec.src);
            if is_root {
                outputs.extend(spec.dst);
            }
        }
        CollOp::Gather => {
            inputs.extend(spec.src);
            if is_root {
                outputs.extend(spec.dst);
            }
        }
        CollOp::Scatter => {
            if is_root {
                inputs.extend(spec.src);
            }
            outputs.extend(spec.dst);
        }
        CollOp::AllGather
        | CollOp::AllReduce
        | CollOp::ReduceScatter
        | CollOp::AllToAll
        | CollOp::Custom(_) => {
            inputs.extend(spec.src);
            outputs.extend(spec.dst);
        }
    }
    (inputs, outputs)
}

/// The host-side CCL driver component for one node.
pub struct HostDriver {
    rank: u32,
    /// This node's rank within each configured communicator.
    comm_ranks: std::collections::BTreeMap<u32, u32>,
    cclo_cmd: Endpoint,
    /// XDMA engine, present on partitioned-memory platforms.
    xdma: Option<ComponentId>,
    invocation_latency: Dur,
    retry: RetryPolicy,
    /// Backoff policy for engine-admission (Busy) rejections. Unlike
    /// timeout retries, busy retries are always safe — the command was
    /// never admitted — so rendezvous calls retry too.
    busy_retry: RetryPolicy,
    /// Per-driver random stream for busy-backoff jitter (decorrelates
    /// ranks hammering the same engine). `None` means no jitter.
    busy_rng: Option<rand::rngs::StdRng>,
    /// Actual backoffs applied to busy retries, in order (determinism
    /// golden tests compare this schedule across runs).
    busy_backoffs: Vec<Dur>,
    /// Driver-side admission bound: calls beyond this many queued are
    /// load-shed with [`CclError::Busy`] instead of queueing forever.
    max_queued_calls: Option<u32>,
    queue: VecDeque<DriverCall>,
    active: Option<Active>,
    next_cclo_ticket: u64,
    calls_completed: u64,
    calls_failed: u64,
    retries_attempted: u64,
    busy_retries: u64,
    calls_shed: u64,
}

impl HostDriver {
    /// Creates a driver submitting to `cclo_cmd` with the given costs.
    pub fn new(
        rank: u32,
        cclo_cmd: Endpoint,
        xdma: Option<ComponentId>,
        invocation_latency: Dur,
    ) -> Self {
        let mut comm_ranks = std::collections::BTreeMap::new();
        comm_ranks.insert(0, rank);
        HostDriver {
            rank,
            comm_ranks,
            cclo_cmd,
            xdma,
            invocation_latency,
            retry: RetryPolicy::none(),
            busy_retry: RetryPolicy {
                max_attempts: 8,
                backoff_base: Dur::from_us(2),
                backoff_max: Dur::from_us(200),
            },
            busy_rng: None,
            busy_backoffs: Vec::new(),
            max_queued_calls: None,
            queue: VecDeque::new(),
            active: None,
            next_cclo_ticket: 0,
            calls_completed: 0,
            calls_failed: 0,
            retries_attempted: 0,
            busy_retries: 0,
            calls_shed: 0,
        }
    }

    /// This node's world rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Calls completed so far (with either outcome).
    pub fn calls_completed(&self) -> u64 {
        self.calls_completed
    }

    /// Calls that completed with an error.
    pub fn calls_failed(&self) -> u64 {
        self.calls_failed
    }

    /// Collective attempts resubmitted under the retry policy.
    pub fn retries_attempted(&self) -> u64 {
        self.retries_attempted
    }

    /// Sets the retry policy for timed-out eager collectives.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        self.retry = policy;
    }

    /// Sets the busy-retry policy and the seeded jitter stream
    /// (conventionally `sim.fork_rng("nX.driver.busy")`). With the same
    /// simulator seed the backoff schedule is bit-identical run to run.
    pub fn set_busy_retry(&mut self, policy: RetryPolicy, rng: Option<rand::rngs::StdRng>) {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        self.busy_retry = policy;
        self.busy_rng = rng;
    }

    /// Bounds the driver's own submission queue; calls beyond the bound
    /// are load-shed immediately with [`CclError::Busy`].
    pub fn set_max_queued_calls(&mut self, cap: Option<u32>) {
        self.max_queued_calls = cap;
    }

    /// Busy rejections retried against the engine so far.
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Calls load-shed at the driver's own admission bound.
    pub fn calls_shed(&self) -> u64 {
        self.calls_shed
    }

    /// The busy backoffs applied so far, in order. Deterministic for a
    /// given simulator seed; golden determinism tests compare it.
    pub fn busy_backoff_schedule(&self) -> &[Dur] {
        &self.busy_backoffs
    }

    /// Records this node's rank within communicator `comm` (driver-side
    /// mirror of the engine's communicator setup).
    pub fn set_comm_rank(&mut self, comm: u32, rank: u32) {
        self.comm_ranks.insert(comm, rank);
    }

    /// This node's rank within `comm`, if it is a member.
    fn comm_rank(&self, comm: u32) -> Option<u32> {
        self.comm_ranks.get(&comm).copied()
    }

    fn maybe_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.active.is_some() {
            return;
        }
        let Some(call) = self.queue.pop_front() else {
            return;
        };
        let now = ctx.now();
        // Calls against a communicator this node is not part of are
        // user errors; reject them with a typed error instead of taking
        // the whole simulation down.
        let Some(rank) = self.comm_rank(call.spec.comm) else {
            self.calls_completed += 1;
            self.calls_failed += 1;
            ctx.stats().add("driver.calls_rejected", 1);
            ctx.send(
                call.reply_to,
                Dur::ZERO,
                DriverDone {
                    ticket: call.ticket,
                    result: Err(CclError::InvalidCommunicator(call.spec.comm)),
                    stage_in: Dur::ZERO,
                    invoke: Dur::ZERO,
                    collective: Dur::ZERO,
                    stage_out: Dur::ZERO,
                    total: Dur::ZERO,
                },
            );
            self.maybe_start(ctx);
            return;
        };
        let (inputs, _) = buffer_roles(&call.spec, rank);
        let to_stage: Vec<BufferHandle> = inputs
            .into_iter()
            .filter(BufferHandle::needs_staging)
            .collect();
        let n = to_stage.len() as u32;
        let mut span = SpanId::NONE;
        let mut phase_span = SpanId::NONE;
        if ctx.spans_enabled() {
            span = ctx.span_begin_attrs(
                "driver.coll",
                SpanId::NONE,
                &[
                    Attr {
                        key: "op",
                        value: AttrValue::Str(call.spec.op.name()),
                    },
                    Attr {
                        key: "rank",
                        value: AttrValue::U64(self.rank as u64),
                    },
                    Attr {
                        key: "ticket",
                        value: AttrValue::U64(call.ticket),
                    },
                ],
            );
            phase_span = ctx.span_begin("driver.stage_in", span);
        }
        self.active = Some(Active {
            call,
            phase: Phase::StageIn { remaining: n },
            started: now,
            phase_started: now,
            stage_in: Dur::ZERO,
            invoke: Dur::ZERO,
            collective: Dur::ZERO,
            attempt: 0,
            busy_attempts: 0,
            last_status: None,
            span,
            phase_span,
        });
        if n == 0 {
            self.enter_invoke(ctx);
            return;
        }
        let xdma = self.xdma.expect("staging required but no XDMA engine");
        for buf in to_stage {
            ctx.send(
                Endpoint::new(xdma, xdma_ports::COPY),
                Dur::ZERO,
                XdmaCopy {
                    dir: XdmaDir::HostToDevice,
                    host_addr: buf.addr,
                    dev_addr: buf.staging_addr.expect("unstaged host buffer"),
                    len: buf.len,
                    done_to: Endpoint::new(ctx.self_id(), ports::XDMA_DONE),
                    tag: 0,
                    span: phase_span,
                },
            );
        }
    }

    fn enter_invoke(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let active = self.active.as_mut().expect("no active call");
        active.stage_in = now.since(active.phase_started);
        active.phase = Phase::Invoke;
        active.phase_started = now;
        ctx.span_end(active.phase_span);
        active.phase_span = SpanId::NONE;
        if ctx.spans_enabled() {
            active.phase_span = ctx.span_begin("driver.invoke", active.span);
        }
        ctx.send_self(ports::STEP, self.invocation_latency, ());
    }

    fn submit_command(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let active = self.active.as_mut().expect("no active call");
        active.invoke += now.since(active.phase_started);
        active.phase = Phase::Collective;
        active.phase_started = now;
        ctx.span_end(active.phase_span);
        active.phase_span = SpanId::NONE;
        if ctx.spans_enabled() {
            active.phase_span = ctx.span_begin("driver.collective", active.span);
        }
        let coll_span = active.phase_span;
        let spec = active.call.spec;
        let ticket = self.next_cclo_ticket;
        self.next_cclo_ticket += 1;
        let cmd = CcloCommand {
            op: spec.op,
            count: spec.count,
            dtype: spec.dtype,
            root: spec.root,
            tag: spec.tag,
            comm: spec.comm,
            func: spec.func,
            src: spec.src.map_or(DataLoc::None, |b| b.data_loc()),
            dst: spec.dst.map_or(DataLoc::None, |b| b.data_loc()),
            sync: spec.sync,
            reply_to: Endpoint::new(ctx.self_id(), ports::CCLO_DONE),
            ticket,
            span: coll_span,
        };
        ctx.send(self.cclo_cmd, Dur::ZERO, cmd);
    }

    fn enter_stage_out(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let xdma = self.xdma;
        let active = self.active.as_mut().expect("no active call");
        active.collective += now.since(active.phase_started);
        active.phase_started = now;
        ctx.span_end(active.phase_span);
        active.phase_span = SpanId::NONE;
        if ctx.spans_enabled() {
            active.phase_span = ctx.span_begin("driver.stage_out", active.span);
        }
        let stage_span = active.phase_span;
        let rank = self
            .comm_ranks
            .get(&active.call.spec.comm)
            .copied()
            .expect("communicator vanished mid-call");
        let (_, outputs) = buffer_roles(&active.call.spec, rank);
        let to_stage: Vec<BufferHandle> = outputs
            .into_iter()
            .filter(BufferHandle::needs_staging)
            .collect();
        let n = to_stage.len() as u32;
        active.phase = Phase::StageOut { remaining: n };
        if n == 0 {
            self.finish(ctx);
            return;
        }
        let xdma = xdma.expect("staging required but no XDMA engine");
        for buf in to_stage {
            ctx.send(
                Endpoint::new(xdma, xdma_ports::COPY),
                Dur::ZERO,
                XdmaCopy {
                    dir: XdmaDir::DeviceToHost,
                    host_addr: buf.addr,
                    dev_addr: buf.staging_addr.expect("unstaged host buffer"),
                    len: buf.len,
                    done_to: Endpoint::new(ctx.self_id(), ports::XDMA_DONE),
                    tag: 1,
                    span: stage_span,
                },
            );
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let active = self.active.take().expect("no active call");
        self.calls_completed += 1;
        ctx.stats().add("driver.calls", 1);
        let total = now.since(active.started);
        ctx.stats().observe("driver.total_ps", total.as_ps());
        ctx.span_end(active.phase_span);
        ctx.span_end(active.span);
        let stage_out = now.since(active.phase_started);
        ctx.send(
            active.call.reply_to,
            Dur::ZERO,
            DriverDone {
                ticket: active.call.ticket,
                result: Ok(()),
                stage_in: active.stage_in,
                invoke: active.invoke,
                collective: active.collective,
                stage_out,
                total,
            },
        );
        self.maybe_start(ctx);
    }

    /// Handles a CCLO error completion: retry an eager call under the
    /// policy, otherwise fail the call. Rendezvous calls are never
    /// retried — their distributed handshake state cannot be resumed
    /// unilaterally.
    fn handle_cclo_error(&mut self, ctx: &mut Ctx<'_>, status: CmdStatus) {
        let now = ctx.now();
        let retry = self.retry;
        let active = self.active.as_mut().expect("CCLO error with no call");
        active.collective += now.since(active.phase_started);
        active.attempt += 1;
        active.last_status = Some(status);
        let retryable = active.call.spec.sync != SyncProto::Rendezvous;
        if retryable && active.attempt < retry.max_attempts {
            let backoff = retry.backoff(active.attempt - 1);
            active.phase = Phase::Invoke;
            ctx.span_end(active.phase_span);
            active.phase_span = SpanId::NONE;
            if ctx.spans_enabled() {
                ctx.span_instant("driver.retry", active.span);
            }
            self.retries_attempted += 1;
            ctx.stats().add("driver.retries", 1);
            ctx.send_self(ports::RETRY, backoff, ());
            return;
        }
        let err = if active.attempt > 1 {
            CclError::Aborted
        } else if status == CmdStatus::ResourceExhausted {
            CclError::ResourceExhausted
        } else {
            CclError::Timeout
        };
        self.fail(ctx, err);
    }

    /// Handles an engine-admission rejection: back off (with seeded
    /// jitter) and resubmit, up to the busy-retry budget. The command was
    /// never admitted, so this is safe for every protocol.
    fn handle_busy(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let policy = self.busy_retry;
        let active = self.active.as_mut().expect("busy rejection with no call");
        active.collective += now.since(active.phase_started);
        active.busy_attempts += 1;
        active.last_status = Some(CmdStatus::Busy);
        if active.busy_attempts < policy.max_attempts {
            let mut backoff = policy.backoff(active.busy_attempts - 1);
            if let Some(rng) = &mut self.busy_rng {
                use rand::RngExt;
                let base = policy.backoff_base.as_ps().max(4);
                backoff += Dur::from_ps(rng.random_range(0..base / 4));
            }
            self.busy_backoffs.push(backoff);
            active.phase = Phase::Invoke;
            ctx.span_end(active.phase_span);
            active.phase_span = SpanId::NONE;
            if ctx.spans_enabled() {
                ctx.span_instant("driver.busy_retry", active.span);
            }
            self.busy_retries += 1;
            ctx.stats().add("driver.busy_retries", 1);
            ctx.send_self(ports::RETRY, backoff, ());
            return;
        }
        self.fail(ctx, CclError::Busy);
    }

    /// Completes the active call with `err`, skipping output staging (the
    /// destination buffers hold no defined result).
    fn fail(&mut self, ctx: &mut Ctx<'_>, err: CclError) {
        let now = ctx.now();
        let active = self.active.take().expect("no active call");
        self.calls_completed += 1;
        self.calls_failed += 1;
        ctx.stats().add("driver.calls", 1);
        ctx.stats().add("driver.calls_failed", 1);
        ctx.span_end(active.phase_span);
        ctx.span_end(active.span);
        ctx.send(
            active.call.reply_to,
            Dur::ZERO,
            DriverDone {
                ticket: active.call.ticket,
                result: Err(err),
                stage_in: active.stage_in,
                invoke: active.invoke,
                collective: active.collective,
                stage_out: Dur::ZERO,
                total: now.since(active.started),
            },
        );
        self.maybe_start(ctx);
    }
}

impl Component for HostDriver {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::CALL => {
                let call = payload.downcast::<DriverCall>();
                let shed = self
                    .max_queued_calls
                    .is_some_and(|cap| self.queue.len() >= cap as usize);
                if shed {
                    // The driver's own queue is full: shed the call
                    // immediately instead of growing an unbounded backlog
                    // behind an overloaded engine.
                    self.calls_shed += 1;
                    self.calls_completed += 1;
                    self.calls_failed += 1;
                    ctx.stats().add("driver.calls_shed", 1);
                    ctx.send(
                        call.reply_to,
                        Dur::ZERO,
                        DriverDone {
                            ticket: call.ticket,
                            result: Err(CclError::Busy),
                            stage_in: Dur::ZERO,
                            invoke: Dur::ZERO,
                            collective: Dur::ZERO,
                            stage_out: Dur::ZERO,
                            total: Dur::ZERO,
                        },
                    );
                    return;
                }
                self.queue.push_back(call);
                self.maybe_start(ctx);
            }
            ports::STEP => {
                payload.downcast::<()>();
                debug_assert!(matches!(
                    self.active.as_ref().map(|a| a.phase),
                    Some(Phase::Invoke)
                ));
                self.submit_command(ctx);
            }
            ports::XDMA_DONE => {
                payload.downcast::<XdmaDone>();
                let active = self.active.as_mut().expect("XDMA done with no call");
                match &mut active.phase {
                    Phase::StageIn { remaining } => {
                        *remaining -= 1;
                        if *remaining == 0 {
                            self.enter_invoke(ctx);
                        }
                    }
                    Phase::StageOut { remaining } => {
                        *remaining -= 1;
                        if *remaining == 0 {
                            self.finish(ctx);
                        }
                    }
                    other => panic!("XDMA completion in phase {other:?}"),
                }
            }
            ports::CCLO_DONE => {
                let done = payload.downcast::<CcloDone>();
                match done.status {
                    CmdStatus::Ok => self.enter_stage_out(ctx),
                    CmdStatus::TimedOut | CmdStatus::ResourceExhausted => {
                        self.handle_cclo_error(ctx, done.status);
                    }
                    CmdStatus::Busy => self.handle_busy(ctx),
                }
            }
            ports::RETRY => {
                payload.downcast::<()>();
                // Backoff expired: charge the invocation path again and
                // resubmit the command with a fresh CCLO ticket.
                let active = self.active.as_mut().expect("retry with no call");
                debug_assert_eq!(active.phase, Phase::Invoke);
                active.phase_started = ctx.now();
                if ctx.spans_enabled() {
                    active.phase_span = ctx.span_begin("driver.invoke", active.span);
                }
                ctx.send_self(ports::STEP, self.invocation_latency, ());
            }
            other => panic!("driver has no port {other:?}"),
        }
    }

    fn resource_state(&self) -> Option<ResourceState> {
        let queued = self.queue.len() as u64;
        if queued == 0 && self.max_queued_calls.is_none() {
            return None;
        }
        Some(ResourceState::gauges_only(vec![ResourceGauge {
            name: format!("host.callq(n{})", self.rank),
            used: queued,
            capacity: self.max_queued_calls.map(u64::from),
        }]))
    }

    fn state_digest(&self) -> Option<u64> {
        // Call outcomes, retry/shed accounting, and the exact busy-backoff
        // schedule (already compared by the determinism golden tests).
        let mut h = 0u64;
        let mut fold = |v: u64| accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        for v in [
            self.calls_completed,
            self.calls_failed,
            self.retries_attempted,
            self.busy_retries,
            self.calls_shed,
            self.next_cclo_ticket,
            self.queue.len() as u64,
        ] {
            fold(v);
        }
        for d in &self.busy_backoffs {
            fold(d.as_ps());
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufLoc;

    fn buf(loc: BufLoc, unified: bool) -> BufferHandle {
        BufferHandle {
            node: 0,
            loc,
            addr: 0x1000,
            len: 256,
            unified,
            staging_addr: if unified { None } else { Some(0x8000) },
        }
    }

    #[test]
    fn roles_cover_all_collectives() {
        let src = buf(BufLoc::Host, true);
        let dst = buf(BufLoc::Host, true);
        let spec = |op| CollSpec::new(op, 64, DType::F32).src(src).dst(dst);
        // (op, rank) → (n_inputs, n_outputs)
        let cases = [
            (CollOp::Send, 1, (1, 0)),
            (CollOp::Recv, 1, (0, 1)),
            (CollOp::Bcast, 0, (1, 0)),
            (CollOp::Bcast, 2, (0, 1)),
            (CollOp::Reduce, 0, (1, 1)),
            (CollOp::Reduce, 2, (1, 0)),
            (CollOp::Gather, 0, (1, 1)),
            (CollOp::Scatter, 0, (1, 1)),
            (CollOp::Scatter, 2, (0, 1)),
            (CollOp::AllReduce, 2, (1, 1)),
            (CollOp::AllToAll, 2, (1, 1)),
            (CollOp::Barrier, 2, (0, 0)),
        ];
        for (op, rank, (ni, no)) in cases {
            let (i, o) = buffer_roles(&spec(op), rank);
            assert_eq!((i.len(), o.len()), (ni, no), "{op:?} rank {rank}");
        }
    }

    #[test]
    fn unified_buffers_never_stage() {
        let spec = CollSpec::new(CollOp::AllReduce, 64, DType::F32)
            .src(buf(BufLoc::Host, true))
            .dst(buf(BufLoc::Host, true));
        let (i, o) = buffer_roles(&spec, 1);
        assert!(i.iter().all(|b| !b.needs_staging()));
        assert!(o.iter().all(|b| !b.needs_staging()));
    }
}
