//! Platform and transport definitions (paper §4.2–4.3).
//!
//! A platform fixes the memory model and the host-side invocation path; a
//! transport fixes the protocol offload engine. The paper's evaluated
//! combinations are Coyote+RDMA (shared virtual memory, fast MMIO-based
//! invocation) and XRT+TCP/UDP (partitioned memory, staging through XDMA,
//! slow ioctl-based invocation).

use accl_cclo::CcloConfig;
use accl_net::{NetConfig, OverloadPolicy};
use accl_poe::rdma::RdmaConfig;
use accl_poe::tcp::TcpConfig;
use accl_sim::time::Dur;
use serde::{Deserialize, Serialize};

use crate::error::RetryPolicy;

/// The development platform hosting the CCLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Platform {
    /// Coyote: shared virtual memory, TLB-fronted unified addressing.
    Coyote,
    /// Vitis/XRT: partitioned memory, explicit staging.
    Xrt,
}

/// The protocol offload engine attached to the CCLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transport {
    /// Unreliable datagrams (VNx UDP).
    Udp,
    /// Reliable hardware TCP.
    Tcp,
    /// Coyote RDMA (enables the rendezvous protocol).
    Rdma,
}

impl Transport {
    /// Whether this transport supports the rendezvous protocol.
    pub fn rendezvous_capable(self) -> bool {
        matches!(self, Transport::Rdma)
    }
}

/// Full cluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of FPGA-equipped nodes.
    pub nodes: usize,
    /// Development platform.
    pub platform: Platform,
    /// Protocol offload engine.
    pub transport: Transport,
    /// Fabric parameters.
    pub net: NetConfig,
    /// CCLO engine parameters.
    pub cclo: CcloConfig,
    /// RDMA engine tuning (ignored for other transports).
    pub rdma: RdmaConfig,
    /// TCP engine tuning (used by [`Transport::Tcp`] and by the standby
    /// POE when `tcp_fallback` is set; ignored otherwise).
    pub tcp: TcpConfig,
    /// Builds a standby TCP POE next to each RDMA POE and fails
    /// collectives over to it after repeated QP errors (graceful
    /// degradation). Only valid with [`Transport::Rdma`].
    pub tcp_fallback: bool,
    /// Finite per-POE tx credit window: at most this many data frames in
    /// flight toward the NIC before the engine's tx path backpressures.
    /// `None` (the default) leaves the window unbounded.
    pub tx_credit_window: Option<u32>,
    /// Host-driver admission cap: calls queued beyond this are shed
    /// immediately with [`crate::error::CclError::Busy`] instead of
    /// waiting. `None` (the default) queues without bound.
    pub max_queued_calls: Option<u32>,
    /// Busy-retry policy for engine admission rejections: a call the uC
    /// turned away at a full job queue is resubmitted under this backoff
    /// (with deterministic seeded jitter) before failing with `Busy`.
    /// `None` (the default) keeps the driver's built-in budget.
    pub busy_retry: Option<RetryPolicy>,
    /// Simulation seed.
    pub seed: u64,
    /// Simulator worker threads. `1` (the default) runs the sequential
    /// event loop; `n > 1` partitions the cluster by node (plus the switch
    /// fabric in its own partition) and advances the partitions
    /// concurrently in conservative safe windows bounded by the link
    /// propagation delay. Results, digests and traces are identical at any
    /// worker count.
    pub workers: usize,
}

impl ClusterConfig {
    /// The paper's primary configuration: Coyote + RDMA at 100 Gb/s.
    pub fn coyote_rdma(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            platform: Platform::Coyote,
            transport: Transport::Rdma,
            net: NetConfig::default(),
            cclo: CcloConfig::default(),
            rdma: RdmaConfig::default(),
            tcp: TcpConfig::default(),
            tcp_fallback: false,
            tx_credit_window: None,
            max_queued_calls: None,
            busy_retry: None,
            seed: 1,
            workers: 1,
        }
    }

    /// Sets the simulator worker-thread count (see
    /// [`ClusterConfig::workers`]).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Caps every elastic resource in the stack at a finite size, turning
    /// silent unbounded queueing into explicit backpressure and typed
    /// `Busy`/`ResourceExhausted` outcomes — the configuration the
    /// overload chaos profile
    /// (`accl_chaos::ChaosProfile::overload_profile`) is meant to be run
    /// against. Layer by layer: the switch holds at most 64 frames per
    /// egress port and PFC-pauses the offending NIC when full; each POE
    /// keeps at most 32 data frames in flight toward its NIC; each uC
    /// admits at most 8 pending collectives (rejecting further ones with
    /// `Busy`, which the driver retries under jittered backoff); the Rx
    /// buffer manager reports pool exhaustion to the uC so starved aborts
    /// surface as `ResourceExhausted`; and each driver sheds calls beyond
    /// a 16-deep submission queue.
    pub fn with_overload_limits(mut self) -> Self {
        self.net.switch_buffer_frames = Some(64);
        self.net.overload_policy = OverloadPolicy::Pause;
        self.cclo.max_pending_calls = Some(8);
        self.cclo.notify_rx_exhaustion = true;
        self.tx_credit_window = Some(32);
        self.max_queued_calls = Some(16);
        self.busy_retry = Some(RetryPolicy {
            max_attempts: 8,
            backoff_base: Dur::from_us(2),
            backoff_max: Dur::from_us(200),
        });
        self
    }

    /// The XRT + TCP configuration of Fig. 13.
    pub fn xrt_tcp(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            platform: Platform::Xrt,
            transport: Transport::Tcp,
            ..Self::coyote_rdma(nodes)
        }
    }

    /// The XRT + UDP configuration.
    pub fn xrt_udp(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            platform: Platform::Xrt,
            transport: Transport::Udp,
            ..Self::coyote_rdma(nodes)
        }
    }

    /// Legacy-ACCL baseline on XRT + TCP (Fig. 13's third system).
    pub fn legacy_accl_tcp(nodes: usize) -> Self {
        ClusterConfig {
            cclo: CcloConfig::legacy_accl(),
            ..Self::xrt_tcp(nodes)
        }
    }

    /// Checks platform/transport compatibility.
    pub fn validate(&self) {
        assert!(self.nodes >= 1, "cluster needs at least one node");
        if self.transport == Transport::Rdma {
            assert_eq!(
                self.platform,
                Platform::Coyote,
                "RDMA requires the Coyote platform (paper §4.3)"
            );
        }
        if self.tcp_fallback {
            assert_eq!(
                self.transport,
                Transport::Rdma,
                "the TCP fallback backs an RDMA primary"
            );
        }
    }

    /// Host-side CCLO invocation latency (Fig. 8): a PCIe write + read on
    /// Coyote's thin driver vs. XRT's heavyweight ioctl path.
    pub fn invocation_latency(&self) -> Dur {
        match self.platform {
            Platform::Coyote => Dur::from_us_f64(3.0),
            Platform::Xrt => Dur::from_us_f64(120.0),
        }
    }

    /// XDMA staging setup cost per copy (XRT buffer migration).
    pub fn xdma_setup_us(&self) -> u64 {
        30
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        ClusterConfig::coyote_rdma(8).validate();
        ClusterConfig::xrt_tcp(8).validate();
        ClusterConfig::xrt_udp(4).validate();
        let legacy = ClusterConfig::legacy_accl_tcp(4);
        legacy.validate();
        assert!(legacy.cclo.legacy_uc.is_some());
    }

    #[test]
    #[should_panic(expected = "RDMA requires the Coyote platform")]
    fn xrt_rdma_is_rejected() {
        let cfg = ClusterConfig {
            platform: Platform::Xrt,
            ..ClusterConfig::coyote_rdma(2)
        };
        cfg.validate();
    }

    #[test]
    fn invocation_latency_ordering_matches_fig8() {
        let coyote = ClusterConfig::coyote_rdma(2).invocation_latency();
        let xrt = ClusterConfig::xrt_tcp(2).invocation_latency();
        assert!(coyote < xrt);
        assert!(coyote.as_us_f64() < 10.0);
        assert!(xrt.as_us_f64() > 50.0);
    }
}
