//! Cluster assembly: N nodes of CPU + FPGA on a switched fabric.
//!
//! `AcclCluster` is the top of the public API: it builds the network, and
//! per node a memory bus, protocol offload engine, CCLO engine, XDMA
//! staging engine (partitioned platforms) and host CCL driver, fully wired.
//! Applications then allocate buffers, write initial data, and run host or
//! kernel programs against the cluster.

use accl_cclo::config::CommunicatorCfg;
use accl_cclo::engine::{CcloEngine, CcloEngineSpec};
use accl_cclo::uc::TransportFailover;
use accl_mem::{MemAddr, MemBusConfig, MemoryBus, XdmaEngine};
use accl_net::Network;
use accl_poe::iface::{ports as poe_ports, SessionId, SessionTable};
use accl_poe::mux::RxMux;
use accl_poe::rdma::RdmaPoe;
use accl_poe::tcp::TcpPoe;
use accl_poe::udp::{UdpConfig, UdpPoe};
use accl_sim::prelude::*;

/// Session errors on a primary RDMA POE before the Tx system engages the
/// standby TCP POE — "repeated QP errors", not a single transient one.
const FAILOVER_THRESHOLD: u64 = 2;

use crate::buffer::{BufLoc, BufferHandle, NodeSpaces, SCRATCH_BASE, SCRATCH_BYTES};
use crate::comm::Communicator;
use crate::driver::{CollSpec, HostDriver};
use crate::error::{CclError, RetryPolicy};
use crate::host::{ports as host_ports, HostOp, HostProc, OpRecord};
use crate::kernel::{ports as kernel_ports, KernelOp, KernelProc};
use crate::membership::MembershipEvent;
use crate::platform::{ClusterConfig, Platform, Transport};

/// Per-node component handles.
pub struct NodeHandles {
    /// The memory bus.
    pub bus: ComponentId,
    /// The protocol offload engine.
    pub poe: ComponentId,
    /// The standby TCP POE (RDMA clusters built with `tcp_fallback`).
    pub fallback_poe: Option<ComponentId>,
    /// The node's inbound demux / epoch fence in front of its POE(s).
    pub rxmux: ComponentId,
    /// The CCLO engine blocks.
    pub cclo: CcloEngine,
    /// The XDMA staging engine (partitioned platforms only).
    pub xdma: Option<ComponentId>,
    /// The host CCL driver.
    pub driver: ComponentId,
}

/// Counters of one node's engine, read back MMIO-style after (or during)
/// a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStats {
    /// CCLO commands completed by the uC.
    pub collectives_completed: u64,
    /// Host driver calls completed (includes staging/invocation phases).
    pub driver_calls_completed: u64,
    /// Tx-system jobs fully transmitted.
    pub tx_jobs: u64,
    /// Rx-system messages whose signatures parsed.
    pub rx_messages: u64,
    /// DMP microcode instructions retired.
    pub dmp_instructions: u64,
    /// Rx buffers currently free.
    pub rx_buffers_free: u32,
    /// Times the eager pool ran dry.
    pub rx_pool_exhaustions: u64,
    /// Collectives aborted by the engine's watchdog.
    pub collectives_aborted: u64,
    /// Driver calls that completed with a [`CclError`].
    pub driver_calls_failed: u64,
    /// Commands the uC turned away at a full job queue (`Busy`).
    pub engine_busy_rejections: u64,
    /// Busy rejections the driver masked by retrying under backoff.
    pub driver_busy_retries: u64,
    /// Calls the driver shed at its own full submission queue.
    pub driver_calls_shed: u64,
    /// Rx buffers removed from the pool by shrink faults.
    pub rx_buffers_shrunk: u32,
}

/// Partition id for a registered component name, for the conservative
/// parallel simulator: node-local components (`n{i}.*`) and node `i`'s NIC
/// port (`net.port{i}`) share partition `i + 1` (they exchange sub-lookahead
/// events: MMIO, DMA, NIC serialization); the switch fabric and anything
/// else shared sit in partition 0. Every cross-partition edge is a link
/// crossing and carries at least one propagation delay.
fn partition_for(name: &str) -> u32 {
    let digits = if let Some(rest) = name.strip_prefix("net.port") {
        Some(rest)
    } else if let Some(rest) = name.strip_prefix('n') {
        rest.split('.').next()
    } else {
        None
    };
    digits
        .and_then(|d| d.parse::<u32>().ok())
        .map_or(0, |node| node + 1)
}

/// A fully wired simulated cluster.
pub struct AcclCluster {
    /// The simulator; exposed for advanced orchestration.
    pub sim: Simulator,
    cfg: ClusterConfig,
    net: Network,
    nodes: Vec<NodeHandles>,
    spaces: Vec<NodeSpaces>,
    comms: std::collections::BTreeMap<u32, Communicator>,
    /// Partition windows scheduled on the fabric (for post-run verdicts).
    partitions_seen: Vec<accl_net::Partition>,
    /// Membership transitions observed by the harness, in schedule order.
    membership_log: Vec<(Time, MembershipEvent)>,
}

impl AcclCluster {
    /// Builds a cluster per `cfg`.
    pub fn build(cfg: ClusterConfig) -> AcclCluster {
        cfg.validate();
        let mut sim = Simulator::new(cfg.seed);
        let net = Network::build(&mut sim, cfg.net, cfg.nodes);
        let unified = cfg.platform == Platform::Coyote;
        let mut nodes = Vec::new();
        let mut spaces = Vec::new();
        for i in 0..cfg.nodes {
            let bus_cfg = if unified {
                MemBusConfig::coyote()
            } else {
                MemBusConfig::default()
            };
            let bus = sim.add(format!("n{i}.bus"), MemoryBus::new(bus_cfg));
            if unified {
                // The scratch region is device-resident and eagerly mapped.
                sim.component_mut::<MemoryBus>(bus).map_range(
                    SCRATCH_BASE,
                    SCRATCH_BYTES,
                    accl_mem::MemTarget::Device,
                );
            }
            let poe = sim.reserve(format!("n{i}.poe"));
            let scratch_mem = if unified {
                MemAddr::Virt(SCRATCH_BASE)
            } else {
                MemAddr::Phys(accl_mem::MemTarget::Device, SCRATCH_BASE)
            };
            let cclo = CcloEngine::build(
                &mut sim,
                &format!("n{i}.cclo"),
                &CcloEngineSpec {
                    cfg: cfg.cclo,
                    mem_bus: bus,
                    poe,
                    rendezvous_capable: cfg.transport.rendezvous_capable(),
                    reliable: cfg.transport != Transport::Udp,
                    scratch_mem,
                },
            );
            let make_sessions = || {
                let mut sessions = SessionTable::new();
                for j in 0..cfg.nodes {
                    if i != j {
                        sessions.connect(SessionId(j as u32), net.addr(j), SessionId(i as u32));
                    }
                }
                sessions
            };
            let up = cclo.poe_upward();
            match cfg.transport {
                Transport::Udp => {
                    sim.install(
                        poe,
                        UdpPoe::new(UdpConfig::default(), net.tx(i), up, make_sessions()),
                    );
                }
                Transport::Tcp => {
                    sim.install(poe, TcpPoe::new(cfg.tcp, net.tx(i), up, make_sessions()));
                }
                Transport::Rdma => {
                    sim.install(
                        poe,
                        RdmaPoe::new(cfg.rdma, net.tx(i), up, make_sessions()).with_mem_bus(bus),
                    );
                }
            }
            if let Some(window) = cfg.tx_credit_window {
                let label = format!("net.txcredit(n{i})");
                match cfg.transport {
                    Transport::Udp => sim
                        .component_mut::<UdpPoe>(poe)
                        .set_tx_credit_window(Some(window), label),
                    Transport::Tcp => sim
                        .component_mut::<TcpPoe>(poe)
                        .set_tx_credit_window(Some(window), label),
                    Transport::Rdma => sim
                        .component_mut::<RdmaPoe>(poe)
                        .set_tx_credit_window(Some(window), label),
                }
            }
            // With a standby TCP POE armed, inbound frames pass a protocol
            // demux in front of the two engines, and the Tx system learns
            // where to retarget after repeated QP errors.
            let fallback_poe = (cfg.transport == Transport::Rdma && cfg.tcp_fallback).then(|| {
                let mut standby =
                    TcpPoe::new(cfg.tcp, net.tx(i), cclo.poe_upward(), make_sessions());
                if let Some(window) = cfg.tx_credit_window {
                    standby.set_tx_credit_window(Some(window), format!("net.txcredit(n{i}.tcp)"));
                }
                let fb = sim.add(format!("n{i}.poe.tcp"), standby);
                cclo.set_tx_fallback(
                    &mut sim,
                    Endpoint::new(fb, poe_ports::TX_CMD),
                    Endpoint::new(fb, poe_ports::TX_DATA),
                    TransportFailover {
                        rendezvous_capable: false,
                        reliable: true,
                    },
                    FAILOVER_THRESHOLD,
                );
                fb
            });
            // Every node fronts its engine(s) with an RxMux: dual-stack
            // nodes use it as the protocol demux, and ALL nodes use it as
            // the per-source epoch fence that discards frames from a
            // restarted peer's previous incarnation. Forwarding is
            // zero-latency, so single-POE timing is unchanged.
            let rxmux = sim.add(
                format!("n{i}.rxmux"),
                match fallback_poe {
                    Some(fb) => RxMux::new(
                        Endpoint::new(poe, poe_ports::NET_RX),
                        Endpoint::new(fb, poe_ports::NET_RX),
                    ),
                    None => RxMux::single(Endpoint::new(poe, poe_ports::NET_RX)),
                },
            );
            net.attach_rx(&mut sim, i, Endpoint::new(rxmux, poe_ports::NET_RX));
            cclo.set_communicator(
                &mut sim,
                0,
                CommunicatorCfg {
                    rank: i as u32,
                    peers: (0..cfg.nodes)
                        .map(|j| (net.addr(j), SessionId(j as u32)))
                        .collect(),
                },
            );
            let xdma = (!unified).then(|| {
                sim.add(
                    format!("n{i}.xdma"),
                    XdmaEngine::new(bus, cfg.xdma_setup_us()),
                )
            });
            let mut driver_comp =
                HostDriver::new(i as u32, cclo.cmd(), xdma, cfg.invocation_latency());
            if let Some(policy) = cfg.busy_retry {
                // Jitter comes from a per-driver forked stream, so busy
                // backoff schedules replay bit-for-bit per (seed, node)
                // and never perturb any other component's entropy.
                driver_comp
                    .set_busy_retry(policy, Some(sim.fork_rng(&format!("n{i}.driver.busy"))));
            }
            if cfg.max_queued_calls.is_some() {
                driver_comp.set_max_queued_calls(cfg.max_queued_calls);
            }
            let driver = sim.add(format!("n{i}.driver"), driver_comp);
            nodes.push(NodeHandles {
                bus,
                poe,
                fallback_poe,
                rxmux,
                cclo,
                xdma,
                driver,
            });
            spaces.push(NodeSpaces::new());
        }
        let mut comms = std::collections::BTreeMap::new();
        comms.insert(0, Communicator::world(cfg.nodes));
        // Parallel-simulation wiring (inert at the default `workers: 1`):
        // each node and its NIC port form one partition, the switch fabric
        // another, and every event between partitions crosses a link — so
        // the fabric's propagation delay is a sound lookahead.
        sim.set_workers(cfg.workers);
        sim.set_lookahead(net.lookahead());
        sim.assign_partitions(partition_for);
        AcclCluster {
            sim,
            cfg,
            net,
            nodes,
            spaces,
            comms,
            partitions_seen: Vec::new(),
            membership_log: Vec::new(),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The fabric.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Per-node handles.
    pub fn node(&self, i: usize) -> &NodeHandles {
        &self.nodes[i]
    }

    /// Schedules a fail-stop crash of node `i` at simulated time `at`:
    /// from then on the fabric blackholes every frame to or from it.
    /// Composes with any faults already scheduled.
    pub fn crash_node(&mut self, i: usize, at: Time) {
        self.net.crash_node(&mut self.sim, i, at);
    }

    /// Schedules a `[from, until)` outage of node `i`'s link, composing
    /// with any faults already scheduled.
    pub fn link_down(&mut self, i: usize, from: Time, until: Time) {
        self.net.link_down(&mut self.sim, i, from, until);
    }

    /// Schedules a *restart* of previously crashed node `i` at `at`: the
    /// fabric closes its crash window, the NIC comes back with a bumped
    /// incarnation epoch, every survivor's Rx mux fences the old
    /// incarnation's in-flight frames, and the node's Rx buffer manager
    /// wipes its pre-crash state. The node is back on the network but NOT
    /// yet a communicator member — readmit it between runs with
    /// [`AcclCluster::reinstate_node`] +
    /// [`Communicator::expand`](crate::comm::Communicator::expand) +
    /// [`AcclCluster::install_communicator`].
    pub fn restart_node(&mut self, i: usize, at: Time) {
        self.net.restart_node(&mut self.sim, i, at);
        self.schedule_restart_effects(i, at);
    }

    /// Schedules a `[from, until)` fabric partition along `mask` (bit
    /// `n & 63` selects node `n`'s side): frames crossing the cut are
    /// dropped. Composes with any faults already scheduled.
    pub fn partition(&mut self, mask: u64, from: Time, until: Time) {
        self.net.partition(&mut self.sim, mask, from, until);
        self.record_partition(accl_net::Partition { mask, from, until });
    }

    /// Posts the non-fabric side effects of node `i` restarting at `at`:
    /// NIC reincarnation, peer epoch fences, and the RBM wipe.
    fn schedule_restart_effects(&mut self, i: usize, at: Time) {
        if i >= self.nodes.len() {
            return;
        }
        self.sim
            .post(Endpoint::of(self.net.port_id(i)), at, accl_net::Reincarnate);
        let src = self.net.addr(i);
        for j in 0..self.nodes.len() {
            if j != i {
                self.sim.post(
                    Endpoint::new(self.nodes[j].rxmux, poe_ports::NET_RX),
                    at,
                    accl_poe::EpochFence { src, min_epoch: 1 },
                );
            }
        }
        self.sim.post(
            Endpoint::new(self.nodes[i].cclo.rbm, accl_cclo::rbm::ports::RESYNC),
            at,
            accl_cclo::rbm::RbmResync,
        );
        self.membership_log
            .push((at, MembershipEvent::Restarted { node: i }));
    }

    fn record_partition(&mut self, p: accl_net::Partition) {
        self.membership_log
            .push((p.from, MembershipEvent::Partitioned { mask: p.mask }));
        self.membership_log
            .push((p.until, MembershipEvent::Healed { mask: p.mask }));
        self.partitions_seen.push(p);
    }

    /// Membership transitions observed so far, in schedule order:
    /// restarts, rejoins, partition cuts/heals, and post-run failure
    /// confirmations.
    pub fn membership_log(&self) -> &[(Time, MembershipEvent)] {
        &self.membership_log
    }

    /// Readmits a restarted node at the transport layer: every session
    /// (or queue pair) between `node` and its peers — in both directions,
    /// standby path included — is reinstated, and the adaptive detectors'
    /// inter-arrival histories involving the node are forgotten (the new
    /// incarnation's cadence owes nothing to the old one's). Call between
    /// runs, after the restart instant has passed; then readmit the node
    /// at the communicator layer with
    /// [`Communicator::expand`](crate::comm::Communicator::expand) +
    /// [`AcclCluster::install_communicator`].
    pub fn reinstate_node(&mut self, node: usize) {
        assert!(node < self.nodes.len(), "node {node} out of range");
        for j in 0..self.nodes.len() {
            if j != node {
                self.reinstate_pair(node, j);
            }
        }
        for j in 0..self.nodes.len() {
            let uc = self.nodes[j].cclo.uc;
            let uc = self.sim.component_mut::<accl_cclo::uc::Uc>(uc);
            if j == node {
                uc.reset_all_history();
            } else {
                uc.reset_peer_history(node as u32);
            }
        }
        let now = self.sim.now();
        self.membership_log
            .push((now, MembershipEvent::Rejoined { node }));
    }

    /// Reinstates the transport sessions between nodes `a` and `b` in
    /// both directions (session `j` on a node carries traffic to node
    /// `j`). UDP is connectionless: nothing to reinstate.
    fn reinstate_pair(&mut self, a: usize, b: usize) {
        match self.cfg.transport {
            Transport::Udp => {}
            Transport::Tcp => {
                self.sim
                    .component_mut::<TcpPoe>(self.nodes[a].poe)
                    .reinstate_session(SessionId(b as u32));
                self.sim
                    .component_mut::<TcpPoe>(self.nodes[b].poe)
                    .reinstate_session(SessionId(a as u32));
            }
            Transport::Rdma => {
                self.sim
                    .component_mut::<RdmaPoe>(self.nodes[a].poe)
                    .reinstate_qp(SessionId(b as u32));
                self.sim
                    .component_mut::<RdmaPoe>(self.nodes[b].poe)
                    .reinstate_qp(SessionId(a as u32));
                if let Some(fb) = self.nodes[a].fallback_poe {
                    self.sim
                        .component_mut::<TcpPoe>(fb)
                        .reinstate_session(SessionId(b as u32));
                }
                if let Some(fb) = self.nodes[b].fallback_poe {
                    self.sim
                        .component_mut::<TcpPoe>(fb)
                        .reinstate_session(SessionId(a as u32));
                }
            }
        }
    }

    /// Replaces the fabric's fault plan wholesale (loss, delay, outages).
    ///
    /// Overload faults in the plan — credit leaks, pause storms, buffer
    /// shrinks — are not frame fates the switch can decide; they are
    /// extracted here and posted as control events straight to the
    /// affected engines (the POE's credit port, the NIC's pause input,
    /// the Rx buffer manager's shrink port) at their scheduled instants.
    /// The remainder of the plan is handed to the switch as before.
    pub fn set_fault_plan(&mut self, plan: accl_net::FaultPlan) {
        for &(node, at, credits) in &plan.credit_leaks {
            let n = node.index();
            if n >= self.nodes.len() {
                continue;
            }
            self.sim.post(
                Endpoint::new(self.nodes[n].poe, poe_ports::CREDIT),
                at,
                accl_poe::iface::TxCreditLeak { credits },
            );
        }
        for &(node, at, hold) in &plan.pause_storms {
            let n = node.index();
            if n >= self.nodes.len() {
                continue;
            }
            self.sim.post(
                Endpoint::of(self.net.port_id(n)),
                at,
                accl_net::PauseFrame { until: at + hold },
            );
        }
        for &(node, at, bufs) in &plan.buf_shrinks {
            let n = node.index();
            if n >= self.nodes.len() {
                continue;
            }
            self.sim.post(
                Endpoint::new(self.nodes[n].cclo.rbm, accl_cclo::rbm::ports::SHRINK),
                at,
                accl_cclo::rbm::RbmShrink { bufs },
            );
        }
        // Node restarts carry side effects beyond the fabric's crash
        // window: reincarnation, epoch fencing, RBM resync. Only restarts
        // that actually reopen a crash window count (the plan ignores a
        // restart with no matching earlier crash).
        let restarted: Vec<(usize, Time)> = plan
            .node_restarts
            .keys()
            .filter_map(|&addr| plan.restart_time(addr).map(|at| (addr.index(), at)))
            .collect();
        for (n, at) in restarted {
            self.schedule_restart_effects(n, at);
        }
        for &p in &plan.partitions {
            self.record_partition(p);
        }
        self.net.set_fault_plan(&mut self.sim, plan);
    }

    /// Allocates a buffer on `node` in `loc`.
    ///
    /// On Coyote the range is eagerly mapped into the node's TLB (the
    /// `CoyoteBuffer` behaviour); on XRT, host buffers get a device-side
    /// staging shadow.
    pub fn alloc(&mut self, node: usize, loc: BufLoc, len: u64) -> BufferHandle {
        let unified = self.cfg.platform == Platform::Coyote;
        let addr = self.spaces[node].alloc(loc, len);
        let staging_addr =
            (!unified && loc == BufLoc::Host).then(|| self.spaces[node].alloc(BufLoc::Device, len));
        if unified {
            self.sim
                .component_mut::<MemoryBus>(self.nodes[node].bus)
                .map_range(addr, len, loc.target());
        }
        BufferHandle {
            node,
            loc,
            addr,
            len,
            unified,
            staging_addr,
        }
    }

    /// Writes `data` into a buffer (zero-time, test/benchmark setup).
    pub fn write(&mut self, buf: &BufferHandle, data: &[u8]) {
        assert!(data.len() as u64 <= buf.len, "write exceeds buffer");
        let bus = self
            .sim
            .component_mut::<MemoryBus>(self.nodes[buf.node].bus);
        match buf.loc {
            BufLoc::Host => bus.host_write(buf.addr, data),
            BufLoc::Device => bus.device_write(buf.addr, data),
        }
    }

    /// Reads a buffer's contents (zero-time, verification).
    pub fn read(&self, buf: &BufferHandle) -> Vec<u8> {
        let bus = self.sim.component::<MemoryBus>(self.nodes[buf.node].bus);
        match buf.loc {
            BufLoc::Host => bus.host_read(buf.addr, buf.len as usize),
            BufLoc::Device => bus.device_read(buf.addr, buf.len as usize),
        }
    }

    /// Runs one host program per node (entry `i` runs on node `i`),
    /// starting simultaneously at the current simulated time.
    ///
    /// Returns each node's op records. Collective outcomes are in each
    /// record's [`DriverDone::result`](crate::driver::DriverDone): after
    /// the run, timeouts on nodes whose transport diagnosed a dead peer
    /// session are upgraded to [`CclError::PeerFailed`], mirroring how a
    /// real driver reads the POE's error registers when a call fails.
    /// Nodes with no local diagnosis additionally accept accusations
    /// gossiped from non-suspect nodes, so every survivor of a fail-stop
    /// crash observes `PeerFailed` rather than a bare `Timeout`.
    ///
    /// # Panics
    ///
    /// Panics if the simulation stalls (a component parked work forever;
    /// only possible with the engine watchdog disabled) or a host program
    /// never finishes.
    pub fn run_host_programs(&mut self, programs: Vec<Vec<HostOp>>) -> Vec<Vec<OpRecord>> {
        match self.try_run_host_programs(programs) {
            Ok(records) => records,
            Err(why) => panic!("{why}"),
        }
    }

    /// Non-panicking [`AcclCluster::run_host_programs`]: a stalled
    /// simulation or an unfinished host program is reported as `Err` with
    /// a human-readable diagnosis instead of a panic, leaving the cluster
    /// inspectable — the entry point for chaos harnesses that must treat
    /// "the run wedged" as a checkable outcome rather than a crash.
    pub fn try_run_host_programs(
        &mut self,
        programs: Vec<Vec<HostOp>>,
    ) -> Result<Vec<Vec<OpRecord>>, String> {
        assert_eq!(programs.len(), self.nodes.len(), "one program per node");
        let start = self.sim.now();
        let procs: Vec<ComponentId> = programs
            .into_iter()
            .enumerate()
            .map(|(i, ops)| {
                let driver = Endpoint::new(self.nodes[i].driver, crate::driver::ports::CALL);
                let id = self.sim.add(
                    format!("n{i}.hostproc.{}", start.as_ps()),
                    HostProc::new(driver, ops),
                );
                self.sim
                    .post(Endpoint::new(id, host_ports::START), start, ());
                id
            })
            .collect();
        // The host procs registered above default to partition 0; put them
        // with their node before running partitioned.
        self.sim.assign_partitions(partition_for);
        match self.sim.run() {
            RunOutcome::Drained => {}
            RunOutcome::Stalled(report) => return Err(format!("simulation stalled: {report}")),
            other => return Err(format!("simulation ended abnormally: {other:?}")),
        }
        let mut results: Vec<Vec<OpRecord>> = Vec::with_capacity(procs.len());
        for &id in &procs {
            let proc = self.sim.component::<HostProc>(id);
            if proc.finished_at().is_none() {
                return Err("a host program did not finish (deadlock?)".to_string());
            }
            results.push(proc.records().to_vec());
        }
        // Failure-detector readout. A node trusts its own POE's dead-session
        // diagnosis first. Nodes without one (e.g. a ring rank that never
        // sends toward the dead peer) accept accusations gossiped from
        // nodes that are not themselves suspects — a crashed node also
        // "diagnoses" every peer it could not reach, and must not get to
        // frame the survivors.
        let own: Vec<Vec<u32>> = (0..self.nodes.len())
            .map(|n| self.failed_peers(n))
            .collect();
        let suspects: std::collections::BTreeSet<u32> = own.iter().flatten().copied().collect();
        let gossiped: std::collections::BTreeSet<u32> = own
            .iter()
            .enumerate()
            .filter(|(n, _)| !suspects.contains(&(*n as u32)))
            .flat_map(|(_, peers)| peers.iter().copied())
            .collect();
        for (node, records) in results.iter_mut().enumerate() {
            let verdict = own[node]
                .first()
                .copied()
                .or_else(|| gossiped.iter().copied().find(|&p| p != node as u32));
            let Some(peer) = verdict else { continue };
            for rec in records {
                if let Some(b) = &mut rec.breakdown {
                    if matches!(b.result, Err(CclError::Timeout) | Err(CclError::Aborted)) {
                        b.result = Err(CclError::PeerFailed(peer));
                    }
                }
            }
        }
        let confirmed_at = self.sim.now();
        for &peer in &gossiped {
            self.membership_log.push((
                confirmed_at,
                MembershipEvent::Confirmed {
                    node: peer as usize,
                },
            ));
        }
        // Integrity diagnosis. On an unreliable transport a corrupted
        // frame is simply dropped — never retransmitted — so a timed-out
        // call on a node whose engine discarded corrupted datagrams is a
        // payload-integrity failure, not a liveness one. Reliable
        // transports repair corruption before it can fail a call, so the
        // upgrade applies to UDP only.
        if self.cfg.transport == Transport::Udp {
            for (node, records) in results.iter_mut().enumerate() {
                if self.corrupted_drops(node) == 0 {
                    continue;
                }
                for rec in records {
                    if let Some(b) = &mut rec.breakdown {
                        if matches!(b.result, Err(CclError::Timeout) | Err(CclError::Aborted)) {
                            b.result = Err(CclError::DataCorrupted);
                        }
                    }
                }
            }
        }
        // Partition verdicts. A fabric cut makes both sides accuse each
        // other — symmetric accusations that must NOT resolve as two
        // independent shrinks, or both halves would keep running "the"
        // communicator (split-brain). Every node resolves the cut locally
        // from the same mask: the majority keeps the communicator, and a
        // minority-side node's failures are recolored `Partitioned` so
        // the application fails fast and waits for the heal.
        let end = self.sim.now();
        if let Some(world) = self.comms.get(&0).cloned() {
            for p in self.partitions_seen.clone() {
                if p.until <= start || p.from >= end {
                    continue;
                }
                for (node, records) in results.iter_mut().enumerate() {
                    if crate::membership::resolve_partition(&world, node, p.mask)
                        != Err(CclError::Partitioned)
                    {
                        continue;
                    }
                    for rec in records.iter_mut() {
                        if let Some(b) = &mut rec.breakdown {
                            if matches!(
                                b.result,
                                Err(CclError::Timeout)
                                    | Err(CclError::Aborted)
                                    | Err(CclError::PeerFailed(_))
                            ) {
                                b.result = Err(CclError::Partitioned);
                            }
                        }
                    }
                }
            }
        }
        Ok(results)
    }

    /// Issues the same collective on every rank through the host drivers
    /// and returns each rank's completion record.
    pub fn host_collective(&mut self, specs: Vec<CollSpec>) -> Vec<OpRecord> {
        let programs = specs.into_iter().map(|s| vec![HostOp::Coll(s)]).collect();
        self.run_host_programs(programs)
            .into_iter()
            .map(|records| records[0])
            .collect()
    }

    /// Runs one kernel program per node, wired directly to each CCLO
    /// (F2F mode). Returns the kernel component ids for inspection.
    ///
    /// Each call rebinds every engine's kernel-out endpoint to the new
    /// kernels; do not interleave host streaming collectives that expect a
    /// previous phase's kernels to keep receiving.
    pub fn run_kernel_programs(&mut self, programs: Vec<Vec<KernelOp>>) -> Vec<ComponentId> {
        assert_eq!(programs.len(), self.nodes.len(), "one program per node");
        let start = self.sim.now();
        let kernels: Vec<ComponentId> = programs
            .into_iter()
            .enumerate()
            .map(|(i, ops)| {
                let id = self.sim.add(
                    format!("n{i}.kernel.{}", start.as_ps()),
                    KernelProc::new(
                        self.nodes[i].cclo.cmd(),
                        self.nodes[i].cclo.stream_in(),
                        self.cfg.cclo.clock_mhz,
                        ops,
                    ),
                );
                self.nodes[i]
                    .cclo
                    .set_kernel_out(&mut self.sim, Endpoint::new(id, kernel_ports::STREAM_RX));
                self.sim
                    .post(Endpoint::new(id, kernel_ports::START), start, ());
                id
            })
            .collect();
        // Newly registered kernels default to partition 0; re-partition so
        // each runs alongside the CCLO it streams to.
        self.sim.assign_partitions(partition_for);
        match self.sim.run() {
            RunOutcome::Drained => {}
            RunOutcome::Stalled(report) => panic!("simulation stalled: {report}"),
            other => panic!("simulation ended abnormally: {other:?}"),
        }
        for &id in &kernels {
            assert!(
                self.sim.component::<KernelProc>(id).finished_at().is_some(),
                "a kernel program did not finish (deadlock?)"
            );
        }
        kernels
    }

    /// Kernel inspection helper.
    pub fn kernel(&self, id: ComponentId) -> &KernelProc {
        self.sim.component::<KernelProc>(id)
    }

    /// Enables causal span recording across the whole cluster, keeping
    /// the most recent `capacity` span events in a ring.
    ///
    /// # Panics
    ///
    /// Panics unless accl-sim was built with its `trace` feature (span
    /// recording compiles away entirely otherwise).
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.sim.enable_spans(capacity);
    }

    /// The recorded span events in record order (empty unless tracing
    /// was enabled).
    pub fn trace_events(&self) -> Vec<accl_sim::trace::SpanEvent> {
        self.sim.span_events()
    }

    /// Enables fixed-width sim-time metric windows on the cluster's
    /// simulator: every counter/gauge/histogram write made by a component
    /// is additionally routed into the window containing its simulated
    /// time, feeding deterministic p50/p99/p999-over-time series (the
    /// serving-scenario SLO report). Call before the first run. See
    /// [`accl_sim::stats::Stats::enable_windows`].
    pub fn enable_metric_windows(&mut self, width: Dur) {
        self.sim.enable_metric_windows(width);
    }

    /// Chrome/Perfetto `trace_event` JSON of the recorded timeline —
    /// load it at `ui.perfetto.dev` or `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        accl_sim::trace::chrome_trace_json(&self.sim)
    }

    /// Latency breakdowns of every completed `driver.coll` root span, in
    /// record order, attributed with the default ACCL rules
    /// ([`accl_sim::trace::ACCL_BREAKDOWN`]): wire / switch-queue / pcie
    /// / uc / datapath / other.
    pub fn latency_breakdowns(&self) -> Vec<accl_sim::trace::Breakdown> {
        use accl_sim::trace::{span_breakdown, SpanEventKind, ACCL_BREAKDOWN};
        let events = self.sim.span_events();
        events
            .iter()
            .filter(|e| {
                e.kind == SpanEventKind::Begin && e.name == "driver.coll" && e.parent.is_none()
            })
            .filter_map(|e| span_breakdown(&events, e.id, ACCL_BREAKDOWN))
            .collect()
    }

    /// A snapshot of one node's engine counters (observability: the
    /// hardware exposes these via the configuration memory over MMIO).
    pub fn node_stats(&self, i: usize) -> NodeStats {
        let n = &self.nodes[i];
        let uc = self.sim.component::<accl_cclo::uc::Uc>(n.cclo.uc);
        let tx = self.sim.component::<accl_cclo::txsys::TxSys>(n.cclo.txsys);
        let rbm = self.sim.component::<accl_cclo::rbm::Rbm>(n.cclo.rbm);
        let rx = self.sim.component::<accl_cclo::rxsys::RxSys>(n.cclo.rxsys);
        let dmp = self.sim.component::<accl_cclo::dmp::Dmp>(n.cclo.dmp);
        let driver = self.sim.component::<HostDriver>(n.driver);
        NodeStats {
            collectives_completed: uc.calls_completed(),
            driver_calls_completed: driver.calls_completed(),
            tx_jobs: tx.jobs_completed(),
            rx_messages: rx.messages_parsed(),
            dmp_instructions: dmp.instrs_completed(),
            rx_buffers_free: rbm.free_buffers(),
            rx_pool_exhaustions: rbm.exhaustion_events,
            collectives_aborted: uc.calls_aborted(),
            driver_calls_failed: driver.calls_failed(),
            engine_busy_rejections: uc.calls_rejected(),
            driver_busy_retries: driver.busy_retries(),
            driver_calls_shed: driver.calls_shed(),
            rx_buffers_shrunk: rbm.shrunk(),
        }
    }

    /// Peer nodes whose transport session from `node` has entered an
    /// error state (TCP retransmission-limit abort, RDMA queue-pair
    /// error) — the driver-visible fail-stop failure detector. Session
    /// `j` carries traffic to node `j`, so the returned values are peer
    /// node indices (= world ranks), sorted ascending. UDP is
    /// connectionless and never diagnoses peers.
    pub fn failed_peers(&self, node: usize) -> Vec<u32> {
        let poe = self.nodes[node].poe;
        let mut peers: Vec<u32> = match self.cfg.transport {
            Transport::Udp => Vec::new(),
            Transport::Tcp => self
                .sim
                .component::<TcpPoe>(poe)
                .failed_sessions()
                .into_iter()
                .map(|(s, _)| s.0)
                .collect(),
            Transport::Rdma => {
                let mut qps: Vec<u32> = self
                    .sim
                    .component::<RdmaPoe>(poe)
                    .failed_qps()
                    .into_iter()
                    .map(|(s, _)| s.0)
                    .collect();
                // A peer is only failed if the standby path (when armed)
                // gave up on it too; a QP error alone is the degradation
                // signal, not a fail-stop verdict.
                if let Some(fb) = self.nodes[node].fallback_poe {
                    let tcp: Vec<u32> = self
                        .sim
                        .component::<TcpPoe>(fb)
                        .failed_sessions()
                        .into_iter()
                        .map(|(s, _)| s.0)
                        .collect();
                    qps.retain(|p| tcp.contains(p));
                }
                qps
            }
        };
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    /// Frames (or datagrams) node `i`'s engines discarded at RX for a bad
    /// frame check sequence — the observable footprint of in-flight
    /// corruption that the reliable transports then repaired.
    pub fn corrupted_drops(&self, i: usize) -> u64 {
        let poe = self.nodes[i].poe;
        let primary = match self.cfg.transport {
            Transport::Udp => self.sim.component::<UdpPoe>(poe).dgrams_corrupted_dropped(),
            Transport::Tcp => self
                .sim
                .component::<TcpPoe>(poe)
                .frames_corrupted_discarded(),
            Transport::Rdma => self
                .sim
                .component::<RdmaPoe>(poe)
                .frames_corrupted_discarded(),
        };
        let standby = self.nodes[i].fallback_poe.map_or(0, |fb| {
            self.sim
                .component::<TcpPoe>(fb)
                .frames_corrupted_discarded()
        });
        primary + standby
    }

    /// Sets every node driver's retry policy for timed-out eager
    /// collectives.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        for i in 0..self.nodes.len() {
            let driver = self.nodes[i].driver;
            self.sim
                .component_mut::<HostDriver>(driver)
                .set_retry_policy(policy);
        }
    }

    /// A communicator installed on this cluster, by id (0 = world).
    pub fn communicator(&self, id: u32) -> Option<&Communicator> {
        self.comms.get(&id)
    }

    /// Defines a sub-communicator: `members[r]` is the node serving rank
    /// `r` of communicator `id`. Every member engine's configuration
    /// memory learns the group (the paper's communicator setup, §4.4.1);
    /// POE sessions are reused — session `j` already reaches node `j`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate members or an id of 0 (the world communicator
    /// is created at build time).
    pub fn add_communicator(&mut self, id: u32, members: &[usize]) {
        self.install_communicator(&Communicator::new(id, members.to_vec()));
    }

    /// Installs a [`Communicator`] description on every member node —
    /// the second half of the ULFM recovery workflow: after
    /// [`Communicator::shrink`] excludes failed nodes, installing the
    /// survivor group lets collectives be reissued on it.
    ///
    /// # Panics
    ///
    /// Panics on an id of 0 (the world communicator is created at build
    /// time) or an out-of-range member node.
    pub fn install_communicator(&mut self, comm: &Communicator) {
        assert_ne!(comm.id(), 0, "communicator 0 is the built-in world");
        let members = comm.members();
        let peers: Vec<(accl_net::NodeAddr, SessionId)> = members
            .iter()
            .map(|&m| (self.net.addr(m), SessionId(m as u32)))
            .collect();
        for (rank, &node) in members.iter().enumerate() {
            self.nodes[node].cclo.set_communicator(
                &mut self.sim,
                comm.id(),
                CommunicatorCfg {
                    rank: rank as u32,
                    peers: peers.clone(),
                },
            );
            let driver = self.nodes[node].driver;
            self.sim
                .component_mut::<HostDriver>(driver)
                .set_comm_rank(comm.id(), rank as u32);
        }
        self.comms.insert(comm.id(), comm.clone());
    }

    /// Tunes every engine's algorithm-selection thresholds at runtime.
    pub fn set_algo_config(&mut self, algo: accl_cclo::AlgoConfig) {
        for i in 0..self.nodes.len() {
            let engine_uc = self.nodes[i].cclo.uc;
            self.sim
                .component_mut::<accl_cclo::uc::Uc>(engine_uc)
                .set_algo_config(algo);
        }
    }

    /// Loads firmware on every engine (user-defined collectives, §4.4.4).
    pub fn load_firmware(
        &mut self,
        op: accl_cclo::CollOp,
        program: std::sync::Arc<dyn accl_cclo::CollectiveProgram>,
    ) {
        for i in 0..self.nodes.len() {
            let e = &self.nodes[i].cclo;
            let uc = e.uc;
            self.sim
                .component_mut::<accl_cclo::uc::Uc>(uc)
                .load_firmware(op, program.clone());
        }
    }
}
