//! Typed collective errors and the driver's retry policy.
//!
//! ACCL+'s fail-stop fault model surfaces at the driver API: instead of a
//! silent hang (the classic failure mode of hardware collectives), a call
//! that cannot complete finishes with a [`CclError`] describing *why*. The
//! driver can optionally mask transient faults by retrying eager
//! collectives under an exponential-backoff [`RetryPolicy`]; unrecoverable
//! failures are reported to the application, which can rebuild a smaller
//! communicator with [`crate::comm::Communicator::shrink`] and continue —
//! the ULFM recovery workflow.

use accl_sim::time::Dur;

/// Why a collective call failed.
///
/// Carried in [`crate::driver::DriverDone::result`]; a call either
/// completes with `Ok(())` and a valid phase breakdown, or with one of
/// these. On error the output buffers are undefined and the driver skips
/// the device→host staging phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CclError {
    /// The engine's collective watchdog saw no progress for its window and
    /// aborted the call locally (remote rank slow, crashed, or the link is
    /// out); no transport-level failure was diagnosed.
    Timeout,
    /// The transport declared the session to this peer dead (TCP
    /// retransmission limit, RDMA queue-pair error). The rank is the
    /// peer's node index, i.e. its rank in the world communicator.
    PeerFailed(u32),
    /// The call was aborted after exhausting its retry budget: every
    /// attempt allowed by the [`RetryPolicy`] timed out.
    Aborted,
    /// The call targeted a communicator this node is not a member of.
    InvalidCommunicator(u32),
    /// The call failed with in-flight payload corruption observed at this
    /// node's transport: an unreliable engine discarded corrupted frames
    /// it cannot retransmit, so the message can never complete. Reliable
    /// transports repair corruption silently and never report this.
    DataCorrupted,
    /// The engine (or the driver's own submission queue) was full and the
    /// call was turned away after exhausting its busy-retry budget. No
    /// collective work was started; the call is safe to resubmit later.
    Busy,
    /// The call was aborted while a bounded engine resource (the eager Rx
    /// buffer pool) was exhausted: the cluster is overloaded rather than
    /// partitioned or crashed. Shed load or raise the pool size.
    ResourceExhausted,
    /// This node is on the minority side of a network partition: the
    /// majority side keeps the communicator and continues, the minority
    /// fails fast so split-brain collectives cannot both "succeed". The
    /// node should wait for the partition to heal and rejoin via
    /// [`crate::comm::Communicator::expand`].
    Partitioned,
    /// A membership operation would produce an invalid group: a
    /// [`crate::comm::Communicator::shrink`] leaving no members, or a
    /// [`crate::comm::Communicator::expand`] readmitting a node that is
    /// already a member. Recoverable — re-resolve membership and retry.
    InvalidGroup,
}

impl core::fmt::Display for CclError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CclError::Timeout => write!(f, "collective timed out (no progress)"),
            CclError::PeerFailed(r) => write!(f, "peer rank {r} failed"),
            CclError::Aborted => write!(f, "collective aborted after exhausting retries"),
            CclError::InvalidCommunicator(c) => {
                write!(f, "node is not a member of communicator {c}")
            }
            CclError::DataCorrupted => {
                write!(
                    f,
                    "payload corrupted in flight (unrecoverable on this transport)"
                )
            }
            CclError::Busy => {
                write!(f, "engine busy: admission rejected after busy-retry budget")
            }
            CclError::ResourceExhausted => {
                write!(f, "bounded engine resource exhausted (overload)")
            }
            CclError::Partitioned => {
                write!(f, "node is on the minority side of a network partition")
            }
            CclError::InvalidGroup => {
                write!(f, "membership operation produced an invalid group")
            }
        }
    }
}

impl std::error::Error for CclError {}

/// Retry policy for failed collective calls (driver-side fault masking).
///
/// Only *eager* calls are retried: an eager collective holds no
/// distributed rendezvous state, so resubmitting the command is safe —
/// every rank that timed out re-runs the schedule, and leftover messages
/// from the aborted attempt were purged from the Rx buffer pool by the
/// engine's abort path. Rendezvous calls fail immediately.
///
/// The default policy performs no retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first; `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub backoff_base: Dur,
    /// Upper bound on the per-retry backoff.
    pub backoff_max: Dur,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: Dur::from_us(50),
            backoff_max: Dur::from_ms(5),
        }
    }
}

impl RetryPolicy {
    /// No retries (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Up to `retries` retries with the default backoff parameters.
    pub fn retries(retries: u32) -> Self {
        RetryPolicy {
            max_attempts: retries + 1,
            ..Self::default()
        }
    }

    /// Backoff before retry number `retry` (0-based): exponential,
    /// `base * 2^retry`, capped at [`RetryPolicy::backoff_max`].
    pub fn backoff(&self, retry: u32) -> Dur {
        let base = self.backoff_base.as_ps();
        let ps = base.checked_shl(retry).unwrap_or(u64::MAX).max(base);
        Dur::from_ps(ps).min(self.backoff_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            backoff_base: Dur::from_us(10),
            backoff_max: Dur::from_us(100),
        };
        assert_eq!(p.backoff(0), Dur::from_us(10));
        assert_eq!(p.backoff(1), Dur::from_us(20));
        assert_eq!(p.backoff(2), Dur::from_us(40));
        assert_eq!(p.backoff(3), Dur::from_us(80));
        assert_eq!(p.backoff(4), Dur::from_us(100));
        // Pathological shift counts saturate instead of wrapping.
        assert_eq!(p.backoff(200), Dur::from_us(100));
    }

    #[test]
    fn default_policy_never_retries() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(RetryPolicy::retries(3).max_attempts, 4);
    }

    #[test]
    fn errors_display() {
        assert_eq!(CclError::PeerFailed(2).to_string(), "peer rank 2 failed");
        assert!(CclError::InvalidCommunicator(7).to_string().contains('7'));
    }
}
