//! Trace determinism: the recorded span stream is part of the simulator's
//! reproducibility contract.
//!
//! Span ids are content-derived (component, name, ordinal — never queue
//! internals or allocation order), so the identical timeline promise
//! extends to the trace: the same seeded workload must yield the same
//! span events on both event-queue implementations, run to run, and (with
//! the race detector) under deliberately permuted same-timestamp
//! delivery order.

#![cfg(feature = "trace")]

use accl_core::driver::CollSpec;
use accl_core::{AcclCluster, BufLoc, ClusterConfig, CollOp, DType};
use accl_sim::prelude::QueueKind;
#[cfg(feature = "race-detect")]
use accl_sim::trace::span_canon_digest;
use accl_sim::trace::{max_span_depth, span_digest, SpanEvent};

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn pattern(node: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| (node as i32) * 1000 + (i as i32 % 17))
            .collect::<Vec<_>>(),
    )
}

/// Runs a seeded 4-node RDMA allreduce with tracing on and returns the
/// recorded span stream. `salt` permutes same-timestamp delivery order
/// (race-detect builds only).
fn traced_allreduce(kind: QueueKind, salt: Option<u64>) -> Vec<SpanEvent> {
    let n = 4;
    let count = 4096u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    c.sim.set_queue_kind(kind);
    match salt {
        #[cfg(feature = "race-detect")]
        Some(s) => c.sim.permute_tie_order(s),
        #[cfg(not(feature = "race-detect"))]
        Some(_) => unreachable!("tie-order salts need the race-detect feature"),
        None => {}
    }
    c.enable_tracing(1 << 20);
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for node in 0..n {
        let src = c.alloc(node, BufLoc::Device, count * 4);
        let dst = c.alloc(node, BufLoc::Device, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        dsts.push(dst);
    }
    c.host_collective(specs);
    // Traces of a wrong answer are worthless — verify the data too.
    let expect: Vec<u8> = i32s(
        &(0..count)
            .map(|i| {
                (0..n as i32)
                    .map(|node| node * 1000 + (i as i32 % 17))
                    .sum::<i32>()
            })
            .collect::<Vec<_>>(),
    );
    for (node, dst) in dsts.iter().enumerate() {
        assert_eq!(c.read(dst), expect, "node {node} ({kind:?})");
    }
    assert_eq!(c.sim.spans_dropped(), 0, "ring must hold the whole run");
    c.trace_events()
}

#[test]
fn span_stream_is_reproducible_run_to_run() {
    let a = traced_allreduce(QueueKind::Calendar, None);
    let b = traced_allreduce(QueueKind::Calendar, None);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must replay the identical span stream");
}

#[test]
fn span_stream_is_queue_invariant() {
    let calendar = traced_allreduce(QueueKind::Calendar, None);
    let heap = traced_allreduce(QueueKind::Heap, None);
    // Not merely digest-equal: the full streams (ids, parents, times,
    // attributes, record order) must match event for event.
    assert_eq!(
        calendar, heap,
        "queue kinds disagree on the recorded span stream"
    );
    assert_eq!(span_digest(&calendar), span_digest(&heap));
}

#[test]
fn trace_covers_every_layer_of_the_stack() {
    let events = traced_allreduce(QueueKind::Calendar, None);
    let names: std::collections::BTreeSet<&str> = events.iter().map(|e| e.name).collect();
    for required in [
        "driver.coll",
        "driver.collective",
        "uc.call",
        "uc.decode",
        "dmp.instr",
        "tx.job",
        "poe.seg",
        "poe.rx",
        "net.wire",
        "mem.hbm.read",
    ] {
        assert!(names.contains(required), "no {required} span recorded");
    }
    let depth = max_span_depth(&events);
    assert!(depth >= 5, "span depth {depth} < 5 (driver -> link chain)");
}

/// The tie-order acceptance bar mirrors the race detector's own
/// canonicalization: under a permuted same-timestamp delivery order, the
/// *population* of spans — what work happened, how often, on which
/// component — must not move ([`span_canon_digest`]). Timing and causal
/// attachment may: when two frames hit a switch egress at the same
/// instant, which one queues and which one grabs the wire is an
/// arbitration choice that shifts downstream arrival times by a few
/// nanoseconds — exactly the "event-timeline digest legitimately
/// differs" caveat `determinism.rs` documents. What must never move is
/// the data, which `traced_allreduce` asserts on every run.
#[cfg(feature = "race-detect")]
#[test]
fn span_population_survives_permuted_tie_order() {
    for kind in [QueueKind::Calendar, QueueKind::Heap] {
        let golden = span_canon_digest(&traced_allreduce(kind, None));
        for salt in [1u64, 0x5eed, 0xdead_beef] {
            assert_eq!(
                span_canon_digest(&traced_allreduce(kind, Some(salt))),
                golden,
                "span population changed under permuted tie order ({kind:?}, salt {salt:#x})"
            );
        }
    }
}
