//! Self-healing membership scenarios: a node crashing mid-allreduce,
//! restarting, and rejoining via [`Communicator::expand`]; degraded links
//! staying *suspected* (never falsely killed) under the adaptive failure
//! detector; fabric partitions resolving split-brain-safely and
//! re-merging after the heal — all bit-replay-stable across queue kinds
//! and worker counts.

#![allow(clippy::needless_range_loop)] // rank loops index parallel spec/buffer arrays

use accl_cclo::{AdaptiveWatchdogCfg, CollOp, DType};
use accl_core::host::HostOp;
use accl_core::{
    AcclCluster, AlgoConfig, BufLoc, CclError, ClusterConfig, CollSpec, MembershipEvent, Transport,
};
use accl_net::Degradation;
use accl_sim::prelude::{ComponentId, QueueKind, Time};

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn pattern(rank: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count as i32)
            .map(|i| i * 3 + rank as i32 * 97)
            .collect::<Vec<_>>(),
    )
}

fn summed(ranks: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count as i32)
            .map(|i| (0..ranks as i32).map(|r| i * 3 + r * 97).sum())
            .collect::<Vec<_>>(),
    )
}

fn cfg_for(transport: Transport, nodes: usize, timeout_us: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::coyote_rdma(nodes);
    cfg.transport = transport;
    cfg.cclo.collective_timeout_us = Some(timeout_us);
    cfg
}

fn allreduce_setup(
    c: &mut AcclCluster,
    members: &[usize],
    count: u64,
    comm: u32,
) -> (Vec<CollSpec>, Vec<accl_core::BufferHandle>) {
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for &node in members {
        let src = c.alloc(node, BufLoc::Device, count * 4);
        let dst = c.alloc(node, BufLoc::Device, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst)
                .comm(comm),
        );
        dsts.push(dst);
    }
    (specs, dsts)
}

/// Runs allreduce on a subset of the nodes (the rest idle) and asserts
/// golden-data equality on every participating rank.
fn run_subset_allreduce(c: &mut AcclCluster, members: &[usize], count: u64, comm: u32, tag: &str) {
    let nodes = c.len();
    let (mut specs, dsts) = allreduce_setup(c, members, count, comm);
    let mut programs: Vec<Vec<HostOp>> = vec![Vec::new(); nodes];
    for &m in members {
        programs[m] = vec![HostOp::Coll(specs.remove(0))];
    }
    let results = c.run_host_programs(programs);
    for (r, &m) in members.iter().enumerate() {
        assert_eq!(results[m][0].result(), Ok(()), "{tag}: node {m}");
        assert_eq!(
            c.read(&dsts[r]),
            summed(members.len(), count),
            "{tag}: node {m} data"
        );
    }
}

/// The full self-healing lifecycle on one transport: crash mid-allreduce
/// → survivors diagnose and shrink → reissue on the survivor group →
/// restart + transport reinstatement → expand readmits the node with its
/// original numbering → a full-world allreduce completes with golden
/// data. Returns the cluster for post-mortem assertions.
fn crash_restart_rejoin(transport: Transport, timeout_us: u64) -> AcclCluster {
    let dead = 2usize;
    let count = 1024u64;
    let mut c = AcclCluster::build(cfg_for(transport, 3, timeout_us));
    c.set_algo_config(AlgoConfig {
        allreduce_ring_min_bytes: 1,
        ..AlgoConfig::default()
    });
    c.crash_node(dead, Time::from_us(1));
    // The restart instant lands while the first (failing) run drains, so
    // the NIC reincarnates, survivors fence the old epoch, and the RBM
    // wipes — all inside run 1's timeline.
    c.restart_node(dead, Time::from_ms(60));

    // Run 1: the crash fails every rank's collective in bounded time.
    let (specs, _) = allreduce_setup(&mut c, &[0, 1, 2], count, 0);
    let records = c.host_collective(specs);
    for rank in [0usize, 1] {
        assert!(
            records[rank].result().is_err(),
            "{transport:?}: surviving rank {rank} must fail, got {:?}",
            records[rank].result()
        );
        if transport != Transport::Udp {
            assert_eq!(
                records[rank].result(),
                Err(CclError::PeerFailed(dead as u32)),
                "{transport:?}: rank {rank} verdict"
            );
        }
    }

    // Run 2: ULFM shrink + reissue on the survivor group.
    let world = c.communicator(0).unwrap().clone();
    let survivors = world.shrink(1, &[dead]).expect("survivors remain");
    assert_eq!(survivors.members(), &[0, 1]);
    c.install_communicator(&survivors);
    run_subset_allreduce(&mut c, &[0, 1], count, 1, "survivor reissue");

    // Run 3: the restarted node rejoins — sessions reinstated, detector
    // history forgotten, expand restores the world numbering — and a
    // full-strength allreduce completes bit-exactly.
    c.reinstate_node(dead);
    let rejoined = survivors.expand(2, &[dead]).expect("node readmitted");
    assert_eq!(rejoined.members(), &[0, 1, 2]);
    assert_eq!(rejoined.rank_of(dead), Some(dead as u32));
    c.install_communicator(&rejoined);
    run_subset_allreduce(&mut c, &[0, 1, 2], count, 2, "rejoined world");

    // The lifecycle is on the record: a restart followed by a rejoin.
    let log = c.membership_log();
    let restarted = log
        .iter()
        .position(|(_, e)| *e == MembershipEvent::Restarted { node: dead });
    let rejoined_at = log
        .iter()
        .position(|(_, e)| *e == MembershipEvent::Rejoined { node: dead });
    assert!(
        restarted.is_some() && rejoined_at > restarted,
        "{transport:?}: membership log must show restart then rejoin, got {log:?}"
    );
    c
}

#[test]
fn crash_restart_rejoin_completes_on_tcp() {
    crash_restart_rejoin(Transport::Tcp, 30_000);
}

#[test]
fn crash_restart_rejoin_completes_on_udp() {
    crash_restart_rejoin(Transport::Udp, 2_000);
}

#[test]
fn crash_restart_rejoin_completes_on_rdma() {
    crash_restart_rejoin(Transport::Rdma, 30_000);
}

/// Shared shape of the degraded-link-only scenario: a throttle-only
/// degradation window (no loss, no crash) stretching one node's frame
/// cadence far past the fixed watchdog's patience.
fn degraded_cluster(nodes: usize, adaptive: bool, workers: usize) -> AcclCluster {
    let mut cfg = ClusterConfig::coyote_rdma(nodes);
    cfg.transport = Transport::Tcp;
    cfg.workers = workers;
    if adaptive {
        // No fixed timeout: unlearned streams fall back to the detector's
        // cap, learned streams get mean + phi·(MAD + jitter floor).
        cfg.cclo.collective_timeout_us = None;
        cfg.cclo.adaptive_watchdog = Some(AdaptiveWatchdogCfg::default());
    } else {
        cfg.cclo.collective_timeout_us = Some(200);
    }
    let mut c = AcclCluster::build(cfg);
    c.set_algo_config(AlgoConfig {
        allreduce_ring_min_bytes: 1,
        ..AlgoConfig::default()
    });
    // Node 1's link runs at 0.01 Gb/s for the whole run: every frame
    // crawls, inter-arrival gaps stretch toward a millisecond.
    c.set_fault_plan(accl_net::FaultPlan::none().with_degradation(
        accl_net::NodeAddr(1),
        Degradation {
            from: Time::ZERO,
            until: Time::from_ms(500),
            loss_ppm: 0,
            throttle_gbps_x100: 1,
        },
    ));
    c
}

/// The acceptance bar for adaptive detection: a degraded-but-alive link
/// that the fixed 200 µs watchdog kills (false PeerFailed verdicts) is
/// ridden out by the adaptive detector — zero false verdicts, the
/// collective completes with golden data, and the degradation registered
/// as (at most) suspect-level suspicion, never a kill.
#[test]
fn degraded_link_survives_adaptive_detector_where_fixed_watchdog_aborts() {
    let count = 512u64;

    // Fixed watchdog: the stretched cadence looks like death.
    let mut fixed = degraded_cluster(2, false, 1);
    let (specs, _) = allreduce_setup(&mut fixed, &[0, 1], count, 0);
    let records = fixed.host_collective(specs);
    assert!(
        records.iter().any(|r| r.result().is_err()),
        "fixed 200 µs watchdog must abort under the throttle, got {records:?}"
    );

    // Adaptive detector: same fabric, zero false verdicts.
    let mut adaptive = degraded_cluster(2, true, 1);
    let (specs, dsts) = allreduce_setup(&mut adaptive, &[0, 1], count, 0);
    let records = adaptive.host_collective(specs);
    for rank in 0..2 {
        assert_eq!(
            records[rank].result(),
            Ok(()),
            "adaptive detector rank {rank} must ride out the degradation"
        );
        assert_eq!(
            adaptive.read(&dsts[rank]),
            summed(2, count),
            "rank {rank} data"
        );
        assert_eq!(
            adaptive.node_stats(rank).collectives_aborted,
            0,
            "rank {rank}: no aborts — degraded is not dead"
        );
        assert!(
            adaptive.failed_peers(rank).is_empty(),
            "rank {rank}: zero false PeerFailed verdicts"
        );
    }
}

/// A fabric partition isolates node 3 mid-allreduce: the majority side
/// keeps the communicator (its failures stay PeerFailed and it shrinks),
/// the minority side's failure is recolored `Partitioned` (fail fast, do
/// NOT shrink — that would be split-brain), and after the heal the
/// minority re-merges via expand and a full-world allreduce completes.
#[test]
fn partition_minority_fails_fast_and_remerges_after_heal() {
    let count = 1024u64;
    let mask = 0b1000u64; // node 3 alone vs nodes 0-2
    let mut c = AcclCluster::build(cfg_for(Transport::Tcp, 4, 30_000));
    c.set_algo_config(AlgoConfig {
        allreduce_ring_min_bytes: 1,
        ..AlgoConfig::default()
    });
    c.partition(mask, Time::from_us(1), Time::from_ms(60));

    let (specs, _) = allreduce_setup(&mut c, &[0, 1, 2, 3], count, 0);
    let records = c.host_collective(specs);
    assert_eq!(
        records[3].result(),
        Err(CclError::Partitioned),
        "minority side fails fast with the typed partition verdict"
    );
    for rank in 0..3 {
        assert!(
            records[rank].result().is_err(),
            "majority rank {rank} must fail this run"
        );
        assert_ne!(
            records[rank].result(),
            Err(CclError::Partitioned),
            "majority rank {rank} is NOT partitioned-out"
        );
    }

    // Majority resolves the cut locally — identically on every member.
    let world = c.communicator(0).unwrap().clone();
    let kept = accl_core::resolve_partition(&world, 0, mask).expect("majority keeps the comm");
    assert_eq!(kept.members(), &[0, 1, 2]);
    assert_eq!(
        accl_core::resolve_partition(&world, 3, mask),
        Err(CclError::Partitioned)
    );
    let majority = world.shrink(1, &[3]).expect("survivors remain");
    c.install_communicator(&majority);
    run_subset_allreduce(&mut c, &[0, 1, 2], count, 1, "majority under partition");

    // Heal has passed (run 2 drained beyond it): re-merge.
    assert!(c.sim.now() > Time::from_ms(60), "heal instant passed");
    c.reinstate_node(3);
    let merged = majority.expand(2, &[3]).expect("minority readmitted");
    assert_eq!(merged.members(), &[0, 1, 2, 3]);
    c.install_communicator(&merged);
    run_subset_allreduce(&mut c, &[0, 1, 2, 3], count, 2, "re-merged world");

    // Cut and heal are on the membership record.
    let log = c.membership_log();
    assert!(log
        .iter()
        .any(|(_, e)| *e == MembershipEvent::Partitioned { mask }));
    assert!(log
        .iter()
        .any(|(_, e)| *e == MembershipEvent::Healed { mask }));
}

/// Everything the recovery timeline exposes that must be bit-identical
/// run-to-run, across queue kinds and worker counts.
#[derive(Debug, PartialEq)]
struct Observables {
    events_executed: u64,
    final_time: Time,
    state_digests: Vec<(ComponentId, u64)>,
    suspicions: Vec<u64>,
    membership: Vec<(Time, MembershipEvent)>,
}

impl Observables {
    fn collect(c: &mut AcclCluster) -> Observables {
        let suspicions = (0..c.len())
            .map(|i| {
                c.sim
                    .component::<accl_cclo::uc::Uc>(c.node(i).cclo.uc)
                    .suspicions()
            })
            .collect();
        Observables {
            events_executed: c.sim.events_executed(),
            final_time: c.sim.now(),
            state_digests: c.sim.state_digests(),
            suspicions,
            membership: c.membership_log().to_vec(),
        }
    }
}

/// The crash → restart → rejoin lifecycle under the adaptive detector,
/// parameterized by engine configuration. Suspect/confirm decisions are
/// part of every uC's state digest, so digest equality pins them.
fn rejoin_observables(kind: QueueKind, workers: usize, tie_salt: Option<u64>) -> Observables {
    let dead = 2usize;
    let count = 512u64;
    let mut cfg = cfg_for(Transport::Tcp, 3, 30_000);
    cfg.workers = workers;
    cfg.cclo.adaptive_watchdog = Some(AdaptiveWatchdogCfg::default());
    let mut c = AcclCluster::build(cfg);
    c.sim.set_queue_kind(kind);
    if let Some(salt) = tie_salt {
        permute_ties(&mut c, salt);
    }
    c.set_algo_config(AlgoConfig {
        allreduce_ring_min_bytes: 1,
        ..AlgoConfig::default()
    });
    c.crash_node(dead, Time::from_us(1));
    c.restart_node(dead, Time::from_ms(60));
    let (specs, _) = allreduce_setup(&mut c, &[0, 1, 2], count, 0);
    c.host_collective(specs);
    let survivors = c
        .communicator(0)
        .unwrap()
        .shrink(1, &[dead])
        .expect("survivors remain");
    c.install_communicator(&survivors);
    run_subset_allreduce(&mut c, &[0, 1], count, 1, "survivor reissue");
    c.reinstate_node(dead);
    let rejoined = survivors.expand(2, &[dead]).expect("node readmitted");
    c.install_communicator(&rejoined);
    run_subset_allreduce(&mut c, &[0, 1, 2], count, 2, "rejoined world");
    Observables::collect(&mut c)
}

/// The degraded-link-only scenario under the adaptive detector,
/// parameterized the same way.
fn degraded_observables(kind: QueueKind, workers: usize, tie_salt: Option<u64>) -> Observables {
    let count = 512u64;
    let mut c = degraded_cluster(2, true, workers);
    c.sim.set_queue_kind(kind);
    if let Some(salt) = tie_salt {
        permute_ties(&mut c, salt);
    }
    let (specs, dsts) = allreduce_setup(&mut c, &[0, 1], count, 0);
    let records = c.host_collective(specs);
    for rank in 0..2 {
        assert_eq!(records[rank].result(), Ok(()), "rank {rank}");
        assert_eq!(c.read(&dsts[rank]), summed(2, count), "rank {rank} data");
    }
    Observables::collect(&mut c)
}

#[cfg(feature = "race-detect")]
fn permute_ties(c: &mut AcclCluster, salt: u64) {
    c.sim.permute_tie_order(salt);
}

#[cfg(not(feature = "race-detect"))]
fn permute_ties(_c: &mut AcclCluster, _salt: u64) {
    unreachable!("tie permutation requires the race-detect feature")
}

/// Satellite determinism gate: the full recovery timeline — including
/// every suspect/confirm decision folded into the uC digests — is
/// bit-identical across queue kinds and 1/2/4/8 workers.
#[test]
fn rejoin_timeline_digest_stable_across_queues_and_workers() {
    let golden = rejoin_observables(QueueKind::Heap, 1, None);
    assert!(!golden.state_digests.is_empty());
    assert!(
        golden.suspicions.iter().any(|&s| s > 0),
        "the crash must register suspect-level firings first, got {:?}",
        golden.suspicions
    );
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        for workers in [1usize, 2, 4, 8] {
            if (kind, workers) == (QueueKind::Heap, 1) {
                continue;
            }
            assert_eq!(
                rejoin_observables(kind, workers, None),
                golden,
                "rejoin timeline diverged ({kind:?}, {workers} workers)"
            );
        }
    }
}

/// Same gate for the degraded-only scenario: adaptive deadlines are
/// integer arithmetic on observed gaps, so the no-false-positive outcome
/// is equally replayable.
#[test]
fn degraded_timeline_digest_stable_across_queues_and_workers() {
    let golden = degraded_observables(QueueKind::Heap, 1, None);
    assert!(!golden.state_digests.is_empty());
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        for workers in [1usize, 2, 4, 8] {
            if (kind, workers) == (QueueKind::Heap, 1) {
                continue;
            }
            assert_eq!(
                degraded_observables(kind, workers, None),
                golden,
                "degraded timeline diverged ({kind:?}, {workers} workers)"
            );
        }
    }
}

/// With the race detector, a deliberately permuted same-timestamp
/// delivery order must not move a single suspect/confirm decision: the
/// detector reads sim time and per-stream history, never queue order.
#[cfg(feature = "race-detect")]
#[test]
fn detector_decisions_survive_permuted_tie_order() {
    let golden = rejoin_observables(QueueKind::Heap, 1, None);
    for salt in [1u64, 0x5eed, 0xdead_beef] {
        assert_eq!(
            rejoin_observables(QueueKind::Heap, 1, Some(salt)),
            golden,
            "suspect/confirm decisions moved under tie salt {salt:#x}"
        );
    }
    let degraded_golden = degraded_observables(QueueKind::Heap, 1, None);
    for salt in [1u64, 0x5eed] {
        assert_eq!(
            degraded_observables(QueueKind::Heap, 1, Some(salt)),
            degraded_golden,
            "degraded-run decisions moved under tie salt {salt:#x}"
        );
    }
}
