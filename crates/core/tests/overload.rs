//! Overload and backpressure integration tests: clusters built with
//! finite capacities (`ClusterConfig::with_overload_limits`) must keep
//! completing collectives correctly, shed load with typed `Busy` errors
//! instead of queueing without bound, mask engine-admission rejections
//! under a deterministic jittered backoff, and replay bit-identically —
//! including under injected overload faults — on both event-queue
//! implementations.

use accl_cclo::command::{CcloCommand, CcloDone, CmdStatus};
use accl_core::driver::{ports as driver_ports, CollSpec, DriverCall, DriverDone};
use accl_core::host::{ports as host_ports, HostOp, HostProc};
use accl_core::{
    AcclCluster, BufLoc, CclError, ClusterConfig, CollOp, DType, HostDriver, RetryPolicy,
};
use accl_net::{FaultPlan, NodeAddr};
use accl_sim::prelude::*;

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn pattern(node: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| (node as i32 + 1) * 100 + i as i32 % 23)
            .collect::<Vec<_>>(),
    )
}

fn summed(n: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| (0..n as i32).map(|nd| (nd + 1) * 100 + i as i32 % 23).sum())
            .collect::<Vec<_>>(),
    )
}

fn allreduce_setup(
    c: &mut AcclCluster,
    n: usize,
    count: u64,
) -> (Vec<CollSpec>, Vec<accl_core::BufferHandle>) {
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for node in 0..n {
        let src = c.alloc(node, BufLoc::Host, count * 4);
        let dst = c.alloc(node, BufLoc::Host, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        dsts.push(dst);
    }
    (specs, dsts)
}

/// With every capacity finite but no induced overload, the bounded stack
/// is behaviourally invisible: collectives complete with correct data on
/// all three transports and nothing is rejected or shed.
#[test]
fn bounded_cluster_completes_collectives_on_every_transport() {
    let n = 4;
    let count = 1024u64;
    let configs = [
        ClusterConfig::coyote_rdma(n),
        ClusterConfig::xrt_tcp(n),
        ClusterConfig::xrt_udp(n),
    ];
    for cfg in configs {
        let transport = cfg.transport;
        let mut c = AcclCluster::build(cfg.with_overload_limits());
        let (specs, dsts) = allreduce_setup(&mut c, n, count);
        let records = c.host_collective(specs);
        let expect = summed(n, count);
        for node in 0..n {
            assert_eq!(
                records[node].result(),
                Ok(()),
                "node {node} ({transport:?})"
            );
            assert_eq!(c.read(&dsts[node]), expect, "node {node} ({transport:?})");
            let stats = c.node_stats(node);
            assert_eq!(stats.driver_calls_failed, 0, "({transport:?})");
            assert_eq!(stats.driver_calls_shed, 0, "({transport:?})");
            assert_eq!(stats.engine_busy_rejections, 0, "({transport:?})");
        }
    }
}

/// Timeline digest of a bounded 4-node TCP allreduce with a non-wedging
/// overload fault mix injected: one recoverable credit leak, a pause
/// storm, and a pool shrink.
fn overloaded_digest(kind: QueueKind) -> u64 {
    let n = 4;
    let count = 1024u64;
    let mut c = AcclCluster::build(ClusterConfig::xrt_tcp(n).with_overload_limits());
    c.sim.set_queue_kind(kind);
    c.sim.enable_digest();
    let plan = FaultPlan::none()
        // Leak 4 of n1's 32 tx credits: pressure, not a wedge.
        .with_credit_leak(NodeAddr(1), Time::from_us(5), 4)
        .with_pause_storm(NodeAddr(2), Time::from_us(10), Dur::from_us(80))
        .with_buf_shrink(NodeAddr(3), Time::from_us(3), 2);
    c.set_fault_plan(plan);
    let (specs, dsts) = allreduce_setup(&mut c, n, count);
    let records = c.host_collective(specs);
    let expect = summed(n, count);
    for node in 0..n {
        assert_eq!(records[node].result(), Ok(()), "node {node} ({kind:?})");
        assert_eq!(c.read(&dsts[node]), expect, "node {node} ({kind:?})");
    }
    // The faults actually landed where the plan aimed them.
    assert_eq!(c.node_stats(3).rx_buffers_shrunk, 2);
    c.sim
        .timeline_digest()
        .expect("digest was enabled before the run")
}

#[test]
fn overloaded_timeline_is_reproducible_run_to_run() {
    assert_eq!(
        overloaded_digest(QueueKind::Calendar),
        overloaded_digest(QueueKind::Calendar),
        "overload faults broke same-seed reproducibility"
    );
}

#[test]
fn overloaded_timeline_is_queue_invariant() {
    assert_eq!(
        overloaded_digest(QueueKind::Heap),
        overloaded_digest(QueueKind::Calendar),
        "queue kinds disagree under overload faults"
    );
}

/// Three host processes race one driver whose submission queue holds a
/// single waiting call: the first runs, the second queues, the third is
/// shed immediately with `Busy` — on both nodes symmetrically, so the two
/// surviving collectives still match across the cluster.
#[test]
fn driver_sheds_calls_beyond_its_submission_queue() {
    let n = 2;
    let count = 256u64;
    let mut cfg = ClusterConfig::xrt_tcp(n);
    cfg.max_queued_calls = Some(1);
    let mut c = AcclCluster::build(cfg);
    let expect = summed(n, count);
    // Three independent single-collective programs per node, all started
    // at the same instant.
    let mut procs = Vec::new();
    let mut dsts = Vec::new();
    for k in 0..3 {
        for node in 0..n {
            let src = c.alloc(node, BufLoc::Host, count * 4);
            let dst = c.alloc(node, BufLoc::Host, count * 4);
            c.write(&src, &pattern(node, count));
            let spec = CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst);
            let driver = Endpoint::new(c.node(node).driver, driver_ports::CALL);
            let id = c.sim.add(
                format!("n{node}.proc{k}"),
                HostProc::new(driver, vec![HostOp::Coll(spec)]),
            );
            c.sim
                .post(Endpoint::new(id, host_ports::START), Time::ZERO, ());
            procs.push((k, node, id));
            dsts.push((k, node, dst));
        }
    }
    assert!(matches!(c.sim.run(), RunOutcome::Drained));
    for (k, node, id) in &procs {
        let records = c.sim.component::<HostProc>(*id).records().to_vec();
        assert_eq!(records.len(), 1);
        match k {
            0 | 1 => assert_eq!(records[0].result(), Ok(()), "proc {k} node {node}"),
            _ => assert_eq!(
                records[0].result(),
                Err(CclError::Busy),
                "proc {k} node {node} should have been shed"
            ),
        }
    }
    for (k, node, dst) in &dsts {
        if *k < 2 {
            assert_eq!(&c.read(dst), &expect, "proc {k} node {node}");
        }
    }
    for node in 0..n {
        let stats = c.node_stats(node);
        assert_eq!(stats.driver_calls_shed, 1, "node {node}");
        assert_eq!(stats.driver_calls_failed, 1, "node {node}");
        assert_eq!(stats.driver_calls_completed, 3, "node {node}");
    }
}

/// A stand-in engine that rejects the first `rejections` submissions with
/// `Busy`, then accepts. The command is never admitted on a rejection, so
/// the driver's busy-retry is exercised without a full cluster.
struct FlakyAdmission {
    rejections: u32,
    seen: u32,
}

impl Component for FlakyAdmission {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        let cmd = payload.downcast::<CcloCommand>();
        self.seen += 1;
        let status = if self.seen <= self.rejections {
            CmdStatus::Busy
        } else {
            CmdStatus::Ok
        };
        ctx.send(
            cmd.reply_to,
            Dur::from_us(1),
            CcloDone {
                ticket: cmd.ticket,
                op: cmd.op,
                bytes: 0,
                status,
            },
        );
    }
}

#[derive(Default)]
struct DoneSink {
    results: Vec<Result<(), CclError>>,
}

impl Component for DoneSink {
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        self.results.push(payload.downcast::<DriverDone>().result);
    }
}

const BUSY_POLICY: RetryPolicy = RetryPolicy {
    max_attempts: 4,
    backoff_base: Dur::from_us(2),
    backoff_max: Dur::from_us(64),
};

/// Runs one barrier call against a `FlakyAdmission` engine; returns the
/// driver's busy-backoff schedule and the call outcomes.
fn run_busy(seed: u64, rejections: u32) -> (Vec<Dur>, Vec<Result<(), CclError>>) {
    let mut sim = Simulator::new(seed);
    let engine = sim.add(
        "engine",
        FlakyAdmission {
            rejections,
            seen: 0,
        },
    );
    let mut drv = HostDriver::new(0, Endpoint::new(engine, PortId(0)), None, Dur::from_us(3));
    drv.set_busy_retry(BUSY_POLICY, Some(sim.fork_rng("n0.driver.busy")));
    let driver = sim.add("n0.driver", drv);
    let sink = sim.add("sink", DoneSink::default());
    sim.post(
        Endpoint::new(driver, driver_ports::CALL),
        Time::ZERO,
        DriverCall {
            spec: CollSpec::new(CollOp::Barrier, 0, DType::U8),
            reply_to: Endpoint::new(sink, PortId(0)),
            ticket: 7,
        },
    );
    assert!(matches!(sim.run(), RunOutcome::Drained));
    let schedule = sim
        .component::<HostDriver>(driver)
        .busy_backoff_schedule()
        .to_vec();
    let results = sim.component::<DoneSink>(sink).results.clone();
    (schedule, results)
}

#[test]
fn busy_rejections_are_masked_within_the_retry_budget() {
    let (schedule, results) = run_busy(11, 2);
    assert_eq!(results, vec![Ok(())], "two rejections, four attempts");
    assert_eq!(schedule.len(), 2);
    for (retry, backoff) in schedule.iter().enumerate() {
        let floor = BUSY_POLICY.backoff(retry as u32);
        // Jitter is additive and bounded by a quarter of the base.
        let ceil = floor + Dur::from_ps(BUSY_POLICY.backoff_base.as_ps() / 4);
        assert!(
            floor <= *backoff && *backoff < ceil,
            "retry {retry}: {backoff:?} outside [{floor:?}, {ceil:?})"
        );
    }
}

#[test]
fn busy_surfaces_after_the_retry_budget_is_spent() {
    let (schedule, results) = run_busy(11, 10);
    assert_eq!(results, vec![Err(CclError::Busy)]);
    // max_attempts = 4: three backoffs were scheduled before giving up.
    assert_eq!(schedule.len(), 3);
}

#[test]
fn busy_backoff_schedule_is_a_pure_function_of_seed() {
    let (a, _) = run_busy(42, 3);
    let (b, _) = run_busy(42, 3);
    assert_eq!(a, b, "same seed must yield an identical backoff schedule");
    assert_eq!(a.len(), 3);
    let (c, _) = run_busy(43, 3);
    assert_ne!(a, c, "different seeds should jitter differently");
}
