//! Golden-digest determinism tests for the simulation kernel.
//!
//! The simulator promises a bit-for-bit reproducible `(time, seq)` event
//! order for a given seed. These tests pin that promise across the two
//! event-queue implementations (the legacy global heap and the tiered
//! calendar scheduler) by hashing the full delivery timeline —
//! `(time, seq, dst, payload type)` per event — of a real 4-node
//! allreduce. Any divergence in event *order*, not just in results,
//! changes the digest.

use accl_core::driver::CollSpec;
use accl_core::{AcclCluster, BufLoc, ClusterConfig, CollOp, DType};
use accl_sim::prelude::QueueKind;

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn pattern(node: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| (node as i32) * 1000 + (i as i32 % 17))
            .collect::<Vec<_>>(),
    )
}

fn summed(n: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| {
                (0..n as i32)
                    .map(|node| node * 1000 + (i as i32 % 17))
                    .sum::<i32>()
            })
            .collect::<Vec<_>>(),
    )
}

/// Runs a seeded 4-node RDMA allreduce with timeline digesting enabled on
/// the given queue kind; returns the digest.
fn allreduce_digest(kind: QueueKind) -> u64 {
    let n = 4;
    let count = 4096u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    c.sim.set_queue_kind(kind);
    c.sim.enable_digest();
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for node in 0..n {
        let src = c.alloc(node, BufLoc::Host, count * 4);
        let dst = c.alloc(node, BufLoc::Host, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        dsts.push(dst);
    }
    c.host_collective(specs);
    // The digest only proves the *order* is stable; also check the math so
    // a digest collision over garbage can't pass silently.
    let expect = summed(n, count);
    for (node, dst) in dsts.iter().enumerate() {
        assert_eq!(c.read(dst), expect, "node {node} ({kind:?})");
    }
    c.sim
        .timeline_digest()
        .expect("digest was enabled before the run")
}

#[test]
fn allreduce_timeline_is_reproducible_run_to_run() {
    assert_eq!(
        allreduce_digest(QueueKind::Calendar),
        allreduce_digest(QueueKind::Calendar),
        "same seed, same queue: timeline must be bit-identical"
    );
}

#[test]
fn queue_swap_leaves_the_timeline_bit_identical() {
    // The tentpole contract: the tiered calendar queue is a drop-in
    // replacement for the global heap — every event fires at the same
    // (time, seq) with the same destination and payload type.
    assert_eq!(
        allreduce_digest(QueueKind::Heap),
        allreduce_digest(QueueKind::Calendar),
        "calendar scheduler changed the event timeline"
    );
}
