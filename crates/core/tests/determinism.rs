//! Golden-digest determinism tests for the simulation kernel.
//!
//! The simulator promises a bit-for-bit reproducible `(time, seq)` event
//! order for a given seed. These tests pin that promise across the two
//! event-queue implementations (the legacy global heap and the tiered
//! calendar scheduler) by hashing the full delivery timeline —
//! `(time, seq, dst, payload type)` per event — of a real 4-node
//! allreduce. Any divergence in event *order*, not just in results,
//! changes the digest.

use accl_core::driver::CollSpec;
use accl_core::host::HostOp;
use accl_core::{AcclCluster, BufLoc, ClusterConfig, CollOp, DType};
use accl_sim::prelude::QueueKind;

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn pattern(node: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| (node as i32) * 1000 + (i as i32 % 17))
            .collect::<Vec<_>>(),
    )
}

fn summed(n: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| {
                (0..n as i32)
                    .map(|node| node * 1000 + (i as i32 % 17))
                    .sum::<i32>()
            })
            .collect::<Vec<_>>(),
    )
}

/// Runs a seeded 4-node RDMA allreduce with timeline digesting enabled on
/// the given queue kind; returns the digest.
fn allreduce_digest(kind: QueueKind) -> u64 {
    let n = 4;
    let count = 4096u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    c.sim.set_queue_kind(kind);
    c.sim.enable_digest();
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for node in 0..n {
        let src = c.alloc(node, BufLoc::Host, count * 4);
        let dst = c.alloc(node, BufLoc::Host, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        dsts.push(dst);
    }
    c.host_collective(specs);
    // The digest only proves the *order* is stable; also check the math so
    // a digest collision over garbage can't pass silently.
    let expect = summed(n, count);
    for (node, dst) in dsts.iter().enumerate() {
        assert_eq!(c.read(dst), expect, "node {node} ({kind:?})");
    }
    c.sim
        .timeline_digest()
        .expect("digest was enabled before the run")
}

#[test]
fn allreduce_timeline_is_reproducible_run_to_run() {
    assert_eq!(
        allreduce_digest(QueueKind::Calendar),
        allreduce_digest(QueueKind::Calendar),
        "same seed, same queue: timeline must be bit-identical"
    );
}

#[test]
fn queue_swap_leaves_the_timeline_bit_identical() {
    // The tentpole contract: the tiered calendar queue is a drop-in
    // replacement for the global heap — every event fires at the same
    // (time, seq) with the same destination and payload type.
    assert_eq!(
        allreduce_digest(QueueKind::Heap),
        allreduce_digest(QueueKind::Calendar),
        "calendar scheduler changed the event timeline"
    );
}

/// A tie-heavy workload: all four ranks kick off the same back-to-back
/// sequence of three small collectives at the same host instant, so the
/// drivers, NICs and switch see bursts of same-timestamp events (concurrent
/// doorbells, simultaneous packet arrivals at the fan-in). This is exactly
/// the population where an event queue with an unstable tie-break rule, or
/// an unordered container feeding the scheduler, would scramble the
/// timeline.
fn tie_heavy_digest(kind: QueueKind) -> u64 {
    let n = 4;
    let count = 256u64;
    let rounds = 3usize;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    c.sim.set_queue_kind(kind);
    c.sim.enable_digest();
    let mut programs: Vec<Vec<HostOp>> = vec![Vec::new(); n];
    let mut dsts = Vec::new();
    for r in 0..rounds {
        for (node, program) in programs.iter_mut().enumerate() {
            let src = c.alloc(node, BufLoc::Host, count * 4);
            let dst = c.alloc(node, BufLoc::Host, count * 4);
            c.write(&src, &pattern(node + r, count));
            program.push(HostOp::Coll(
                CollSpec::new(CollOp::AllReduce, count, DType::I32)
                    .src(src)
                    .dst(dst),
            ));
            dsts.push((r, node, dst));
        }
    }
    c.run_host_programs(programs);
    for (r, node, dst) in &dsts {
        // Round r sums pattern(node + r) over nodes, i.e. the summed()
        // closed form shifted by 1000 * r per element contribution.
        let expect = i32s(
            &(0..count)
                .map(|i| {
                    (0..n)
                        .map(|node| ((node + r) as i32) * 1000 + (i as i32 % 17))
                        .sum::<i32>()
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(c.read(dst), expect, "round {r} node {node} ({kind:?})");
    }
    c.sim
        .timeline_digest()
        .expect("digest was enabled before the run")
}

#[test]
fn tie_heavy_timeline_is_reproducible_run_to_run() {
    assert_eq!(
        tie_heavy_digest(QueueKind::Calendar),
        tie_heavy_digest(QueueKind::Calendar),
        "tie-heavy 4-rank workload must replay bit-identically"
    );
}

#[test]
fn tie_heavy_timeline_is_queue_invariant() {
    assert_eq!(
        tie_heavy_digest(QueueKind::Heap),
        tie_heavy_digest(QueueKind::Calendar),
        "queue kinds disagree on a tie-heavy timeline"
    );
}

/// FNV-1a over all ranks' result buffers: the *data* digest, as opposed to
/// the event-timeline digest above.
#[cfg(feature = "race-detect")]
fn fnv(buffers: &[Vec<u8>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for buf in buffers {
        for &b in buf {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs the seeded 4-node allreduce with an optional permuted tie-order
/// rule and returns the digest of the read-back results.
#[cfg(feature = "race-detect")]
fn allreduce_result_digest(kind: QueueKind, salt: Option<u64>) -> u64 {
    let n = 4;
    let count = 4096u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    c.sim.set_queue_kind(kind);
    if let Some(s) = salt {
        // Applies to events scheduled from here on — i.e. the whole
        // collective, whose events are all posted during the run.
        c.sim.permute_tie_order(s);
    }
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for node in 0..n {
        let src = c.alloc(node, BufLoc::Host, count * 4);
        let dst = c.alloc(node, BufLoc::Host, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        dsts.push(dst);
    }
    c.host_collective(specs);
    let results: Vec<Vec<u8>> = dsts.iter().map(|d| c.read(d)).collect();
    let expect = summed(n, count);
    for (node, got) in results.iter().enumerate() {
        assert_eq!(got, &expect, "node {node} (salt {salt:?})");
    }
    fnv(&results)
}

/// The acceptance bar for the race detector on the real system: a seeded
/// 4-node allreduce must reproduce its golden *result* digest bit-for-bit
/// when same-timestamp events are deliberately executed in a permuted
/// order, on both queue kinds. (The event-*timeline* digest legitimately
/// differs under a different tie-break rule; what must not move is the
/// data.)
#[cfg(feature = "race-detect")]
#[test]
fn allreduce_result_survives_permuted_tie_order() {
    for kind in [QueueKind::Calendar, QueueKind::Heap] {
        let golden = allreduce_result_digest(kind, None);
        for salt in [1u64, 0x5eed, 0xdead_beef] {
            assert_eq!(
                allreduce_result_digest(kind, Some(salt)),
                golden,
                "allreduce data changed under permuted tie order \
                 ({kind:?}, salt {salt:#x}) — same-timestamp handlers do not commute"
            );
        }
    }
}
