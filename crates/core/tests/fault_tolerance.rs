//! Fail-stop fault-tolerance scenarios: node crashes, link outages and
//! frame loss driven through the public driver API, checking that every
//! failure surfaces as a typed [`CclError`] in bounded simulated time (no
//! hangs), that transport- and driver-level recovery actually recover, and
//! that fault outcomes are bit-for-bit deterministic.

#![allow(clippy::needless_range_loop)] // rank loops index parallel spec/buffer arrays

use accl_cclo::{CollOp, DType};
use accl_core::host::HostOp;
use accl_core::{
    AcclCluster, AlgoConfig, BufLoc, CclError, ClusterConfig, CollSpec, HostDriver, Platform,
    RetryPolicy, Transport,
};
use accl_sim::prelude::{Dur, QueueKind, RunOutcome, Time};

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn pattern(rank: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count as i32)
            .map(|i| i * 3 + rank as i32 * 97)
            .collect::<Vec<_>>(),
    )
}

fn summed(ranks: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count as i32)
            .map(|i| (0..ranks as i32).map(|r| i * 3 + r * 97).sum())
            .collect::<Vec<_>>(),
    )
}

/// Coyote's fast invocation path with a connection-oriented transport and
/// the engine watchdog armed — the standard fault-test configuration.
fn coyote_tcp(nodes: usize, timeout_us: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::coyote_rdma(nodes);
    cfg.transport = Transport::Tcp;
    cfg.cclo.collective_timeout_us = Some(timeout_us);
    cfg
}

fn coyote_udp(nodes: usize, timeout_us: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::coyote_rdma(nodes);
    cfg.transport = Transport::Udp;
    cfg.cclo.collective_timeout_us = Some(timeout_us);
    cfg
}

/// Allocates per-rank src/dst, writes `pattern`, returns allreduce specs
/// (on `comm`) plus the dst handles.
fn allreduce_setup(
    c: &mut AcclCluster,
    members: &[usize],
    count: u64,
    comm: u32,
) -> (Vec<CollSpec>, Vec<accl_core::BufferHandle>) {
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for &node in members {
        let src = c.alloc(node, BufLoc::Device, count * 4);
        let dst = c.alloc(node, BufLoc::Device, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst)
                .comm(comm),
        );
        dsts.push(dst);
    }
    (specs, dsts)
}

/// Calls against a communicator this node is not part of come back as a
/// typed error instead of panicking the driver.
#[test]
fn invalid_communicator_is_a_typed_error() {
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(2));
    let specs = vec![CollSpec::new(CollOp::Nop, 0, DType::U8).comm(9); 2];
    let records = c.host_collective(specs);
    for (rank, rec) in records.iter().enumerate() {
        assert_eq!(
            rec.result(),
            Err(CclError::InvalidCommunicator(9)),
            "rank {rank}"
        );
    }
    for i in 0..2 {
        assert_eq!(c.node_stats(i).driver_calls_failed, 1);
    }
}

/// A node crashing mid-allreduce never hangs the survivors: the engine
/// watchdog aborts the collective, the TCP retransmission ladder diagnoses
/// the dead sessions, and every surviving rank's call returns
/// `Err(PeerFailed(dead))` in bounded simulated time.
#[test]
fn node_crash_mid_allreduce_fails_every_survivor() {
    let dead = 2usize;
    let mut c = AcclCluster::build(coyote_tcp(3, 30_000));
    // Force the ring composition: every rank sends toward a neighbour, so
    // the crash is visible to a survivor's transport (in the small-message
    // reduce+bcast composition the dead leaf receives nothing until the
    // final broadcast, which never starts).
    c.set_algo_config(AlgoConfig {
        allreduce_ring_min_bytes: 1,
        ..AlgoConfig::default()
    });
    c.crash_node(dead, Time::from_us(1));
    let (specs, _) = allreduce_setup(&mut c, &[0, 1, 2], 2048, 0);
    let start = c.sim.now();
    let records = c.host_collective(specs);
    for rank in [0usize, 1] {
        assert_eq!(
            records[rank].result(),
            Err(CclError::PeerFailed(dead as u32)),
            "surviving rank {rank}"
        );
        // Bounded detection: TCP gives up after its backoff ladder
        // (~23 ms), the 30 ms watchdog aborts shortly after — nowhere
        // near an unbounded hang.
        assert!(
            records[rank].finished.since(start) < Dur::from_ms(60),
            "rank {rank} took {:?}",
            records[rank].finished.since(start)
        );
        assert_eq!(c.node_stats(rank).collectives_aborted, 1);
    }
    // Exactly one survivor is the dead rank's ring neighbour and diagnosed
    // it locally; the other's verdict came from gossip — but never from
    // the dead node's own (equally broken) session table.
    let direct: Vec<usize> = (0..2)
        .filter(|&r| c.failed_peers(r) == vec![dead as u32])
        .collect();
    assert_eq!(direct.len(), 1, "one ring neighbour, got {direct:?}");
    let indirect = 1 - direct[0];
    assert!(c.failed_peers(indirect).is_empty());
}

/// The ULFM-style recovery workflow: after the crash is observed, shrink
/// the world communicator past the dead node, install the survivor group
/// and reissue the collective — it completes correctly.
#[test]
fn shrink_and_reissue_after_crash() {
    let dead = 2usize;
    let count = 1024u64;
    let mut c = AcclCluster::build(coyote_tcp(3, 30_000));
    c.set_algo_config(AlgoConfig {
        allreduce_ring_min_bytes: 1,
        ..AlgoConfig::default()
    });
    c.crash_node(dead, Time::from_us(1));
    let (specs, _) = allreduce_setup(&mut c, &[0, 1, 2], count, 0);
    let records = c.host_collective(specs);

    // Collect the failure verdicts the way an application would.
    let mut failed: Vec<usize> = records
        .iter()
        .filter_map(|r| match r.result() {
            Err(CclError::PeerFailed(p)) => Some(p as usize),
            _ => None,
        })
        .collect();
    failed.sort_unstable();
    failed.dedup();
    // The dead node's own verdict accuses a survivor (from its side the
    // rest of the world is unreachable); survivors' verdicts name rank 2.
    assert!(failed.contains(&dead));

    let world = c.communicator(0).unwrap().clone();
    let survivors = world.shrink(1, &[dead]).expect("survivors remain");
    assert_eq!(survivors.members(), &[0, 1]);
    c.install_communicator(&survivors);

    let (mut specs, dsts) = allreduce_setup(&mut c, &[0, 1], count, 1);
    let mut programs: Vec<Vec<HostOp>> = vec![Vec::new(); 3];
    programs[0] = vec![HostOp::Coll(specs.remove(0))];
    programs[1] = vec![HostOp::Coll(specs.remove(0))];
    let results = c.run_host_programs(programs);
    for rank in [0usize, 1] {
        assert_eq!(results[rank][0].result(), Ok(()), "rank {rank} reissue");
        assert_eq!(c.read(&dsts[rank]), summed(2, count), "rank {rank} data");
    }
}

/// A transient link outage during a TCP collective is absorbed by the
/// transport's retransmission machinery: no error surfaces and the result
/// matches the fault-free golden value.
#[test]
fn tcp_link_flap_recovers_transparently() {
    let count = 2048u64;
    let mut c = AcclCluster::build(coyote_tcp(2, 100_000));
    // 2 ms outage starting while the collective's data is in flight; the
    // RTO ladder (100 µs initial, doubling) retries into the healthy
    // window well before the 8-retransmit abort limit.
    c.link_down(1, Time::from_us(10), Time::from_ms(2));
    let (specs, dsts) = allreduce_setup(&mut c, &[0, 1], count, 0);
    let records = c.host_collective(specs);
    for rank in 0..2 {
        assert_eq!(records[rank].result(), Ok(()), "rank {rank}");
        assert_eq!(c.read(&dsts[rank]), summed(2, count), "rank {rank} data");
    }
    assert!(
        c.network().frames_dropped(&c.sim) > 0,
        "the outage must actually have eaten frames"
    );
    // Transport-level recovery: the drivers never needed to retry.
    for rank in 0..2 {
        let d = c.sim.component::<HostDriver>(c.node(rank).driver);
        assert_eq!(d.retries_attempted(), 0);
    }
}

/// Eager traffic over lossy UDP has no transport recovery: the engine
/// watchdog times the collective out on every rank and the driver's retry
/// policy re-runs it once the fabric heals — ending in success, not error.
#[test]
fn udp_loss_recovered_by_driver_retry() {
    let count = 1024u64;
    let mut c = AcclCluster::build(coyote_udp(3, 500));
    c.set_retry_policy(RetryPolicy::retries(2));
    // Rank 0's link is dark for the first 80 µs — the whole first attempt
    // of the ring allreduce loses chunks and every rank stalls.
    c.link_down(0, Time::ZERO, Time::from_us(80));
    let (specs, dsts) = allreduce_setup(&mut c, &[0, 1, 2], count, 0);
    let records = c.host_collective(specs);
    for rank in 0..3 {
        assert_eq!(records[rank].result(), Ok(()), "rank {rank}");
        assert_eq!(c.read(&dsts[rank]), summed(3, count), "rank {rank} data");
        let d = c.sim.component::<HostDriver>(c.node(rank).driver);
        assert!(
            d.retries_attempted() >= 1,
            "rank {rank} must have retried, got {}",
            d.retries_attempted()
        );
        assert_eq!(c.node_stats(rank).collectives_aborted, 1, "rank {rank}");
    }
    assert!(c.network().frames_dropped(&c.sim) > 0);
}

/// An eager broadcast whose only data frame is badly delayed: the
/// receiver's first attempt times out and is aborted, the retry re-posts
/// the receive, and the late frame (buffered by the RBM) completes it.
#[test]
fn udp_delayed_bcast_recovered_by_retry() {
    let count = 16u64; // one frame of payload
    let mut c = AcclCluster::build(coyote_udp(2, 100));
    c.set_retry_policy(RetryPolicy::retries(2));
    c.set_fault_plan(accl_net::FaultPlan::delay_frames([0], Dur::from_us(200)));
    let root_data = pattern(7, count);
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for rank in 0..2 {
        let dst = c.alloc(rank, BufLoc::Device, count * 4);
        if rank == 0 {
            c.write(&dst, &root_data);
        }
        specs.push(CollSpec::new(CollOp::Bcast, count, DType::I32).dst(dst));
        dsts.push(dst);
    }
    let records = c.host_collective(specs);
    // The root's one-sided eager send completed on the first attempt; the
    // receiver needed the watchdog + one driver retry.
    assert_eq!(records[0].result(), Ok(()));
    assert_eq!(records[1].result(), Ok(()));
    assert_eq!(c.read(&dsts[1]), root_data);
    let d1 = c.sim.component::<HostDriver>(c.node(1).driver);
    assert_eq!(d1.retries_attempted(), 1);
    assert_eq!(c.node_stats(1).collectives_aborted, 1);
}

/// A call that exhausts its retry budget comes back `Aborted` (the
/// attempts happened) rather than `Timeout` (single attempt), and the
/// rank keeps serving later calls.
#[test]
fn retry_budget_exhaustion_reports_aborted() {
    let count = 256u64;
    let mut c = AcclCluster::build(coyote_udp(2, 100));
    c.set_retry_policy(RetryPolicy::retries(2));
    // The peer is dark forever: no attempt can ever succeed.
    c.crash_node(1, Time::ZERO);
    let (specs, _) = allreduce_setup(&mut c, &[0, 1], count, 0);
    let records = c.host_collective(specs);
    for rank in 0..2 {
        // UDP has no session state, so no PeerFailed verdict exists —
        // the retry ladder runs dry and reports Aborted.
        assert_eq!(
            records[rank].result(),
            Err(CclError::Aborted),
            "rank {rank}"
        );
        let d = c.sim.component::<HostDriver>(c.node(rank).driver);
        assert_eq!(d.retries_attempted(), 2, "rank {rank}");
        assert_eq!(c.node_stats(rank).collectives_aborted, 3, "rank {rank}");
    }
}

/// Same seed + same fault schedule → identical timelines, including the
/// error completions (the determinism property extended to faulty runs).
#[test]
fn fault_outcomes_are_deterministic() {
    let run = |seed: u64| -> String {
        let mut cfg = coyote_tcp(3, 30_000);
        cfg.seed = seed;
        let mut c = AcclCluster::build(cfg);
        c.set_algo_config(AlgoConfig {
            allreduce_ring_min_bytes: 1,
            ..AlgoConfig::default()
        });
        c.crash_node(2, Time::from_us(1));
        let (specs, _) = allreduce_setup(&mut c, &[0, 1, 2], 2048, 0);
        let records = c.host_collective(specs);
        let stats: Vec<_> = (0..3).map(|i| c.node_stats(i)).collect();
        format!(
            "events={} records={records:?} stats={stats:?}",
            c.sim.events_executed()
        )
    };
    assert_eq!(run(11), run(11));
    // The signature is rich enough to distinguish runs at all.
    assert!(run(11).contains("PeerFailed"));
}

/// Transient-fault graceful degradation: a link outage long enough to
/// exhaust the RDMA go-back-N ladder puts both sides' queue pairs in the
/// error state, the Tx systems retarget to the standby TCP POE, the uCs
/// downgrade their protocol selection, and the drivers' retries complete
/// the collective over TCP — bit-exactly, with no fail-stop verdict
/// against a peer that was merely unlucky.
#[test]
fn rdma_qp_errors_fail_over_to_tcp() {
    let count = 256u64;
    let mut cfg = ClusterConfig::coyote_rdma(2);
    cfg.tcp_fallback = true;
    // Aggressive ladder so the 300 µs outage is fatal to the QPs: three
    // go-back-N rounds of 20/40/80 µs reach the error state at ~140 µs.
    cfg.rdma.rto_us = 20;
    cfg.rdma.max_retransmits = 2;
    cfg.cclo.collective_timeout_us = Some(500);
    let mut c = AcclCluster::build(cfg);
    // Force the ring composition so both ranks transmit during the outage
    // and both queue pairs reach the error state.
    c.set_algo_config(AlgoConfig {
        allreduce_ring_min_bytes: 1,
        ..AlgoConfig::default()
    });
    c.set_retry_policy(RetryPolicy::retries(4));
    c.link_down(1, Time::ZERO, Time::from_us(300));
    let (specs, dsts) = allreduce_setup(&mut c, &[0, 1], count, 0);
    let records = c.host_collective(specs);
    for rank in 0..2 {
        assert_eq!(records[rank].result(), Ok(()), "rank {rank}");
        assert_eq!(c.read(&dsts[rank]), summed(2, count), "rank {rank} data");
    }
    for rank in 0..2 {
        let tx = c
            .sim
            .component::<accl_cclo::txsys::TxSys>(c.node(rank).cclo.txsys);
        assert_eq!(tx.failovers(), 1, "rank {rank} engaged the standby POE");
        let uc = c.sim.component::<accl_cclo::uc::Uc>(c.node(rank).cclo.uc);
        assert_eq!(uc.failovers_observed(), 1, "rank {rank} uC downgrade");
        let d = c.sim.component::<HostDriver>(c.node(rank).driver);
        assert!(d.retries_attempted() >= 1, "rank {rank} must have retried");
        // A transient fault is not a fail-stop failure: with the standby
        // path healthy, nobody is declared dead.
        assert!(c.failed_peers(rank).is_empty(), "rank {rank} verdict");
    }
}

/// In-flight corruption on the reliable transports is caught by the FCS
/// check, counted, and repaired by retransmission (TCP) or go-back-N
/// (RDMA): collective results stay bit-exact and the whole timeline is
/// identical under either event-queue implementation.
#[test]
fn corrupted_frames_repaired_bit_exactly_on_tcp_and_rdma() {
    let count = 8192u64;
    let run = |transport: Transport, kind: QueueKind| -> (Vec<Vec<u8>>, u64, u64) {
        let mut cfg = ClusterConfig::coyote_rdma(2);
        cfg.transport = transport;
        cfg.cclo.collective_timeout_us = Some(100_000);
        let mut c = AcclCluster::build(cfg);
        c.sim.set_queue_kind(kind);
        // Explicit indices: the injection is part of the test's contract,
        // not a probabilistic draw that may come up empty at some seed.
        c.set_fault_plan(accl_net::FaultPlan::corrupt_frames([2, 5, 9, 13]));
        let (specs, dsts) = allreduce_setup(&mut c, &[0, 1], count, 0);
        let records = c.host_collective(specs);
        for rank in 0..2 {
            assert_eq!(records[rank].result(), Ok(()), "{transport:?} rank {rank}");
        }
        let data = dsts.iter().map(|d| c.read(d)).collect();
        let drops = (0..2).map(|i| c.corrupted_drops(i)).sum();
        (data, drops, c.sim.events_executed())
    };
    for transport in [Transport::Tcp, Transport::Rdma] {
        let (data, drops, events) = run(transport, QueueKind::Heap);
        for rank in 0..2 {
            assert_eq!(
                data[rank],
                summed(2, count),
                "{transport:?} rank {rank} data"
            );
        }
        assert!(
            drops > 0,
            "{transport:?}: corruption must have been injected"
        );
        let (data_cal, drops_cal, events_cal) = run(transport, QueueKind::Calendar);
        assert_eq!(data, data_cal, "{transport:?} queue-kind data divergence");
        assert_eq!(drops, drops_cal, "{transport:?} queue-kind drop divergence");
        assert_eq!(
            events, events_cal,
            "{transport:?} queue-kind event divergence"
        );
    }
}

/// Corruption on connectionless UDP cannot be repaired; the failed call
/// comes back [`CclError::DataCorrupted`] — distinguishing integrity loss
/// from a liveness timeout — backed by the engine's typed drop counters.
#[test]
fn udp_corruption_surfaces_as_data_corrupted() {
    let count = 4096u64;
    let mut c = AcclCluster::build(coyote_udp(2, 300));
    c.set_fault_plan(accl_net::FaultPlan::corrupt_frames(0..64));
    let (specs, _) = allreduce_setup(&mut c, &[0, 1], count, 0);
    let records = c.host_collective(specs);
    assert!(
        records
            .iter()
            .any(|r| r.result() == Err(CclError::DataCorrupted)),
        "a rank must report DataCorrupted, got {records:?}"
    );
    assert!((0..2).map(|i| c.corrupted_drops(i)).sum::<u64>() > 0);
}

/// The ULFM recovery workflow still converges when the surviving links
/// keep dropping 1–5% of all frames: the crash is diagnosed, the shrunken
/// communicator's reissued collective completes bit-exactly (TCP absorbs
/// the sustained loss), and the whole timeline is queue-kind-invariant.
#[test]
fn shrink_and_reissue_converges_under_sustained_loss() {
    let dead = 2usize;
    let count = 512u64;
    let run = |loss: f64, kind: QueueKind| -> String {
        let mut c = AcclCluster::build(coyote_tcp(3, 30_000));
        c.sim.set_queue_kind(kind);
        c.set_algo_config(AlgoConfig {
            allreduce_ring_min_bytes: 1,
            ..AlgoConfig::default()
        });
        c.set_fault_plan(accl_net::FaultPlan::random_loss(loss));
        c.crash_node(dead, Time::from_us(1));
        let (specs, _) = allreduce_setup(&mut c, &[0, 1, 2], count, 0);
        let records = c.host_collective(specs);
        let failed: Vec<usize> = records
            .iter()
            .filter_map(|r| match r.result() {
                Err(CclError::PeerFailed(p)) => Some(p as usize),
                _ => None,
            })
            .collect();
        assert!(failed.contains(&dead), "loss {loss}: dead rank undiagnosed");

        let survivors = c
            .communicator(0)
            .unwrap()
            .shrink(1, &[dead])
            .expect("survivors remain");
        c.install_communicator(&survivors);
        let (mut specs, dsts) = allreduce_setup(&mut c, &[0, 1], count, 1);
        let mut programs: Vec<Vec<HostOp>> = vec![Vec::new(); 3];
        programs[0] = vec![HostOp::Coll(specs.remove(0))];
        programs[1] = vec![HostOp::Coll(specs.remove(0))];
        let results = c.run_host_programs(programs);
        for rank in [0usize, 1] {
            assert_eq!(results[rank][0].result(), Ok(()), "loss {loss} rank {rank}");
            assert_eq!(c.read(&dsts[rank]), summed(2, count), "loss {loss} data");
        }
        assert!(c.network().frames_dropped(&c.sim) > 0);
        format!("events={} records={records:?}", c.sim.events_executed())
    };
    for loss in [0.01, 0.05] {
        assert_eq!(
            run(loss, QueueKind::Heap),
            run(loss, QueueKind::Calendar),
            "loss {loss}: timeline must be queue-kind-invariant"
        );
    }
}

/// With the engine watchdog disabled, a crash leaves the survivors parked
/// forever — and the simulator's stall watchdog names the parked
/// operation instead of hanging silently.
#[test]
fn disabled_watchdog_crash_yields_stall_report() {
    use accl_core::host::{ports as host_ports, HostProc};
    use accl_sim::prelude::Endpoint;

    let mut cfg = ClusterConfig::coyote_rdma(2);
    cfg.transport = Transport::Udp;
    assert_eq!(cfg.cclo.collective_timeout_us, None, "watchdog off");
    assert_eq!(cfg.platform, Platform::Coyote);
    let mut c = AcclCluster::build(cfg);
    c.crash_node(1, Time::ZERO);
    let (specs, _) = allreduce_setup(&mut c, &[0, 1], 256, 0);
    let start = c.sim.now();
    for (i, spec) in specs.into_iter().enumerate() {
        let driver = Endpoint::new(c.node(i).driver, accl_core::driver::ports::CALL);
        let id = c.sim.add(
            format!("n{i}.hostproc"),
            HostProc::new(driver, vec![HostOp::Coll(spec)]),
        );
        c.sim.post(Endpoint::new(id, host_ports::START), start, ());
    }
    let outcome = c.sim.run();
    let RunOutcome::Stalled(first) = outcome else {
        panic!("expected a stall, got {outcome:?}");
    };
    // Every stuck component is named; the uCs are parked on the
    // collective's WaitAll with the rank attached.
    let reports = c.sim.stall_reports();
    let uc = reports
        .iter()
        .find(|r| r.component.contains(".uc"))
        .expect("a uC must be reported parked");
    assert!(uc.op.contains("WaitAll"), "op was {:?}", uc.op);
    assert!(uc.rank.is_some());
    assert!(
        format!("{first}").contains("parked on"),
        "report must render: {first}"
    );
}
