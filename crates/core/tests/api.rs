//! Public-API integration tests: host and kernel applications on fully
//! wired clusters across platforms and transports.

#![allow(clippy::needless_range_loop)] // rank loops index parallel arrays

use bytes::Bytes;

use accl_core::driver::CollSpec;
use accl_core::host::{HostOp, Program};
use accl_core::kernel::KernelOp;
use accl_core::{AcclCluster, BufLoc, ClusterConfig, CollOp, DType, SyncProto};
use accl_sim::time::Dur;

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn pattern(node: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| (node as i32 + 1) * 100 + i as i32)
            .collect::<Vec<_>>(),
    )
}

fn summed(n: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| (0..n as i32).map(|nd| (nd + 1) * 100 + i as i32).sum())
            .collect::<Vec<_>>(),
    )
}

#[test]
fn coyote_rdma_h2h_allreduce() {
    let n = 4;
    let count = 4096u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for node in 0..n {
        // H2H: both buffers in *host* memory; unified addressing lets the
        // CCLO reach them without staging.
        let src = c.alloc(node, BufLoc::Host, count * 4);
        let dst = c.alloc(node, BufLoc::Host, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        dsts.push(dst);
    }
    let records = c.host_collective(specs);
    let expect = summed(n, count);
    for node in 0..n {
        assert_eq!(c.read(&dsts[node]), expect, "node {node}");
        let b = records[node].breakdown.unwrap();
        // Unified memory: no staging.
        assert_eq!(b.stage_in, Dur::ZERO);
        assert_eq!(b.stage_out, Dur::ZERO);
        assert!(b.invoke.as_us_f64() >= 2.9, "coyote invocation ~3us");
    }
}

#[test]
fn xrt_tcp_h2h_stages_through_xdma() {
    let n = 2;
    let count = 16384u64;
    let mut c = AcclCluster::build(ClusterConfig::xrt_tcp(n));
    let src = c.alloc(0, BufLoc::Host, count * 4);
    let dst = c.alloc(1, BufLoc::Host, count * 4);
    let payload = pattern(0, count);
    c.write(&src, &payload);
    let specs = vec![
        CollSpec::new(CollOp::Send, count, DType::I32)
            .root(1)
            .src(src),
        CollSpec::new(CollOp::Recv, count, DType::I32)
            .root(0)
            .dst(dst),
    ];
    let records = c.host_collective(specs);
    assert_eq!(c.read(&dst), payload);
    // Sender staged its input; receiver staged its output.
    let b0 = records[0].breakdown.unwrap();
    let b1 = records[1].breakdown.unwrap();
    assert!(
        b0.stage_in.as_us_f64() > 30.0,
        "sender staging {:?}",
        b0.stage_in
    );
    assert_eq!(b0.stage_out, Dur::ZERO);
    assert!(
        b1.stage_out.as_us_f64() > 30.0,
        "receiver staging {:?}",
        b1.stage_out
    );
    assert!(b1.invoke.as_us_f64() > 100.0, "XRT invocation is slow");
}

#[test]
fn xrt_device_buffers_skip_staging() {
    let n = 2;
    let count = 1024u64;
    let mut c = AcclCluster::build(ClusterConfig::xrt_tcp(n));
    let src = c.alloc(0, BufLoc::Device, count * 4);
    let dst = c.alloc(1, BufLoc::Device, count * 4);
    let payload = pattern(3, count);
    c.write(&src, &payload);
    let records = c.host_collective(vec![
        CollSpec::new(CollOp::Send, count, DType::I32)
            .root(1)
            .src(src),
        CollSpec::new(CollOp::Recv, count, DType::I32)
            .root(0)
            .dst(dst),
    ]);
    assert_eq!(c.read(&dst), payload);
    for r in &records {
        let b = r.breakdown.unwrap();
        assert_eq!(b.stage_in, Dur::ZERO);
        assert_eq!(b.stage_out, Dur::ZERO);
    }
}

#[test]
fn coyote_f2f_equals_h2h_closely() {
    // The paper's Fig. 7/10/11 observation: with unified memory the
    // difference between host- and device-resident data is minimal.
    let n = 2;
    let count = (1u64 << 20) / 4;
    let run = |loc: BufLoc| -> f64 {
        let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
        let src = c.alloc(0, loc, count * 4);
        let dst = c.alloc(1, loc, count * 4);
        c.write(&src, &pattern(0, count));
        let records = c.host_collective(vec![
            CollSpec::new(CollOp::Send, count, DType::I32)
                .root(1)
                .src(src),
            CollSpec::new(CollOp::Recv, count, DType::I32)
                .root(0)
                .dst(dst),
        ]);
        records[1].breakdown.unwrap().collective.as_us_f64()
    };
    let h2h = run(BufLoc::Host);
    let f2f = run(BufLoc::Device);
    assert!(
        (h2h - f2f).abs() / f2f < 0.35,
        "h2h={h2h}us f2f={f2f}us should be close on Coyote"
    );
}

#[test]
fn xrt_h2h_much_slower_than_f2f() {
    // Partitioned memory: staging + slow invocation dominate (Fig. 13).
    let n = 2;
    let count = (1u64 << 20) / 4;
    let run = |loc: BufLoc| -> f64 {
        let mut c = AcclCluster::build(ClusterConfig::xrt_tcp(n));
        let src = c.alloc(0, loc, count * 4);
        let dst = c.alloc(1, loc, count * 4);
        c.write(&src, &pattern(0, count));
        let records = c.host_collective(vec![
            CollSpec::new(CollOp::Send, count, DType::I32)
                .root(1)
                .src(src),
            CollSpec::new(CollOp::Recv, count, DType::I32)
                .root(0)
                .dst(dst),
        ]);
        records[1].breakdown.unwrap().total.as_us_f64()
    };
    let h2h = run(BufLoc::Host);
    let f2f = run(BufLoc::Device);
    assert!(h2h > f2f * 1.5, "h2h={h2h}us f2f={f2f}us");
}

#[test]
fn udp_transport_works_for_small_collectives() {
    let n = 4;
    let count = 512u64;
    let mut c = AcclCluster::build(ClusterConfig::xrt_udp(n));
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for node in 0..n {
        let dst = c.alloc(node, BufLoc::Device, count * 4);
        if node == 0 {
            c.write(&dst, &pattern(7, count));
        }
        specs.push(CollSpec::new(CollOp::Bcast, count, DType::I32).dst(dst));
        dsts.push(dst);
    }
    c.host_collective(specs);
    for node in 0..n {
        assert_eq!(c.read(&dsts[node]), pattern(7, count), "node {node}");
    }
}

#[test]
fn program_builder_runs_compute_and_collectives() {
    let n = 2;
    let count = 256u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    let src = c.alloc(0, BufLoc::Device, count * 4);
    let dst = c.alloc(1, BufLoc::Device, count * 4);
    c.write(&src, &pattern(0, count));
    let p0 = Program::new()
        .compute(Dur::from_us(50))
        .coll(
            CollSpec::new(CollOp::Send, count, DType::I32)
                .root(1)
                .src(src),
        )
        .build();
    let p1 = Program::new()
        .coll(
            CollSpec::new(CollOp::Recv, count, DType::I32)
                .root(0)
                .dst(dst),
        )
        .build();
    let records = c.run_host_programs(vec![p0, p1]);
    // Node 0: compute then send; the recv on node 1 cannot finish before
    // node 0's compute.
    assert_eq!(records[0].len(), 2);
    assert!(records[0][0].finished.as_us_f64() >= 50.0);
    assert!(records[1][0].finished >= records[0][0].finished);
    assert_eq!(c.read(&dst), pattern(0, count));
}

#[test]
fn kernel_streaming_pipeline_f2f() {
    // Rank 0 kernel generates data and streams a send; rank 1 kernel
    // receives into its stream — no memory buffers anywhere.
    let n = 2;
    let count = 4096u64;
    let payload = pattern(1, count);
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    let k0 = vec![
        KernelOp::Issue(CollSpec::new(CollOp::Send, count, DType::I32).root(1)),
        KernelOp::Push(Bytes::from(payload.clone())),
        KernelOp::Finalize,
    ];
    let k1 = vec![
        KernelOp::Issue(CollSpec::new(CollOp::Recv, count, DType::I32).root(0)),
        KernelOp::Expect(count * 4),
        KernelOp::Finalize,
    ];
    let kernels = c.run_kernel_programs(vec![k0, k1]);
    assert_eq!(c.kernel(kernels[1]).received(), &payload[..]);
    // Kernel-issued F2F transfer completes in tens of microseconds.
    let t = c.kernel(kernels[1]).finished_at().unwrap();
    assert!(t.as_us_f64() < 100.0, "kernel F2F took {t}");
}

#[test]
fn f2f_latency_beats_h2h_invocation_overhead() {
    // Fig. 8's point: kernels invoke the CCLO directly, skipping the
    // host's PCIe round trips.
    let count = 256u64;
    let payload = pattern(0, count);
    // F2F streaming.
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(2));
    let k0 = vec![
        KernelOp::Issue(CollSpec::new(CollOp::Send, count, DType::I32).root(1)),
        KernelOp::Push(Bytes::from(payload.clone())),
        KernelOp::Finalize,
    ];
    let k1 = vec![
        KernelOp::Issue(CollSpec::new(CollOp::Recv, count, DType::I32).root(0)),
        KernelOp::Expect(count * 4),
        KernelOp::Finalize,
    ];
    let kernels = c.run_kernel_programs(vec![k0, k1]);
    let f2f = c.kernel(kernels[1]).finished_at().unwrap().as_us_f64();
    // H2H through the driver.
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(2));
    let src = c.alloc(0, BufLoc::Host, count * 4);
    let dst = c.alloc(1, BufLoc::Host, count * 4);
    c.write(&src, &pattern(0, count));
    let records = c.host_collective(vec![
        CollSpec::new(CollOp::Send, count, DType::I32)
            .root(1)
            .src(src),
        CollSpec::new(CollOp::Recv, count, DType::I32)
            .root(0)
            .dst(dst),
    ]);
    let h2h = records[1].breakdown.unwrap().total.as_us_f64();
    assert!(f2f < h2h, "f2f={f2f}us h2h={h2h}us");
}

#[test]
fn sequential_phases_reuse_the_cluster() {
    let n = 2;
    let count = 128u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    let src = c.alloc(0, BufLoc::Device, count * 4);
    let dst = c.alloc(1, BufLoc::Device, count * 4);
    for round in 0..3 {
        let payload = pattern(round, count);
        c.write(&src, &payload);
        c.host_collective(vec![
            CollSpec::new(CollOp::Send, count, DType::I32)
                .root(1)
                .src(src),
            CollSpec::new(CollOp::Recv, count, DType::I32)
                .root(0)
                .dst(dst),
        ]);
        assert_eq!(c.read(&dst), payload, "round {round}");
    }
}

#[test]
fn rendezvous_auto_threshold_switches() {
    // Large messages pick rendezvous automatically on RDMA; behaviour is
    // visible through the engine's Rx buffer pool staying untouched.
    let count = (1u64 << 20) / 4; // 1 MiB > 16 KiB eager threshold
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(2));
    let src = c.alloc(0, BufLoc::Device, count * 4);
    let dst = c.alloc(1, BufLoc::Device, count * 4);
    let payload = pattern(0, count);
    c.write(&src, &payload);
    c.host_collective(vec![
        CollSpec::new(CollOp::Send, count, DType::I32)
            .root(1)
            .src(src),
        CollSpec::new(CollOp::Recv, count, DType::I32)
            .root(0)
            .dst(dst),
    ]);
    assert_eq!(c.read(&dst), payload);
    let rbm = c.sim.component::<accl_cclo::rbm::Rbm>(c.node(1).cclo.rbm);
    assert_eq!(rbm.free_buffers(), c.config().cclo.rx_buf_count);
    assert_eq!(rbm.unmatched_messages(), 0);
}

#[test]
fn explicit_sync_flags_are_honored() {
    let count = 1024u64;
    for sync in [SyncProto::Eager, SyncProto::Rendezvous] {
        let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(2));
        let src = c.alloc(0, BufLoc::Device, count * 4);
        let dst = c.alloc(1, BufLoc::Device, count * 4);
        let payload = pattern(0, count);
        c.write(&src, &payload);
        c.host_collective(vec![
            CollSpec::new(CollOp::Send, count, DType::I32)
                .root(1)
                .src(src)
                .sync(sync),
            CollSpec::new(CollOp::Recv, count, DType::I32)
                .root(0)
                .dst(dst)
                .sync(sync),
        ]);
        assert_eq!(c.read(&dst), payload, "{sync:?}");
    }
}

#[test]
fn ten_node_cluster_allreduce() {
    // The paper's cluster size.
    let n = 10;
    let count = 2048u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for node in 0..n {
        let src = c.alloc(node, BufLoc::Device, count * 4);
        let dst = c.alloc(node, BufLoc::Device, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        dsts.push(dst);
    }
    c.host_collective(specs);
    let expect = summed(n, count);
    for node in 0..n {
        assert_eq!(c.read(&dsts[node]), expect, "node {node}");
    }
}

#[test]
fn mixed_program_with_barrier() {
    let n = 3;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    let programs: Vec<Vec<HostOp>> = (0..n)
        .map(|node| {
            Program::new()
                .compute(Dur::from_us(10 * (node as u64 + 1)))
                .coll(CollSpec::new(CollOp::Barrier, 0, DType::U8))
                .build()
        })
        .collect();
    let records = c.run_host_programs(programs);
    // All ranks leave the barrier only after the slowest compute (30us).
    for r in &records {
        assert!(r[1].finished.as_us_f64() >= 30.0);
    }
}

#[test]
fn node_stats_reflect_engine_activity() {
    let n = 3;
    let count = 512u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n));
    let before = c.node_stats(0);
    assert_eq!(before.collectives_completed, 0);
    assert_eq!(before.dmp_instructions, 0);
    let mut specs = Vec::new();
    for node in 0..n {
        let src = c.alloc(node, BufLoc::Device, count * 4);
        let dst = c.alloc(node, BufLoc::Device, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst),
        );
    }
    c.host_collective(specs);
    let after = c.node_stats(0);
    assert_eq!(after.collectives_completed, 1);
    assert_eq!(after.driver_calls_completed, 1);
    assert!(after.dmp_instructions > 0);
    assert!(after.tx_jobs > 0);
    assert!(after.rx_messages > 0);
    assert_eq!(after.rx_buffers_free, c.config().cclo.rx_buf_count);
}
