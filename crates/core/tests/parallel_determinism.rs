//! Parallel-simulation determinism: the conservative multi-worker engine
//! must be observationally equivalent to the sequential event loop.
//!
//! The contract (see `crates/sim/src/shard.rs` and DESIGN.md): cross-shard
//! events merge in an order that is a pure function of
//! `(time, local seq, source partition)` — never of thread scheduling — so
//! a parallel run at *any* worker count reproduces the sequential run's
//! results, event counts, component state digests and (canonicalized)
//! traces bit for bit. These tests pin that promise on the real stack: a
//! seeded multi-node allreduce, a bounded cluster under an injected
//! overload fault mix, and — with the race detector — a deliberately
//! permuted same-timestamp delivery order.

use accl_core::driver::CollSpec;
use accl_core::{AcclCluster, BufLoc, ClusterConfig, CollOp, DType};
use accl_net::{FaultPlan, NodeAddr};
use accl_sim::prelude::*;

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn pattern(node: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| (node as i32) * 1000 + (i as i32 % 17))
            .collect::<Vec<_>>(),
    )
}

fn summed(n: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| {
                (0..n as i32)
                    .map(|node| node * 1000 + (i as i32 % 17))
                    .sum::<i32>()
            })
            .collect::<Vec<_>>(),
    )
}

/// Everything a run exposes that must not depend on the worker count.
#[derive(Debug, PartialEq)]
struct Observables {
    results: Vec<Vec<u8>>,
    events_executed: u64,
    final_time: Time,
    state_digests: Vec<(ComponentId, u64)>,
}

/// Runs a seeded `n`-node RDMA allreduce on `workers` simulator threads
/// and returns every worker-count-invariant observable.
fn allreduce_observables(n: usize, workers: usize) -> Observables {
    let count = 2048u64;
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n).with_workers(workers));
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for node in 0..n {
        let src = c.alloc(node, BufLoc::Host, count * 4);
        let dst = c.alloc(node, BufLoc::Host, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        dsts.push(dst);
    }
    let records = c.host_collective(specs);
    let expect = summed(n, count);
    let results: Vec<Vec<u8>> = dsts.iter().map(|d| c.read(d)).collect();
    for (node, got) in results.iter().enumerate() {
        assert_eq!(
            records[node].result(),
            Ok(()),
            "node {node} ({workers} workers)"
        );
        assert_eq!(got, &expect, "node {node} ({workers} workers)");
    }
    Observables {
        results,
        events_executed: c.sim.events_executed(),
        final_time: c.sim.now(),
        state_digests: c.sim.state_digests(),
    }
}

/// The headline golden-equality gate: a 4-node allreduce at 2, 4 and 8
/// workers is indistinguishable — results, event count, final sim time,
/// every component state digest — from the sequential run.
#[test]
fn parallel_allreduce_matches_sequential_at_every_worker_count() {
    let golden = allreduce_observables(4, 1);
    assert!(
        !golden.state_digests.is_empty(),
        "need digestible components"
    );
    for workers in [2, 4, 8] {
        assert_eq!(
            allreduce_observables(4, workers),
            golden,
            "{workers}-worker run diverged from sequential"
        );
    }
}

/// Same gate at a worker count far above the partition count: the engine
/// clamps to one worker per partition and nothing changes.
#[test]
fn worker_oversubscription_is_harmless() {
    assert_eq!(
        allreduce_observables(3, 64),
        allreduce_observables(3, 1),
        "64 workers on a 3-node cluster diverged from sequential"
    );
}

/// The parallel timeline digest (per-shard FNV folds combined in partition
/// order) is itself deterministic: invariant across worker counts >= 2 and
/// run to run. (It legitimately differs from the *sequential* digest —
/// shards fold their local seq numbers — which is why cross-mode equality
/// above is asserted on seq-independent observables instead.)
#[test]
fn parallel_timeline_digest_is_worker_count_invariant() {
    let digest_at = |workers: usize| {
        let n = 4;
        let count = 1024u64;
        let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n).with_workers(workers));
        c.sim.enable_digest();
        let mut specs = Vec::new();
        for node in 0..n {
            let src = c.alloc(node, BufLoc::Host, count * 4);
            let dst = c.alloc(node, BufLoc::Host, count * 4);
            c.write(&src, &pattern(node, count));
            specs.push(
                CollSpec::new(CollOp::AllReduce, count, DType::I32)
                    .src(src)
                    .dst(dst),
            );
        }
        c.host_collective(specs);
        c.sim.timeline_digest().expect("digest enabled before run")
    };
    let golden = digest_at(2);
    assert_eq!(digest_at(2), golden, "2-worker digest not reproducible");
    for workers in [3, 4, 8] {
        assert_eq!(
            digest_at(workers),
            golden,
            "{workers}-worker timeline digest moved"
        );
    }
}

/// Runs a bounded 4-node TCP allreduce under a non-wedging overload fault
/// mix (a recoverable credit leak, a pause storm, a pool shrink) on
/// `workers` threads. Exercises exactly the machinery that is hardest to
/// parallelize: PFC pause frames crossing partitions, credit stalls, and
/// fault events injected from the external partition.
fn overloaded_observables(workers: usize) -> Observables {
    let n = 4;
    let count = 1024u64;
    let mut c = AcclCluster::build(
        ClusterConfig::xrt_tcp(n)
            .with_overload_limits()
            .with_workers(workers),
    );
    let plan = FaultPlan::none()
        .with_credit_leak(NodeAddr(1), Time::from_us(5), 4)
        .with_pause_storm(NodeAddr(2), Time::from_us(10), Dur::from_us(80))
        .with_buf_shrink(NodeAddr(3), Time::from_us(3), 2);
    c.set_fault_plan(plan);
    let mut specs = Vec::new();
    let mut dsts = Vec::new();
    for node in 0..n {
        let src = c.alloc(node, BufLoc::Host, count * 4);
        let dst = c.alloc(node, BufLoc::Host, count * 4);
        c.write(&src, &pattern(node, count));
        specs.push(
            CollSpec::new(CollOp::AllReduce, count, DType::I32)
                .src(src)
                .dst(dst),
        );
        dsts.push(dst);
    }
    let records = c.host_collective(specs);
    let expect = summed(n, count);
    let results: Vec<Vec<u8>> = dsts.iter().map(|d| c.read(d)).collect();
    for (node, got) in results.iter().enumerate() {
        assert_eq!(
            records[node].result(),
            Ok(()),
            "node {node} ({workers} workers)"
        );
        assert_eq!(got, &expect, "node {node} ({workers} workers)");
    }
    // The faults actually landed where the plan aimed them.
    assert_eq!(c.node_stats(3).rx_buffers_shrunk, 2, "({workers} workers)");
    Observables {
        results,
        events_executed: c.sim.events_executed(),
        final_time: c.sim.now(),
        state_digests: c.sim.state_digests(),
    }
}

#[test]
fn overloaded_parallel_run_matches_sequential() {
    let golden = overloaded_observables(1);
    for workers in [2, 4] {
        assert_eq!(
            overloaded_observables(workers),
            golden,
            "{workers}-worker overloaded run diverged from sequential"
        );
    }
}

/// FNV-1a over all ranks' result buffers.
#[cfg(feature = "race-detect")]
fn fnv(buffers: &[Vec<u8>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for buf in buffers {
        for &b in buf {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The race-detector acceptance bar extends to the parallel engine: the
/// seeded allreduce's *data* must survive a deliberately permuted
/// same-timestamp delivery order at every worker count. A merge rule that
/// secretly depended on thread interleaving instead of the documented
/// `(time, seq, source partition)` key would be caught here.
#[cfg(feature = "race-detect")]
#[test]
fn parallel_result_survives_permuted_tie_order() {
    let run = |workers: usize, salt: Option<u64>| {
        let n = 4;
        let count = 2048u64;
        let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n).with_workers(workers));
        if let Some(s) = salt {
            c.sim.permute_tie_order(s);
        }
        let mut specs = Vec::new();
        let mut dsts = Vec::new();
        for node in 0..n {
            let src = c.alloc(node, BufLoc::Host, count * 4);
            let dst = c.alloc(node, BufLoc::Host, count * 4);
            c.write(&src, &pattern(node, count));
            specs.push(
                CollSpec::new(CollOp::AllReduce, count, DType::I32)
                    .src(src)
                    .dst(dst),
            );
            dsts.push(dst);
        }
        c.host_collective(specs);
        let results: Vec<Vec<u8>> = dsts.iter().map(|d| c.read(d)).collect();
        let expect = summed(n, count);
        for (node, got) in results.iter().enumerate() {
            assert_eq!(
                got, &expect,
                "node {node} ({workers} workers, salt {salt:?})"
            );
        }
        fnv(&results)
    };
    let golden = run(1, None);
    for workers in [1, 2, 4] {
        for salt in [1u64, 0x5eed, 0xdead_beef] {
            assert_eq!(
                run(workers, Some(salt)),
                golden,
                "data moved under permuted tie order ({workers} workers, salt {salt:#x})"
            );
        }
    }
}

/// The tie-normalized canonical trace — which deliveries happened at which
/// instant, order-insensitive within an instant — is identical between the
/// sequential and the parallel engine. This is the strongest cross-mode
/// statement: the two engines execute the *same tie-sets*, differing at
/// most in the arbitrary order within one.
#[cfg(feature = "race-detect")]
#[test]
fn tie_sets_match_between_sequential_and_parallel() {
    let canon = |workers: usize| {
        let n = 4;
        let count = 1024u64;
        let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n).with_workers(workers));
        c.sim.enable_tie_recording();
        let mut specs = Vec::new();
        for node in 0..n {
            let src = c.alloc(node, BufLoc::Host, count * 4);
            let dst = c.alloc(node, BufLoc::Host, count * 4);
            c.write(&src, &pattern(node, count));
            specs.push(
                CollSpec::new(CollOp::AllReduce, count, DType::I32)
                    .src(src)
                    .dst(dst),
            );
        }
        c.host_collective(specs);
        c.sim.tie_trace().expect("tie recording enabled")
    };
    let golden = canon(1);
    for workers in [2, 4] {
        assert_eq!(
            canon(workers).digest(),
            golden.digest(),
            "{workers}-worker tie-sets diverged from sequential"
        );
    }
}

/// The span *population* — what work was traced, how often, on which
/// component — is identical between sequential and parallel runs. (The
/// record *order* of same-instant spans from different partitions may
/// differ, which is exactly what `span_canon_digest` quotients out; the
/// non-canonical digest is still required to be worker-count-invariant
/// among parallel runs.)
#[cfg(feature = "trace")]
#[test]
fn span_population_matches_sequential_at_every_worker_count() {
    use accl_sim::trace::span_canon_digest;
    let spans = |workers: usize| {
        let n = 4;
        let count = 1024u64;
        let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(n).with_workers(workers));
        c.enable_tracing(1 << 20);
        let mut specs = Vec::new();
        for node in 0..n {
            let src = c.alloc(node, BufLoc::Device, count * 4);
            let dst = c.alloc(node, BufLoc::Device, count * 4);
            c.write(&src, &pattern(node, count));
            specs.push(
                CollSpec::new(CollOp::AllReduce, count, DType::I32)
                    .src(src)
                    .dst(dst),
            );
        }
        c.host_collective(specs);
        assert_eq!(c.sim.spans_dropped(), 0, "ring must hold the whole run");
        c.trace_events()
    };
    let golden = span_canon_digest(&spans(1));
    for workers in [2, 4, 8] {
        assert_eq!(
            span_canon_digest(&spans(workers)),
            golden,
            "{workers}-worker span population diverged from sequential"
        );
    }
}
