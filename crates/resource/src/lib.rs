//! # accl-resource — FPGA resource accounting (Table 3)
//!
//! A static cost model of FPGA resource consumption (CLB LUTs, DSP slices,
//! BRAM36 tiles, URAM tiles) for the ACCL+ components and the DLRM layers,
//! parameterized by the same configuration knobs as the simulation
//! (plugins enabled, POE choice, layer dimensions, decomposition degree).
//! Regenerates the utilization table of §6.3 against the Alveo U55C
//! device profile.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// A resource vector: LUTs (thousands), DSPs, BRAM36 tiles, URAM tiles.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// CLB LUTs, in thousands.
    pub klut: f64,
    /// DSP48 slices.
    pub dsp: f64,
    /// BRAM36 tiles.
    pub bram: f64,
    /// URAM tiles.
    pub uram: f64,
}

impl Resources {
    /// Componentwise sum.
    #[allow(clippy::should_implement_trait)] // builder-style accumulation
    pub fn add(self, other: Resources) -> Resources {
        Resources {
            klut: self.klut + other.klut,
            dsp: self.dsp + other.dsp,
            bram: self.bram + other.bram,
            uram: self.uram + other.uram,
        }
    }

    /// Scales every component.
    pub fn scale(self, k: f64) -> Resources {
        Resources {
            klut: self.klut * k,
            dsp: self.dsp * k,
            bram: self.bram * k,
            uram: self.uram * k,
        }
    }

    /// Utilization percentages against a device.
    pub fn utilization(&self, device: &Device) -> Utilization {
        Utilization {
            lut_pct: 100.0 * self.klut / device.total.klut,
            dsp_pct: 100.0 * self.dsp / device.total.dsp,
            bram_pct: 100.0 * self.bram / device.total.bram,
            uram_pct: if device.total.uram > 0.0 {
                100.0 * self.uram / device.total.uram
            } else {
                0.0
            },
        }
    }
}

/// Utilization of a device, in percent (may exceed 100% for multi-FPGA
/// sums, as Table 3's DLRM FC1 row does).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// CLB LUT percentage.
    pub lut_pct: f64,
    /// DSP percentage.
    pub dsp_pct: f64,
    /// BRAM percentage.
    pub bram_pct: f64,
    /// URAM percentage.
    pub uram_pct: f64,
}

/// An FPGA device profile.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Device {
    /// Device name.
    pub name: &'static str,
    /// Total resources.
    pub total: Resources,
}

impl Device {
    /// The Alveo U55C of the evaluation cluster (Table 3's 100% row).
    pub fn u55c() -> Device {
        Device {
            name: "Alveo U55C",
            total: Resources {
                klut: 1303.0,
                dsp: 9024.0,
                bram: 2016.0,
                uram: 960.0,
            },
        }
    }
}

/// Resource models of the ACCL+ subsystem components, calibrated to the
/// utilization reported in Table 3.
pub mod components {
    use super::Resources;

    /// The CCLO engine: uC + DMP + RBM + Tx/Rx systems + NoC.
    ///
    /// `with_reduction_plugins` adds the streaming arithmetic units; the
    /// paper notes they can be compiled out, "reducing resource consumption
    /// and improving routing and timing" (§6.1).
    pub fn cclo(with_reduction_plugins: bool, rx_buf_count: u32) -> Resources {
        let base = Resources {
            klut: 125.0,
            dsp: 96.0,
            bram: 98.0,
            uram: 0.0,
        };
        let plugins = if with_reduction_plugins {
            Resources {
                klut: 30.0,
                dsp: 48.0,
                bram: 8.0,
                uram: 0.0,
            }
        } else {
            Resources::default()
        };
        // Rx buffer bookkeeping grows with the pool (state, not storage —
        // the buffers themselves live in HBM).
        let rbm = Resources {
            klut: 0.2 * f64::from(rx_buf_count),
            dsp: 0.0,
            bram: 0.5 * f64::from(rx_buf_count),
            uram: 0.0,
        };
        base.add(plugins).add(rbm)
    }

    /// The hardware TCP POE: the most resource-intensive engine (session
    /// state, reassembly and retransmission buffers).
    pub fn tcp_poe(max_sessions: u32) -> Resources {
        Resources {
            klut: 218.0 + 0.04 * f64::from(max_sessions),
            dsp: 0.0,
            bram: 174.0 + 0.04 * f64::from(max_sessions),
            uram: 0.0,
        }
    }

    /// The Coyote RDMA POE.
    pub fn rdma_poe() -> Resources {
        Resources {
            klut: 169.0,
            dsp: 0.0,
            bram: 107.0,
            uram: 0.0,
        }
    }

    /// The VNx UDP POE (lightest engine).
    pub fn udp_poe() -> Resources {
        Resources {
            klut: 75.0,
            dsp: 0.0,
            bram: 45.0,
            uram: 0.0,
        }
    }

    /// A DLRM fully-connected layer of `rows × cols` in 32-bit fixed
    /// point, decomposed over `fpgas` devices, with `table_mem_bytes` of
    /// embedding storage held in on-chip URAM alongside it.
    ///
    /// DSPs scale with the compute parallelism needed to sustain one
    /// inference per pipeline beat; URAM holds weights and small embedding
    /// tables (the paper's stated bottlenecks for DLRM, §6.3). Values
    /// represent the *sum across the decomposition*, so large layers exceed
    /// one device (Table 3's FC1 row).
    pub fn fc_layer(rows: usize, cols: usize, fpgas: u32, table_mem_bytes: u64) -> Resources {
        let macs = (rows * cols) as f64;
        // Parallelism calibrated so FC1 (2048×3200 over 8 FPGAs) lands at
        // Table 3's ~580% DSP / ~800% URAM.
        let dsp = macs / 125.0;
        let weight_bytes = macs * 4.0;
        // One URAM tile stores 288 Kib = 36 KiB.
        let uram_tiles = (weight_bytes + table_mem_bytes as f64) / (36.0 * 1024.0) / 9.5;
        let klut = 60.0 * f64::from(fpgas) + macs / 2_200.0;
        let bram = 55.0 * f64::from(fpgas) + macs / 2_000.0;
        Resources {
            klut,
            dsp,
            bram,
            uram: uram_tiles,
        }
    }
}

/// One row of a utilization report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportRow {
    /// Component name.
    pub component: String,
    /// Absolute resources.
    pub resources: Resources,
    /// Percent of the device (sums over multiple FPGAs may exceed 100%).
    pub utilization: Utilization,
}

/// Builds the Table 3 report for the paper's configuration.
pub fn table3_report(device: &Device) -> Vec<ReportRow> {
    let rows: Vec<(&str, Resources)> = vec![
        ("CCLO", components::cclo(true, 16)),
        ("TCP POE", components::tcp_poe(1000)),
        ("RDMA POE", components::rdma_poe()),
        // DLRM layers, summed across their decomposition (Table 2 model):
        // FC1 2048×3200 over 8 FPGAs with the distributed small tables,
        // FC2 2048→512 on one FPGA, FC3 512→256 on one FPGA.
        ("DLRM FC1", components::fc_layer(2048, 3200, 8, 2_560 << 20)),
        ("DLRM FC2", components::fc_layer(512, 2048, 1, 320 << 20)),
        ("DLRM FC3", components::fc_layer(256, 512, 1, 64 << 20)),
    ];
    rows.into_iter()
        .map(|(name, r)| ReportRow {
            component: name.to_string(),
            utilization: r.utilization(device),
            resources: r,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u55c_totals_match_table3_header() {
        let d = Device::u55c();
        assert_eq!(d.total.klut, 1303.0);
        assert_eq!(d.total.dsp, 9024.0);
        assert_eq!(d.total.bram, 2016.0);
        assert_eq!(d.total.uram, 960.0);
    }

    #[test]
    fn cclo_is_lighter_than_the_poes() {
        // Table 3: "the majority of resources are allocated to POEs, with
        // the TCP POE the most resource-intensive".
        let cclo = components::cclo(true, 16);
        let tcp = components::tcp_poe(1000);
        let rdma = components::rdma_poe();
        assert!(cclo.klut < rdma.klut && rdma.klut < tcp.klut);
        // BRAM: the TCP POE dominates (paper: 10.6% vs CCLO's 5.7% and
        // RDMA's 5.3%, the latter two nearly equal).
        assert!(cclo.bram < tcp.bram && rdma.bram < tcp.bram);
    }

    #[test]
    fn table3_magnitudes_match_paper() {
        let d = Device::u55c();
        let report = table3_report(&d);
        let get = |name: &str| -> Utilization {
            report
                .iter()
                .find(|r| r.component == name)
                .unwrap()
                .utilization
        };
        // Paper: CCLO 12.1% LUT / 1.6% DSP / 5.7% BRAM.
        let cclo = get("CCLO");
        assert!((10.0..15.0).contains(&cclo.lut_pct), "{cclo:?}");
        assert!((1.0..2.5).contains(&cclo.dsp_pct), "{cclo:?}");
        assert!((4.0..8.0).contains(&cclo.bram_pct), "{cclo:?}");
        // TCP POE 19.8% LUT / 10.6% BRAM.
        let tcp = get("TCP POE");
        assert!((17.0..23.0).contains(&tcp.lut_pct), "{tcp:?}");
        assert!((8.0..13.0).contains(&tcp.bram_pct), "{tcp:?}");
        // RDMA POE 13.0% LUT / 5.3% BRAM.
        let rdma = get("RDMA POE");
        assert!((11.0..15.0).contains(&rdma.lut_pct), "{rdma:?}");
        assert!((4.0..7.0).contains(&rdma.bram_pct), "{rdma:?}");
        // DLRM FC1 exceeds one device: ~580% DSP, ~800% URAM over 8 FPGAs.
        let fc1 = get("DLRM FC1");
        assert!(fc1.dsp_pct > 400.0 && fc1.dsp_pct < 700.0, "{fc1:?}");
        assert!(fc1.uram_pct > 600.0 && fc1.uram_pct <= 810.0, "{fc1:?}");
        // FC3 is small: single-digit LUT percentage.
        let fc3 = get("DLRM FC3");
        assert!(fc3.lut_pct < 10.0 && fc3.dsp_pct < 25.0, "{fc3:?}");
    }

    #[test]
    fn removing_plugins_saves_resources() {
        let with = components::cclo(true, 16);
        let without = components::cclo(false, 16);
        assert!(without.klut < with.klut);
        assert!(without.dsp < with.dsp);
    }

    #[test]
    fn utilization_arithmetic() {
        let d = Device::u55c();
        let half = Resources {
            klut: d.total.klut / 2.0,
            dsp: d.total.dsp / 2.0,
            bram: d.total.bram / 2.0,
            uram: d.total.uram / 2.0,
        };
        let u = half.utilization(&d);
        assert!((u.lut_pct - 50.0).abs() < 1e-9);
        assert!((u.uram_pct - 50.0).abs() < 1e-9);
        let double = half.add(half);
        assert!((double.utilization(&d).dsp_pct - 100.0).abs() < 1e-9);
        assert!((half.scale(2.0).utilization(&d).bram_pct - 100.0).abs() < 1e-9);
    }
}
