//! DLRM decomposition scaling study (paper §6.1: "Scaling resources
//! according to the computation distribution requirements of each layer
//! could lead to improved performance").
//!
//! Sweeps the FC1 checkerboard width (column groups → cluster size) and the
//! per-node DSP parallelism, reporting latency and throughput of the
//! pipeline. Wider decompositions shrink per-node GEMV work but add
//! communication hops; more DSPs shift the bottleneck from compute to the
//! engine's command rate.

use accl_bench::print_table;
use accl_dlrm::{run_pipeline, DlrmConfig, DlrmModel, DlrmTiming};

fn main() {
    let base = DlrmConfig {
        rows_per_table: 16,
        ..DlrmConfig::default()
    };

    // Sweep 1: checkerboard width (2 or 4 column groups; 2 row groups).
    let mut rows = Vec::new();
    let mut tput_by_cols = Vec::new();
    for cols in [2usize, 4] {
        let cfg = DlrmConfig {
            fc1_col_groups: cols,
            ..base
        };
        let model = DlrmModel::generate(cfg, 3);
        let r = run_pipeline(&model, DlrmTiming::default(), 16);
        tput_by_cols.push(r.throughput());
        rows.push(vec![
            format!("{} ({} FPGAs)", cols, 2 * cols + 2),
            format!("{:.1}", r.latency_us()),
            format!("{:.0}", r.throughput()),
        ]);
    }
    print_table(
        "DLRM scaling: FC1 column groups (fixed 4096 MACs/cycle/node)",
        &["col groups", "latency (us)", "throughput (inf/s)"],
        &rows,
    );

    // Sweep 2: per-node DSP parallelism at the paper's 4-column layout.
    let mut rows = Vec::new();
    let mut tputs = Vec::new();
    for macs in [512u64, 1024, 2048, 4096, 8192] {
        let model = DlrmModel::generate(base, 3);
        let timing = DlrmTiming {
            macs_per_cycle: macs,
            ..DlrmTiming::default()
        };
        let r = run_pipeline(&model, timing, 16);
        tputs.push(r.throughput());
        rows.push(vec![
            macs.to_string(),
            format!("{:.1}", r.latency_us()),
            format!("{:.0}", r.throughput()),
        ]);
    }
    print_table(
        "DLRM scaling: MACs/cycle per node (10 FPGAs)",
        &["MACs/cycle", "latency (us)", "throughput (inf/s)"],
        &rows,
    );

    // Shape assertions: more compute monotonically helps until the engine
    // command rate dominates (diminishing returns at the top end).
    assert!(
        tputs.windows(2).all(|w| w[1] >= w[0] * 0.98),
        "throughput must not regress with more DSPs: {tputs:?}"
    );
    let gain_low = tputs[1] / tputs[0];
    let gain_high = tputs[4] / tputs[3];
    assert!(
        gain_low > gain_high,
        "diminishing returns expected: x2 at 512→1024 gives {gain_low:.2}, \
         at 4096→8192 gives {gain_high:.2}"
    );
    println!(
        "\ndiminishing returns confirmed: doubling 512→1024 gains {gain_low:.2}x, \
         4096→8192 gains {gain_high:.2}x (engine command rate bound)"
    );
}
