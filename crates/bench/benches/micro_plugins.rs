//! Criterion microbenchmarks of the CCLO's data/control primitives: the
//! streaming reduction plugin, message-signature framing, and firmware
//! schedule generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use accl_cclo::command::{CollOp, DataLoc};
use accl_cclo::config::Algorithm;
use accl_cclo::firmware::{FirmwareTable, FwEnv};
use accl_cclo::msg::{DType, MsgSignature, MsgType, ReduceFn};
use accl_cclo::plugins;

fn bench_combine(c: &mut Criterion) {
    let mut g = c.benchmark_group("plugins/combine");
    let a: Vec<u8> = (0..1 << 20).map(|i| (i % 255) as u8).collect();
    let b: Vec<u8> = (0..1 << 20).map(|i| (i % 253) as u8).collect();
    g.throughput(Throughput::Bytes(2 << 20));
    for (name, dtype) in [
        ("f32_sum", DType::F32),
        ("i32_sum", DType::I32),
        ("f64_sum", DType::F64),
        ("fx32_sum", DType::Fx32),
    ] {
        g.bench_function(name, |bch| {
            bch.iter(|| black_box(plugins::combine(dtype, ReduceFn::Sum, &a, &b)))
        });
    }
    g.finish();
}

fn bench_signature(c: &mut Criterion) {
    let mut g = c.benchmark_group("plugins/signature");
    let sig = MsgSignature {
        src_rank: 3,
        dst_rank: 7,
        mtype: MsgType::Eager,
        payload_len: 1 << 20,
        tag: 0x1234_5678,
        seq: 42,
        addr: 0,
        comm: 0,
    };
    g.bench_function("encode_decode", |b| {
        b.iter(|| {
            let wire = black_box(&sig).encode();
            black_box(MsgSignature::decode(&wire))
        })
    });
    g.finish();
}

fn bench_firmware_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("plugins/firmware");
    let table = FirmwareTable::stock();
    for (name, op, algo) in [
        ("reduce_tree_8", CollOp::Reduce, Algorithm::BinaryTree),
        ("allreduce_ring_8", CollOp::AllReduce, Algorithm::Ring),
        ("alltoall_8", CollOp::AllToAll, Algorithm::Linear),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                for rank in 0..8 {
                    let env = FwEnv {
                        rank,
                        size: 8,
                        count: 1024,
                        dtype: DType::F32,
                        func: ReduceFn::Sum,
                        root: 0,
                        bytes: 4096,
                        eager: false,
                        algorithm: algo,
                        src: DataLoc::Mem(accl_mem::MemAddr::Virt(0)),
                        dst: DataLoc::Mem(accl_mem::MemAddr::Virt(0x1000)),
                    };
                    black_box(table.schedule(op, &env));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_combine, bench_signature, bench_firmware_scheduling);
criterion_main!(benches);
