//! Figure 16: distributed vector-matrix multiplication on CPUs — compute
//! + reduction breakdown and speedup over single-node execution.
//!
//! Each rank owns a column block of the FC weight matrix, computes its
//! partial product, and the partials are summed with a reduce — over
//! ACCL+ (H2H, Coyote RDMA) or software MPI. Paper shape: ACCL+ usually
//! yields lower total latency (the reduction's working set lives in FPGA
//! memory, sparing the CPU caches), its reduction time itself is often
//! *higher* (an extra Eigen→ACCL+ buffer copy), and two configurations
//! scale super-linearly when the partition drops into L2/L3.

use accl_bench::{coyote_cluster, print_table};
use accl_core::driver::CollSpec;
use accl_core::host::Program;
use accl_core::{BufLoc, CollOp, DType, ReduceFn};
use accl_linalg::CpuModel;
use accl_sim::time::Dur;
use accl_swmpi::{MpiCall, MpiCluster, MpiConfig, MpiOp};

struct Point {
    compute_us: f64,
    reduce_us: f64,
}

fn accl_point(cpu: &CpuModel, m: usize, n: usize, ranks: usize) -> Point {
    let mut c = coyote_cluster(ranks);
    let result_bytes = (m * 4) as u64;
    let gemv = Dur::from_us_f64(cpu.gemv_seconds(m, n / ranks, 0) * 1e6);
    // The paper's extra copy: Eigen result buffer → ACCL+ buffer.
    let copy = Dur::from_us_f64(cpu.memcpy_seconds(result_bytes) * 1e6);
    let mut programs = Vec::new();
    let mut bufs = Vec::new();
    for node in 0..ranks {
        let src = c.alloc(node, BufLoc::Host, result_bytes);
        let dst = c.alloc(node, BufLoc::Host, result_bytes);
        let fill: Vec<u8> = (0..result_bytes).map(|i| (i % 249) as u8).collect();
        c.write(&src, &fill);
        bufs.push((src, dst));
        programs.push(
            Program::new()
                .compute(gemv)
                .compute(copy)
                .coll(
                    CollSpec::new(CollOp::Reduce, result_bytes / 4, DType::I32)
                        .src(src)
                        .dst(dst)
                        .func(ReduceFn::Sum),
                )
                .build(),
        );
    }
    let records = c.run_host_programs(programs);
    let compute_us = records
        .iter()
        .map(|r| r[0].finished.since(r[0].started).as_us_f64())
        .fold(0.0, f64::max);
    let end = records.iter().map(|r| r[2].finished).max().unwrap();
    let after_compute = records.iter().map(|r| r[0].finished).max().unwrap();
    Point {
        compute_us,
        reduce_us: end.since(after_compute).as_us_f64(),
    }
}

fn mpi_point(cpu: &CpuModel, m: usize, n: usize, ranks: usize) -> Point {
    let result_bytes = (m * 4) as u64;
    // MPI keeps send/recv/accumulate buffers hot on the CPU: pollution.
    let pollution = 3 * result_bytes;
    let gemv = Dur::from_us_f64(cpu.gemv_seconds(m, n / ranks, pollution) * 1e6);
    let mut c = MpiCluster::build(ranks, MpiConfig::openmpi_rdma(), 23);
    let programs = (0..ranks)
        .map(|r| {
            let src: Vec<u8> = (0..result_bytes)
                .map(|i| ((i + r as u64) % 250) as u8)
                .collect();
            vec![
                MpiOp::Compute(gemv),
                MpiOp::Coll(MpiCall {
                    op: CollOp::Reduce,
                    count: result_bytes / 4,
                    dtype: DType::I32,
                    root: 0,
                    func: ReduceFn::Sum,
                    src,
                    dst_len: result_bytes as usize,
                }),
            ]
        })
        .collect();
    let records = c.run_programs(programs);
    let compute_us = records
        .iter()
        .map(|r| r[0].finished.since(r[0].started).as_us_f64())
        .fold(0.0, f64::max);
    let end = records.iter().map(|r| r[1].finished).max().unwrap();
    let after_compute = records.iter().map(|r| r[0].finished).max().unwrap();
    Point {
        compute_us,
        reduce_us: end.since(after_compute).as_us_f64(),
    }
}

fn main() {
    let cpu = CpuModel::default();
    let configs = [
        (2048usize, 2048usize), // 16 MB matrix
        (4096, 4096),           // 64 MB
        (8192, 8192),           // 256 MB
    ];
    let mut superlinear = 0;
    let mut accl_total_wins = 0;
    let mut points = 0;
    let mut accl_reduce_higher = 0;
    for (m, n) in configs {
        let single_us = cpu.gemv_seconds(m, n, 0) * 1e6;
        let mut rows = Vec::new();
        for ranks in [2usize, 4, 8] {
            let a = accl_point(&cpu, m, n, ranks);
            let p = mpi_point(&cpu, m, n, ranks);
            let a_total = a.compute_us + a.reduce_us;
            let p_total = p.compute_us + p.reduce_us;
            let a_speed = single_us / a_total;
            let p_speed = single_us / p_total;
            points += 1;
            accl_total_wins += usize::from(a_total < p_total);
            accl_reduce_higher += usize::from(a.reduce_us > p.reduce_us);
            if a_speed > ranks as f64 * 1.05 {
                superlinear += 1;
            }
            rows.push(vec![
                ranks.to_string(),
                format!("{:.0}", a.compute_us),
                format!("{:.0}", a.reduce_us),
                format!("{a_speed:.2}x"),
                format!("{:.0}", p.compute_us),
                format!("{:.0}", p.reduce_us),
                format!("{p_speed:.2}x"),
            ]);
        }
        print_table(
            &format!(
                "Figure 16: distributed GEMV {m}x{n} ({} MB), single-node = {:.0} us",
                (m * n * 4) >> 20,
                single_us
            ),
            &[
                "ranks",
                "ACCL+ comp",
                "ACCL+ red",
                "ACCL+ speedup",
                "MPI comp",
                "MPI red",
                "MPI speedup",
            ],
            &rows,
        );
    }
    println!(
        "\nsuper-linear points: {superlinear}; ACCL+ lower total: {accl_total_wins}/{points}; \
         ACCL+ reduction itself higher: {accl_reduce_higher}/{points}"
    );
    assert!(superlinear >= 2, "paper reports two super-linear instances");
    assert!(
        accl_total_wins * 3 >= points * 2,
        "ACCL+ should usually win on total latency"
    );
    assert!(
        accl_reduce_higher >= points / 2,
        "ACCL+ reduction time is usually higher (extra copy)"
    );
}
