//! Figure 7: send/recv throughput vs. message size.
//!
//! Series: ACCL+ RDMA with device data (F2F) and host data (H2H) on
//! Coyote, vs. software MPI over RDMA (OpenMPI/UCX) and TCP (MPICH).
//! Paper shape: ACCL+ peaks at ~95 Gb/s, F2F ≈ H2H thanks to unified
//! memory, and software RDMA MPI reaches a comparable but slightly lower
//! peak; MPI TCP saturates far lower.

use accl_bench::{coyote_cluster, gbps, mpi_collective_latency, print_table, size_label};
use accl_core::driver::CollSpec;
use accl_core::{BufLoc, CollOp, DType};
use accl_swmpi::MpiConfig;

fn accl_send_recv(loc: BufLoc, bytes: u64) -> f64 {
    let mut c = coyote_cluster(2);
    let src = c.alloc(0, loc, bytes);
    let dst = c.alloc(1, loc, bytes);
    let fill: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
    c.write(&src, &fill);
    let count = bytes / 4;
    let records = c.host_collective(vec![
        CollSpec::new(CollOp::Send, count, DType::I32)
            .root(1)
            .src(src),
        CollSpec::new(CollOp::Recv, count, DType::I32)
            .root(0)
            .dst(dst),
    ]);
    assert_eq!(c.read(&dst), fill, "payload corrupted at {bytes} B");
    gbps(bytes, records[1].breakdown.unwrap().collective)
}

fn mpi_send_recv(cfg: MpiConfig, bytes: u64) -> f64 {
    gbps(
        bytes,
        mpi_collective_latency(2, cfg, CollOp::Recv, bytes, 7).max(mpi_collective_latency(
            2,
            cfg,
            CollOp::Send,
            bytes,
            7,
        )),
    )
}

fn mpi_pair(cfg: MpiConfig, bytes: u64) -> f64 {
    // A true pt2pt pair: rank 0 sends, rank 1 receives.
    use accl_swmpi::{MpiCall, MpiCluster};
    let mut c = MpiCluster::build(2, cfg, 7);
    let src: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
    let lat = c.collective(vec![
        MpiCall {
            op: CollOp::Send,
            count: bytes / 4,
            dtype: DType::I32,
            root: 1,
            func: accl_core::ReduceFn::Sum,
            src,
            dst_len: 0,
        },
        MpiCall {
            op: CollOp::Recv,
            count: bytes / 4,
            dtype: DType::I32,
            root: 0,
            func: accl_core::ReduceFn::Sum,
            src: vec![],
            dst_len: bytes as usize,
        },
    ]);
    gbps(bytes, lat[1])
}

fn main() {
    let sizes: Vec<u64> = (0..9).map(|i| 4096u64 << (2 * i)).collect(); // 4 KiB … 256 MiB
    let mut rows = Vec::new();
    for &bytes in &sizes {
        let f2f = accl_send_recv(BufLoc::Device, bytes);
        let h2h = accl_send_recv(BufLoc::Host, bytes);
        let mpi_rdma = mpi_pair(MpiConfig::openmpi_rdma(), bytes);
        let mpi_tcp = mpi_pair(MpiConfig::mpich_tcp(), bytes);
        rows.push(vec![
            size_label(bytes),
            format!("{f2f:.1}"),
            format!("{h2h:.1}"),
            format!("{mpi_rdma:.1}"),
            format!("{mpi_tcp:.1}"),
        ]);
    }
    print_table(
        "Figure 7: send/recv throughput (Gb/s)",
        &["size", "ACCL+ F2F", "ACCL+ H2H", "MPI RDMA", "MPI TCP"],
        &rows,
    );
    // Shape assertions (the paper's headline numbers).
    let peak_f2f = accl_send_recv(BufLoc::Device, 256 << 20);
    let peak_h2h = accl_send_recv(BufLoc::Host, 256 << 20);
    assert!(
        peak_f2f > 90.0,
        "ACCL+ must near-saturate 100G, got {peak_f2f:.1}"
    );
    assert!(
        (peak_f2f - peak_h2h).abs() < 5.0,
        "F2F and H2H must be close on Coyote"
    );
    let _ = mpi_send_recv;
    println!("\npeak ACCL+ F2F = {peak_f2f:.1} Gb/s (paper: 95 Gb/s)");
}
