//! Ablation studies of the design choices the paper highlights.
//!
//! 1. **Eager threshold** (§4.4.3): the eager/rendezvous crossover for
//!    send/recv — eager avoids the handshake but pays the Rx-buffer copy.
//! 2. **Rx buffer pool size** (§4.4.1): eager fan-in with a starved pool
//!    serializes on admission.
//! 3. **Coyote TLB associativity** (§4.2): the paper explicitly increased
//!    it during integration; a 1-way TLB thrashes under strided DMA.
//! 4. **uC offload (ACCL → ACCL+)** (Fig. 13's root cause): per-packet
//!    firmware work caps throughput.

use accl_bench::{coyote_cluster, print_table, size_label};
use accl_core::driver::CollSpec;
use accl_core::{AcclCluster, BufLoc, CcloConfig, ClusterConfig, CollOp, DType, SyncProto};
use accl_mem::{MemTarget, Tlb, TlbConfig};

fn send_recv_latency(c: &mut AcclCluster, bytes: u64, sync: SyncProto) -> f64 {
    let src = c.alloc(0, BufLoc::Device, bytes);
    let dst = c.alloc(1, BufLoc::Device, bytes);
    c.write(&src, &vec![3u8; bytes as usize]);
    let count = bytes / 4;
    let records = c.host_collective(vec![
        CollSpec::new(CollOp::Send, count, DType::I32)
            .root(1)
            .src(src)
            .sync(sync),
        CollSpec::new(CollOp::Recv, count, DType::I32)
            .root(0)
            .dst(dst)
            .sync(sync),
    ]);
    records[1].breakdown.unwrap().collective.as_us_f64()
}

fn ablation_eager_threshold() {
    let mut rows = Vec::new();
    let mut crossover = None;
    for i in 0..9 {
        let bytes = 512u64 << i; // 512 B … 128 KB
        let mut c = coyote_cluster(2);
        let eager = send_recv_latency(&mut c, bytes, SyncProto::Eager);
        let mut c = coyote_cluster(2);
        let rndzv = send_recv_latency(&mut c, bytes, SyncProto::Rendezvous);
        if crossover.is_none() && rndzv < eager {
            crossover = Some(bytes);
        }
        rows.push(vec![
            size_label(bytes),
            format!("{eager:.2}"),
            format!("{rndzv:.2}"),
            if rndzv < eager { "rendezvous" } else { "eager" }.into(),
        ]);
    }
    print_table(
        "Ablation 1: eager vs rendezvous send/recv latency (us)",
        &["size", "eager", "rendezvous", "winner"],
        &rows,
    );
    let crossover = crossover.expect("rendezvous must win eventually");
    println!(
        "crossover at {} (engine default threshold: 16K)",
        size_label(crossover)
    );
    assert!(
        (2048..=262_144).contains(&crossover),
        "crossover should be near the configured threshold"
    );
}

fn ablation_rx_pool() {
    // 7-way eager fan-in (gather) with varying pool sizes. In this model a
    // starved pool shows up as admission pressure (exhaustion events) —
    // the hardware would additionally backpressure the POE, a loop the
    // simulation does not close (see EXPERIMENTS.md, divergence 6).
    let n = 8;
    let count = 4096u64;
    let mut rows = Vec::new();
    let mut exhaust_small = 0u64;
    let mut exhaust_large = 0u64;
    for pool in [1u32, 2, 4, 8, 16] {
        let mut cfg = ClusterConfig::coyote_rdma(n);
        cfg.cclo.rx_buf_count = pool;
        let mut c = AcclCluster::build(cfg);
        let mut specs = Vec::new();
        for rank in 0..n {
            let src = c.alloc(rank, BufLoc::Device, count * 4);
            let dst = c.alloc(rank, BufLoc::Device, count * 4 * n as u64);
            c.write(&src, &vec![rank as u8 + 1; (count * 4) as usize]);
            specs.push(
                CollSpec::new(CollOp::Gather, count, DType::I32)
                    .src(src)
                    .dst(dst)
                    .sync(SyncProto::Eager),
            );
        }
        let records = c.host_collective(specs);
        let lat = records
            .iter()
            .map(|r| r.breakdown.unwrap().collective.as_us_f64())
            .fold(0.0, f64::max);
        let root_rbm = c.node(0).cclo.rbm;
        let exhausted = c
            .sim
            .component::<acclplus_rbm::Rbm>(root_rbm)
            .exhaustion_events;
        if pool == 1 {
            exhaust_small = exhausted;
        }
        if pool == 16 {
            exhaust_large = exhausted;
        }
        rows.push(vec![
            pool.to_string(),
            format!("{lat:.1}"),
            exhausted.to_string(),
        ]);
    }
    print_table(
        "Ablation 2: eager gather (8 ranks, 16 KB blocks) vs Rx pool size",
        &["rx buffers", "latency (us)", "pool exhaustions"],
        &rows,
    );
    assert!(
        exhaust_small > exhaust_large,
        "a starved pool must show admission pressure ({exhaust_small} vs {exhaust_large})"
    );
    assert_eq!(exhaust_large, 0, "a 16-deep pool absorbs a 7-way fan-in");
}

use accl_cclo::rbm as acclplus_rbm;

fn ablation_tlb_associativity() {
    // Strided page accesses landing in one set: 1-way thrashes, 4-way holds.
    let strides = 256usize; // pages touched, stride = set count
    let mut rows = Vec::new();
    let mut miss_1way = 0u64;
    let mut miss_4way = 0u64;
    for ways in [1usize, 2, 4, 8] {
        let cfg = TlbConfig {
            sets: 64,
            ways,
            ..TlbConfig::default()
        };
        let mut tlb = Tlb::new(cfg);
        let page = accl_mem::PAGE_SIZE;
        // Map 4 conflicting regions (same set index) and sweep them twice.
        for region in 0..4u64 {
            tlb.map_range(region * 64 * page * 1000, 64 * page, MemTarget::Device);
        }
        for _round in 0..2 {
            for i in 0..strides as u64 {
                let region = i % 4;
                tlb.translate(region * 64 * page * 1000);
            }
        }
        let (hits, misses, _) = tlb.counters();
        if ways == 1 {
            miss_1way = misses;
        }
        if ways == 4 {
            miss_4way = misses;
        }
        rows.push(vec![ways.to_string(), hits.to_string(), misses.to_string()]);
    }
    print_table(
        "Ablation 3: Coyote TLB associativity under 4-way conflict traffic",
        &["ways", "hits", "misses"],
        &rows,
    );
    assert!(
        miss_4way * 10 < miss_1way,
        "the paper's associativity increase must pay off ({miss_1way} vs {miss_4way})"
    );
}

fn ablation_uc_offload() {
    // Large eager transfer: ACCL+ RBM (hardware reassembly) vs legacy uC.
    let bytes = 4u64 << 20;
    let run = |legacy: bool| -> f64 {
        let mut cfg = ClusterConfig::xrt_tcp(2);
        if legacy {
            cfg.cclo = CcloConfig::legacy_accl();
        }
        let mut c = AcclCluster::build(cfg);
        send_recv_latency(&mut c, bytes, SyncProto::Eager)
    };
    let acclplus = run(false);
    let legacy = run(true);
    print_table(
        "Ablation 4: RxBuf reassembly in hardware vs in uC firmware (4 MB send)",
        &["engine", "latency (us)"],
        &[
            vec!["ACCL+ (hardware RBM)".into(), format!("{acclplus:.0}")],
            vec!["legacy ACCL (uC)".into(), format!("{legacy:.0}")],
        ],
    );
    assert!(
        legacy > acclplus * 1.2,
        "uC-side reassembly must be visibly slower"
    );
}

fn main() {
    ablation_eager_threshold();
    ablation_rx_pool();
    ablation_tlb_associativity();
    ablation_uc_offload();
    println!("\nall ablation assertions held");
}
