//! Figure 11: H2H collective latency — ACCL+ RDMA vs. software MPI RDMA
//! with host data, 8 ranks.
//!
//! Both systems now start and end in host memory: ACCL+ reaches it through
//! Coyote's unified memory (no staging), software MPI natively. Paper
//! shape: ACCL+ wins consistently for bcast and gather; for reduce and
//! all-to-all the gains are marginal and software MPI sometimes wins —
//! the FPGA's lower clock and coarser algorithm set (Fig. 12) show here.

use accl_bench::{accl_best_latency, mpi_collective_latency, print_table, size_label};
use accl_core::{BufLoc, CollOp};
use accl_swmpi::MpiConfig;

fn main() {
    let n = 8;
    let ops = [
        ("bcast", CollOp::Bcast),
        ("scatter", CollOp::Scatter),
        ("gather", CollOp::Gather),
        ("reduce", CollOp::Reduce),
        ("allreduce", CollOp::AllReduce),
        ("alltoall", CollOp::AllToAll),
    ];
    let sizes: Vec<u64> = (0..7).map(|i| 1024u64 << (2 * i)).collect();
    let mut bcast_wins = 0usize;
    let mut bcast_points = 0usize;
    let mut reduce_margins: Vec<f64> = Vec::new();
    for (name, op) in ops {
        let mut rows = Vec::new();
        for &bytes in &sizes {
            let accl = accl_best_latency(n, op, bytes, BufLoc::Host);
            let mpi = mpi_collective_latency(n, MpiConfig::openmpi_rdma(), op, bytes, 11);
            let ratio = mpi.as_us_f64() / accl.as_us_f64();
            if op == CollOp::Bcast {
                bcast_points += 1;
                bcast_wins += usize::from(ratio > 1.0);
            }
            if op == CollOp::Reduce {
                reduce_margins.push(ratio);
            }
            rows.push(vec![
                size_label(bytes),
                format!("{:.1}", accl.as_us_f64()),
                format!("{:.1}", mpi.as_us_f64()),
                format!("{ratio:.2}x"),
            ]);
        }
        print_table(
            &format!("Figure 11 ({name}): H2H latency (us), 8 ranks, host data"),
            &["size", "ACCL+ RDMA", "MPI RDMA", "MPI/ACCL+"],
            &rows,
        );
    }
    // Shape: bcast consistently favors ACCL+; reduce is contested.
    assert!(
        bcast_wins * 3 >= bcast_points * 2,
        "bcast should mostly favor ACCL+ ({bcast_wins}/{bcast_points})"
    );
    let reduce_has_close_or_losing = reduce_margins.iter().any(|&r| r < 1.4);
    assert!(
        reduce_has_close_or_losing,
        "reduce should be contested in H2H (margins: {reduce_margins:?})"
    );
}
