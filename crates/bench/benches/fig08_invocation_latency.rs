//! Figure 8: CCLO invocation latency (NOP) from different callers.
//!
//! Paper shape: FPGA kernels invoking the engine directly see minimal
//! latency; the Coyote host driver costs roughly a PCIe write + read; the
//! XRT path is orders of magnitude slower (ioctl-based, not meant for
//! fine-grained control).

use accl_bench::print_table;
use accl_core::driver::CollSpec;
use accl_core::kernel::KernelOp;
use accl_core::{AcclCluster, ClusterConfig, CollOp, DType};

fn kernel_nop_us() -> f64 {
    let mut c = AcclCluster::build(ClusterConfig::coyote_rdma(2));
    let prog = vec![
        KernelOp::Issue(CollSpec::new(CollOp::Nop, 0, DType::U8)),
        KernelOp::Finalize,
    ];
    let idle = vec![KernelOp::Finalize];
    let kernels = c.run_kernel_programs(vec![prog, idle]);
    c.kernel(kernels[0]).finished_at().unwrap().as_us_f64()
}

fn host_nop_us(cfg: ClusterConfig) -> f64 {
    let mut c = AcclCluster::build(cfg);
    let specs = (0..c.len())
        .map(|_| CollSpec::new(CollOp::Nop, 0, DType::U8))
        .collect();
    let records = c.host_collective(specs);
    records[0].breakdown.unwrap().total.as_us_f64()
}

fn main() {
    let kernel = kernel_nop_us();
    let coyote = host_nop_us(ClusterConfig::coyote_rdma(2));
    let xrt = host_nop_us(ClusterConfig::xrt_tcp(2));
    print_table(
        "Figure 8: CCLO NOP invocation latency (us)",
        &["caller", "latency"],
        &[
            vec!["FPGA kernel".into(), format!("{kernel:.2}")],
            vec!["Coyote host driver".into(), format!("{coyote:.2}")],
            vec!["XRT host driver".into(), format!("{xrt:.2}")],
        ],
    );
    assert!(
        kernel < coyote && coyote < xrt,
        "ordering must match Fig. 8"
    );
    assert!(
        kernel < 2.0,
        "kernel invocation must be minimal, got {kernel}"
    );
    assert!(xrt / coyote > 10.0, "XRT must be far slower than Coyote");
    println!(
        "\nratios: coyote/kernel = {:.1}x, xrt/coyote = {:.1}x",
        coyote / kernel,
        xrt / coyote
    );
}
