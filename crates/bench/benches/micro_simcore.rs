//! Criterion microbenchmarks of the simulation kernel's hot paths: event
//! scheduling/dispatch, bandwidth-pipe reservations, and the sparse
//! memory store. These gate the wall-clock cost of every experiment.
//!
//! Beyond the criterion groups, the binary times a set of queue-heavy
//! workloads (1M-event churn, mixed near/far timers) with a counting
//! allocator and emits machine-readable `BENCH_simcore.json` with
//! events/sec and allocs/event, alongside the frozen pre-overhaul
//! baseline so the perf trajectory is tracked in-repo.
//!
//! Set `ACCL_BENCH_QUICK=1` for a CI-friendly smoke run (fewer samples,
//! same JSON schema).

use criterion::{criterion_group, Criterion, Throughput};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use accl_mem::MemStore;
use accl_sim::prelude::*;

/// Global allocator wrapper counting allocation calls, so the JSON report
/// can track allocs/event — the metric the inline-payload and slab work
/// is meant to drive toward zero.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Sink;
impl Component for Sink {
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        black_box(payload.downcast::<u64>());
    }
}

struct SelfChain {
    remaining: u64,
}
impl Component for SelfChain {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        let v = payload.downcast::<u64>();
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(port, Dur::from_ns(1), v + 1);
        }
    }
}

/// A chain that interleaves short-delay events with periodic far-future
/// timers (RTO-like, 100 us out) — the near/far mix the tiered queue is
/// designed for.
struct MixedTimerChain {
    remaining: u64,
    timer_sink: Endpoint,
}
impl Component for MixedTimerChain {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        let v = payload.downcast::<u64>();
        if self.remaining > 0 {
            self.remaining -= 1;
            if self.remaining.is_multiple_of(64) {
                // Far-future timer: lands in the spill heap, not the calendar.
                ctx.send(self.timer_sink, Dur::from_us(100), v);
            }
            ctx.send_self(port, Dur::from_ns(1), v + 1);
        }
    }
}

fn bench_event_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore/event_dispatch");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("chain_10k_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(0);
            let id = sim.add("chain", SelfChain { remaining: 10_000 });
            sim.post(Endpoint::of(id), Time::ZERO, 0u64);
            sim.run();
            black_box(sim.events_executed())
        })
    });
    g.finish();
}

fn bench_fanout_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore/heap");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("post_then_drain_10k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(0);
            let sink = sim.add("sink", Sink);
            for i in 0..10_000u64 {
                // Reverse-ish order stresses the heap.
                sim.post(Endpoint::of(sink), Time::from_ps(10_000 - i), i);
            }
            sim.run();
            black_box(sim.now())
        })
    });
    g.finish();
}

fn bench_pipe(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore/pipe");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("reserve_100k", |b| {
        b.iter(|| {
            // black_box the rate so LTO can't constant-fold the whole loop.
            let mut p = Pipe::gbps(black_box(100.0));
            let mut t = Time::ZERO;
            for _ in 0..100_000 {
                let (_, end) = p.reserve(t, black_box(4096));
                t = end;
            }
            black_box(p.bytes_moved())
        })
    });
    g.finish();
}

fn bench_memstore(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore/memstore");
    let data = vec![0xa5u8; 1 << 20];
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("write_read_1mib", |b| {
        b.iter(|| {
            let mut m = MemStore::new();
            m.write(0x1234, &data);
            black_box(m.read(0x1234, data.len()))
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------------
// JSON-emitting workloads (events/sec + allocs/event)
// ---------------------------------------------------------------------------

/// One measured workload result.
struct WorkloadResult {
    name: &'static str,
    events: u64,
    events_per_sec: f64,
    allocs_per_event: f64,
}

/// Times `work` (which returns the number of events it executed) over
/// `reps` repetitions, reporting best-rep throughput and allocs/event.
fn measure(name: &'static str, reps: u32, mut work: impl FnMut() -> u64) -> WorkloadResult {
    // Warm-up rep, also used for the allocation count.
    let allocs_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let events = work();
    let allocs = ALLOC_CALLS.load(Ordering::Relaxed) - allocs_before;

    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let n = black_box(work());
        let elapsed = start.elapsed();
        assert_eq!(n, events, "workload {name} is not steady");
        best = best.min(elapsed);
    }
    WorkloadResult {
        name,
        events,
        events_per_sec: events as f64 / best.as_secs_f64(),
        allocs_per_event: allocs as f64 / events as f64,
    }
}

fn chain_events(n: u64) -> u64 {
    let mut sim = Simulator::new(0);
    let id = sim.add("chain", SelfChain { remaining: n });
    sim.post(Endpoint::of(id), Time::ZERO, 0u64);
    sim.run();
    sim.events_executed()
}

/// A self-chain that exercises the metrics hot path on every event: one
/// counter add plus one histogram observation, the instrumentation
/// density of the real engine components (switch, POE, DMP).
struct MeteredChain {
    remaining: u64,
}
impl Component for MeteredChain {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        let v = payload.downcast::<u64>();
        ctx.stats().add("bench.chain.events", 1);
        ctx.stats().observe("bench.chain.value", v);
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(port, Dur::from_ns(1), v + 1);
        }
    }
}

/// The windowed-SLO overhead workload: the metered chain with fixed-width
/// sim-time metric windows on or off. The window router runs on every
/// stats write, so the `chain_metered` vs `chain_windowed` delta is the
/// full per-write cost of the `accl-obs` time-series export.
fn metered_chain(n: u64, window: Option<Dur>) -> u64 {
    let mut sim = Simulator::new(0);
    if let Some(width) = window {
        sim.enable_metric_windows(width);
    }
    let id = sim.add("chain", MeteredChain { remaining: n });
    sim.post(Endpoint::of(id), Time::ZERO, 0u64);
    sim.run();
    sim.events_executed()
}

fn mixed_near_far(n: u64) -> u64 {
    let mut sim = Simulator::new(0);
    let sink = sim.add("sink", Sink);
    let id = sim.reserve("mix");
    sim.install(
        id,
        MixedTimerChain {
            remaining: n,
            timer_sink: Endpoint::of(sink),
        },
    );
    sim.post(Endpoint::of(id), Time::ZERO, 0u64);
    sim.run();
    sim.events_executed()
}

fn post_then_drain(n: u64) -> u64 {
    let mut sim = Simulator::new(0);
    let sink = sim.add("sink", Sink);
    for i in 0..n {
        sim.post(Endpoint::of(sink), Time::from_ps(n - i), i);
    }
    sim.run();
    sim.events_executed()
}

/// One rank of the multi-shard scaling workload: a mix of tight local
/// self-events (private to the rank's partition) and periodic ring
/// messages to the next rank, sent at the link propagation delay — the
/// near/cross-shard ratio a real cluster run exhibits.
struct ShardedRank {
    remaining: u64,
    peer: Endpoint,
}
impl Component for ShardedRank {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        let v = payload.downcast::<u64>();
        if self.remaining > 0 {
            self.remaining -= 1;
            if self.remaining.is_multiple_of(8) {
                // Cross-partition hop, >= the configured lookahead.
                ctx.send(self.peer, Dur::from_ns(200), v + 1);
            } else {
                ctx.send_self(port, Dur::from_ns(1), v + 1);
            }
        }
    }
}

/// The parallel-scaling workload: `nranks` ranks in `nranks` partitions
/// (ring-connected, one component each) on `workers` simulator threads.
/// Every worker count executes the identical event population — the
/// conservative engine's determinism contract — so throughput numbers are
/// directly comparable.
fn sharded_ranks(nranks: usize, per_rank: u64, workers: usize) -> u64 {
    let mut sim = Simulator::new(0);
    sim.set_workers(workers);
    sim.set_lookahead(Dur::from_ns(150));
    let ids: Vec<_> = (0..nranks)
        .map(|r| sim.reserve(format!("n{r}.rank")))
        .collect();
    for (r, &id) in ids.iter().enumerate() {
        let peer = ids[(r + 1) % nranks];
        sim.install(
            id,
            ShardedRank {
                remaining: per_rank,
                peer: Endpoint::of(peer),
            },
        );
        sim.post(Endpoint::of(id), Time::ZERO, 0u64);
    }
    sim.assign_partitions(|name| {
        name.strip_prefix('n')
            .and_then(|rest| rest.split('.').next())
            .and_then(|d| d.parse::<u32>().ok())
            .map_or(0, |r| r + 1)
    });
    sim.run();
    sim.events_executed()
}

/// Pre-PR2 kernel baseline (global `BinaryHeap<Scheduled>`, one `Box` per
/// payload, `Vec<u8>` chunk copies), measured on the CI container before
/// the tiered-queue/inline-payload overhaul. Frozen so every future run
/// reports its speedup against the same reference.
const BASELINE: &[(&str, f64, f64)] = &[
    // (workload, events_per_sec, allocs_per_event) — measured 2026-08-07
    ("chain_10k_events", 20_337_239.0, 1.0),
    ("chain_1m_events", 17_518_890.0, 1.0),
    ("mixed_near_far_256k", 7_767_264.0, 1.0),
    ("post_then_drain_100k", 5_288_176.0, 1.0),
];

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One row of the parallel-scaling table.
struct ScalingResult {
    workers: usize,
    events: u64,
    events_per_sec: f64,
}

fn emit_json(results: &[WorkloadResult], scaling: &[ScalingResult], quick: bool) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"micro_simcore\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str(
        "  \"baseline_note\": \"pre-overhaul kernel: BinaryHeap + boxed payloads + copied chunks\",\n",
    );
    out.push_str("  \"baseline\": {\n");
    for (i, (name, eps, ape)) in BASELINE.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"events_per_sec\": {:.0}, \"allocs_per_event\": {:.3}}}{}\n",
            json_escape(name),
            eps,
            ape,
            if i + 1 < BASELINE.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"current\": {\n");
    for (i, r) in results.iter().enumerate() {
        let speedup = BASELINE
            .iter()
            .find(|(n, _, _)| *n == r.name)
            .map(|(_, eps, _)| r.events_per_sec / eps);
        out.push_str(&format!(
            "    \"{}\": {{\"events\": {}, \"events_per_sec\": {:.0}, \"allocs_per_event\": {:.3}{}}}{}\n",
            json_escape(r.name),
            r.events,
            r.events_per_sec,
            r.allocs_per_event,
            speedup
                .map(|s| format!(", \"speedup_vs_baseline\": {s:.2}"))
                .unwrap_or_default(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    // Conservative-parallel scaling on the 64-rank mixed ring workload.
    // Speedups are relative to the 1-worker (sequential-engine) row of the
    // same run; every row executes the identical event population.
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    out.push_str("  \"parallel_scaling\": {\n");
    out.push_str(
        "    \"workload\": \"sharded_ranks: 64 ranks in 64 partitions, ring traffic, \
         7:1 local:cross-shard event mix, 150 ns lookahead\",\n",
    );
    out.push_str(&format!("    \"host_cpus\": {host_cpus},\n"));
    out.push_str(&format!(
        "    \"host_note\": \"measured on a {host_cpus}-core container; parallel speedup \
         requires >1 physical core — rows above 1 worker show engine overhead, not \
         scaling, when host_cpus is 1\",\n"
    ));
    let base_eps = scaling
        .iter()
        .find(|s| s.workers == 1)
        .map_or(1.0, |s| s.events_per_sec);
    for (i, s) in scaling.iter().enumerate() {
        out.push_str(&format!(
            "    \"workers_{}\": {{\"events\": {}, \"events_per_sec\": {:.0}, \
             \"speedup_vs_sequential\": {:.2}}}{}\n",
            s.workers,
            s.events,
            s.events_per_sec,
            s.events_per_sec / base_eps,
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    // Write to the workspace root (cargo runs benches with the package dir
    // as cwd) so CI can pick the file up from a fixed path.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simcore.json");
    std::fs::write(path, &out).expect("write BENCH_simcore.json");
    println!("\nwrote BENCH_simcore.json:\n{out}");
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_event_dispatch,
    bench_fanout_schedule,
    bench_pipe,
    bench_memstore
);

fn main() {
    let quick = std::env::var("ACCL_BENCH_QUICK").is_ok_and(|v| v == "1");
    if !quick {
        benches();
    }

    let (chain_n, mix_n, drain_n, reps) = if quick {
        (100_000u64, 32_768u64, 10_000u64, 2)
    } else {
        (1_000_000, 262_144, 100_000, 5)
    };
    let results = vec![
        measure("chain_10k_events", reps, || chain_events(10_000)),
        measure("chain_1m_events", reps, move || chain_events(chain_n)),
        measure("mixed_near_far_256k", reps, move || mixed_near_far(mix_n)),
        measure("post_then_drain_100k", reps, move || {
            post_then_drain(drain_n)
        }),
        // Windowed-metrics overhead pair: identical event population and
        // per-event stats writes; only the sim-time window router differs.
        measure("chain_100k_metered", reps, move || {
            metered_chain(drain_n, None)
        }),
        measure("chain_100k_windowed", reps, move || {
            metered_chain(drain_n, Some(Dur::from_us(1)))
        }),
    ];
    for r in &results {
        println!(
            "workload {:<24} {:>12.0} events/s  {:>7.3} allocs/event",
            r.name, r.events_per_sec, r.allocs_per_event
        );
    }

    // Parallel scaling: the same 64-rank mixed workload at 1/2/4/8
    // workers. The event population is identical at every worker count
    // (asserted) — only wall-clock may move.
    let per_rank = if quick { 4_096u64 } else { 16_384 };
    let mut scaling = Vec::new();
    let mut golden_events = None;
    for workers in [1usize, 2, 4, 8] {
        let r = measure("sharded_ranks", reps, move || {
            sharded_ranks(64, per_rank, workers)
        });
        match golden_events {
            None => golden_events = Some(r.events),
            Some(g) => assert_eq!(
                r.events, g,
                "{workers}-worker run executed a different event population"
            ),
        }
        println!(
            "scaling  {:<24} {:>12.0} events/s  ({} events)",
            format!("sharded_ranks x{workers}"),
            r.events_per_sec,
            r.events
        );
        scaling.push(ScalingResult {
            workers,
            events: r.events,
            events_per_sec: r.events_per_sec,
        });
    }
    emit_json(&results, &scaling, quick);
}
