//! Criterion microbenchmarks of the simulation kernel's hot paths: event
//! scheduling/dispatch, bandwidth-pipe reservations, and the sparse
//! memory store. These gate the wall-clock cost of every experiment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use accl_mem::MemStore;
use accl_sim::prelude::*;

struct Sink;
impl Component for Sink {
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        black_box(payload.downcast::<u64>());
    }
}

struct SelfChain {
    remaining: u64,
}
impl Component for SelfChain {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        let v = payload.downcast::<u64>();
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_self(port, Dur::from_ns(1), v + 1);
        }
    }
}

fn bench_event_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore/event_dispatch");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("chain_10k_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(0);
            let id = sim.add("chain", SelfChain { remaining: 10_000 });
            sim.post(Endpoint::of(id), Time::ZERO, 0u64);
            sim.run();
            black_box(sim.events_executed())
        })
    });
    g.finish();
}

fn bench_fanout_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore/heap");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("post_then_drain_10k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(0);
            let sink = sim.add("sink", Sink);
            for i in 0..10_000u64 {
                // Reverse-ish order stresses the heap.
                sim.post(Endpoint::of(sink), Time::from_ps(10_000 - i), i);
            }
            sim.run();
            black_box(sim.now())
        })
    });
    g.finish();
}

fn bench_pipe(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore/pipe");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("reserve_100k", |b| {
        b.iter(|| {
            let mut p = Pipe::gbps(100.0);
            let mut t = Time::ZERO;
            for _ in 0..100_000 {
                let (_, end) = p.reserve(t, 4096);
                t = end;
            }
            black_box(p.bytes_moved())
        })
    });
    g.finish();
}

fn bench_memstore(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore/memstore");
    let data = vec![0xa5u8; 1 << 20];
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("write_read_1mib", |b| {
        b.iter(|| {
            let mut m = MemStore::new();
            m.write(0x1234, &data);
            black_box(m.read(0x1234, data.len()))
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_event_dispatch,
    bench_fanout_schedule,
    bench_pipe,
    bench_memstore
);
criterion_main!(benches);
