//! Figure 9: latency breakdown of broadcasting FPGA-produced data with
//! software MPI (8 ranks, Coyote platform).
//!
//! The modelled device-to-device path: (1) PCIe device→host, (2) software
//! MPI bcast, (3) PCIe host→device, (4) invoking the next kernel. Paper
//! shape: PCIe transfers dominate small messages; the collective dominates
//! large ones.

use accl_bench::{mpi_collective_latency, pcie_leg, print_table, size_label, size_sweep};
use accl_core::{ClusterConfig, CollOp};
use accl_swmpi::MpiConfig;

fn main() {
    let invoke = ClusterConfig::coyote_rdma(2).invocation_latency();
    let mut rows = Vec::new();
    let mut crossover_seen = false;
    let mut small_pcie_frac = 0.0;
    for &bytes in &size_sweep() {
        let pcie_out = pcie_leg(bytes);
        let coll = mpi_collective_latency(8, MpiConfig::openmpi_rdma(), CollOp::Bcast, bytes, 9);
        let pcie_back = pcie_leg(bytes);
        let total = pcie_out + coll + pcie_back + invoke;
        let pcie_frac = (pcie_out + pcie_back).as_us_f64() / total.as_us_f64();
        if bytes == 1024 {
            small_pcie_frac = pcie_frac;
        }
        if coll.as_us_f64() > (pcie_out + pcie_back).as_us_f64() {
            crossover_seen = true;
        }
        rows.push(vec![
            size_label(bytes),
            format!("{:.1}", pcie_out.as_us_f64()),
            format!("{:.1}", coll.as_us_f64()),
            format!("{:.1}", pcie_back.as_us_f64()),
            format!("{:.1}", invoke.as_us_f64()),
            format!("{:.1}", total.as_us_f64()),
            format!("{:.0}%", 100.0 * pcie_frac),
        ]);
    }
    print_table(
        "Figure 9: software-MPI bcast of FPGA data, breakdown (us), 8 ranks",
        &[
            "size",
            "PCIe out",
            "MPI bcast",
            "PCIe back",
            "invoke",
            "total",
            "PCIe share",
        ],
        &rows,
    );
    assert!(
        small_pcie_frac > 0.3,
        "PCIe must be a dominant share at small sizes ({small_pcie_frac})"
    );
    assert!(crossover_seen, "collective must dominate at large sizes");
}
