//! Table 3: FPGA resource utilization of the ACCL+ components and the
//! decomposed DLRM layers on the Alveo U55C.

use accl_bench::print_table;
use accl_resource::{table3_report, Device};

fn main() {
    let device = Device::u55c();
    println!(
        "{}: {:.0}k LUT, {:.0} DSP, {:.0} BRAM, {:.0} URAM (100%)",
        device.name, device.total.klut, device.total.dsp, device.total.bram, device.total.uram
    );
    let rows: Vec<Vec<String>> = table3_report(&device)
        .into_iter()
        .map(|r| {
            vec![
                r.component,
                format!("{:.1}%", r.utilization.lut_pct),
                format!("{:.1}%", r.utilization.dsp_pct),
                format!("{:.1}%", r.utilization.bram_pct),
                format!("{:.1}%", r.utilization.uram_pct),
            ]
        })
        .collect();
    print_table(
        "Table 3: resource utilization (% of one U55C; DLRM rows sum over their decomposition)",
        &["component", "CLB kLUT", "DSP", "BRAM", "URAM"],
        &rows,
    );
    println!(
        "\npaper reference: CCLO 12.1/1.6/5.7/0, TCP POE 19.8/0/10.6/0, RDMA POE 13.0/0/5.3/0,"
    );
    println!("                 FC1 278.1/580.1/186.3/798.3, FC2 29.6/85.1/34.2/97.9, FC3 6.2/16.1/2.2/20.8");
}
