//! Figure 17: distributed DLRM inference — latency (a) and throughput (b),
//! ACCL+ on 10 FPGAs vs. the CPU baseline.
//!
//! The FPGA pipeline streams single inferences (no batching); the CPU
//! (TF-Serving on a 32-vCPU Xeon) is measured across batch sizes. Paper
//! shape: two orders of magnitude lower latency and more than an order of
//! magnitude higher throughput for the hardware pipeline. Table 2's model
//! dimensions are used exactly; embedding-table *contents* are scaled.

use accl_bench::print_table;
use accl_dlrm::{run_pipeline, CpuDlrmModel, DlrmConfig, DlrmModel, DlrmTiming};

fn main() {
    let cfg = DlrmConfig {
        rows_per_table: 32, // scaled contents; dimensions per Table 2
        ..DlrmConfig::default()
    };
    println!(
        "Table 2 model: {} tables, concat {}, FC ({}, {}, {}), full-scale embeddings ~{:.0} GB",
        cfg.tables,
        cfg.concat_len(),
        cfg.fc_dims[0],
        cfg.fc_dims[1],
        cfg.fc_dims[2],
        DlrmConfig::full_scale_embed_bytes(3_900_000) as f64 / 1e9,
    );
    let model = DlrmModel::generate(cfg, 5);
    let result = run_pipeline(&model, DlrmTiming::default(), 25);
    let fpga_latency_ms = result.latency_us() / 1e3;
    let fpga_tput = result.throughput();

    let cpu = CpuDlrmModel::default();
    let mut rows = vec![vec![
        "ACCL+ 10xFPGA (streaming)".to_string(),
        format!("{:.3}", fpga_latency_ms),
        format!("{:.0}", fpga_tput),
    ]];
    let mut best_cpu_tput = 0f64;
    let mut min_cpu_latency = f64::MAX;
    for batch in [1u64, 4, 16, 64, 256] {
        let lat = cpu.batch_latency_s(&cfg, batch) * 1e3;
        let tput = cpu.throughput(&cfg, batch);
        best_cpu_tput = best_cpu_tput.max(tput);
        min_cpu_latency = min_cpu_latency.min(lat);
        rows.push(vec![
            format!("CPU batch={batch}"),
            format!("{lat:.2}"),
            format!("{tput:.0}"),
        ]);
    }
    print_table(
        "Figure 17: DLRM latency (ms) and throughput (inferences/s)",
        &["system", "latency (ms)", "throughput (inf/s)"],
        &rows,
    );
    println!(
        "\nverified messages: {}; latency ratio vs best-latency CPU: {:.0}x; \
         throughput ratio vs best CPU: {:.1}x",
        result.verified_messages,
        min_cpu_latency / fpga_latency_ms,
        fpga_tput / best_cpu_tput,
    );
    // Shape assertions.
    assert!(
        min_cpu_latency / fpga_latency_ms > 30.0,
        "hardware latency advantage must be large"
    );
    assert!(
        fpga_tput / best_cpu_tput > 5.0,
        "hardware throughput advantage must be large"
    );
}
