//! Figure 10: F2F collective latency — ACCL+ RDMA vs. software MPI RDMA
//! with device data, 8 ranks.
//!
//! ACCL+ executes the collective in hardware with direct network access;
//! the software baseline must haul device data over PCIe to host memory,
//! run the MPI collective, and haul results back (the Fig. 9 model).
//! Paper shape: ACCL+ wins across the board, by an order of magnitude at
//! small sizes.

use accl_bench::{accl_best_latency, mpi_f2f_model, print_table, size_label};
use accl_core::{BufLoc, CollOp};
use accl_swmpi::MpiConfig;

fn main() {
    let n = 8;
    let ops = [
        ("bcast", CollOp::Bcast),
        ("scatter", CollOp::Scatter),
        ("gather", CollOp::Gather),
        ("reduce", CollOp::Reduce),
        ("allreduce", CollOp::AllReduce),
        ("alltoall", CollOp::AllToAll),
    ];
    let sizes: Vec<u64> = (0..7).map(|i| 1024u64 << (2 * i)).collect(); // 1 KiB … 4 MiB
    for (name, op) in ops {
        let mut rows = Vec::new();
        let mut accl_wins_small = false;
        for &bytes in &sizes {
            let accl = accl_best_latency(n, op, bytes, BufLoc::Device);
            let mpi = mpi_f2f_model(n, MpiConfig::openmpi_rdma(), op, bytes, 5);
            let speedup = mpi.as_us_f64() / accl.as_us_f64();
            if bytes <= 4096 && speedup > 2.0 {
                accl_wins_small = true;
            }
            rows.push(vec![
                size_label(bytes),
                format!("{:.1}", accl.as_us_f64()),
                format!("{:.1}", mpi.as_us_f64()),
                format!("{speedup:.1}x"),
            ]);
        }
        print_table(
            &format!("Figure 10 ({name}): F2F latency (us), 8 ranks, device data"),
            &["size", "ACCL+ RDMA", "MPI RDMA (D2D model)", "speedup"],
            &rows,
        );
        assert!(
            accl_wins_small,
            "{name}: ACCL+ must win clearly at small sizes"
        );
    }
}
