//! Figure 13: collective performance on the XRT platform with TCP —
//! ACCL+ TCP vs. software MPI TCP vs. the legacy ACCL engine.
//!
//! Paper shape: ACCL+ TCP beats software MPI TCP everywhere (line-rate
//! hardware TCP), and beats ACCL because the RxBuf manager moved packet
//! reassembly out of the micro-controller. Serving *host* data on XRT pays
//! heavy staging + invocation overheads compared to device data.

use accl_bench::{
    accl_collective_latency, accl_collective_total, mpi_collective_latency, print_table, size_label,
};
use accl_core::{AcclCluster, BufLoc, ClusterConfig, CollOp};
use accl_swmpi::MpiConfig;

fn main() {
    let n = 8;
    let sizes: Vec<u64> = (0..7).map(|i| 1024u64 << (2 * i)).collect();
    for (name, op) in [("bcast", CollOp::Bcast), ("reduce", CollOp::Reduce)] {
        let mut rows = Vec::new();
        let mut acclplus_beats_legacy = 0usize;
        for &bytes in &sizes {
            let mut c = AcclCluster::build(ClusterConfig::xrt_tcp(n));
            let accl_dev = accl_collective_latency(&mut c, op, bytes, BufLoc::Device);
            let mut c = AcclCluster::build(ClusterConfig::xrt_tcp(n));
            let accl_host = accl_collective_total(&mut c, op, bytes, BufLoc::Host);
            let mut c = AcclCluster::build(ClusterConfig::legacy_accl_tcp(n));
            let legacy = accl_collective_latency(&mut c, op, bytes, BufLoc::Device);
            let mpi = mpi_collective_latency(n, MpiConfig::mpich_tcp(), op, bytes, 17);
            acclplus_beats_legacy += usize::from(legacy > accl_dev);
            rows.push(vec![
                size_label(bytes),
                format!("{:.1}", accl_dev.as_us_f64()),
                format!("{:.1}", legacy.as_us_f64()),
                format!("{:.1}", mpi.as_us_f64()),
                format!("{:.1}", accl_host.as_us_f64()),
            ]);
        }
        print_table(
            &format!("Figure 13 ({name}): XRT/TCP latency (us), 8 ranks"),
            &[
                "size",
                "ACCL+ (device)",
                "ACCL legacy (device)",
                "MPI TCP (host)",
                "ACCL+ (host, staged)",
            ],
            &rows,
        );
        assert!(
            acclplus_beats_legacy >= sizes.len() - 1,
            "{name}: ACCL+ must beat legacy ACCL ({acclplus_beats_legacy}/{})",
            sizes.len()
        );
    }
    // Host-data penalty on XRT: staging + invocation dominate small sizes.
    let mut c = AcclCluster::build(ClusterConfig::xrt_tcp(n));
    let host_small = accl_collective_total(&mut c, CollOp::Bcast, 4096, BufLoc::Host);
    let mut c = AcclCluster::build(ClusterConfig::xrt_tcp(n));
    let dev_small = accl_collective_latency(&mut c, CollOp::Bcast, 4096, BufLoc::Device);
    println!(
        "\nXRT host-vs-device overhead at 4K: {:.1}x",
        host_small.as_us_f64() / dev_small.as_us_f64()
    );
    assert!(host_small.as_us_f64() > 3.0 * dev_small.as_us_f64());
}
