//! Table 1: the collective algorithms used per synchronization protocol,
//! as selected by the engine's runtime configuration.

use accl_bench::print_table;
use accl_core::{AlgoConfig, Algorithm, CollOp};
use accl_swmpi::MpiConfig;

fn main() {
    let algo = AlgoConfig::default();
    let rows = vec![
        vec![
            "Bcast".to_string(),
            "One-to-all".to_string(),
            format!(
                "{:?} (<{} ranks); {:?} (>={} ranks)",
                algo.bcast(algo.bcast_recursive_min_ranks - 1, true),
                algo.bcast_recursive_min_ranks,
                algo.bcast(algo.bcast_recursive_min_ranks, true),
                algo.bcast_recursive_min_ranks
            ),
        ],
        vec![
            "Reduce".to_string(),
            format!("{:?}", algo.reduce_like(1024, false)),
            format!(
                "{:?} (<= {} KB); {:?} (larger)",
                algo.reduce_like(algo.tree_min_bytes, true),
                algo.tree_min_bytes >> 10,
                algo.reduce_like(algo.tree_min_bytes + 1, true)
            ),
        ],
        vec![
            "Gather".to_string(),
            format!("{:?}", algo.reduce_like(1024, false)),
            format!(
                "{:?} (small); {:?} (large)",
                algo.reduce_like(1024, true),
                algo.reduce_like(1 << 20, true)
            ),
        ],
        vec![
            "All-to-all".to_string(),
            "Linear".to_string(),
            "Linear".to_string(),
        ],
    ];
    print_table(
        "Table 1: ACCL+ collective algorithms (eager | rendezvous)",
        &["collective", "eager", "rendezvous"],
        &rows,
    );

    // Verify the Table 1 mappings hold.
    assert_eq!(algo.reduce_like(8 << 10, false), Algorithm::Ring);
    assert_eq!(algo.reduce_like(8 << 10, true), Algorithm::OneToAll);
    assert_eq!(algo.reduce_like(128 << 10, true), Algorithm::BinaryTree);
    assert_eq!(algo.bcast(4, true), Algorithm::OneToAll);
    assert_eq!(algo.bcast(8, true), Algorithm::RecursiveDoubling);
    assert_eq!(algo.bcast(8, false), Algorithm::OneToAll);

    // For contrast: the software baseline's finer-grained selection (§5).
    let mpi = MpiConfig::openmpi_rdma();
    let mut rows = Vec::new();
    for ranks in [2u32, 5, 8] {
        rows.push(vec![
            ranks.to_string(),
            format!("{:?}", mpi.algorithm(CollOp::Reduce, 8 << 10, ranks)),
            format!("{:?}", mpi.algorithm(CollOp::Reduce, 128 << 10, ranks)),
        ]);
    }
    print_table(
        "Software MPI reduce algorithm selection (Fig. 12 narrative)",
        &["ranks", "8KB", "128KB"],
        &rows,
    );
    println!("\nall Table 1 mappings verified");
}
