//! Figure 12: reduce latency vs. rank count at 8 KB and 128 KB.
//!
//! Paper shape: at 8 KB ACCL+'s all-to-one keeps latency nearly flat with
//! rank count; at 128 KB it switches to the binary tree, with latency
//! stepping up when the tree deepens and plateauing while depth is
//! constant. Software MPI's finer-grained algorithm switching (three
//! regimes at 8 KB) keeps it competitive in H2H.

use accl_bench::{
    accl_collective_latency_sync, coyote_cluster, mpi_collective_latency, print_table,
};
use accl_core::{AlgoConfig, BufLoc, CollOp, SyncProto};
use accl_swmpi::MpiConfig;

fn main() {
    let cfg = MpiConfig::openmpi_rdma();
    let algo = AlgoConfig::default();
    for &(bytes, label) in &[(8u64 * 1024, "8KB"), (128 * 1024, "128KB")] {
        let mut rows = Vec::new();
        let mut accl_series = Vec::new();
        for ranks in 2..=8usize {
            let mut c = coyote_cluster(ranks);
            // The paper's Fig. 12 reduce runs rendezvous: all-to-one at
            // 8 KB (flat in rank count), binary tree at 128 KB.
            let accl = accl_collective_latency_sync(
                &mut c,
                CollOp::Reduce,
                bytes,
                BufLoc::Device,
                SyncProto::Rendezvous,
            );
            let mpi = mpi_collective_latency(ranks, cfg, CollOp::Reduce, bytes, 13);
            let accl_algo = format!("{:?}", algo.reduce_like(bytes, true));
            let mpi_algo = format!("{:?}", cfg.algorithm(CollOp::Reduce, bytes, ranks as u32));
            accl_series.push(accl.as_us_f64());
            rows.push(vec![
                ranks.to_string(),
                format!("{:.1}", accl.as_us_f64()),
                accl_algo,
                format!("{:.1}", mpi.as_us_f64()),
                mpi_algo,
            ]);
        }
        print_table(
            &format!("Figure 12 ({label}): reduce latency (us) vs ranks"),
            &["ranks", "ACCL+", "ACCL+ algo", "MPI RDMA", "MPI algo"],
            &rows,
        );
        if bytes == 8 * 1024 {
            // All-to-one: shallow growth from 2 to 8 ranks.
            let growth = accl_series.last().unwrap() / accl_series.first().unwrap();
            assert!(
                growth < 4.0,
                "8KB all-to-one growth too steep: {growth:.2}x"
            );
        } else {
            // Tree: latency at 5..8 ranks (depth 3) stays within a band.
            let depth3: Vec<f64> = accl_series[3..].to_vec(); // ranks 5..=8
            let spread = depth3.iter().cloned().fold(f64::MIN, f64::max)
                / depth3.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                spread < 1.6,
                "128KB tree should plateau at constant depth: spread {spread:.2}"
            );
        }
    }
}
