//! # accl-bench — the paper-reproduction benchmark harness
//!
//! One bench target per table and figure of the ACCL+ evaluation. Each
//! target builds the relevant simulated systems, runs the paper's sweep,
//! and prints the series the figure plots (simulated metrics — latency in
//! µs, goodput in Gb/s). `cargo bench` runs them all; see EXPERIMENTS.md
//! for the paper-vs-measured record.

#![warn(missing_docs)]

use accl_core::driver::CollSpec;
use accl_core::host::HostOp;
use accl_core::{AcclCluster, BufLoc, BufferHandle, ClusterConfig, CollOp, DType};
use accl_sim::time::Dur;
use accl_swmpi::{MpiCall, MpiCluster, MpiConfig};

/// Standard message-size sweep (bytes): 1 KiB to 16 MiB by powers of 4.
pub fn size_sweep() -> Vec<u64> {
    (0..8).map(|i| 1024u64 << (2 * i)).collect()
}

/// Pretty-prints an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Goodput in Gb/s for `bytes` moved in `d`.
pub fn gbps(bytes: u64, d: Dur) -> f64 {
    d.goodput_gbps(bytes)
}

/// Human size label ("64K", "1M", ...).
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// The buffers allocated for one rank of an ACCL+ collective run.
pub struct RankBufs {
    /// Input buffer.
    pub src: BufferHandle,
    /// Output buffer.
    pub dst: BufferHandle,
}

/// Allocates per-rank src/dst buffers sized for `op` at `bytes` per block
/// and fills the inputs with a deterministic pattern.
pub fn alloc_collective_bufs(
    cluster: &mut AcclCluster,
    op: CollOp,
    bytes: u64,
    loc: BufLoc,
) -> Vec<RankBufs> {
    let n = cluster.len() as u64;
    let (src_len, dst_len) = match op {
        CollOp::Bcast | CollOp::Reduce | CollOp::AllReduce => (bytes, bytes),
        CollOp::Gather => (bytes, bytes * n),
        CollOp::Scatter => (bytes * n, bytes),
        CollOp::AllGather => (bytes, bytes * n),
        CollOp::AllToAll => (bytes * n, bytes * n),
        CollOp::ReduceScatter => (bytes * n, bytes),
        _ => (bytes, bytes),
    };
    (0..cluster.len())
        .map(|node| {
            let src = cluster.alloc(node, loc, src_len.max(4));
            let dst = cluster.alloc(node, loc, dst_len.max(4));
            let fill: Vec<u8> = (0..src_len)
                .map(|i| ((i * 31 + node as u64) % 251) as u8)
                .collect();
            cluster.write(&src, &fill);
            if op == CollOp::Bcast && node == 0 {
                let fill: Vec<u8> = (0..dst_len).map(|i| (i % 241) as u8).collect();
                cluster.write(&dst, &fill);
            }
            RankBufs { src, dst }
        })
        .collect()
}

/// Runs one ACCL+ collective on every rank and returns the slowest rank's
/// *collective-phase* latency (excluding invocation/staging — reported
/// separately by the breakdown benches).
pub fn accl_collective_latency(
    cluster: &mut AcclCluster,
    op: CollOp,
    bytes: u64,
    loc: BufLoc,
) -> Dur {
    accl_collective_latency_sync(cluster, op, bytes, loc, accl_core::SyncProto::Auto)
}

/// Like [`accl_collective_latency`] with an explicit synchronization
/// protocol (the paper reports "the better of eager and rendezvous").
pub fn accl_collective_latency_sync(
    cluster: &mut AcclCluster,
    op: CollOp,
    bytes: u64,
    loc: BufLoc,
    sync: accl_core::SyncProto,
) -> Dur {
    let bufs = alloc_collective_bufs(cluster, op, bytes, loc);
    let count = bytes / 4;
    let specs: Vec<CollSpec> = bufs
        .iter()
        .map(|b| {
            let mut s = CollSpec::new(op, count, DType::I32)
                .src(b.src)
                .dst(b.dst)
                .sync(sync);
            if op == CollOp::Bcast {
                s.src = None;
            }
            s
        })
        .collect();
    let records = cluster.host_collective(specs);
    records
        .iter()
        .map(|r| r.breakdown.unwrap().collective)
        .max()
        .unwrap()
}

/// The better of eager and rendezvous for one collective on a fresh
/// Coyote cluster (the paper's Fig. 10/11 presentation: "better
/// performance between eager and rendezvous collectives").
pub fn accl_best_latency(n: usize, op: CollOp, bytes: u64, loc: BufLoc) -> Dur {
    let mut c = coyote_cluster(n);
    let eagerish = accl_collective_latency_sync(&mut c, op, bytes, loc, accl_core::SyncProto::Auto);
    let mut c = coyote_cluster(n);
    let rndzv =
        accl_collective_latency_sync(&mut c, op, bytes, loc, accl_core::SyncProto::Rendezvous);
    eagerish.min(rndzv)
}

/// Runs one ACCL+ collective including the full host path (staging +
/// invocation + collective + staging out); returns the slowest total.
pub fn accl_collective_total(
    cluster: &mut AcclCluster,
    op: CollOp,
    bytes: u64,
    loc: BufLoc,
) -> Dur {
    let bufs = alloc_collective_bufs(cluster, op, bytes, loc);
    let count = bytes / 4;
    let specs: Vec<CollSpec> = bufs
        .iter()
        .map(|b| {
            let mut s = CollSpec::new(op, count, DType::I32).src(b.src).dst(b.dst);
            if op == CollOp::Bcast {
                s.src = None;
            }
            s
        })
        .collect();
    let records = cluster.host_collective(specs);
    records
        .iter()
        .map(|r| r.breakdown.unwrap().total)
        .max()
        .unwrap()
}

/// Runs one software-MPI collective; returns the slowest rank's latency.
pub fn mpi_collective_latency(n: usize, cfg: MpiConfig, op: CollOp, bytes: u64, seed: u64) -> Dur {
    let mut c = MpiCluster::build(n, cfg, seed);
    let count = bytes / 4;
    let calls: Vec<MpiCall> = (0..n)
        .map(|r| {
            let (src_len, dst_len) = match op {
                CollOp::Gather => (bytes, bytes * n as u64),
                CollOp::Scatter => (bytes * n as u64, bytes),
                CollOp::AllToAll => (bytes * n as u64, bytes * n as u64),
                _ => (bytes, bytes),
            };
            let src: Vec<u8> = (0..src_len)
                .map(|i| ((i * 13 + r as u64) % 251) as u8)
                .collect();
            MpiCall {
                op,
                count,
                dtype: DType::I32,
                root: 0,
                func: accl_core::ReduceFn::Sum,
                src,
                dst_len: dst_len as usize,
            }
        })
        .collect();
    c.collective(calls).into_iter().max().unwrap()
}

/// PCIe staging leg used by the "software MPI with FPGA data" model of
/// Fig. 9/10: moving `bytes` between card and host memory.
///
/// *Measured*, not derived: the leg runs one staging copy through the
/// simulated XDMA engine and memory bus (per-chunk PCIe round-trip
/// latency, streamed 4 KB chunks, full-duplex pipes) and returns the
/// observed completion time. Only the 5 µs descriptor/driver setup is a
/// calibration constant (Coyote host-DMA path); the serialization and
/// pipelining behaviour comes out of the same `accl-mem` components the
/// ACCL+ data path runs on.
pub fn pcie_leg(bytes: u64) -> Dur {
    use accl_mem::bus::{MemBusConfig, MemoryBus};
    use accl_mem::xdma::{self, XdmaCopy, XdmaDir, XdmaDone, XdmaEngine};
    use accl_sim::event::Endpoint;
    use accl_sim::mailbox::Mailbox;
    use accl_sim::sim::Simulator;
    use accl_sim::time::Time;

    let mut sim = Simulator::new(9);
    let bus = sim.add("bus", MemoryBus::new(MemBusConfig::default()));
    let eng = sim.add("xdma", XdmaEngine::new(bus, 5));
    let done = sim.add("done", Mailbox::<XdmaDone>::new());
    sim.component_mut::<MemoryBus>(bus)
        .device_write(0, &vec![0u8; bytes as usize]);
    sim.post(
        Endpoint::new(eng, xdma::ports::COPY),
        Time::ZERO,
        XdmaCopy {
            dir: XdmaDir::DeviceToHost,
            host_addr: 0,
            dev_addr: 0,
            len: bytes,
            done_to: Endpoint::of(done),
            tag: 0,
            span: accl_sim::trace::SpanId::NONE,
        },
    );
    sim.run();
    let mb = sim.component::<Mailbox<XdmaDone>>(done);
    assert_eq!(mb.len(), 1, "staging copy must complete");
    mb.items()[0].0.since(Time::ZERO)
}

/// The modelled end-to-end device-data latency for software MPI (paper §5,
/// Fig. 9): PCIe out + MPI collective + PCIe back + kernel invocation.
pub fn mpi_f2f_model(n: usize, cfg: MpiConfig, op: CollOp, bytes: u64, seed: u64) -> Dur {
    let coll = mpi_collective_latency(n, cfg, op, bytes, seed);
    let invoke = ClusterConfig::coyote_rdma(2).invocation_latency();
    pcie_leg(bytes) + coll + pcie_leg(bytes) + invoke
}

/// A standard Coyote-RDMA cluster for ACCL+ measurements.
pub fn coyote_cluster(n: usize) -> AcclCluster {
    AcclCluster::build(ClusterConfig::coyote_rdma(n))
}

/// Mean of the collective-phase latencies over `reps` repetitions with
/// fresh clusters (deterministic but averaged as the paper averages 250
/// runs; our simulator is deterministic so a few reps suffice to cover
/// allocation layouts).
pub fn averaged<F: FnMut(u64) -> Dur>(reps: u64, mut f: F) -> Dur {
    let total: u64 = (0..reps).map(|i| f(i).as_ps()).sum();
    Dur::from_ps(total / reps)
}

/// Re-export for bench binaries.
pub use accl_core::host::Program;

/// Builds a host program of compute + collective for the GEMV use case.
pub fn compute_then_coll(compute: Dur, spec: CollSpec) -> Vec<HostOp> {
    Program::new().compute(compute).coll(spec).build()
}
