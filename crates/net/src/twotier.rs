//! Two-tier (leaf–spine) fabric topology.
//!
//! The evaluation cluster attaches nodes to Cisco Nexus switches (plural);
//! when a communicator spans leaves, cross-leaf traffic pays two extra
//! hops through a spine. This module composes the single-switch model into
//! a leaf–spine fabric: each node hangs off a leaf switch, each leaf has an
//! uplink to one spine, and forwarding picks the local port or the uplink
//! by destination.

use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue};

use crate::frame::{Frame, NodeAddr};
use crate::switch::NetPort;
use crate::topology::NetConfig;

/// A leaf or spine switch with leaf-aware forwarding.
///
/// Unlike [`crate::switch::Switch`], ports here are heterogeneous: node
/// ports deliver to attached receivers, the uplink forwards to the other
/// tier. Forwarding is by destination address through a static route table.
struct TierSwitch {
    forward_latency: Dur,
    propagation: Dur,
    /// For each destination node: `Some(port_index)` if local, else uplink.
    routes: Vec<Option<usize>>,
    /// Per local port: (egress pipe, receiver endpoint).
    ports: Vec<(Pipe, Option<Endpoint>)>,
    /// Uplink: (egress pipe, peer switch endpoint). `None` for a spine
    /// that owns routes to everything.
    uplink: Option<(Pipe, Endpoint)>,
}

impl TierSwitch {
    fn new(
        n_nodes_total: usize,
        local_ports: usize,
        cfg: &NetConfig,
        uplink: Option<Endpoint>,
    ) -> Self {
        TierSwitch {
            forward_latency: cfg.switch_latency(),
            propagation: cfg.propagation(),
            routes: vec![None; n_nodes_total],
            ports: (0..local_ports)
                .map(|_| (Pipe::gbps(cfg.link_gbps), None))
                .collect(),
            uplink: uplink.map(|ep| (Pipe::gbps(cfg.link_gbps), ep)),
        }
    }
}

impl Component for TierSwitch {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        let frame = payload.downcast::<Frame>();
        let dst = frame.dst.index();
        let wire = u64::from(frame.wire_bytes());
        let ready = ctx.now() + self.forward_latency;
        let (start, end, to) = match self.routes.get(dst).copied().flatten() {
            Some(local_port) => {
                let (pipe, rx) = &mut self.ports[local_port];
                let rx =
                    rx.unwrap_or_else(|| panic!("two-tier port for {} has no receiver", frame.dst));
                let (start, end) = pipe.reserve(ready, wire);
                (start, end, rx)
            }
            None => {
                let (pipe, up) = self
                    .uplink
                    .as_mut()
                    .unwrap_or_else(|| panic!("no route to {} and no uplink", frame.dst));
                let (start, end) = pipe.reserve(ready, wire);
                (start, end, *up)
            }
        };
        ctx.stats().add("net.tier.bytes", wire);
        ctx.stats()
            .observe("net.tier.queue_wait_ps", (start - ready).as_ps());
        if ctx.spans_enabled() {
            if start > ready {
                ctx.span_interval("net.queue", frame.span, ready, start);
            }
            ctx.span_interval_attrs(
                "net.hop",
                frame.span,
                start,
                end + self.propagation,
                &[Attr {
                    key: "bytes",
                    value: AttrValue::Bytes(wire),
                }],
            );
        }
        ctx.send_at(to, end + self.propagation, frame);
    }

    fn state_digest(&self) -> Option<u64> {
        // The externally-meaningful switch state is its egress occupancy:
        // each pipe's next-free instant. Two runs that forwarded the same
        // frames agree on every reservation horizon regardless of
        // same-timestamp arrival order (reservations serialize to the same
        // end time either way).
        let mut h = 0u64;
        for (pipe, _) in &self.ports {
            accl_sim::digest::fnv_fold(&mut h, &pipe.next_free().as_ps().to_le_bytes());
        }
        if let Some((pipe, _)) = &self.uplink {
            accl_sim::digest::fnv_fold(&mut h, &pipe.next_free().as_ps().to_le_bytes());
        }
        Some(h)
    }
}

/// A built leaf–spine fabric.
pub struct TwoTierNetwork {
    ports: Vec<ComponentId>,
    leaf_ids: Vec<ComponentId>,
    leaf_of: Vec<usize>,
    cfg: NetConfig,
}

impl TwoTierNetwork {
    /// Builds a fabric with `leaf_sizes[l]` nodes on leaf `l`, one spine.
    ///
    /// Node indices are assigned leaf by leaf: leaf 0 gets nodes
    /// `0..leaf_sizes[0]`, and so on.
    pub fn build(sim: &mut Simulator, cfg: NetConfig, leaf_sizes: &[usize]) -> TwoTierNetwork {
        assert!(!leaf_sizes.is_empty(), "need at least one leaf");
        let total: usize = leaf_sizes.iter().sum();
        let spine_id = sim.reserve("net.spine");
        let mut leaf_ids = Vec::new();
        let mut leaf_of = Vec::new();
        for (l, &n) in leaf_sizes.iter().enumerate() {
            let id = sim.reserve(format!("net.leaf{l}"));
            leaf_ids.push(id);
            leaf_of.extend(std::iter::repeat_n(l, n));
        }
        // Spine: routes every node to the port of its leaf.
        let mut spine = TierSwitch::new(total, leaf_sizes.len(), &cfg, None);
        let mut node = 0usize;
        for (l, &n) in leaf_sizes.iter().enumerate() {
            for _ in 0..n {
                spine.routes[node] = Some(l);
                node += 1;
            }
            spine.ports[l].1 = Some(Endpoint::of(leaf_ids[l]));
        }
        sim.install(spine_id, spine);
        // Leaves: local node ports + an uplink to the spine.
        let mut ports = Vec::new();
        let mut node = 0usize;
        for (l, &n) in leaf_sizes.iter().enumerate() {
            let mut leaf = TierSwitch::new(total, n, &cfg, Some(Endpoint::of(spine_id)));
            for local in 0..n {
                leaf.routes[node] = Some(local);
                let port = sim.add(
                    format!("net.l{l}.port{local}"),
                    NetPort::new(
                        NodeAddr(node as u32),
                        Endpoint::of(leaf_ids[l]),
                        cfg.link_gbps,
                        cfg.propagation(),
                    ),
                );
                ports.push(port);
                node += 1;
            }
            sim.install(leaf_ids[l], leaf);
        }
        TwoTierNetwork {
            ports,
            leaf_ids,
            leaf_of,
            cfg,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// Whether the fabric has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Which leaf node `i` hangs off.
    pub fn leaf_of(&self, i: usize) -> usize {
        self.leaf_of[i]
    }

    /// The fabric address of node `i`.
    pub fn addr(&self, i: usize) -> NodeAddr {
        NodeAddr(i as u32)
    }

    /// The endpoint node `i`'s device transmits frames to.
    pub fn tx(&self, i: usize) -> Endpoint {
        Endpoint::of(self.ports[i])
    }

    /// Attaches the receive handler for node `i` (on its leaf's port).
    pub fn attach_rx(&self, sim: &mut Simulator, i: usize, rx: Endpoint) {
        let leaf = self.leaf_of[i];
        let local = (0..i).filter(|&j| self.leaf_of[j] == leaf).count();
        sim.component_mut::<TierSwitch>(self.leaf_ids[leaf]).ports[local].1 = Some(rx);
    }

    /// The physical-layer configuration.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // node indices address parallel sink arrays
mod tests {
    use super::*;
    use accl_sim::mailbox::Mailbox;

    fn world(leaf_sizes: &[usize]) -> (Simulator, TwoTierNetwork, Vec<ComponentId>) {
        let mut sim = Simulator::new(0);
        let net = TwoTierNetwork::build(&mut sim, NetConfig::default(), leaf_sizes);
        let sinks: Vec<ComponentId> = (0..net.len())
            .map(|i| {
                let s = sim.add(format!("sink{i}"), Mailbox::<Frame>::new());
                net.attach_rx(&mut sim, i, Endpoint::of(s));
                s
            })
            .collect();
        (sim, net, sinks)
    }

    #[test]
    fn same_leaf_beats_cross_leaf() {
        let (mut sim, net, sinks) = world(&[2, 2]);
        // 0→1 same leaf; 0→2 cross leaf.
        for dst in [1usize, 2] {
            sim.post(
                net.tx(0),
                sim.now(),
                Frame::new(net.addr(0), net.addr(dst), 1000, dst as u32),
            );
        }
        sim.run();
        let t_same = sim.component::<Mailbox<Frame>>(sinks[1]).items()[0].0;
        let t_cross = sim.component::<Mailbox<Frame>>(sinks[2]).items()[0].0;
        assert!(
            t_cross > t_same,
            "cross-leaf {t_cross} vs same-leaf {t_same}"
        );
        // Two extra store-and-forward hops: ≥ 2×(latency + serialization).
        let extra = t_cross - t_same;
        assert!(extra.as_ns_f64() > 1000.0, "extra = {extra}");
    }

    #[test]
    fn all_pairs_are_reachable() {
        let (mut sim, net, sinks) = world(&[2, 3, 1]);
        let n = net.len();
        for src in 0..n {
            for dst in 0..n {
                if src != dst {
                    sim.post(
                        net.tx(src),
                        sim.now(),
                        Frame::new(net.addr(src), net.addr(dst), 64, (src * 10 + dst) as u32),
                    );
                }
            }
        }
        sim.run();
        for dst in 0..n {
            assert_eq!(
                sim.component::<Mailbox<Frame>>(sinks[dst]).len(),
                n - 1,
                "dst {dst}"
            );
        }
        assert_eq!(net.leaf_of(0), 0);
        assert_eq!(net.leaf_of(4), 1);
        assert_eq!(net.leaf_of(5), 2);
    }

    #[test]
    fn spine_uplink_is_the_shared_bottleneck() {
        // Two leaves of 2; both nodes of leaf 0 blast leaf 1 concurrently:
        // their frames serialize on leaf 0's single uplink.
        let (mut sim, net, sinks) = world(&[2, 2]);
        for src in 0..2usize {
            sim.post(
                net.tx(src),
                sim.now(),
                Frame::new(net.addr(src), net.addr(2 + src), 4096, src as u32),
            );
        }
        sim.run();
        let t2 = sim.component::<Mailbox<Frame>>(sinks[2]).items()[0].0;
        let t3 = sim.component::<Mailbox<Frame>>(sinks[3]).items()[0].0;
        let gap = if t3 > t2 { t3 - t2 } else { t2 - t3 };
        let ser = Dur::for_bytes_gbps(u64::from(4096 + crate::frame::WIRE_OVERHEAD_BYTES), 100.0);
        assert!(
            gap >= ser / 2,
            "uplink contention must separate arrivals: gap {gap} vs ser {ser}"
        );
    }
}
