//! Fault injection: frame drops, reordering, link-state schedules and
//! whole-node crashes.
//!
//! The paper's UDP path is unreliable and its TCP POE must survive loss and
//! out-of-order delivery; these policies let tests and benchmarks inject
//! such conditions deterministically (by frame index, by simulated-time
//! window, or by crash time) or statistically (by probability, driven by
//! the simulation's seeded RNG). Everything here is a pure function of
//! `(frame index, simulated time, seeded RNG)`, so fault timelines replay
//! bit-for-bit under the same seed.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use accl_sim::time::{Dur, Time};

use crate::frame::{Frame, NodeAddr};

/// A predicate deciding whether a frame should be dropped.
pub type FramePredicate = Box<dyn Fn(&Frame) -> bool + Send>;

/// What the switch should do with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward normally.
    Forward,
    /// Silently drop.
    Drop,
    /// Forward, but add this much extra delay (causes reordering).
    Delay(Dur),
    /// Forward with a flipped FCS: the receiving POE sees a checksum
    /// mismatch and must discard the frame (transient bit corruption).
    Corrupt,
    /// Forward the frame *and* an identical copy right behind it
    /// (duplication, e.g. from a spurious retransmit in the fabric).
    Duplicate,
}

/// A time-scheduled link-state model: a list of `[down, up)` windows
/// during which the link is dark and every frame traversing it is lost.
///
/// Windows are kept sorted by start time, so membership is a binary
/// search regardless of how many flaps a schedule describes.
#[derive(Debug, Default, Clone)]
pub struct LinkSchedule {
    /// Sorted, non-overlapping `[down, up)` windows.
    windows: Vec<(Time, Time)>,
}

impl LinkSchedule {
    /// An always-up link.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a `[from, until)` outage window. Windows may be added in any
    /// order; overlapping windows are merged.
    pub fn down(mut self, from: Time, until: Time) -> Self {
        assert!(from < until, "empty outage window");
        self.windows.push((from, until));
        self.windows.sort();
        // Merge overlaps so binary search sees disjoint windows.
        let mut merged: Vec<(Time, Time)> = Vec::with_capacity(self.windows.len());
        for (lo, hi) in self.windows.drain(..) {
            match merged.last_mut() {
                Some((_, prev_hi)) if lo <= *prev_hi => *prev_hi = (*prev_hi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        self.windows = merged;
        self
    }

    /// Whether the link is dark at time `t`.
    pub fn is_down(&self, t: Time) -> bool {
        // Last window starting at or before `t`.
        let i = self.windows.partition_point(|&(lo, _)| lo <= t);
        i > 0 && t < self.windows[i - 1].1
    }

    /// Whether this schedule contains no outage windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The sorted, disjoint `[down, up)` windows of this schedule.
    pub fn windows(&self) -> &[(Time, Time)] {
        &self.windows
    }
}

/// A `[from, until)` window during which a link is degraded — not dark,
/// but lossy and/or slower than its nominal rate. Composes with
/// [`LinkSchedule`]: an outage window (total loss) takes precedence over
/// any overlapping degradation.
///
/// Intensities are integers so degradations round-trip exactly through
/// the JSON repro format and hash/compare without float caveats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degradation {
    /// Window start (inclusive).
    pub from: Time,
    /// Window end (exclusive).
    pub until: Time,
    /// Extra i.i.d. frame loss while active, in parts per million.
    pub loss_ppm: u32,
    /// Residual link bandwidth in hundredths of Gb/s (e.g. `2_500` =
    /// 25 Gb/s); `0` means the window does not throttle. Throttling is
    /// modelled as an extra per-frame delay: the time the frame's wire
    /// bytes take at the residual rate (the nominal-rate serialization is
    /// still paid at the egress pipe).
    pub throttle_gbps_x100: u32,
}

/// A `[from, until)` window during which the fabric is split in two: the
/// nodes whose bit is set in `mask` can only reach each other, and likewise
/// for the nodes whose bit is clear. Frames crossing the cut are lost.
///
/// The mask is a plain `u64` bitmap over port numbers, so a partition is
/// `Copy`, hashes exactly, and round-trips through the integer-only JSON
/// repro format without any set encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Bitmap over node addresses: bit `n` set places `NodeAddr(n)` on
    /// side A, clear places it on side B.
    pub mask: u64,
    /// Window start (inclusive).
    pub from: Time,
    /// Window end (exclusive) — the instant the partition heals.
    pub until: Time,
}

impl Partition {
    /// Whether the partition is active at time `t`.
    pub fn active(&self, t: Time) -> bool {
        self.from <= t && t < self.until
    }

    /// Whether `src` and `dst` sit on opposite sides of the cut.
    pub fn severs(&self, src: NodeAddr, dst: NodeAddr) -> bool {
        let side = |a: NodeAddr| (self.mask >> (u64::from(a.0) & 63)) & 1;
        side(src) != side(dst)
    }
}

impl Degradation {
    /// Whether the window is active at time `t`.
    pub fn active(&self, t: Time) -> bool {
        self.from <= t && t < self.until
    }

    /// Extra loss probability while active.
    pub fn loss_probability(&self) -> f64 {
        f64::from(self.loss_ppm.min(1_000_000)) / 1e6
    }

    /// Extra serialization delay for a frame of `wire_bytes`, if the
    /// window throttles.
    pub fn throttle_delay(&self, wire_bytes: u64) -> Option<Dur> {
        (self.throttle_gbps_x100 > 0)
            .then(|| Dur::for_bytes_gbps(wire_bytes, f64::from(self.throttle_gbps_x100) / 100.0))
    }
}

/// A fault-injection policy applied to every frame traversing the switch.
///
/// # Determinism
///
/// [`FaultPlan::decide`] draws from the switch's seeded RNG *lazily*: a
/// draw happens only when the corresponding probability is nonzero (and
/// no earlier rule already decided the frame's fate). Installing a plan
/// whose probabilistic knobs are all zero therefore never perturbs the
/// RNG stream — explicit indices, windows and crashes replay bit-for-bit
/// regardless of what other plans did to unrelated streams.
///
/// Probabilities assigned directly to the public fields are clamped into
/// `[0, 1]` at decision time; the constructors additionally assert the
/// range so typos fail fast.
#[derive(Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` of dropping any given frame.
    pub drop_probability: f64,
    /// Probability in `[0, 1]` of delaying a frame by `reorder_delay`.
    pub reorder_probability: f64,
    /// Probability in `[0, 1]` of corrupting a frame (FCS flip).
    pub corrupt_probability: f64,
    /// Probability in `[0, 1]` of duplicating a frame.
    pub duplicate_probability: f64,
    /// Extra delay applied to reordered frames.
    pub reorder_delay: Dur,
    /// Explicit global frame indices to drop (deterministic loss).
    /// Sorted set: membership is O(log n) however long the schedule.
    pub drop_indices: BTreeSet<u64>,
    /// Explicit global frame indices to delay by `reorder_delay`.
    pub delay_indices: BTreeSet<u64>,
    /// Explicit global frame indices to corrupt (FCS flip).
    pub corrupt_indices: BTreeSet<u64>,
    /// Explicit global frame indices to duplicate.
    pub duplicate_indices: BTreeSet<u64>,
    /// Optional predicate; frames matching it are dropped.
    pub drop_if: Option<FramePredicate>,
    /// Per-port link outage schedules; frames whose source or destination
    /// link is dark are lost.
    pub link_schedules: BTreeMap<NodeAddr, LinkSchedule>,
    /// Per-port degradation windows (elevated loss / reduced bandwidth),
    /// kept sorted by window start. The first active window wins when
    /// windows overlap.
    pub degradations: BTreeMap<NodeAddr, Vec<Degradation>>,
    /// Whole-node crash times; from the crash instant on, the switch
    /// blackholes every frame to or from the node (until a matching
    /// restart in `node_restarts`, if any).
    pub node_crashes: BTreeMap<NodeAddr, Time>,
    /// Node restart times: a crashed node whose restart instant has passed
    /// is live again (a fresh incarnation — the cluster re-announces it,
    /// fences its old epoch and re-admits it via `Communicator::expand`).
    /// A restart at or before the node's crash time is ignored.
    pub node_restarts: BTreeMap<NodeAddr, Time>,
    /// Fabric partition windows: while active, frames crossing the bitmap
    /// cut are lost in both directions. Kept sorted by `(from, until,
    /// mask)` for canonical event order.
    pub partitions: Vec<Partition>,
    /// Overload fault: at `.1`, leak `.2` tx-window credits from node
    /// `.0`'s protocol engine (they are consumed and never returned,
    /// permanently shrinking the window — the canonical cause of a
    /// credit-starvation wedge). Not applied by [`FaultPlan::decide`];
    /// the cluster extracts these as control events at build time.
    pub credit_leaks: BTreeSet<(NodeAddr, Time, u32)>,
    /// Overload fault: at `.1`, pause node `.0`'s NIC for `.2` regardless
    /// of actual egress occupancy (a PFC pause storm). Extracted as
    /// control events, not applied by `decide`.
    pub pause_storms: BTreeSet<(NodeAddr, Time, Dur)>,
    /// Overload fault: at `.1`, shrink node `.0`'s bounded RX buffer pool
    /// to `.2` buffers. Extracted as control events, not applied by
    /// `decide`.
    pub buf_shrinks: BTreeSet<(NodeAddr, Time, u32)>,
}

fn assert_probability(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    p
}

impl FaultPlan {
    /// A policy that never interferes.
    pub fn none() -> Self {
        Self::default()
    }

    /// A policy dropping frames i.i.d. with probability `p`.
    pub fn random_loss(p: f64) -> Self {
        FaultPlan {
            drop_probability: assert_probability(p),
            ..Self::default()
        }
    }

    /// A policy corrupting frames i.i.d. with probability `p`.
    pub fn random_corruption(p: f64) -> Self {
        FaultPlan {
            corrupt_probability: assert_probability(p),
            ..Self::default()
        }
    }

    /// A policy duplicating frames i.i.d. with probability `p`.
    pub fn random_duplication(p: f64) -> Self {
        FaultPlan {
            duplicate_probability: assert_probability(p),
            ..Self::default()
        }
    }

    /// A policy corrupting exactly the frames with the given indices.
    pub fn corrupt_frames(indices: impl IntoIterator<Item = u64>) -> Self {
        FaultPlan {
            corrupt_indices: indices.into_iter().collect(),
            ..Self::default()
        }
    }

    /// A policy duplicating exactly the frames with the given indices.
    pub fn duplicate_frames(indices: impl IntoIterator<Item = u64>) -> Self {
        FaultPlan {
            duplicate_indices: indices.into_iter().collect(),
            ..Self::default()
        }
    }

    /// A policy dropping exactly the frames with the given global indices.
    pub fn drop_frames(indices: impl IntoIterator<Item = u64>) -> Self {
        FaultPlan {
            drop_indices: indices.into_iter().collect(),
            ..Self::default()
        }
    }

    /// A policy delaying the given frames by `delay` (forcing reordering).
    pub fn delay_frames(indices: impl IntoIterator<Item = u64>, delay: Dur) -> Self {
        FaultPlan {
            delay_indices: indices.into_iter().collect(),
            reorder_delay: delay,
            ..Self::default()
        }
    }

    /// A policy taking `addr`'s link down for `[from, until)`.
    pub fn link_down(addr: NodeAddr, from: Time, until: Time) -> Self {
        Self::default().with_link_down(addr, from, until)
    }

    /// A policy crashing `addr` (fail-stop) at time `at`.
    pub fn node_crash(addr: NodeAddr, at: Time) -> Self {
        Self::default().with_node_crash(addr, at)
    }

    /// Adds an outage window for `addr`'s link to this plan.
    pub fn with_link_down(mut self, addr: NodeAddr, from: Time, until: Time) -> Self {
        let sched = self.link_schedules.remove(&addr).unwrap_or_default();
        self.link_schedules.insert(addr, sched.down(from, until));
        self
    }

    /// Adds a fail-stop crash of `addr` at time `at` to this plan.
    /// If the node already has a crash time, the earlier one wins.
    pub fn with_node_crash(mut self, addr: NodeAddr, at: Time) -> Self {
        let at = self.node_crashes.get(&addr).map_or(at, |&t| t.min(at));
        self.node_crashes.insert(addr, at);
        self
    }

    /// Adds a node restart at time `at` to this plan: the node's crash
    /// window becomes `[crash, at)` instead of `[crash, ∞)`. If the node
    /// already has a restart time, the earlier one wins (mirroring
    /// [`FaultPlan::with_node_crash`]).
    pub fn with_node_restart(mut self, addr: NodeAddr, at: Time) -> Self {
        let at = self.node_restarts.get(&addr).map_or(at, |&t| t.min(at));
        self.node_restarts.insert(addr, at);
        self
    }

    /// Adds a fabric partition window to this plan.
    pub fn with_partition(mut self, mask: u64, from: Time, until: Time) -> Self {
        assert!(from < until, "empty partition window");
        self.partitions.push(Partition { mask, from, until });
        self.partitions.sort_by_key(|p| (p.from, p.until, p.mask));
        self
    }

    /// Adds a credit-leak overload fault: at `at`, `credits` tx-window
    /// credits vanish from `addr`'s protocol engine.
    pub fn with_credit_leak(mut self, addr: NodeAddr, at: Time, credits: u32) -> Self {
        assert!(credits >= 1, "leaking zero credits is a no-op");
        self.credit_leaks.insert((addr, at, credits));
        self
    }

    /// Adds a pause-storm overload fault: at `at`, `addr`'s NIC is paused
    /// for `hold` irrespective of egress occupancy.
    pub fn with_pause_storm(mut self, addr: NodeAddr, at: Time, hold: Dur) -> Self {
        assert!(hold > Dur::ZERO, "empty pause storm");
        self.pause_storms.insert((addr, at, hold));
        self
    }

    /// Adds a buffer-pool-shrink overload fault: at `at`, `addr`'s bounded
    /// RX buffer pool shrinks to `bufs` buffers.
    pub fn with_buf_shrink(mut self, addr: NodeAddr, at: Time, bufs: u32) -> Self {
        self.buf_shrinks.insert((addr, at, bufs));
        self
    }

    /// Whether the plan carries any overload control faults (credit leaks,
    /// pause storms, buffer shrinks) — the kinds the cluster must extract
    /// and post as control events rather than leave to the switch.
    pub fn has_overload_faults(&self) -> bool {
        !self.credit_leaks.is_empty()
            || !self.pause_storms.is_empty()
            || !self.buf_shrinks.is_empty()
    }

    /// Adds a degradation window for `addr`'s link to this plan.
    pub fn with_degradation(mut self, addr: NodeAddr, window: Degradation) -> Self {
        assert!(window.from < window.until, "empty degradation window");
        let windows = self.degradations.entry(addr).or_default();
        windows.push(window);
        windows.sort_by_key(|w| (w.from, w.until, w.loss_ppm, w.throttle_gbps_x100));
        self
    }

    /// The first active degradation window for `addr` at time `now`.
    pub fn active_degradation(&self, addr: NodeAddr, now: Time) -> Option<&Degradation> {
        self.degradations
            .get(&addr)
            .and_then(|ws| ws.iter().find(|w| w.active(now)))
    }

    /// The crash time of `addr`, if one is scheduled.
    pub fn crash_time(&self, addr: NodeAddr) -> Option<Time> {
        self.node_crashes.get(&addr).copied()
    }

    /// The restart time of `addr`, if one is scheduled *and* it lands
    /// strictly after the node's crash (a restart without a preceding
    /// crash, or at/before it, is meaningless and ignored).
    pub fn restart_time(&self, addr: NodeAddr) -> Option<Time> {
        let crash = self.crash_time(addr)?;
        self.node_restarts
            .get(&addr)
            .copied()
            .filter(|&r| r > crash)
    }

    /// Whether `addr` is down at time `now`: crashed, and not yet past its
    /// restart instant (if one is scheduled).
    pub fn is_crashed(&self, addr: NodeAddr, now: Time) -> bool {
        match (self.crash_time(addr), self.restart_time(addr)) {
            (Some(crash), Some(restart)) => now >= crash && now < restart,
            (Some(crash), None) => now >= crash,
            (None, _) => false,
        }
    }

    /// The first partition window severing `src` from `dst` at `now`.
    pub fn severing_partition(
        &self,
        src: NodeAddr,
        dst: NodeAddr,
        now: Time,
    ) -> Option<&Partition> {
        self.partitions
            .iter()
            .find(|p| p.active(now) && p.severs(src, dst))
    }

    /// Whether this plan can never interfere with traffic.
    pub fn is_transparent(&self) -> bool {
        self.drop_probability == 0.0
            && self.reorder_probability == 0.0
            && self.corrupt_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.drop_indices.is_empty()
            && self.delay_indices.is_empty()
            && self.corrupt_indices.is_empty()
            && self.duplicate_indices.is_empty()
            && self.drop_if.is_none()
            && self.link_schedules.values().all(LinkSchedule::is_empty)
            && self.degradations.values().all(Vec::is_empty)
            && self.node_crashes.is_empty()
            && self.partitions.is_empty()
            && !self.has_overload_faults()
    }

    /// Decides the fate of the `index`-th frame traversing the switch at
    /// simulated time `now`.
    ///
    /// Rules are checked in a fixed order (crashes, outages, degradation
    /// loss, explicit indices, predicate, degradation throttle,
    /// probabilistic knobs) and the first matching rule wins. RNG draws
    /// happen lazily: only for a nonzero probability whose turn is
    /// reached, so purely explicit plans never consume entropy.
    pub fn decide(&self, index: u64, now: Time, frame: &Frame, rng: &mut StdRng) -> FaultAction {
        if self.is_crashed(frame.src, now) || self.is_crashed(frame.dst, now) {
            return FaultAction::Drop;
        }
        if self.severing_partition(frame.src, frame.dst, now).is_some() {
            return FaultAction::Drop;
        }
        for addr in [frame.src, frame.dst] {
            if let Some(sched) = self.link_schedules.get(&addr) {
                if sched.is_down(now) {
                    return FaultAction::Drop;
                }
            }
        }
        // Degradation loss: the worse of the two attached links applies.
        let degradation = [frame.src, frame.dst]
            .into_iter()
            .filter_map(|a| self.active_degradation(a, now))
            .max_by_key(|w| (w.loss_ppm, w.throttle_gbps_x100));
        if let Some(w) = degradation {
            let p = w.loss_probability();
            if p > 0.0 && rng.random_bool(p) {
                return FaultAction::Drop;
            }
        }
        if self.drop_indices.contains(&index) {
            return FaultAction::Drop;
        }
        if let Some(pred) = &self.drop_if {
            if pred(frame) {
                return FaultAction::Drop;
            }
        }
        if self.corrupt_indices.contains(&index) {
            return FaultAction::Corrupt;
        }
        if self.duplicate_indices.contains(&index) {
            return FaultAction::Duplicate;
        }
        if self.delay_indices.contains(&index) {
            return FaultAction::Delay(self.reorder_delay);
        }
        if let Some(extra) = degradation.and_then(|w| w.throttle_delay(frame.wire_bytes() as u64)) {
            return FaultAction::Delay(extra);
        }
        let clamp = |p: f64| p.clamp(0.0, 1.0);
        if self.drop_probability > 0.0 && rng.random_bool(clamp(self.drop_probability)) {
            return FaultAction::Drop;
        }
        if self.corrupt_probability > 0.0 && rng.random_bool(clamp(self.corrupt_probability)) {
            return FaultAction::Corrupt;
        }
        if self.duplicate_probability > 0.0 && rng.random_bool(clamp(self.duplicate_probability)) {
            return FaultAction::Duplicate;
        }
        if self.reorder_probability > 0.0 && rng.random_bool(clamp(self.reorder_probability)) {
            return FaultAction::Delay(self.reorder_delay);
        }
        FaultAction::Forward
    }

    /// Whether the plan consists only of explicit, enumerable faults (no
    /// probabilistic knobs, no opaque predicate) and thus round-trips
    /// losslessly through [`FaultPlan::to_events`].
    pub fn is_explicit(&self) -> bool {
        self.drop_probability == 0.0
            && self.reorder_probability == 0.0
            && self.corrupt_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.drop_if.is_none()
    }

    /// Decomposes the plan's explicit faults into a flat event list (the
    /// unit of delta-debugging shrinking and of the JSON repro format).
    /// Probabilistic knobs and `drop_if` are not representable; callers
    /// should check [`FaultPlan::is_explicit`] when a lossless round trip
    /// matters.
    pub fn to_events(&self) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for &i in &self.drop_indices {
            events.push(FaultEvent::Drop { index: i });
        }
        for &i in &self.corrupt_indices {
            events.push(FaultEvent::Corrupt { index: i });
        }
        for &i in &self.duplicate_indices {
            events.push(FaultEvent::Duplicate { index: i });
        }
        for &i in &self.delay_indices {
            events.push(FaultEvent::Delay {
                index: i,
                by: self.reorder_delay,
            });
        }
        for (&node, sched) in &self.link_schedules {
            for &(from, until) in sched.windows() {
                events.push(FaultEvent::LinkDown { node, from, until });
            }
        }
        for (&node, windows) in &self.degradations {
            for &window in windows {
                events.push(FaultEvent::Degrade { node, window });
            }
        }
        for (&node, &at) in &self.node_crashes {
            events.push(FaultEvent::Crash { node, at });
        }
        for &(node, at, credits) in &self.credit_leaks {
            events.push(FaultEvent::CreditLeak { node, at, credits });
        }
        for &(node, at, hold) in &self.pause_storms {
            events.push(FaultEvent::PauseStorm { node, at, hold });
        }
        for &(node, at, bufs) in &self.buf_shrinks {
            events.push(FaultEvent::BufShrink { node, at, bufs });
        }
        // Membership kinds serialize after every pre-existing kind so old
        // repro event lists keep their exact positions.
        for (&node, &at) in &self.node_restarts {
            events.push(FaultEvent::Restart { node, at });
        }
        for &p in &self.partitions {
            events.push(FaultEvent::Partition {
                mask: p.mask,
                from: p.from,
                until: p.until,
            });
        }
        events
    }

    /// Rebuilds a plan from an explicit event list (inverse of
    /// [`FaultPlan::to_events`] for explicit plans).
    pub fn from_events(events: &[FaultEvent]) -> Self {
        let mut plan = FaultPlan::none();
        for &ev in events {
            match ev {
                FaultEvent::Drop { index } => {
                    plan.drop_indices.insert(index);
                }
                FaultEvent::Corrupt { index } => {
                    plan.corrupt_indices.insert(index);
                }
                FaultEvent::Duplicate { index } => {
                    plan.duplicate_indices.insert(index);
                }
                FaultEvent::Delay { index, by } => {
                    plan.delay_indices.insert(index);
                    // One shared delay per plan; events carry it so the
                    // list is self-describing. Mixed delays collapse to
                    // the maximum.
                    plan.reorder_delay = plan.reorder_delay.max(by);
                }
                FaultEvent::LinkDown { node, from, until } => {
                    plan = plan.with_link_down(node, from, until);
                }
                FaultEvent::Degrade { node, window } => {
                    plan = plan.with_degradation(node, window);
                }
                FaultEvent::Crash { node, at } => {
                    plan = plan.with_node_crash(node, at);
                }
                FaultEvent::CreditLeak { node, at, credits } => {
                    plan = plan.with_credit_leak(node, at, credits);
                }
                FaultEvent::PauseStorm { node, at, hold } => {
                    plan = plan.with_pause_storm(node, at, hold);
                }
                FaultEvent::BufShrink { node, at, bufs } => {
                    plan = plan.with_buf_shrink(node, at, bufs);
                }
                FaultEvent::Restart { node, at } => {
                    plan = plan.with_node_restart(node, at);
                }
                FaultEvent::Partition { mask, from, until } => {
                    plan = plan.with_partition(mask, from, until);
                }
            }
        }
        plan
    }
}

/// One explicit fault, the atom of schedule shrinking: a failing chaos
/// run's plan is decomposed into events, subsets are replayed, and the
/// minimal still-failing subset becomes the repro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Drop the `index`-th frame through the switch.
    Drop {
        /// Global frame index.
        index: u64,
    },
    /// Corrupt (FCS-flip) the `index`-th frame.
    Corrupt {
        /// Global frame index.
        index: u64,
    },
    /// Duplicate the `index`-th frame.
    Duplicate {
        /// Global frame index.
        index: u64,
    },
    /// Delay the `index`-th frame by `by`.
    Delay {
        /// Global frame index.
        index: u64,
        /// Extra delay.
        by: Dur,
    },
    /// Take `node`'s link dark for `[from, until)`.
    LinkDown {
        /// Affected port.
        node: NodeAddr,
        /// Outage start (inclusive).
        from: Time,
        /// Outage end (exclusive).
        until: Time,
    },
    /// Degrade `node`'s link for the window.
    Degrade {
        /// Affected port.
        node: NodeAddr,
        /// The degradation window.
        window: Degradation,
    },
    /// Fail-stop crash of `node` at `at`.
    Crash {
        /// Crashed node.
        node: NodeAddr,
        /// Crash instant.
        at: Time,
    },
    /// Leak `credits` tx-window credits from `node`'s protocol engine at
    /// `at` (consumed, never returned — the window shrinks for good).
    CreditLeak {
        /// Affected node.
        node: NodeAddr,
        /// Leak instant.
        at: Time,
        /// Credits leaked.
        credits: u32,
    },
    /// Pause `node`'s NIC for `hold` starting at `at` (PFC pause storm).
    PauseStorm {
        /// Affected node.
        node: NodeAddr,
        /// Storm start.
        at: Time,
        /// Pause duration.
        hold: Dur,
    },
    /// Shrink `node`'s bounded RX buffer pool to `bufs` at `at`.
    BufShrink {
        /// Affected node.
        node: NodeAddr,
        /// Shrink instant.
        at: Time,
        /// New pool capacity, in buffers.
        bufs: u32,
    },
    /// Restart `node` at `at`: its crash window closes and a fresh
    /// incarnation comes up (old-epoch frames are fenced at the RxMux).
    Restart {
        /// Restarted node.
        node: NodeAddr,
        /// Restart instant.
        at: Time,
    },
    /// Split the fabric along `mask` for `[from, until)`.
    Partition {
        /// Bitmap over node addresses (bit set = side A).
        mask: u64,
        /// Partition start (inclusive).
        from: Time,
        /// Heal instant (exclusive).
        until: Time,
    },
}

/// Intensity knobs for randomly generated fault schedules.
///
/// A profile is a *budget*, not a probability: [`FaultPlanGen::generate`]
/// samples exactly the configured number of each fault kind (at seeded
/// random indices/instants), so every generated plan is fully explicit —
/// directly shrinkable and serializable, with no concretization step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Number of fabric ports faults may target.
    pub nodes: u32,
    /// Frame-index space per-frame faults are sampled from; pick at least
    /// the number of frames the workload pushes through the switch
    /// (sampling beyond it only wastes budget, never breaks anything).
    pub horizon_frames: u64,
    /// Simulated-time span `[0, horizon)` windowed faults are sampled in.
    pub horizon: Dur,
    /// Frames to drop.
    pub drops: u32,
    /// Frames to corrupt (FCS flip → POE discard).
    pub corrupts: u32,
    /// Frames to duplicate.
    pub duplicates: u32,
    /// Frames to delay by `delay_by`.
    pub delays: u32,
    /// Extra delay for delayed frames.
    pub delay_by: Dur,
    /// Link outage (flap) windows, each at most `max_flap` long.
    pub flaps: u32,
    /// Maximum single-flap duration.
    pub max_flap: Dur,
    /// Degradation windows, each at most `max_degradation` long.
    pub degradations: u32,
    /// Maximum single-degradation duration.
    pub max_degradation: Dur,
    /// Highest extra loss a degradation window may carry, in ppm.
    pub max_degradation_loss_ppm: u32,
    /// Credit-leak overload faults (each leaks up to `max_leak_credits`).
    pub credit_leaks: u32,
    /// Most credits one leak event may consume.
    pub max_leak_credits: u32,
    /// Pause-storm overload faults (each holds up to `max_pause_hold`).
    pub pause_storms: u32,
    /// Longest single pause-storm hold.
    pub max_pause_hold: Dur,
    /// Buffer-pool-shrink overload faults (each shrinks a node's RX pool
    /// to at most `max_shrink_bufs` buffers).
    pub buf_shrinks: u32,
    /// Largest residual pool a shrink event may leave (sampled in
    /// `1..=max_shrink_bufs`).
    pub max_shrink_bufs: u32,
    /// Membership faults: crash/restart *pairs* — each contributes a
    /// `Crash` at a sampled instant and a matching `Restart` up to
    /// `max_restart_delay` later, so every generated plan is self-healing
    /// by construction.
    pub crash_restarts: u32,
    /// Longest outage a crash/restart pair may span.
    pub max_restart_delay: Dur,
    /// Membership faults: fabric partition windows, each at most
    /// `max_partition` long, with a sampled nontrivial side bitmap.
    pub partitions: u32,
    /// Maximum single-partition duration.
    pub max_partition: Dur,
}

impl ChaosProfile {
    /// A mild all-kinds default: a handful of each transient fault, no
    /// crashes (fail-stop is PR 1's territory), sized for collective
    /// workloads of a few thousand frames and a few milliseconds.
    pub fn default_profile(nodes: u32) -> Self {
        ChaosProfile {
            nodes,
            horizon_frames: 2_000,
            horizon: Dur::from_ms(2),
            drops: 4,
            corrupts: 4,
            duplicates: 3,
            delays: 3,
            delay_by: Dur::from_us(40),
            flaps: 1,
            max_flap: Dur::from_us(120),
            degradations: 1,
            max_degradation: Dur::from_us(300),
            max_degradation_loss_ppm: 50_000,
            credit_leaks: 0,
            max_leak_credits: 4,
            pause_storms: 0,
            max_pause_hold: Dur::from_us(200),
            buf_shrinks: 0,
            max_shrink_bufs: 2,
            crash_restarts: 0,
            max_restart_delay: Dur::from_ms(1),
            partitions: 0,
            max_partition: Dur::from_us(500),
        }
    }

    /// A membership-focused profile: crash/restart pairs and partition
    /// windows (plus a little frame delay for spice), no transient loss —
    /// exercising the self-healing path: adaptive detection, shrink,
    /// rejoin via expand, and partition-heal re-merge.
    pub fn membership_profile(nodes: u32) -> Self {
        ChaosProfile {
            drops: 0,
            corrupts: 0,
            duplicates: 0,
            delays: 2,
            flaps: 0,
            degradations: 0,
            crash_restarts: 1,
            max_restart_delay: Dur::from_ms(1),
            partitions: 1,
            max_partition: Dur::from_us(400),
            ..Self::default_profile(nodes)
        }
    }

    /// An overload-focused profile: no frame loss or corruption, but
    /// resource-pressure faults — credit leaks, pause storms and buffer
    /// shrinks — that exercise the bounded-capacity/backpressure paths and
    /// the deadlock detector. Pair with a cluster configured with finite
    /// capacities (see `accl_core::ClusterConfig::with_overload_limits`).
    pub fn overload_profile(nodes: u32) -> Self {
        ChaosProfile {
            drops: 0,
            corrupts: 0,
            duplicates: 0,
            delays: 2,
            flaps: 0,
            degradations: 0,
            credit_leaks: 1,
            max_leak_credits: 3,
            pause_storms: 2,
            max_pause_hold: Dur::from_us(150),
            buf_shrinks: 1,
            max_shrink_bufs: 2,
            ..Self::default_profile(nodes)
        }
    }

    /// Total number of fault events a generated plan will contain.
    pub fn budget(&self) -> u32 {
        self.drops
            + self.corrupts
            + self.duplicates
            + self.delays
            + self.flaps
            + self.degradations
            + self.credit_leaks
            + self.pause_storms
            + self.buf_shrinks
            + self.crash_restarts * 2
            + self.partitions
    }
}

/// Samples whole explicit fault schedules from a [`ChaosProfile`] as a
/// pure function of seed: same `(profile, seed)` → identical plan,
/// regardless of anything else the process did.
pub struct FaultPlanGen;

impl FaultPlanGen {
    /// Generates the fault schedule for `seed`.
    pub fn generate(profile: &ChaosProfile, seed: u64) -> FaultPlan {
        // Decouple from other derived streams: mix the seed before use.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00c4_a05c_7a05_c4a0);
        let horizon_ps = profile.horizon.as_ps().max(1);
        let mut events = Vec::with_capacity(profile.budget() as usize);
        let frame_index = |rng: &mut StdRng| rng.random_range(0..profile.horizon_frames.max(1));
        for _ in 0..profile.drops {
            events.push(FaultEvent::Drop {
                index: frame_index(&mut rng),
            });
        }
        for _ in 0..profile.corrupts {
            events.push(FaultEvent::Corrupt {
                index: frame_index(&mut rng),
            });
        }
        for _ in 0..profile.duplicates {
            events.push(FaultEvent::Duplicate {
                index: frame_index(&mut rng),
            });
        }
        for _ in 0..profile.delays {
            events.push(FaultEvent::Delay {
                index: frame_index(&mut rng),
                by: profile.delay_by,
            });
        }
        for _ in 0..profile.flaps {
            let node = NodeAddr(rng.random_range(0..profile.nodes.max(1)));
            let len = rng.random_range(1..profile.max_flap.as_ps().max(2));
            let from = rng.random_range(0..horizon_ps);
            events.push(FaultEvent::LinkDown {
                node,
                from: Time::from_ps(from),
                until: Time::from_ps(from.saturating_add(len)),
            });
        }
        for _ in 0..profile.degradations {
            let node = NodeAddr(rng.random_range(0..profile.nodes.max(1)));
            let len = rng.random_range(1..profile.max_degradation.as_ps().max(2));
            let from = rng.random_range(0..horizon_ps);
            let loss_ppm = rng.random_range(0..profile.max_degradation_loss_ppm.max(1));
            // Residual bandwidth between 10 and 50 Gb/s (nominal is 100).
            let throttle = rng.random_range(1_000u32..5_000);
            events.push(FaultEvent::Degrade {
                node,
                window: Degradation {
                    from: Time::from_ps(from),
                    until: Time::from_ps(from.saturating_add(len)),
                    loss_ppm,
                    throttle_gbps_x100: throttle,
                },
            });
        }
        // Overload faults draw *after* every legacy kind: plans generated
        // by profiles with zero overload budget stay bit-identical per
        // seed to what older versions produced.
        for _ in 0..profile.credit_leaks {
            let node = NodeAddr(rng.random_range(0..profile.nodes.max(1)));
            let at = rng.random_range(0..horizon_ps);
            let credits = rng.random_range(1..profile.max_leak_credits.max(1) + 1);
            events.push(FaultEvent::CreditLeak {
                node,
                at: Time::from_ps(at),
                credits,
            });
        }
        for _ in 0..profile.pause_storms {
            let node = NodeAddr(rng.random_range(0..profile.nodes.max(1)));
            let at = rng.random_range(0..horizon_ps);
            let hold = rng.random_range(1..profile.max_pause_hold.as_ps().max(2));
            events.push(FaultEvent::PauseStorm {
                node,
                at: Time::from_ps(at),
                hold: Dur::from_ps(hold),
            });
        }
        for _ in 0..profile.buf_shrinks {
            let node = NodeAddr(rng.random_range(0..profile.nodes.max(1)));
            let at = rng.random_range(0..horizon_ps);
            let bufs = rng.random_range(1..profile.max_shrink_bufs.max(1) + 1);
            events.push(FaultEvent::BufShrink {
                node,
                at: Time::from_ps(at),
                bufs,
            });
        }
        // Membership kinds draw after every earlier kind so plans from
        // profiles with zero membership budget replay bit-identically.
        for _ in 0..profile.crash_restarts {
            let node = NodeAddr(rng.random_range(0..profile.nodes.max(1)));
            let at = rng.random_range(0..horizon_ps);
            let outage = rng.random_range(1..profile.max_restart_delay.as_ps().max(2));
            events.push(FaultEvent::Crash {
                node,
                at: Time::from_ps(at),
            });
            events.push(FaultEvent::Restart {
                node,
                at: Time::from_ps(at.saturating_add(outage)),
            });
        }
        for _ in 0..profile.partitions {
            let nodes = profile.nodes.clamp(2, 63);
            // A nontrivial cut: at least one node on each side.
            let mask = rng.random_range(1..(1u64 << nodes) - 1);
            let len = rng.random_range(1..profile.max_partition.as_ps().max(2));
            let from = rng.random_range(0..horizon_ps);
            events.push(FaultEvent::Partition {
                mask,
                from: Time::from_ps(from),
                until: Time::from_ps(from.saturating_add(len)),
            });
        }
        FaultPlan::from_events(&events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::NodeAddr;
    use rand::RngCore;

    fn frame() -> Frame {
        Frame::new(NodeAddr(0), NodeAddr(1), 100, ())
    }

    #[test]
    fn transparent_plan_forwards_everything() {
        let plan = FaultPlan::none();
        assert!(plan.is_transparent());
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..100 {
            assert_eq!(
                plan.decide(i, Time::ZERO, &frame(), &mut rng),
                FaultAction::Forward
            );
        }
    }

    #[test]
    fn indexed_drops_are_exact() {
        let plan = FaultPlan::drop_frames([2, 5]);
        let mut rng = StdRng::seed_from_u64(0);
        let fates: Vec<bool> = (0..8)
            .map(|i| plan.decide(i, Time::ZERO, &frame(), &mut rng) == FaultAction::Drop)
            .collect();
        assert_eq!(
            fates,
            [false, false, true, false, false, true, false, false]
        );
    }

    /// Micro-test for the sorted-set representation: membership stays
    /// exact at the boundaries of a long, dense schedule where the old
    /// `Vec::contains` scan was O(n) per frame.
    #[test]
    fn indexed_drops_scale_to_long_schedules() {
        let plan = FaultPlan::drop_frames((0..100_000u64).map(|i| i * 2));
        assert_eq!(plan.drop_indices.len(), 100_000);
        let mut rng = StdRng::seed_from_u64(0);
        for i in [0u64, 1, 2, 99_999, 100_000, 199_998, 199_999, 200_000] {
            let want = i % 2 == 0 && i < 200_000;
            assert_eq!(
                plan.decide(i, Time::ZERO, &frame(), &mut rng) == FaultAction::Drop,
                want,
                "index {i}"
            );
        }
    }

    #[test]
    fn indexed_delays_reorder() {
        let plan = FaultPlan::delay_frames([1], Dur::from_us(3));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(0, Time::ZERO, &frame(), &mut rng),
            FaultAction::Forward
        );
        assert_eq!(
            plan.decide(1, Time::ZERO, &frame(), &mut rng),
            FaultAction::Delay(Dur::from_us(3))
        );
    }

    #[test]
    fn random_loss_is_roughly_calibrated() {
        let plan = FaultPlan::random_loss(0.3);
        let mut rng = StdRng::seed_from_u64(7);
        let drops = (0..10_000)
            .filter(|&i| plan.decide(i, Time::ZERO, &frame(), &mut rng) == FaultAction::Drop)
            .count();
        assert!((2_700..3_300).contains(&drops), "drops={drops}");
    }

    #[test]
    fn predicate_drops_matching_frames() {
        let plan = FaultPlan {
            drop_if: Some(Box::new(|f: &Frame| f.payload_bytes > 50)),
            ..FaultPlan::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(0, Time::ZERO, &frame(), &mut rng),
            FaultAction::Drop
        );
        let small = Frame::new(NodeAddr(0), NodeAddr(1), 10, ());
        assert_eq!(
            plan.decide(1, Time::ZERO, &small, &mut rng),
            FaultAction::Forward
        );
    }

    #[test]
    fn link_schedule_windows_bound_the_outage() {
        let sched = LinkSchedule::new()
            .down(Time::from_ps(100), Time::from_ps(200))
            .down(Time::from_ps(400), Time::from_ps(500));
        assert!(!sched.is_down(Time::from_ps(99)));
        assert!(sched.is_down(Time::from_ps(100)));
        assert!(sched.is_down(Time::from_ps(199)));
        assert!(!sched.is_down(Time::from_ps(200)));
        assert!(!sched.is_down(Time::from_ps(399)));
        assert!(sched.is_down(Time::from_ps(450)));
        assert!(!sched.is_down(Time::from_ps(500)));
    }

    #[test]
    fn overlapping_windows_merge() {
        let sched = LinkSchedule::new()
            .down(Time::from_ps(100), Time::from_ps(300))
            .down(Time::from_ps(200), Time::from_ps(400));
        assert!(sched.is_down(Time::from_ps(350)));
        assert!(!sched.is_down(Time::from_ps(400)));
    }

    #[test]
    fn link_down_drops_only_inside_window() {
        let plan = FaultPlan::link_down(NodeAddr(1), Time::from_us(1), Time::from_us(2));
        assert!(!plan.is_transparent());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(0, Time::ZERO, &frame(), &mut rng),
            FaultAction::Forward
        );
        assert_eq!(
            plan.decide(1, Time::from_us(1), &frame(), &mut rng),
            FaultAction::Drop
        );
        assert_eq!(
            plan.decide(2, Time::from_us(2), &frame(), &mut rng),
            FaultAction::Forward
        );
        // The outage applies to frames in either direction of the port.
        let reverse = Frame::new(NodeAddr(1), NodeAddr(0), 100, ());
        assert_eq!(
            plan.decide(3, Time::from_us(1) + Dur::from_ns(1), &reverse, &mut rng),
            FaultAction::Drop
        );
    }

    #[test]
    fn node_crash_blackholes_forever_after() {
        let plan = FaultPlan::node_crash(NodeAddr(0), Time::from_us(5));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(0, Time::from_us(4), &frame(), &mut rng),
            FaultAction::Forward
        );
        assert_eq!(
            plan.decide(1, Time::from_us(5), &frame(), &mut rng),
            FaultAction::Drop
        );
        assert_eq!(
            plan.decide(2, Time::from_us(500), &frame(), &mut rng),
            FaultAction::Drop
        );
        // Frames *to* the dead node vanish too.
        let inbound = Frame::new(NodeAddr(2), NodeAddr(0), 100, ());
        assert_eq!(
            plan.decide(3, Time::from_us(6), &inbound, &mut rng),
            FaultAction::Drop
        );
        // Traffic between live nodes is unaffected.
        let other = Frame::new(NodeAddr(2), NodeAddr(3), 100, ());
        assert_eq!(
            plan.decide(4, Time::from_us(6), &other, &mut rng),
            FaultAction::Forward
        );
        assert!(plan.is_crashed(NodeAddr(0), Time::from_us(5)));
        assert!(!plan.is_crashed(NodeAddr(0), Time::from_us(4)));
        assert_eq!(plan.crash_time(NodeAddr(0)), Some(Time::from_us(5)));
    }

    #[test]
    fn restart_reopens_the_crash_window() {
        let plan = FaultPlan::node_crash(NodeAddr(0), Time::from_us(5))
            .with_node_restart(NodeAddr(0), Time::from_us(9));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(0, Time::from_us(4), &frame(), &mut rng),
            FaultAction::Forward
        );
        assert_eq!(
            plan.decide(1, Time::from_us(6), &frame(), &mut rng),
            FaultAction::Drop
        );
        // From the restart instant on, the node is live again.
        assert_eq!(
            plan.decide(2, Time::from_us(9), &frame(), &mut rng),
            FaultAction::Forward
        );
        assert!(plan.is_crashed(NodeAddr(0), Time::from_us(8)));
        assert!(!plan.is_crashed(NodeAddr(0), Time::from_us(9)));
        assert_eq!(plan.restart_time(NodeAddr(0)), Some(Time::from_us(9)));
    }

    #[test]
    fn restart_without_or_before_crash_is_ignored() {
        // No crash at all: restart is meaningless.
        let plan = FaultPlan::none().with_node_restart(NodeAddr(1), Time::from_us(3));
        assert_eq!(plan.restart_time(NodeAddr(1)), None);
        assert!(!plan.is_crashed(NodeAddr(1), Time::from_us(10)));
        // Restart at/before the crash: the crash stays permanent.
        let plan = FaultPlan::node_crash(NodeAddr(0), Time::from_us(5))
            .with_node_restart(NodeAddr(0), Time::from_us(5));
        assert_eq!(plan.restart_time(NodeAddr(0)), None);
        assert!(plan.is_crashed(NodeAddr(0), Time::from_us(500)));
    }

    #[test]
    fn partition_drops_only_cross_cut_frames() {
        // Nodes {0, 2} vs {1, 3} for [10us, 20us).
        let mask = 0b0101u64;
        let plan = FaultPlan::none().with_partition(mask, Time::from_us(10), Time::from_us(20));
        assert!(!plan.is_transparent());
        let mut rng = StdRng::seed_from_u64(0);
        // 0 -> 1 crosses the cut.
        assert_eq!(
            plan.decide(0, Time::from_us(15), &frame(), &mut rng),
            FaultAction::Drop
        );
        // 0 -> 2 stays on side A.
        let same_side = Frame::new(NodeAddr(0), NodeAddr(2), 100, ());
        assert_eq!(
            plan.decide(1, Time::from_us(15), &same_side, &mut rng),
            FaultAction::Forward
        );
        // Outside the window everything heals.
        assert_eq!(
            plan.decide(2, Time::from_us(20), &frame(), &mut rng),
            FaultAction::Forward
        );
        assert!(plan
            .severing_partition(NodeAddr(0), NodeAddr(1), Time::from_us(12))
            .is_some());
        assert!(plan
            .severing_partition(NodeAddr(1), NodeAddr(3), Time::from_us(12))
            .is_none());
    }

    #[test]
    fn membership_events_round_trip() {
        let plan = FaultPlan::node_crash(NodeAddr(2), Time::from_us(50))
            .with_node_restart(NodeAddr(2), Time::from_us(90))
            .with_partition(0b11, Time::from_us(10), Time::from_us(30));
        assert!(plan.is_explicit());
        let events = plan.to_events();
        assert_eq!(events.len(), 3);
        let rebuilt = FaultPlan::from_events(&events);
        assert_eq!(rebuilt.to_events(), events);
        assert_eq!(rebuilt.restart_time(NodeAddr(2)), Some(Time::from_us(90)));
    }

    #[test]
    fn membership_profile_generates_paired_crash_restart() {
        let profile = ChaosProfile::membership_profile(4);
        let plan = FaultPlanGen::generate(&profile, 11);
        assert!(plan.is_explicit());
        assert_eq!(plan.node_crashes.len(), 1);
        assert_eq!(plan.node_restarts.len(), 1);
        let (&node, &crash) = plan.node_crashes.iter().next().unwrap();
        assert_eq!(
            plan.restart_time(node),
            plan.node_restarts.get(&node).copied()
        );
        assert!(plan.restart_time(node).unwrap() > crash);
        assert_eq!(plan.partitions.len(), 1);
        // Replays bit-identically.
        let again = FaultPlanGen::generate(&profile, 11);
        assert_eq!(plan.to_events(), again.to_events());
    }

    #[test]
    fn earlier_crash_time_wins() {
        let plan = FaultPlan::node_crash(NodeAddr(0), Time::from_us(5))
            .with_node_crash(NodeAddr(0), Time::from_us(9));
        assert_eq!(plan.crash_time(NodeAddr(0)), Some(Time::from_us(5)));
    }

    #[test]
    fn indexed_corruption_and_duplication_are_exact() {
        let plan = FaultPlan::corrupt_frames([1]);
        assert!(!plan.is_transparent());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(0, Time::ZERO, &frame(), &mut rng),
            FaultAction::Forward
        );
        assert_eq!(
            plan.decide(1, Time::ZERO, &frame(), &mut rng),
            FaultAction::Corrupt
        );
        let plan = FaultPlan::duplicate_frames([0]);
        assert_eq!(
            plan.decide(0, Time::ZERO, &frame(), &mut rng),
            FaultAction::Duplicate
        );
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn out_of_range_probability_is_rejected() {
        FaultPlan::random_corruption(1.5);
    }

    #[test]
    fn explicit_plans_draw_no_entropy() {
        // Two identical RNGs; one decides through an explicit-only plan,
        // the other doesn't. Their streams must stay in lockstep.
        let plan = FaultPlan::drop_frames([3]).with_link_down(
            NodeAddr(0),
            Time::from_us(1),
            Time::from_us(2),
        );
        let mut used = StdRng::seed_from_u64(9);
        let mut pristine = StdRng::seed_from_u64(9);
        for i in 0..32 {
            plan.decide(i, Time::ZERO, &frame(), &mut used);
        }
        assert_eq!(used.next_u64(), pristine.next_u64());
    }

    #[test]
    fn degradation_window_adds_loss_and_throttle() {
        let window = Degradation {
            from: Time::from_us(10),
            until: Time::from_us(20),
            loss_ppm: 1_000_000,
            throttle_gbps_x100: 2_500, // 25 Gb/s
        };
        let plan = FaultPlan::none().with_degradation(NodeAddr(1), window);
        assert!(!plan.is_transparent());
        let mut rng = StdRng::seed_from_u64(0);
        // Outside the window: untouched.
        assert_eq!(
            plan.decide(0, Time::from_us(9), &frame(), &mut rng),
            FaultAction::Forward
        );
        // Inside with loss_ppm = 100%: dropped.
        assert_eq!(
            plan.decide(1, Time::from_us(15), &frame(), &mut rng),
            FaultAction::Drop
        );
        // Pure throttle window: frames get the residual-rate delay.
        let throttle_only = Degradation {
            loss_ppm: 0,
            ..window
        };
        let plan = FaultPlan::none().with_degradation(NodeAddr(1), throttle_only);
        let f = frame();
        let want = Dur::for_bytes_gbps(f.wire_bytes() as u64, 25.0);
        assert_eq!(
            plan.decide(2, Time::from_us(15), &f, &mut rng),
            FaultAction::Delay(want)
        );
        assert_eq!(
            plan.decide(3, Time::from_us(20), &f, &mut rng),
            FaultAction::Forward
        );
    }

    #[test]
    fn degradation_composes_with_link_schedule() {
        // Outage beats degradation where they overlap.
        let plan = FaultPlan::link_down(NodeAddr(1), Time::from_us(12), Time::from_us(14))
            .with_degradation(
                NodeAddr(1),
                Degradation {
                    from: Time::from_us(10),
                    until: Time::from_us(20),
                    loss_ppm: 0,
                    throttle_gbps_x100: 5_000,
                },
            );
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(0, Time::from_us(13), &frame(), &mut rng),
            FaultAction::Drop
        );
        assert!(matches!(
            plan.decide(1, Time::from_us(15), &frame(), &mut rng),
            FaultAction::Delay(_)
        ));
    }

    #[test]
    fn events_round_trip_explicit_plans() {
        let plan = FaultPlan::drop_frames([7, 9])
            .with_link_down(NodeAddr(2), Time::from_us(1), Time::from_us(3))
            .with_node_crash(NodeAddr(1), Time::from_ms(1))
            .with_degradation(
                NodeAddr(0),
                Degradation {
                    from: Time::from_us(5),
                    until: Time::from_us(9),
                    loss_ppm: 5_000,
                    throttle_gbps_x100: 0,
                },
            );
        let mut plan = plan;
        plan.corrupt_indices.insert(11);
        plan.duplicate_indices.insert(13);
        plan.delay_indices.insert(15);
        plan.reorder_delay = Dur::from_us(2);
        assert!(plan.is_explicit());
        let events = plan.to_events();
        assert_eq!(events.len(), 8);
        let rebuilt = FaultPlan::from_events(&events);
        assert_eq!(rebuilt.to_events(), events);
        // Same decisions on a probe set of frames/times.
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        for i in 0..32 {
            let t = Time::from_us(i);
            assert_eq!(
                plan.decide(i, t, &frame(), &mut rng_a),
                rebuilt.decide(i, t, &frame(), &mut rng_b),
                "index {i}"
            );
        }
    }

    #[test]
    fn plan_generation_is_a_pure_function_of_seed() {
        let profile = ChaosProfile::default_profile(4);
        let a = FaultPlanGen::generate(&profile, 42);
        let b = FaultPlanGen::generate(&profile, 42);
        assert_eq!(a.to_events(), b.to_events());
        assert!(a.is_explicit());
        assert_eq!(a.to_events().len() as u32, profile.budget());
        let c = FaultPlanGen::generate(&profile, 43);
        assert_ne!(a.to_events(), c.to_events());
    }
}
