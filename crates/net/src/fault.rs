//! Fault injection: frame drops and reordering.
//!
//! The paper's UDP path is unreliable and its TCP POE must survive loss and
//! out-of-order delivery; these policies let tests and benchmarks inject
//! such conditions deterministically (by frame index) or statistically
//! (by probability, driven by the simulation's seeded RNG).

use rand::rngs::StdRng;
use rand::RngExt;

use accl_sim::time::Dur;

use crate::frame::Frame;

/// A predicate deciding whether a frame should be dropped.
pub type FramePredicate = Box<dyn Fn(&Frame) -> bool + Send>;

/// What the switch should do with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward normally.
    Forward,
    /// Silently drop.
    Drop,
    /// Forward, but add this much extra delay (causes reordering).
    Delay(Dur),
}

/// A fault-injection policy applied to every frame traversing the switch.
#[derive(Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` of dropping any given frame.
    pub drop_probability: f64,
    /// Probability in `[0, 1]` of delaying a frame by `reorder_delay`.
    pub reorder_probability: f64,
    /// Extra delay applied to reordered frames.
    pub reorder_delay: Dur,
    /// Explicit global frame indices to drop (deterministic loss).
    pub drop_indices: Vec<u64>,
    /// Explicit global frame indices to delay by `reorder_delay`.
    pub delay_indices: Vec<u64>,
    /// Optional predicate; frames matching it are dropped.
    pub drop_if: Option<FramePredicate>,
}

impl FaultPlan {
    /// A policy that never interferes.
    pub fn none() -> Self {
        Self::default()
    }

    /// A policy dropping frames i.i.d. with probability `p`.
    pub fn random_loss(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        FaultPlan {
            drop_probability: p,
            ..Self::default()
        }
    }

    /// A policy dropping exactly the frames with the given global indices.
    pub fn drop_frames(indices: impl IntoIterator<Item = u64>) -> Self {
        FaultPlan {
            drop_indices: indices.into_iter().collect(),
            ..Self::default()
        }
    }

    /// A policy delaying the given frames by `delay` (forcing reordering).
    pub fn delay_frames(indices: impl IntoIterator<Item = u64>, delay: Dur) -> Self {
        FaultPlan {
            delay_indices: indices.into_iter().collect(),
            reorder_delay: delay,
            ..Self::default()
        }
    }

    /// Whether this plan can never interfere with traffic.
    pub fn is_transparent(&self) -> bool {
        self.drop_probability == 0.0
            && self.reorder_probability == 0.0
            && self.drop_indices.is_empty()
            && self.delay_indices.is_empty()
            && self.drop_if.is_none()
    }

    /// Decides the fate of the `index`-th frame traversing the switch.
    pub fn decide(&self, index: u64, frame: &Frame, rng: &mut StdRng) -> FaultAction {
        if self.drop_indices.contains(&index) {
            return FaultAction::Drop;
        }
        if let Some(pred) = &self.drop_if {
            if pred(frame) {
                return FaultAction::Drop;
            }
        }
        if self.delay_indices.contains(&index) {
            return FaultAction::Delay(self.reorder_delay);
        }
        if self.drop_probability > 0.0 && rng.random_bool(self.drop_probability) {
            return FaultAction::Drop;
        }
        if self.reorder_probability > 0.0 && rng.random_bool(self.reorder_probability) {
            return FaultAction::Delay(self.reorder_delay);
        }
        FaultAction::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::NodeAddr;
    use rand::SeedableRng;

    fn frame() -> Frame {
        Frame::new(NodeAddr(0), NodeAddr(1), 100, ())
    }

    #[test]
    fn transparent_plan_forwards_everything() {
        let plan = FaultPlan::none();
        assert!(plan.is_transparent());
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..100 {
            assert_eq!(plan.decide(i, &frame(), &mut rng), FaultAction::Forward);
        }
    }

    #[test]
    fn indexed_drops_are_exact() {
        let plan = FaultPlan::drop_frames([2, 5]);
        let mut rng = StdRng::seed_from_u64(0);
        let fates: Vec<bool> = (0..8)
            .map(|i| plan.decide(i, &frame(), &mut rng) == FaultAction::Drop)
            .collect();
        assert_eq!(
            fates,
            [false, false, true, false, false, true, false, false]
        );
    }

    #[test]
    fn indexed_delays_reorder() {
        let plan = FaultPlan::delay_frames([1], Dur::from_us(3));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(plan.decide(0, &frame(), &mut rng), FaultAction::Forward);
        assert_eq!(
            plan.decide(1, &frame(), &mut rng),
            FaultAction::Delay(Dur::from_us(3))
        );
    }

    #[test]
    fn random_loss_is_roughly_calibrated() {
        let plan = FaultPlan::random_loss(0.3);
        let mut rng = StdRng::seed_from_u64(7);
        let drops = (0..10_000)
            .filter(|&i| plan.decide(i, &frame(), &mut rng) == FaultAction::Drop)
            .count();
        assert!((2_700..3_300).contains(&drops), "drops={drops}");
    }

    #[test]
    fn predicate_drops_matching_frames() {
        let plan = FaultPlan {
            drop_if: Some(Box::new(|f: &Frame| f.payload_bytes > 50)),
            ..FaultPlan::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(plan.decide(0, &frame(), &mut rng), FaultAction::Drop);
        let small = Frame::new(NodeAddr(0), NodeAddr(1), 10, ());
        assert_eq!(plan.decide(1, &small, &mut rng), FaultAction::Forward);
    }
}
