//! Fault injection: frame drops, reordering, link-state schedules and
//! whole-node crashes.
//!
//! The paper's UDP path is unreliable and its TCP POE must survive loss and
//! out-of-order delivery; these policies let tests and benchmarks inject
//! such conditions deterministically (by frame index, by simulated-time
//! window, or by crash time) or statistically (by probability, driven by
//! the simulation's seeded RNG). Everything here is a pure function of
//! `(frame index, simulated time, seeded RNG)`, so fault timelines replay
//! bit-for-bit under the same seed.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::RngExt;

use accl_sim::time::{Dur, Time};

use crate::frame::{Frame, NodeAddr};

/// A predicate deciding whether a frame should be dropped.
pub type FramePredicate = Box<dyn Fn(&Frame) -> bool + Send>;

/// What the switch should do with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward normally.
    Forward,
    /// Silently drop.
    Drop,
    /// Forward, but add this much extra delay (causes reordering).
    Delay(Dur),
}

/// A time-scheduled link-state model: a list of `[down, up)` windows
/// during which the link is dark and every frame traversing it is lost.
///
/// Windows are kept sorted by start time, so membership is a binary
/// search regardless of how many flaps a schedule describes.
#[derive(Debug, Default, Clone)]
pub struct LinkSchedule {
    /// Sorted, non-overlapping `[down, up)` windows.
    windows: Vec<(Time, Time)>,
}

impl LinkSchedule {
    /// An always-up link.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a `[from, until)` outage window. Windows may be added in any
    /// order; overlapping windows are merged.
    pub fn down(mut self, from: Time, until: Time) -> Self {
        assert!(from < until, "empty outage window");
        self.windows.push((from, until));
        self.windows.sort();
        // Merge overlaps so binary search sees disjoint windows.
        let mut merged: Vec<(Time, Time)> = Vec::with_capacity(self.windows.len());
        for (lo, hi) in self.windows.drain(..) {
            match merged.last_mut() {
                Some((_, prev_hi)) if lo <= *prev_hi => *prev_hi = (*prev_hi).max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        self.windows = merged;
        self
    }

    /// Whether the link is dark at time `t`.
    pub fn is_down(&self, t: Time) -> bool {
        // Last window starting at or before `t`.
        let i = self.windows.partition_point(|&(lo, _)| lo <= t);
        i > 0 && t < self.windows[i - 1].1
    }

    /// Whether this schedule contains no outage windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// A fault-injection policy applied to every frame traversing the switch.
#[derive(Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` of dropping any given frame.
    pub drop_probability: f64,
    /// Probability in `[0, 1]` of delaying a frame by `reorder_delay`.
    pub reorder_probability: f64,
    /// Extra delay applied to reordered frames.
    pub reorder_delay: Dur,
    /// Explicit global frame indices to drop (deterministic loss).
    /// Sorted set: membership is O(log n) however long the schedule.
    pub drop_indices: BTreeSet<u64>,
    /// Explicit global frame indices to delay by `reorder_delay`.
    pub delay_indices: BTreeSet<u64>,
    /// Optional predicate; frames matching it are dropped.
    pub drop_if: Option<FramePredicate>,
    /// Per-port link outage schedules; frames whose source or destination
    /// link is dark are lost.
    pub link_schedules: BTreeMap<NodeAddr, LinkSchedule>,
    /// Whole-node crash times; from the crash instant on, the switch
    /// blackholes every frame to or from the node.
    pub node_crashes: BTreeMap<NodeAddr, Time>,
}

impl FaultPlan {
    /// A policy that never interferes.
    pub fn none() -> Self {
        Self::default()
    }

    /// A policy dropping frames i.i.d. with probability `p`.
    pub fn random_loss(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        FaultPlan {
            drop_probability: p,
            ..Self::default()
        }
    }

    /// A policy dropping exactly the frames with the given global indices.
    pub fn drop_frames(indices: impl IntoIterator<Item = u64>) -> Self {
        FaultPlan {
            drop_indices: indices.into_iter().collect(),
            ..Self::default()
        }
    }

    /// A policy delaying the given frames by `delay` (forcing reordering).
    pub fn delay_frames(indices: impl IntoIterator<Item = u64>, delay: Dur) -> Self {
        FaultPlan {
            delay_indices: indices.into_iter().collect(),
            reorder_delay: delay,
            ..Self::default()
        }
    }

    /// A policy taking `addr`'s link down for `[from, until)`.
    pub fn link_down(addr: NodeAddr, from: Time, until: Time) -> Self {
        Self::default().with_link_down(addr, from, until)
    }

    /// A policy crashing `addr` (fail-stop) at time `at`.
    pub fn node_crash(addr: NodeAddr, at: Time) -> Self {
        Self::default().with_node_crash(addr, at)
    }

    /// Adds an outage window for `addr`'s link to this plan.
    pub fn with_link_down(mut self, addr: NodeAddr, from: Time, until: Time) -> Self {
        let sched = self.link_schedules.remove(&addr).unwrap_or_default();
        self.link_schedules.insert(addr, sched.down(from, until));
        self
    }

    /// Adds a fail-stop crash of `addr` at time `at` to this plan.
    /// If the node already has a crash time, the earlier one wins.
    pub fn with_node_crash(mut self, addr: NodeAddr, at: Time) -> Self {
        let at = self.node_crashes.get(&addr).map_or(at, |&t| t.min(at));
        self.node_crashes.insert(addr, at);
        self
    }

    /// The crash time of `addr`, if one is scheduled.
    pub fn crash_time(&self, addr: NodeAddr) -> Option<Time> {
        self.node_crashes.get(&addr).copied()
    }

    /// Whether `addr` has crashed by time `now`.
    pub fn is_crashed(&self, addr: NodeAddr, now: Time) -> bool {
        self.crash_time(addr).is_some_and(|at| now >= at)
    }

    /// Whether this plan can never interfere with traffic.
    pub fn is_transparent(&self) -> bool {
        self.drop_probability == 0.0
            && self.reorder_probability == 0.0
            && self.drop_indices.is_empty()
            && self.delay_indices.is_empty()
            && self.drop_if.is_none()
            && self.link_schedules.values().all(LinkSchedule::is_empty)
            && self.node_crashes.is_empty()
    }

    /// Decides the fate of the `index`-th frame traversing the switch at
    /// simulated time `now`.
    pub fn decide(&self, index: u64, now: Time, frame: &Frame, rng: &mut StdRng) -> FaultAction {
        if self.is_crashed(frame.src, now) || self.is_crashed(frame.dst, now) {
            return FaultAction::Drop;
        }
        for addr in [frame.src, frame.dst] {
            if let Some(sched) = self.link_schedules.get(&addr) {
                if sched.is_down(now) {
                    return FaultAction::Drop;
                }
            }
        }
        if self.drop_indices.contains(&index) {
            return FaultAction::Drop;
        }
        if let Some(pred) = &self.drop_if {
            if pred(frame) {
                return FaultAction::Drop;
            }
        }
        if self.delay_indices.contains(&index) {
            return FaultAction::Delay(self.reorder_delay);
        }
        if self.drop_probability > 0.0 && rng.random_bool(self.drop_probability) {
            return FaultAction::Drop;
        }
        if self.reorder_probability > 0.0 && rng.random_bool(self.reorder_probability) {
            return FaultAction::Delay(self.reorder_delay);
        }
        FaultAction::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::NodeAddr;
    use rand::SeedableRng;

    fn frame() -> Frame {
        Frame::new(NodeAddr(0), NodeAddr(1), 100, ())
    }

    #[test]
    fn transparent_plan_forwards_everything() {
        let plan = FaultPlan::none();
        assert!(plan.is_transparent());
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..100 {
            assert_eq!(
                plan.decide(i, Time::ZERO, &frame(), &mut rng),
                FaultAction::Forward
            );
        }
    }

    #[test]
    fn indexed_drops_are_exact() {
        let plan = FaultPlan::drop_frames([2, 5]);
        let mut rng = StdRng::seed_from_u64(0);
        let fates: Vec<bool> = (0..8)
            .map(|i| plan.decide(i, Time::ZERO, &frame(), &mut rng) == FaultAction::Drop)
            .collect();
        assert_eq!(
            fates,
            [false, false, true, false, false, true, false, false]
        );
    }

    /// Micro-test for the sorted-set representation: membership stays
    /// exact at the boundaries of a long, dense schedule where the old
    /// `Vec::contains` scan was O(n) per frame.
    #[test]
    fn indexed_drops_scale_to_long_schedules() {
        let plan = FaultPlan::drop_frames((0..100_000u64).map(|i| i * 2));
        assert_eq!(plan.drop_indices.len(), 100_000);
        let mut rng = StdRng::seed_from_u64(0);
        for i in [0u64, 1, 2, 99_999, 100_000, 199_998, 199_999, 200_000] {
            let want = i % 2 == 0 && i < 200_000;
            assert_eq!(
                plan.decide(i, Time::ZERO, &frame(), &mut rng) == FaultAction::Drop,
                want,
                "index {i}"
            );
        }
    }

    #[test]
    fn indexed_delays_reorder() {
        let plan = FaultPlan::delay_frames([1], Dur::from_us(3));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(0, Time::ZERO, &frame(), &mut rng),
            FaultAction::Forward
        );
        assert_eq!(
            plan.decide(1, Time::ZERO, &frame(), &mut rng),
            FaultAction::Delay(Dur::from_us(3))
        );
    }

    #[test]
    fn random_loss_is_roughly_calibrated() {
        let plan = FaultPlan::random_loss(0.3);
        let mut rng = StdRng::seed_from_u64(7);
        let drops = (0..10_000)
            .filter(|&i| plan.decide(i, Time::ZERO, &frame(), &mut rng) == FaultAction::Drop)
            .count();
        assert!((2_700..3_300).contains(&drops), "drops={drops}");
    }

    #[test]
    fn predicate_drops_matching_frames() {
        let plan = FaultPlan {
            drop_if: Some(Box::new(|f: &Frame| f.payload_bytes > 50)),
            ..FaultPlan::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(0, Time::ZERO, &frame(), &mut rng),
            FaultAction::Drop
        );
        let small = Frame::new(NodeAddr(0), NodeAddr(1), 10, ());
        assert_eq!(
            plan.decide(1, Time::ZERO, &small, &mut rng),
            FaultAction::Forward
        );
    }

    #[test]
    fn link_schedule_windows_bound_the_outage() {
        let sched = LinkSchedule::new()
            .down(Time::from_ps(100), Time::from_ps(200))
            .down(Time::from_ps(400), Time::from_ps(500));
        assert!(!sched.is_down(Time::from_ps(99)));
        assert!(sched.is_down(Time::from_ps(100)));
        assert!(sched.is_down(Time::from_ps(199)));
        assert!(!sched.is_down(Time::from_ps(200)));
        assert!(!sched.is_down(Time::from_ps(399)));
        assert!(sched.is_down(Time::from_ps(450)));
        assert!(!sched.is_down(Time::from_ps(500)));
    }

    #[test]
    fn overlapping_windows_merge() {
        let sched = LinkSchedule::new()
            .down(Time::from_ps(100), Time::from_ps(300))
            .down(Time::from_ps(200), Time::from_ps(400));
        assert!(sched.is_down(Time::from_ps(350)));
        assert!(!sched.is_down(Time::from_ps(400)));
    }

    #[test]
    fn link_down_drops_only_inside_window() {
        let plan = FaultPlan::link_down(NodeAddr(1), Time::from_us(1), Time::from_us(2));
        assert!(!plan.is_transparent());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(0, Time::ZERO, &frame(), &mut rng),
            FaultAction::Forward
        );
        assert_eq!(
            plan.decide(1, Time::from_us(1), &frame(), &mut rng),
            FaultAction::Drop
        );
        assert_eq!(
            plan.decide(2, Time::from_us(2), &frame(), &mut rng),
            FaultAction::Forward
        );
        // The outage applies to frames in either direction of the port.
        let reverse = Frame::new(NodeAddr(1), NodeAddr(0), 100, ());
        assert_eq!(
            plan.decide(3, Time::from_us(1) + Dur::from_ns(1), &reverse, &mut rng),
            FaultAction::Drop
        );
    }

    #[test]
    fn node_crash_blackholes_forever_after() {
        let plan = FaultPlan::node_crash(NodeAddr(0), Time::from_us(5));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.decide(0, Time::from_us(4), &frame(), &mut rng),
            FaultAction::Forward
        );
        assert_eq!(
            plan.decide(1, Time::from_us(5), &frame(), &mut rng),
            FaultAction::Drop
        );
        assert_eq!(
            plan.decide(2, Time::from_us(500), &frame(), &mut rng),
            FaultAction::Drop
        );
        // Frames *to* the dead node vanish too.
        let inbound = Frame::new(NodeAddr(2), NodeAddr(0), 100, ());
        assert_eq!(
            plan.decide(3, Time::from_us(6), &inbound, &mut rng),
            FaultAction::Drop
        );
        // Traffic between live nodes is unaffected.
        let other = Frame::new(NodeAddr(2), NodeAddr(3), 100, ());
        assert_eq!(
            plan.decide(4, Time::from_us(6), &other, &mut rng),
            FaultAction::Forward
        );
        assert!(plan.is_crashed(NodeAddr(0), Time::from_us(5)));
        assert!(!plan.is_crashed(NodeAddr(0), Time::from_us(4)));
        assert_eq!(plan.crash_time(NodeAddr(0)), Some(Time::from_us(5)));
    }

    #[test]
    fn earlier_crash_time_wins() {
        let plan = FaultPlan::node_crash(NodeAddr(0), Time::from_us(5))
            .with_node_crash(NodeAddr(0), Time::from_us(9));
        assert_eq!(plan.crash_time(NodeAddr(0)), Some(Time::from_us(5)));
    }
}
