//! # accl-net — packet-level network substrate
//!
//! Models the evaluation cluster's switched 100 Gb/s fabric: per-node
//! network ports that serialize frames at line rate, a store-and-forward
//! output-queued switch, and deterministic fault injection (drops,
//! reordering) for exercising the reliable protocol engines.
//!
//! Frames carry *typed* protocol PDUs; the network only looks at addresses
//! and sizes. Timing captures serialization, propagation, forwarding
//! latency, and — critically for collective algorithm selection — egress
//! queueing (in-cast).

#![warn(missing_docs)]

pub mod fault;
pub mod frame;
pub mod switch;
pub mod topology;
pub mod twotier;

pub use fault::{
    ChaosProfile, Degradation, FaultAction, FaultEvent, FaultPlan, FaultPlanGen, LinkSchedule,
    Partition,
};
pub use frame::{CreditReturn, Frame, NodeAddr, DEFAULT_MTU, WIRE_OVERHEAD_BYTES};
pub use switch::{NetPort, OverloadPolicy, PauseFrame, PortCounters, Reincarnate, Switch};
pub use topology::{NetConfig, Network};
pub use twotier::TwoTierNetwork;
