//! Network frames and node addressing.

use core::any::Any;
use core::fmt;

use accl_sim::event::Payload;
use accl_sim::trace::SpanId;

/// Ethernet + IP + transport header overhead modelled per frame, in bytes.
///
/// 14 B Ethernet + 4 B FCS + 20 B IPv4 + 8–20 B transport, rounded to the
/// value used by the 100 Gb/s hardware stacks ACCL+ builds on.
pub const WIRE_OVERHEAD_BYTES: u32 = 58;

/// Maximum transmission unit for frame payloads, in bytes.
///
/// The hardware POEs in the paper segment messages into network packets;
/// 4096 B matches the RoCE-style MTU used on the 100 Gb/s fabric.
pub const DEFAULT_MTU: u32 = 4096;

/// Identifies an endpoint attached to the switched fabric.
///
/// One address per physical port: each FPGA's 100 Gb/s MAC and each CPU's
/// commodity NIC get their own `NodeAddr`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeAddr(pub u32);

impl NodeAddr {
    /// Raw port index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A network frame in flight.
///
/// The `body` is a typed protocol PDU (defined by the protocol engines in
/// `accl-poe`); the network only inspects `src`/`dst` for routing and
/// `payload_bytes` for timing. Keeping PDUs typed instead of serialized
/// keeps the simulation honest about timing while making protocol state
/// machines directly testable.
pub struct Frame {
    /// Source port address.
    pub src: NodeAddr,
    /// Destination port address.
    pub dst: NodeAddr,
    /// Payload size used for serialization timing (headers are added via
    /// [`WIRE_OVERHEAD_BYTES`]).
    pub payload_bytes: u32,
    /// How many wire packets this frame stands for (≥ 1).
    ///
    /// A coalescing protocol engine may carry several MTU segments in one
    /// simulation event; each segment still pays its own header on the
    /// wire, so timing and byte counters stay identical to the
    /// one-event-per-segment schedule.
    pub segments: u32,
    /// The typed protocol PDU.
    pub body: Payload,
    /// Causal parent span: the sender's segment/transfer span, under which
    /// the network records its serialization, queueing and hop spans.
    /// [`SpanId::NONE`] when tracing is off (always when compiled out).
    pub span: SpanId,
}

impl Frame {
    /// Creates a frame carrying `body` with a modelled payload of `payload_bytes`.
    pub fn new<T: Any + Send>(src: NodeAddr, dst: NodeAddr, payload_bytes: u32, body: T) -> Self {
        Frame {
            src,
            dst,
            payload_bytes,
            segments: 1,
            body: Payload::new(body),
            span: SpanId::NONE,
        }
    }

    /// Marks the frame as carrying `segments` wire packets.
    pub fn with_segments(mut self, segments: u32) -> Self {
        assert!(segments >= 1, "a frame carries at least one segment");
        self.segments = segments;
        self
    }

    /// Attaches the sender's causal span, handing causality across the
    /// wire to the network layers and the receiver.
    pub fn with_span(mut self, span: SpanId) -> Self {
        self.span = span;
        self
    }

    /// Total bytes this frame occupies on the wire (headers charged per
    /// segment).
    pub fn wire_bytes(&self) -> u32 {
        self.payload_bytes + self.segments * WIRE_OVERHEAD_BYTES
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Frame[{}->{} {}B {}]",
            self.src,
            self.dst,
            self.payload_bytes,
            self.body.type_name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_include_overhead() {
        let f = Frame::new(NodeAddr(0), NodeAddr(1), 1000, ());
        assert_eq!(f.wire_bytes(), 1000 + WIRE_OVERHEAD_BYTES);
    }

    #[test]
    fn coalesced_segments_pay_per_segment_headers() {
        let f = Frame::new(NodeAddr(0), NodeAddr(1), 4 * 4096, ()).with_segments(4);
        assert_eq!(f.wire_bytes(), 4 * 4096 + 4 * WIRE_OVERHEAD_BYTES);
    }

    #[test]
    fn body_is_typed() {
        let f = Frame::new(NodeAddr(0), NodeAddr(1), 4, 7u32);
        assert_eq!(f.body.downcast::<u32>(), 7);
    }
}
