//! Network frames and node addressing.

use core::any::Any;
use core::fmt;

use accl_sim::event::{Endpoint, Payload};
use accl_sim::trace::{FlowId, SpanId};

/// Ethernet + IP + transport header overhead modelled per frame, in bytes.
///
/// 14 B Ethernet + 4 B FCS + 20 B IPv4 + 8–20 B transport, rounded to the
/// value used by the 100 Gb/s hardware stacks ACCL+ builds on.
pub const WIRE_OVERHEAD_BYTES: u32 = 58;

/// Maximum transmission unit for frame payloads, in bytes.
///
/// The hardware POEs in the paper segment messages into network packets;
/// 4096 B matches the RoCE-style MTU used on the 100 Gb/s fabric.
pub const DEFAULT_MTU: u32 = 4096;

/// Identifies an endpoint attached to the switched fabric.
///
/// One address per physical port: each FPGA's 100 Gb/s MAC and each CPU's
/// commodity NIC get their own `NodeAddr`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeAddr(pub u32);

impl NodeAddr {
    /// Raw port index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A network frame in flight.
///
/// The `body` is a typed protocol PDU (defined by the protocol engines in
/// `accl-poe`); the network only inspects `src`/`dst` for routing and
/// `payload_bytes` for timing. Keeping PDUs typed instead of serialized
/// keeps the simulation honest about timing while making protocol state
/// machines directly testable.
pub struct Frame {
    /// Source port address.
    pub src: NodeAddr,
    /// Destination port address.
    pub dst: NodeAddr,
    /// Payload size used for serialization timing (headers are added via
    /// [`WIRE_OVERHEAD_BYTES`]).
    pub payload_bytes: u32,
    /// How many wire packets this frame stands for (≥ 1).
    ///
    /// A coalescing protocol engine may carry several MTU segments in one
    /// simulation event; each segment still pays its own header on the
    /// wire, so timing and byte counters stay identical to the
    /// one-event-per-segment schedule.
    pub segments: u32,
    /// The typed protocol PDU.
    pub body: Payload,
    /// Frame check sequence, computed once at TX over the frame's stable
    /// fields. The network never rewrites it (the sender's `src` stamp is
    /// deliberately excluded), so a fault-injected bit flip — modelled as
    /// an XOR of this field — survives to the receiving POE, which
    /// verifies [`Frame::fcs_ok`] and discards mismatches exactly like
    /// hardware MACs drop frames with a bad CRC.
    pub fcs: u32,
    /// Causal parent span: the sender's segment/transfer span, under which
    /// the network records its serialization, queueing and hop spans.
    /// [`SpanId::NONE`] when tracing is off (always when compiled out).
    pub span: SpanId,
    /// Explicit cross-rank causal flow edge: the Tx POE emits a flow at
    /// segment creation ([`accl_sim::trace::FlowId`] via `Ctx::flow_begin`)
    /// and the Rx POE joins it into its receive span, making the Tx→Rx
    /// handoff a first-class DAG edge for critical-path analysis (and a
    /// Chrome `s`/`f` arrow in the trace export). [`FlowId::NONE`] when
    /// tracing is off. Excluded from the FCS, like `src` and `span`.
    pub flow: FlowId,
    /// Flow-control credit accounting: when set, the sending
    /// [`crate::switch::NetPort`] posts a [`CreditReturn`] to this endpoint
    /// once the frame has fully serialized onto the uplink, returning the
    /// tx-window credit the frame consumed. `None` (the default) means the
    /// frame is not credit-accounted. Excluded from the FCS, like `src`.
    pub credit_return: Option<Endpoint>,
    /// Sender incarnation number, stamped by the NIC alongside `src`: 0
    /// for a node's first life, bumped each time the node restarts. The
    /// receiving RxMux fences frames whose epoch predates the sender's
    /// announced incarnation, so stale pre-crash traffic from an old
    /// incarnation can never leak into a rejoined session. Excluded from
    /// the FCS, like `src` (the NIC stamps it after the POE computes FCS).
    pub epoch: u32,
}

/// A returned tx-window credit, posted by the NIC to the endpoint a frame
/// carried in [`Frame::credit_return`] once that frame cleared the uplink.
#[derive(Debug, Clone, Copy)]
pub struct CreditReturn {
    /// Number of credits returned (one per credit-accounted frame event).
    pub credits: u32,
}

impl Frame {
    /// Creates a frame carrying `body` with a modelled payload of
    /// `payload_bytes`. PDU bodies must be `Clone` so fault injection can
    /// duplicate frames in flight.
    pub fn new<T: Any + Send + Clone>(
        src: NodeAddr,
        dst: NodeAddr,
        payload_bytes: u32,
        body: T,
    ) -> Self {
        Frame {
            src,
            dst,
            payload_bytes,
            segments: 1,
            body: Payload::cloneable(body),
            fcs: Frame::compute_fcs(dst, payload_bytes, 1),
            span: SpanId::NONE,
            flow: FlowId::NONE,
            credit_return: None,
            epoch: 0,
        }
    }

    /// The FCS a pristine frame with these stable fields carries. `src` is
    /// excluded: the NIC re-stamps it after the POE builds the frame.
    pub fn compute_fcs(dst: NodeAddr, payload_bytes: u32, segments: u32) -> u32 {
        // FNV-1a over the stable header fields; any deterministic mix
        // works, the only requirement is that an XORed flip is detected.
        let mut h: u32 = 0x811c_9dc5;
        for word in [dst.0, payload_bytes, segments] {
            for b in word.to_le_bytes() {
                h ^= b as u32;
                h = h.wrapping_mul(0x0100_0193);
            }
        }
        h
    }

    /// Whether the frame's FCS matches its contents (no in-flight
    /// corruption). POEs check this at RX before touching the PDU.
    pub fn fcs_ok(&self) -> bool {
        self.fcs == Frame::compute_fcs(self.dst, self.payload_bytes, self.segments)
    }

    /// Models in-flight corruption: XORs `mask` into the FCS so the
    /// receiver's check fails. `mask` must be nonzero.
    pub fn corrupt(&mut self, mask: u32) {
        assert!(mask != 0, "corrupting with a zero mask is a no-op");
        self.fcs ^= mask;
    }

    /// Deep-copies the frame for fault-injected duplication, preserving
    /// header fields, FCS (a corrupted original duplicates as corrupted)
    /// and causal span.
    pub fn clone_wire(&self) -> Frame {
        Frame {
            src: self.src,
            dst: self.dst,
            payload_bytes: self.payload_bytes,
            segments: self.segments,
            body: self
                .body
                .try_clone()
                .expect("frame bodies are always cloneable (Frame::new requires Clone)"),
            fcs: self.fcs,
            span: self.span,
            flow: self.flow,
            credit_return: self.credit_return,
            epoch: self.epoch,
        }
    }

    /// Marks the frame as carrying `segments` wire packets.
    pub fn with_segments(mut self, segments: u32) -> Self {
        assert!(segments >= 1, "a frame carries at least one segment");
        // Recompute rather than patch: the frame may already be corrupted,
        // in which case the mismatch must survive the segment restamp.
        let was_ok = self.fcs_ok();
        self.segments = segments;
        let fresh = Frame::compute_fcs(self.dst, self.payload_bytes, segments);
        self.fcs = if was_ok { fresh } else { fresh ^ 1 };
        self
    }

    /// Attaches the sender's causal span, handing causality across the
    /// wire to the network layers and the receiver.
    pub fn with_span(mut self, span: SpanId) -> Self {
        self.span = span;
        self
    }

    /// Attaches the Tx-side causal flow edge the receiving POE must join
    /// with `Ctx::flow_end`. Does not disturb the FCS.
    pub fn with_flow(mut self, flow: FlowId) -> Self {
        self.flow = flow;
        self
    }

    /// Marks the frame as credit-accounted: the NIC returns one credit to
    /// `ep` when the frame finishes serializing. Does not disturb the FCS.
    pub fn with_credit_return(mut self, ep: Endpoint) -> Self {
        self.credit_return = Some(ep);
        self
    }

    /// Total bytes this frame occupies on the wire (headers charged per
    /// segment).
    pub fn wire_bytes(&self) -> u32 {
        self.payload_bytes + self.segments * WIRE_OVERHEAD_BYTES
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Frame[{}->{} {}B {}]",
            self.src,
            self.dst,
            self.payload_bytes,
            self.body.type_name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_include_overhead() {
        let f = Frame::new(NodeAddr(0), NodeAddr(1), 1000, ());
        assert_eq!(f.wire_bytes(), 1000 + WIRE_OVERHEAD_BYTES);
    }

    #[test]
    fn coalesced_segments_pay_per_segment_headers() {
        let f = Frame::new(NodeAddr(0), NodeAddr(1), 4 * 4096, ()).with_segments(4);
        assert_eq!(f.wire_bytes(), 4 * 4096 + 4 * WIRE_OVERHEAD_BYTES);
    }

    #[test]
    fn body_is_typed() {
        let f = Frame::new(NodeAddr(0), NodeAddr(1), 4, 7u32);
        assert_eq!(f.body.downcast::<u32>(), 7);
    }

    #[test]
    fn fcs_fresh_frames_verify_and_survive_restamps() {
        let mut f = Frame::new(NodeAddr(2), NodeAddr(5), 4096, 7u32);
        assert!(f.fcs_ok());
        // The NIC re-stamps src and epoch; FCS must not cover either.
        f.src = NodeAddr(3);
        f.epoch = 2;
        assert!(f.fcs_ok());
        let f = f.with_segments(4);
        assert!(f.fcs_ok());
        assert_eq!(f.epoch, 2, "epoch survives the segment restamp");
        assert_eq!(f.clone_wire().epoch, 2, "epoch survives duplication");
    }

    #[test]
    fn corruption_breaks_fcs_and_sticks_through_restamps() {
        let mut f = Frame::new(NodeAddr(0), NodeAddr(1), 64, 7u32);
        f.corrupt(0xdead_beef);
        assert!(!f.fcs_ok());
        let f = f.with_segments(2);
        assert!(!f.fcs_ok(), "corruption must survive a segment restamp");
    }

    #[test]
    fn clone_wire_duplicates_body_and_fcs() {
        let mut f = Frame::new(NodeAddr(0), NodeAddr(1), 64, 9u64);
        let dup = f.clone_wire();
        assert!(dup.fcs_ok());
        assert_eq!(dup.body.downcast::<u64>(), 9);
        // A corrupted original duplicates as corrupted.
        f.corrupt(1);
        let dup = f.clone_wire();
        assert!(!dup.fcs_ok());
    }
}
