//! Cluster topology construction.
//!
//! The evaluation cluster in the paper is a set of CPU+FPGA nodes attached
//! to a packet switch: each FPGA has its own 100 Gb/s MAC and each CPU its
//! own 100 Gb/s commodity NIC, all ports on the same fabric. [`Network`]
//! builds the switch and one [`NetPort`] per attached device and hands out
//! the endpoints devices use to transmit.

use accl_sim::prelude::*;
use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;
use crate::frame::NodeAddr;
use crate::switch::{NetPort, OverloadPolicy, PortCounters, Switch};

/// Physical-layer parameters of the fabric.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetConfig {
    /// Link rate of every port, in Gb/s.
    pub link_gbps: f64,
    /// Switch forwarding latency, in nanoseconds.
    pub switch_latency_ns: u64,
    /// One-way propagation delay of each link, in nanoseconds.
    pub propagation_ns: u64,
    /// Per-port switch egress buffer capacity in frames. `None` (the
    /// default) keeps the historical unbounded buffers; finite values turn
    /// on overload handling per [`NetConfig::overload_policy`].
    #[serde(default)]
    pub switch_buffer_frames: Option<u32>,
    /// What a full egress buffer does to arriving frames: PFC-style pause
    /// of the source NIC, or lossy tail-drop. Irrelevant while
    /// [`NetConfig::switch_buffer_frames`] is `None`.
    #[serde(default)]
    pub overload_policy: OverloadPolicy,
}

impl Default for NetConfig {
    fn default() -> Self {
        // 100 Gb/s ports on a Nexus-class switch, short data-center cables.
        NetConfig {
            link_gbps: 100.0,
            switch_latency_ns: 500,
            propagation_ns: 150,
            switch_buffer_frames: None,
            overload_policy: OverloadPolicy::default(),
        }
    }
}

impl NetConfig {
    /// Switch forwarding latency as a duration.
    pub fn switch_latency(&self) -> Dur {
        Dur::from_ns(self.switch_latency_ns)
    }

    /// Link propagation delay as a duration.
    pub fn propagation(&self) -> Dur {
        Dur::from_ns(self.propagation_ns)
    }

    /// The conservative parallel-simulation lookahead this fabric supports:
    /// every event crossing a node boundary (port -> switch, switch -> port,
    /// including PFC pause frames) travels at least one link propagation
    /// delay, so the safe-window width is exactly that.
    pub fn lookahead(&self) -> Dur {
        self.propagation()
    }
}

/// A built fabric: one switch plus one [`NetPort`] per device.
pub struct Network {
    switch: ComponentId,
    ports: Vec<ComponentId>,
    cfg: NetConfig,
}

impl Network {
    /// Builds a fabric with `n_nodes` ports into `sim`.
    pub fn build(sim: &mut Simulator, cfg: NetConfig, n_nodes: usize) -> Network {
        let switch_id = sim.reserve("net.switch");
        let mut switch = Switch::new(
            n_nodes,
            cfg.link_gbps,
            cfg.switch_latency(),
            cfg.propagation(),
        );
        // Per-component entropy stream (not the shared, deprecated
        // `Ctx::rng`): the fault policies' draw order depends only on the
        // traffic this switch sees.
        switch.set_rng(sim.fork_rng("net.switch"));
        switch.set_buffer_limit(cfg.switch_buffer_frames, cfg.overload_policy);
        sim.install(switch_id, switch);
        let ports: Vec<ComponentId> = (0..n_nodes)
            .map(|i| {
                sim.add(
                    format!("net.port{i}"),
                    NetPort::new(
                        NodeAddr(i as u32),
                        Endpoint::of(switch_id),
                        cfg.link_gbps,
                        cfg.propagation(),
                    ),
                )
            })
            .collect();
        // Pause frames flow switch -> source NIC regardless of whether the
        // buffer limit is set now: `set_buffer_limit` can arrive later
        // (e.g. a chaos buffer-shrink fault) and the channel must exist.
        for (i, &port) in ports.iter().enumerate() {
            sim.component_mut::<Switch>(switch_id)
                .attach_pause(NodeAddr(i as u32), Endpoint::of(port));
        }
        Network {
            switch: switch_id,
            ports,
            cfg,
        }
    }

    /// The minimum cross-node event delay of the built fabric — feed this
    /// to [`Simulator::set_lookahead`] when running partitioned.
    pub fn lookahead(&self) -> Dur {
        self.cfg.lookahead()
    }

    /// Number of ports on the fabric.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// Whether the fabric has no ports.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// The fabric address of node `i`.
    pub fn addr(&self, i: usize) -> NodeAddr {
        assert!(i < self.ports.len(), "node {i} out of range");
        NodeAddr(i as u32)
    }

    /// The endpoint node `i`'s device sends [`crate::frame::Frame`]s to.
    pub fn tx(&self, i: usize) -> Endpoint {
        Endpoint::of(self.ports[i])
    }

    /// Attaches the receive handler for node `i`.
    pub fn attach_rx(&self, sim: &mut Simulator, i: usize, rx: Endpoint) {
        sim.component_mut::<Switch>(self.switch)
            .attach_rx(self.addr(i), rx);
    }

    /// Installs a fault-injection policy on the switch.
    pub fn set_fault_plan(&self, sim: &mut Simulator, plan: FaultPlan) {
        sim.component_mut::<Switch>(self.switch)
            .set_fault_plan(plan);
    }

    /// Schedules a fail-stop crash of node `i` at simulated time `at`,
    /// composing with whatever fault plan is already installed. From `at`
    /// on, the switch blackholes all frames to or from the node.
    pub fn crash_node(&self, sim: &mut Simulator, i: usize, at: Time) {
        let addr = self.addr(i);
        let sw = sim.component_mut::<Switch>(self.switch);
        let plan = std::mem::take(sw.fault_plan_mut());
        sw.set_fault_plan(plan.with_node_crash(addr, at));
    }

    /// Schedules a restart of node `i` at simulated time `at`, composing
    /// with the installed fault plan: the node's crash window (see
    /// [`Network::crash_node`]) closes at `at` and the fabric carries its
    /// traffic again. Fencing of the old incarnation's frames is the
    /// cluster's job (a [`crate::switch::Reincarnate`] control event to the
    /// node's port plus epoch fences at the peers' RxMuxes).
    pub fn restart_node(&self, sim: &mut Simulator, i: usize, at: Time) {
        let addr = self.addr(i);
        let sw = sim.component_mut::<Switch>(self.switch);
        let plan = std::mem::take(sw.fault_plan_mut());
        sw.set_fault_plan(plan.with_node_restart(addr, at));
    }

    /// Schedules a `[from, until)` fabric partition along `mask`, composing
    /// with the installed fault plan.
    pub fn partition(&self, sim: &mut Simulator, mask: u64, from: Time, until: Time) {
        let sw = sim.component_mut::<Switch>(self.switch);
        let plan = std::mem::take(sw.fault_plan_mut());
        sw.set_fault_plan(plan.with_partition(mask, from, until));
    }

    /// Schedules a `[from, until)` outage of node `i`'s link, composing
    /// with the installed fault plan.
    pub fn link_down(&self, sim: &mut Simulator, i: usize, from: Time, until: Time) {
        let addr = self.addr(i);
        let sw = sim.component_mut::<Switch>(self.switch);
        let plan = std::mem::take(sw.fault_plan_mut());
        sw.set_fault_plan(plan.with_link_down(addr, from, until));
    }

    /// Egress counters of switch port `i`.
    pub fn port_counters(&self, sim: &Simulator, i: usize) -> PortCounters {
        sim.component::<Switch>(self.switch)
            .port_counters(self.addr(i))
    }

    /// Frames dropped by fault injection so far.
    pub fn frames_dropped(&self, sim: &Simulator) -> u64 {
        sim.component::<Switch>(self.switch).frames_dropped()
    }

    /// The physical-layer configuration this fabric was built with.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }

    /// Component id of the switch (for advanced introspection).
    pub fn switch_id(&self) -> ComponentId {
        self.switch
    }

    /// Component id of node `i`'s [`NetPort`] (for pause-storm fault
    /// injection and introspection).
    pub fn port_id(&self, i: usize) -> ComponentId {
        self.ports[i]
    }

    /// Records per-link utilization gauges into the simulator's stats:
    /// `net.link.<i>.busy_ps` (switch egress toward node `i`) and
    /// `net.link.<i>.nic_busy_ps` (node `i`'s NIC egress), in picoseconds
    /// of cumulative serialization time. Divide by elapsed simulated time
    /// for utilization. Intended after a run, not on the hot path.
    pub fn record_link_stats(&self, sim: &mut Simulator) {
        for i in 0..self.ports.len() {
            let busy = sim
                .component::<Switch>(self.switch)
                .egress_busy_time(self.addr(i));
            let nic_busy = sim.component::<NetPort>(self.ports[i]).egress_busy_time();
            sim.stats_mut()
                .set_gauge(&format!("net.link.{i}.busy_ps"), busy.as_ps() as i64);
            sim.stats_mut().set_gauge(
                &format!("net.link.{i}.nic_busy_ps"),
                nic_busy.as_ps() as i64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    #[test]
    fn build_and_route() {
        let mut sim = Simulator::new(0);
        let net = Network::build(&mut sim, NetConfig::default(), 4);
        assert_eq!(net.len(), 4);
        let sinks: Vec<ComponentId> = (0..4)
            .map(|i| {
                let s = sim.add(format!("sink{i}"), Mailbox::<Frame>::new());
                net.attach_rx(&mut sim, i, Endpoint::of(s));
                s
            })
            .collect();
        sim.post(
            net.tx(0),
            Time::ZERO,
            Frame::new(net.addr(0), net.addr(3), 64, 9u8),
        );
        sim.run();
        assert_eq!(sim.component::<Mailbox<Frame>>(sinks[3]).len(), 1);
        assert_eq!(sim.component::<Mailbox<Frame>>(sinks[1]).len(), 0);
        assert_eq!(net.port_counters(&sim, 3).frames_out, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn addr_out_of_range_panics() {
        let mut sim = Simulator::new(0);
        let net = Network::build(&mut sim, NetConfig::default(), 2);
        net.addr(2);
    }
}
