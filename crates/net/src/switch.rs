//! The packet switch and per-node network ports.
//!
//! The model is a store-and-forward output-queued switch, matching the
//! Cisco Nexus fabric of the paper's cluster closely enough for the effects
//! that matter to collectives: line-rate serialization on every link and
//! queueing at the egress port. The latter is what produces the in-cast
//! bottleneck at the root of all-to-one reductions (paper §4.4.4, Fig. 12).

use std::collections::VecDeque;

use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fault::{FaultAction, FaultPlan};
use crate::frame::{Frame, NodeAddr};

/// Per-output-port bookkeeping inside the switch.
struct SwitchPort {
    egress: Pipe,
    rx_handler: Option<Endpoint>,
    frames_out: u64,
    bytes_out: u64,
    /// End times of in-flight egress reservations (monotonic, FIFO pipe);
    /// its length after expiry-pruning is the instantaneous queue depth.
    pending_ends: VecDeque<Time>,
}

/// Traffic counters of one switch port, as observed after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortCounters {
    /// Frames forwarded out of this port.
    pub frames_out: u64,
    /// Wire bytes forwarded out of this port.
    pub bytes_out: u64,
}

/// An output-queued, store-and-forward packet switch.
///
/// Receives [`Frame`] events (fully serialized by the sender's
/// [`NetPort`]), applies the fault plan, then queues the frame on the
/// destination port's egress [`Pipe`] and delivers it to the attached
/// receiver endpoint after the forwarding latency, egress serialization and
/// link propagation.
pub struct Switch {
    forward_latency: Dur,
    propagation: Dur,
    ports: Vec<SwitchPort>,
    fault: FaultPlan,
    frame_index: u64,
    frames_dropped: u64,
    frames_corrupted: u64,
    frames_duplicated: u64,
    /// Private entropy stream for the statistical fault policies. Owned by
    /// the switch (not the deprecated shared `Ctx::rng`) so its draw order
    /// depends only on the frames this switch sees; builders replace the
    /// default with `Simulator::fork_rng("net.switch")`.
    rng: StdRng,
}

impl Switch {
    /// Creates a switch with `n_ports` ports on `link_gbps` links.
    pub fn new(n_ports: usize, link_gbps: f64, forward_latency: Dur, propagation: Dur) -> Self {
        Switch {
            forward_latency,
            propagation,
            ports: (0..n_ports)
                .map(|_| SwitchPort {
                    egress: Pipe::gbps(link_gbps),
                    rx_handler: None,
                    frames_out: 0,
                    bytes_out: 0,
                    pending_ends: VecDeque::new(),
                })
                .collect(),
            fault: FaultPlan::none(),
            frame_index: 0,
            frames_dropped: 0,
            frames_corrupted: 0,
            frames_duplicated: 0,
            rng: StdRng::seed_from_u64(0x5157_11c4),
        }
    }

    /// Installs the fault-policy entropy stream (conventionally
    /// `Simulator::fork_rng("net.switch")`).
    pub fn set_rng(&mut self, rng: StdRng) {
        self.rng = rng;
    }

    /// Attaches the receive side of port `addr` to `rx`.
    pub fn attach_rx(&mut self, addr: NodeAddr, rx: Endpoint) {
        self.ports[addr.index()].rx_handler = Some(rx);
    }

    /// Installs a fault-injection policy.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// Mutable access to the installed fault plan, for composing link
    /// outages / node crashes onto an existing policy.
    pub fn fault_plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.fault
    }

    /// The installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Counters for port `addr`.
    pub fn port_counters(&self, addr: NodeAddr) -> PortCounters {
        let p = &self.ports[addr.index()];
        PortCounters {
            frames_out: p.frames_out,
            bytes_out: p.bytes_out,
        }
    }

    /// Total frames dropped by fault injection.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Total frames corrupted (FCS-flipped) by fault injection.
    pub fn frames_corrupted(&self) -> u64 {
        self.frames_corrupted
    }

    /// Total extra frame copies created by fault injection.
    pub fn frames_duplicated(&self) -> u64 {
        self.frames_duplicated
    }

    /// Total frames that entered the switch.
    pub fn frames_seen(&self) -> u64 {
        self.frame_index
    }

    /// Cumulative time port `addr`'s egress link has spent serializing —
    /// divide by elapsed simulated time for link utilization.
    pub fn egress_busy_time(&self, addr: NodeAddr) -> Dur {
        self.ports[addr.index()].egress.busy_time()
    }

    /// Queues `frame` on its destination port's egress and delivers it
    /// after forwarding latency, serialization, propagation and any
    /// fault-injected `extra` delay.
    fn forward_frame(&mut self, ctx: &mut Ctx<'_>, frame: Frame, extra: Dur) {
        let now = ctx.now();
        let dst = frame.dst;
        let port = &mut self.ports[dst.index()];
        let rx = port.rx_handler.unwrap_or_else(|| {
            panic!("switch port {dst} has no receiver attached (frame {frame:?})")
        });
        let wire = u64::from(frame.wire_bytes());
        port.frames_out += u64::from(frame.segments);
        port.bytes_out += wire;
        let ready = ctx.now() + self.forward_latency;
        let (start, end) = port
            .egress
            .reserve_batch(ready, wire, u64::from(frame.segments));
        // Egress queue metrics: wait time distribution and instantaneous
        // depth (in-flight reservations not yet drained).
        while port.pending_ends.front().is_some_and(|&t| t <= now) {
            port.pending_ends.pop_front();
        }
        port.pending_ends.push_back(end);
        ctx.stats()
            .add("net.switch.frames", u64::from(frame.segments));
        ctx.stats().add("net.switch.bytes", wire);
        ctx.stats()
            .observe("net.switch.queue_wait_ps", (start - ready).as_ps());
        ctx.stats()
            .observe("net.switch.egress_depth", port.pending_ends.len() as u64);
        if ctx.spans_enabled() {
            if start > ready {
                ctx.span_interval("net.queue", frame.span, ready, start);
            }
            ctx.span_interval_attrs(
                "net.wire",
                frame.span,
                start,
                end + self.propagation,
                &[
                    Attr {
                        key: "leg",
                        value: AttrValue::Str("switch"),
                    },
                    Attr {
                        key: "bytes",
                        value: AttrValue::Bytes(wire),
                    },
                ],
            );
        }
        // Fault-injected delay is applied on the wire, after serialization,
        // so a delayed frame can be overtaken (true reordering) instead of
        // head-of-line blocking the egress FIFO.
        ctx.send_at(rx, end + self.propagation + extra, frame);
    }
}

impl Component for Switch {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        let mut frame = payload.downcast::<Frame>();
        let index = self.frame_index;
        self.frame_index += 1;
        let now = ctx.now();
        let mut duplicate = false;
        let extra = match self.fault.decide(index, now, &frame, &mut self.rng) {
            FaultAction::Forward => Dur::ZERO,
            FaultAction::Delay(d) => d,
            FaultAction::Drop => {
                self.frames_dropped += 1;
                ctx.stats().add("net.switch.drops", 1);
                accl_sim::trace_instant!(ctx, "net.drop", frame.span);
                return;
            }
            FaultAction::Corrupt => {
                // Deterministic nonzero mask derived from the frame index:
                // corruption replays bit-for-bit without an RNG draw.
                self.frames_corrupted += 1;
                ctx.stats().add("net.switch.corrupted", 1);
                accl_sim::trace_instant!(ctx, "net.corrupt", frame.span);
                frame.corrupt(((index as u32) << 1) | 1);
                Dur::ZERO
            }
            FaultAction::Duplicate => {
                self.frames_duplicated += 1;
                ctx.stats().add("net.switch.duplicated", 1);
                accl_sim::trace_instant!(ctx, "net.duplicate", frame.span);
                duplicate = true;
                Dur::ZERO
            }
        };
        if duplicate {
            // The copy is a real wire occupant: it serializes on the same
            // egress pipe right behind the original.
            let copy = frame.clone_wire();
            self.forward_frame(ctx, frame, extra);
            self.forward_frame(ctx, copy, extra);
        } else {
            self.forward_frame(ctx, frame, extra);
        }
    }
}

/// The egress side of a node's NIC/MAC: serializes frames onto the uplink.
///
/// Local protocol engines send [`Frame`] events here; the port reserves its
/// line-rate egress pipe and the frame arrives at the switch once fully
/// serialized (store-and-forward) plus one propagation delay.
pub struct NetPort {
    addr: NodeAddr,
    switch: Endpoint,
    egress: Pipe,
    propagation: Dur,
    frames_in: u64,
    bytes_in: u64,
}

impl NetPort {
    /// Creates the port for `addr`, uplinked to `switch`.
    pub fn new(addr: NodeAddr, switch: Endpoint, link_gbps: f64, propagation: Dur) -> Self {
        NetPort {
            addr,
            switch,
            egress: Pipe::gbps(link_gbps),
            propagation,
            frames_in: 0,
            bytes_in: 0,
        }
    }

    /// This port's fabric address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// Frames submitted by the local device so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_in
    }

    /// Wire bytes submitted by the local device so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_in
    }

    /// Earliest time the egress link is free (for backpressure estimates).
    pub fn egress_free_at(&self) -> Time {
        self.egress.next_free()
    }

    /// Cumulative time this NIC's egress link has spent serializing —
    /// divide by elapsed simulated time for uplink utilization.
    pub fn egress_busy_time(&self) -> Dur {
        self.egress.busy_time()
    }
}

impl Component for NetPort {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        let mut frame = payload.downcast::<Frame>();
        // Stamp the source: devices don't need to know their own address.
        frame.src = self.addr;
        let wire = u64::from(frame.wire_bytes());
        self.frames_in += u64::from(frame.segments);
        self.bytes_in += wire;
        let (start, end) = self
            .egress
            .reserve_batch(ctx.now(), wire, u64::from(frame.segments));
        ctx.stats().add("net.port.bytes", wire);
        if ctx.spans_enabled() {
            if start > ctx.now() {
                ctx.span_interval("net.queue", frame.span, ctx.now(), start);
            }
            ctx.span_interval_attrs(
                "net.wire",
                frame.span,
                start,
                end + self.propagation,
                &[
                    Attr {
                        key: "leg",
                        value: AttrValue::Str("nic"),
                    },
                    Attr {
                        key: "bytes",
                        value: AttrValue::Bytes(wire),
                    },
                ],
            );
        }
        ctx.send_at(self.switch, end + self.propagation, frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::WIRE_OVERHEAD_BYTES;
    use accl_sim::sim::Simulator;

    struct World {
        sim: Simulator,
        switch: ComponentId,
        ports: Vec<ComponentId>,
        sinks: Vec<ComponentId>,
    }

    fn world(n: usize) -> World {
        let mut sim = Simulator::new(0);
        let switch_id = sim.reserve("switch");
        let mut switch = Switch::new(n, 100.0, Dur::from_ns(500), Dur::from_ns(150));
        let mut ports = Vec::new();
        let mut sinks = Vec::new();
        for i in 0..n {
            let sink = sim.add(format!("sink{i}"), Mailbox::<Frame>::new());
            switch.attach_rx(NodeAddr(i as u32), Endpoint::of(sink));
            let port = sim.add(
                format!("port{i}"),
                NetPort::new(
                    NodeAddr(i as u32),
                    Endpoint::of(switch_id),
                    100.0,
                    Dur::from_ns(150),
                ),
            );
            ports.push(port);
            sinks.push(sink);
        }
        sim.install(switch_id, switch);
        World {
            sim,
            switch: switch_id,
            ports,
            sinks,
        }
    }

    #[test]
    fn single_frame_end_to_end_latency() {
        let mut w = world(2);
        let payload = 1000u32;
        w.sim.post(
            Endpoint::of(w.ports[0]),
            Time::ZERO,
            Frame::new(NodeAddr(0), NodeAddr(1), payload, 42u32),
        );
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 1);
        let wire = u64::from(payload + WIRE_OVERHEAD_BYTES);
        let ser = Dur::for_bytes_gbps(wire, 100.0);
        let expect = Time::ZERO
            + ser                   // NIC egress serialization
            + Dur::from_ns(150)     // uplink propagation
            + Dur::from_ns(500)     // switch forwarding
            + ser                   // switch egress serialization
            + Dur::from_ns(150); // downlink propagation
        assert_eq!(mb.items()[0].0, expect);
        assert_eq!(mb.items()[0].1.body.peek::<u32>(), Some(&42));
        // Source address stamped by the port.
        assert_eq!(mb.items()[0].1.src, NodeAddr(0));
    }

    #[test]
    fn incast_queues_at_egress_port() {
        // Nodes 0 and 1 both blast node 2 at t=0; the shared egress port
        // must serialize them back to back.
        let mut w = world(3);
        for src in 0..2u32 {
            w.sim.post(
                Endpoint::of(w.ports[src as usize]),
                Time::ZERO,
                Frame::new(NodeAddr(src), NodeAddr(2), 4096, src),
            );
        }
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[2]);
        assert_eq!(mb.len(), 2);
        let gap = mb.items()[1].0 - mb.items()[0].0;
        let ser = Dur::for_bytes_gbps(u64::from(4096 + WIRE_OVERHEAD_BYTES), 100.0);
        // Second frame leaves exactly one serialization time after the first.
        assert_eq!(gap, ser);
        let ctr = w
            .sim
            .component::<Switch>(w.switch)
            .port_counters(NodeAddr(2));
        assert_eq!(ctr.frames_out, 2);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        // 0->1 and 2->3 in parallel must arrive at the same time.
        let mut w = world(4);
        for (src, dst) in [(0u32, 1u32), (2, 3)] {
            w.sim.post(
                Endpoint::of(w.ports[src as usize]),
                Time::ZERO,
                Frame::new(NodeAddr(src), NodeAddr(dst), 2048, ()),
            );
        }
        w.sim.run();
        let t1 = w.sim.component::<Mailbox<Frame>>(w.sinks[1]).items()[0].0;
        let t3 = w.sim.component::<Mailbox<Frame>>(w.sinks[3]).items()[0].0;
        assert_eq!(t1, t3);
    }

    #[test]
    fn fault_plan_drops_frames() {
        let mut w = world(2);
        w.sim
            .component_mut::<Switch>(w.switch)
            .set_fault_plan(FaultPlan::drop_frames([0]));
        for i in 0..2 {
            w.sim.post(
                Endpoint::of(w.ports[0]),
                Time::from_ps(i),
                Frame::new(NodeAddr(0), NodeAddr(1), 100, i),
            );
        }
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.items()[0].1.body.peek::<u64>(), Some(&1));
        assert_eq!(w.sim.component::<Switch>(w.switch).frames_dropped(), 1);
    }

    #[test]
    fn corrupted_frame_arrives_with_bad_fcs() {
        let mut w = world(2);
        w.sim
            .component_mut::<Switch>(w.switch)
            .set_fault_plan(FaultPlan::corrupt_frames([0]));
        for i in 0..2u64 {
            w.sim.post(
                Endpoint::of(w.ports[0]),
                Time::from_ps(i),
                Frame::new(NodeAddr(0), NodeAddr(1), 100, i),
            );
        }
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 2, "corrupted frames still arrive");
        assert!(!mb.items()[0].1.fcs_ok());
        assert!(mb.items()[1].1.fcs_ok());
        assert_eq!(w.sim.component::<Switch>(w.switch).frames_corrupted(), 1);
    }

    #[test]
    fn duplicated_frame_arrives_twice_and_pays_the_wire() {
        let mut w = world(2);
        w.sim
            .component_mut::<Switch>(w.switch)
            .set_fault_plan(FaultPlan::duplicate_frames([0]));
        w.sim.post(
            Endpoint::of(w.ports[0]),
            Time::ZERO,
            Frame::new(NodeAddr(0), NodeAddr(1), 1000, 5u64),
        );
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 2);
        for (_, f) in mb.items() {
            assert!(f.fcs_ok());
            assert_eq!(f.body.peek::<u64>(), Some(&5));
        }
        // The copy serializes behind the original on the egress pipe.
        let ser = Dur::for_bytes_gbps(u64::from(1000 + WIRE_OVERHEAD_BYTES), 100.0);
        assert_eq!(mb.items()[1].0 - mb.items()[0].0, ser);
        let sw = w.sim.component::<Switch>(w.switch);
        assert_eq!(sw.frames_duplicated(), 1);
        assert_eq!(sw.port_counters(NodeAddr(1)).frames_out, 2);
    }

    #[test]
    fn delayed_frame_is_reordered() {
        let mut w = world(2);
        w.sim
            .component_mut::<Switch>(w.switch)
            .set_fault_plan(FaultPlan::delay_frames([0], Dur::from_us(100)));
        for i in 0..2u64 {
            w.sim.post(
                Endpoint::of(w.ports[0]),
                Time::from_ps(i),
                Frame::new(NodeAddr(0), NodeAddr(1), 100, i),
            );
        }
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 2);
        // Frame 1 overtakes frame 0.
        assert_eq!(mb.items()[0].1.body.peek::<u64>(), Some(&1));
        assert_eq!(mb.items()[1].1.body.peek::<u64>(), Some(&0));
    }
}
