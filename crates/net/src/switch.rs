//! The packet switch and per-node network ports.
//!
//! The model is a store-and-forward output-queued switch, matching the
//! Cisco Nexus fabric of the paper's cluster closely enough for the effects
//! that matter to collectives: line-rate serialization on every link and
//! queueing at the egress port. The latter is what produces the in-cast
//! bottleneck at the root of all-to-one reductions (paper §4.4.4, Fig. 12).

use std::collections::VecDeque;

use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fault::{FaultAction, FaultPlan};
use crate::frame::{CreditReturn, Frame, NodeAddr};

/// What the switch does with a frame arriving at an egress port whose
/// buffer is full (see [`Switch::set_buffer_limit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum OverloadPolicy {
    /// PFC-style lossless backpressure: accept the frame but send a
    /// [`PauseFrame`] back to the source NIC, which holds further frames
    /// until the queue drains below the limit.
    #[default]
    Pause,
    /// Lossy tail-drop: discard the frame (counted separately from
    /// fault-injected drops).
    Drop,
}

/// PFC-style pause delivered by the switch to a source [`NetPort`]: hold
/// the uplink until `until`. Modelled as a control event (pause frames are
/// tiny and travel on a priority channel; they pay no wire time here).
#[derive(Debug, Clone, Copy)]
pub struct PauseFrame {
    /// When the paused NIC may resume transmitting.
    pub until: Time,
}

/// Per-output-port bookkeeping inside the switch.
struct SwitchPort {
    egress: Pipe,
    rx_handler: Option<Endpoint>,
    frames_out: u64,
    bytes_out: u64,
    /// End times of in-flight egress reservations (monotonic, FIFO pipe);
    /// its length after expiry-pruning is the instantaneous queue depth.
    pending_ends: VecDeque<Time>,
}

/// Traffic counters of one switch port, as observed after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortCounters {
    /// Frames forwarded out of this port.
    pub frames_out: u64,
    /// Wire bytes forwarded out of this port.
    pub bytes_out: u64,
}

/// An output-queued, store-and-forward packet switch.
///
/// Receives [`Frame`] events (fully serialized by the sender's
/// [`NetPort`]), applies the fault plan, then queues the frame on the
/// destination port's egress [`Pipe`] and delivers it to the attached
/// receiver endpoint after the forwarding latency, egress serialization and
/// link propagation.
pub struct Switch {
    forward_latency: Dur,
    propagation: Dur,
    ports: Vec<SwitchPort>,
    fault: FaultPlan,
    frame_index: u64,
    frames_dropped: u64,
    frames_corrupted: u64,
    frames_duplicated: u64,
    /// Per-port egress buffer capacity in frames (`None` = unbounded, the
    /// historical behaviour) and the policy applied when it overflows.
    buffer_frames: Option<u32>,
    overload_policy: OverloadPolicy,
    /// Where to deliver [`PauseFrame`]s, per source port (wired by
    /// [`crate::topology::Network::build`]).
    pause_tx: Vec<Option<Endpoint>>,
    frames_overflow_dropped: u64,
    pauses_sent: u64,
    /// Private entropy stream for the statistical fault policies. Owned by
    /// the switch (not the deprecated shared `Ctx::rng`) so its draw order
    /// depends only on the frames this switch sees; builders replace the
    /// default with `Simulator::fork_rng("net.switch")`.
    rng: StdRng,
}

impl Switch {
    /// Creates a switch with `n_ports` ports on `link_gbps` links.
    pub fn new(n_ports: usize, link_gbps: f64, forward_latency: Dur, propagation: Dur) -> Self {
        Switch {
            forward_latency,
            propagation,
            ports: (0..n_ports)
                .map(|_| SwitchPort {
                    egress: Pipe::gbps(link_gbps),
                    rx_handler: None,
                    frames_out: 0,
                    bytes_out: 0,
                    pending_ends: VecDeque::new(),
                })
                .collect(),
            fault: FaultPlan::none(),
            frame_index: 0,
            frames_dropped: 0,
            frames_corrupted: 0,
            frames_duplicated: 0,
            buffer_frames: None,
            overload_policy: OverloadPolicy::default(),
            pause_tx: vec![None; n_ports],
            frames_overflow_dropped: 0,
            pauses_sent: 0,
            rng: StdRng::seed_from_u64(0x5157_11c4),
        }
    }

    /// Bounds every egress port's buffer to `frames` in-flight frames and
    /// selects what happens on overflow. `None` restores the historical
    /// unbounded behaviour.
    pub fn set_buffer_limit(&mut self, frames: Option<u32>, policy: OverloadPolicy) {
        if let Some(f) = frames {
            assert!(f >= 1, "egress buffer needs room for at least one frame");
        }
        self.buffer_frames = frames;
        self.overload_policy = policy;
    }

    /// Attaches the pause-control channel toward the NIC on port `addr`
    /// (where [`PauseFrame`]s go under [`OverloadPolicy::Pause`]).
    pub fn attach_pause(&mut self, addr: NodeAddr, pause: Endpoint) {
        self.pause_tx[addr.index()] = Some(pause);
    }

    /// Installs the fault-policy entropy stream (conventionally
    /// `Simulator::fork_rng("net.switch")`).
    pub fn set_rng(&mut self, rng: StdRng) {
        self.rng = rng;
    }

    /// Attaches the receive side of port `addr` to `rx`.
    pub fn attach_rx(&mut self, addr: NodeAddr, rx: Endpoint) {
        self.ports[addr.index()].rx_handler = Some(rx);
    }

    /// Installs a fault-injection policy.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// Mutable access to the installed fault plan, for composing link
    /// outages / node crashes onto an existing policy.
    pub fn fault_plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.fault
    }

    /// The installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Counters for port `addr`.
    pub fn port_counters(&self, addr: NodeAddr) -> PortCounters {
        let p = &self.ports[addr.index()];
        PortCounters {
            frames_out: p.frames_out,
            bytes_out: p.bytes_out,
        }
    }

    /// Total frames dropped by fault injection.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Total frames corrupted (FCS-flipped) by fault injection.
    pub fn frames_corrupted(&self) -> u64 {
        self.frames_corrupted
    }

    /// Total extra frame copies created by fault injection.
    pub fn frames_duplicated(&self) -> u64 {
        self.frames_duplicated
    }

    /// Total frames that entered the switch.
    pub fn frames_seen(&self) -> u64 {
        self.frame_index
    }

    /// Frames tail-dropped because an egress buffer was full (under
    /// [`OverloadPolicy::Drop`]); disjoint from fault-injected drops.
    pub fn frames_overflow_dropped(&self) -> u64 {
        self.frames_overflow_dropped
    }

    /// Pause frames sent to source NICs (under [`OverloadPolicy::Pause`]).
    pub fn pauses_sent(&self) -> u64 {
        self.pauses_sent
    }

    /// Cumulative time port `addr`'s egress link has spent serializing —
    /// divide by elapsed simulated time for link utilization.
    pub fn egress_busy_time(&self, addr: NodeAddr) -> Dur {
        self.ports[addr.index()].egress.busy_time()
    }

    /// Queues `frame` on its destination port's egress and delivers it
    /// after forwarding latency, serialization, propagation and any
    /// fault-injected `extra` delay.
    fn forward_frame(&mut self, ctx: &mut Ctx<'_>, frame: Frame, extra: Dur) {
        let now = ctx.now();
        let dst = frame.dst;
        let port = &mut self.ports[dst.index()];
        let rx = port.rx_handler.unwrap_or_else(|| {
            panic!("switch port {dst} has no receiver attached (frame {frame:?})")
        });
        // Prune drained reservations first: the remainder is the
        // instantaneous egress queue depth the buffer limit applies to.
        while port.pending_ends.front().is_some_and(|&t| t <= now) {
            port.pending_ends.pop_front();
        }
        let overflowing = self
            .buffer_frames
            .is_some_and(|cap| port.pending_ends.len() >= cap as usize);
        if overflowing && self.overload_policy == OverloadPolicy::Drop {
            self.frames_overflow_dropped += 1;
            ctx.stats().add("net.switch.overflow_drops", 1);
            accl_sim::trace_instant!(ctx, "net.overflow_drop", frame.span);
            return;
        }
        let wire = u64::from(frame.wire_bytes());
        port.frames_out += u64::from(frame.segments);
        port.bytes_out += wire;
        let ready = ctx.now() + self.forward_latency;
        let (start, end) = port
            .egress
            .reserve_batch(ready, wire, u64::from(frame.segments));
        port.pending_ends.push_back(end);
        if overflowing {
            // PFC-style lossless backpressure: the frame is accepted (the
            // buffer absorbs one overshoot per in-flight source frame) and
            // the source NIC is paused until the queue drains back below
            // the limit.
            let cap = self.buffer_frames.unwrap_or(1) as usize;
            let depth = port.pending_ends.len();
            let resume_at = port.pending_ends[depth - cap];
            self.pauses_sent += 1;
            ctx.stats().add("net.switch.pauses", 1);
            accl_sim::trace_instant!(ctx, "net.pause", frame.span);
            if let Some(pause) = self.pause_tx[frame.src.index()] {
                // Pause frames travel the wire like any other control
                // traffic: one propagation delay back to the NIC. This also
                // keeps every switch->port edge at or above the link
                // lookahead, which the parallel simulator relies on.
                ctx.send(pause, self.propagation, PauseFrame { until: resume_at });
            }
        }
        let port = &mut self.ports[dst.index()];
        ctx.stats()
            .add("net.switch.frames", u64::from(frame.segments));
        ctx.stats().add("net.switch.bytes", wire);
        ctx.stats()
            .observe("net.switch.queue_wait_ps", (start - ready).as_ps());
        ctx.stats()
            .observe("net.switch.egress_depth", port.pending_ends.len() as u64);
        if ctx.spans_enabled() {
            if start > ready {
                ctx.span_interval("net.queue", frame.span, ready, start);
            }
            ctx.span_interval_attrs(
                "net.wire",
                frame.span,
                start,
                end + self.propagation,
                &[
                    Attr {
                        key: "leg",
                        value: AttrValue::Str("switch"),
                    },
                    Attr {
                        key: "bytes",
                        value: AttrValue::Bytes(wire),
                    },
                ],
            );
        }
        // Fault-injected delay is applied on the wire, after serialization,
        // so a delayed frame can be overtaken (true reordering) instead of
        // head-of-line blocking the egress FIFO.
        ctx.send_at(rx, end + self.propagation + extra, frame);
    }
}

impl Component for Switch {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        let mut frame = payload.downcast::<Frame>();
        let index = self.frame_index;
        self.frame_index += 1;
        let now = ctx.now();
        let mut duplicate = false;
        let extra = match self.fault.decide(index, now, &frame, &mut self.rng) {
            FaultAction::Forward => Dur::ZERO,
            FaultAction::Delay(d) => d,
            FaultAction::Drop => {
                self.frames_dropped += 1;
                ctx.stats().add("net.switch.drops", 1);
                accl_sim::trace_instant!(ctx, "net.drop", frame.span);
                return;
            }
            FaultAction::Corrupt => {
                // Deterministic nonzero mask derived from the frame index:
                // corruption replays bit-for-bit without an RNG draw.
                self.frames_corrupted += 1;
                ctx.stats().add("net.switch.corrupted", 1);
                accl_sim::trace_instant!(ctx, "net.corrupt", frame.span);
                frame.corrupt(((index as u32) << 1) | 1);
                Dur::ZERO
            }
            FaultAction::Duplicate => {
                self.frames_duplicated += 1;
                ctx.stats().add("net.switch.duplicated", 1);
                accl_sim::trace_instant!(ctx, "net.duplicate", frame.span);
                duplicate = true;
                Dur::ZERO
            }
        };
        if duplicate {
            // The copy is a real wire occupant: it serializes on the same
            // egress pipe right behind the original.
            let copy = frame.clone_wire();
            self.forward_frame(ctx, frame, extra);
            self.forward_frame(ctx, copy, extra);
        } else {
            self.forward_frame(ctx, frame, extra);
        }
    }

    fn resource_state(&self) -> Option<ResourceState> {
        // The switch never blocks — it only publishes egress occupancy so a
        // stall report shows which port's buffer the cluster is wedged on.
        // `pending_ends` may hold already-drained reservations (pruning
        // happens on the next arrival); that over-report is harmless for a
        // gauge and disappears at any quiet point after traffic resumes.
        let gauges: Vec<ResourceGauge> = self
            .ports
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.pending_ends.is_empty())
            .map(|(i, p)| ResourceGauge {
                name: format!("net.egress(n{i})"),
                used: p.pending_ends.len() as u64,
                capacity: self.buffer_frames.map(u64::from),
            })
            .collect();
        (!gauges.is_empty()).then(|| ResourceState::gauges_only(gauges))
    }

    fn state_digest(&self) -> Option<u64> {
        // Everything externally meaningful about the fabric: forward and
        // fault counters, per-port traffic, and the exact egress
        // reservation times. Two runs that forwarded the same frames must
        // agree bit for bit — the race detector and the parallel-engine
        // determinism gate both compare this.
        let mut h = 0u64;
        for v in [
            self.frame_index,
            self.frames_dropped,
            self.frames_corrupted,
            self.frames_duplicated,
            self.frames_overflow_dropped,
            self.pauses_sent,
        ] {
            digest_u64(&mut h, v);
        }
        for p in &self.ports {
            digest_u64(&mut h, p.frames_out);
            digest_u64(&mut h, p.bytes_out);
            digest_u64(&mut h, p.egress.next_free().as_ps());
        }
        Some(h)
    }
}

/// FNV-1a fold of one `u64` field into a running state digest.
fn digest_u64(hash: &mut u64, v: u64) {
    if *hash == 0 {
        *hash = 0xcbf2_9ce4_8422_2325;
    }
    for b in v.to_le_bytes() {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// The egress side of a node's NIC/MAC: serializes frames onto the uplink.
///
/// Local protocol engines send [`Frame`] events here; the port reserves its
/// line-rate egress pipe and the frame arrives at the switch once fully
/// serialized (store-and-forward) plus one propagation delay.
pub struct NetPort {
    addr: NodeAddr,
    switch: Endpoint,
    egress: Pipe,
    propagation: Dur,
    frames_in: u64,
    bytes_in: u64,
    /// PFC pause state: no frame enters the uplink before this instant.
    paused_until: Time,
    /// Frames held while paused, flushed in arrival order on resume.
    held: VecDeque<Frame>,
    pauses_received: u64,
    /// This node's incarnation number, stamped into every outgoing frame's
    /// epoch field. 0 for the first life; a [`Reincarnate`] control event
    /// (posted by the cluster when a node-restart fault fires) bumps it.
    incarnation: u32,
}

/// Self-scheduled resume tick for a paused [`NetPort`].
#[derive(Debug, Clone, Copy)]
struct Resume;

/// Control event marking a node restart at its NIC: the port's incarnation
/// is bumped (all subsequent frames carry the new epoch) and any traffic
/// still held from the previous life is discarded — a rebooted NIC does not
/// resume a dead incarnation's queue.
#[derive(Debug, Clone, Copy)]
pub struct Reincarnate;

impl NetPort {
    /// Creates the port for `addr`, uplinked to `switch`.
    pub fn new(addr: NodeAddr, switch: Endpoint, link_gbps: f64, propagation: Dur) -> Self {
        NetPort {
            addr,
            switch,
            egress: Pipe::gbps(link_gbps),
            propagation,
            frames_in: 0,
            bytes_in: 0,
            paused_until: Time::ZERO,
            held: VecDeque::new(),
            pauses_received: 0,
            incarnation: 0,
        }
    }

    /// This port's fabric address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// The incarnation number stamped into outgoing frames' epochs.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Frames submitted by the local device so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_in
    }

    /// Wire bytes submitted by the local device so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_in
    }

    /// Earliest time the egress link is free (for backpressure estimates).
    pub fn egress_free_at(&self) -> Time {
        self.egress.next_free()
    }

    /// Cumulative time this NIC's egress link has spent serializing —
    /// divide by elapsed simulated time for uplink utilization.
    pub fn egress_busy_time(&self) -> Dur {
        self.egress.busy_time()
    }

    /// Pause frames this NIC has honoured so far.
    pub fn pauses_received(&self) -> u64 {
        self.pauses_received
    }

    /// Frames currently held back by an active pause.
    pub fn frames_held(&self) -> usize {
        self.held.len()
    }

    /// Serializes `frame` onto the uplink and schedules its arrival at the
    /// switch; returns any tx-window credit it carried at serialization end.
    fn transmit(&mut self, ctx: &mut Ctx<'_>, mut frame: Frame) {
        // Stamp the source and epoch: devices don't need to know their own
        // address or which life they are on.
        frame.src = self.addr;
        frame.epoch = self.incarnation;
        let wire = u64::from(frame.wire_bytes());
        self.frames_in += u64::from(frame.segments);
        self.bytes_in += wire;
        let (start, end) = self
            .egress
            .reserve_batch(ctx.now(), wire, u64::from(frame.segments));
        ctx.stats().add("net.port.bytes", wire);
        if ctx.spans_enabled() {
            if start > ctx.now() {
                ctx.span_interval("net.queue", frame.span, ctx.now(), start);
            }
            ctx.span_interval_attrs(
                "net.wire",
                frame.span,
                start,
                end + self.propagation,
                &[
                    Attr {
                        key: "leg",
                        value: AttrValue::Str("nic"),
                    },
                    Attr {
                        key: "bytes",
                        value: AttrValue::Bytes(wire),
                    },
                ],
            );
        }
        if let Some(ep) = frame.credit_return {
            ctx.send_at(ep, end, CreditReturn { credits: 1 });
        }
        ctx.send_at(self.switch, end + self.propagation, frame);
    }
}

impl Component for NetPort {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, _port: PortId, payload: Payload) {
        let payload = match payload.try_downcast::<Frame>() {
            Ok(frame) => {
                if ctx.now() < self.paused_until {
                    self.held.push_back(frame);
                    ctx.stats()
                        .observe("net.port.held_depth", self.held.len() as u64);
                } else {
                    self.transmit(ctx, frame);
                }
                return;
            }
            Err(other) => other,
        };
        let payload = match payload.try_downcast::<PauseFrame>() {
            Ok(pause) => {
                self.pauses_received += 1;
                ctx.stats().add("net.port.pauses", 1);
                if pause.until <= ctx.now() {
                    // The pause expired while in flight on the wire —
                    // nothing to hold, and a resume tick at `until` would
                    // land in the past.
                    return;
                }
                if pause.until > self.paused_until {
                    self.paused_until = pause.until;
                    // One resume tick per pause edge; a longer pause
                    // arriving later schedules its own, and stale ticks
                    // no-op against `paused_until`.
                    ctx.send_at(Endpoint::of(ctx.self_id()), pause.until, Resume);
                }
                return;
            }
            Err(other) => other,
        };
        let payload = match payload.try_downcast::<Reincarnate>() {
            Ok(Reincarnate) => {
                self.incarnation += 1;
                self.held.clear();
                self.paused_until = ctx.now();
                ctx.stats().add("net.port.reincarnations", 1);
                return;
            }
            Err(other) => other,
        };
        payload.downcast::<Resume>();
        if ctx.now() < self.paused_until {
            return; // a later pause superseded this tick
        }
        while let Some(frame) = self.held.pop_front() {
            self.transmit(ctx, frame);
        }
    }

    fn parked_work(&self) -> Option<ParkedWork> {
        (!self.held.is_empty()).then(|| ParkedWork {
            rank: Some(self.addr.0),
            op: format!(
                "paused until {}: {} frames held",
                self.paused_until,
                self.held.len()
            ),
        })
    }

    fn resource_state(&self) -> Option<ResourceState> {
        let mut st = ResourceState::default();
        if !self.held.is_empty() {
            // Blocked on the pause being lifted; any credit-stamped frames
            // it holds keep their sender's tx window occupied.
            st.waits.push(format!("net.pause({})", self.addr));
            if self.held.iter().any(|f| f.credit_return.is_some()) {
                st.holds.push(format!("net.txcredit({})", self.addr));
            }
            st.gauges.push(ResourceGauge {
                name: format!("net.heldq({})", self.addr),
                used: self.held.len() as u64,
                capacity: None,
            });
        }
        (!st.is_empty()).then_some(st)
    }

    fn state_digest(&self) -> Option<u64> {
        let mut h = 0u64;
        for v in [
            self.frames_in,
            self.bytes_in,
            self.paused_until.as_ps(),
            self.held.len() as u64,
            self.pauses_received,
            self.egress.next_free().as_ps(),
            u64::from(self.incarnation),
        ] {
            digest_u64(&mut h, v);
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::WIRE_OVERHEAD_BYTES;
    use accl_sim::sim::Simulator;

    struct World {
        sim: Simulator,
        switch: ComponentId,
        ports: Vec<ComponentId>,
        sinks: Vec<ComponentId>,
    }

    fn world(n: usize) -> World {
        let mut sim = Simulator::new(0);
        let switch_id = sim.reserve("switch");
        let mut switch = Switch::new(n, 100.0, Dur::from_ns(500), Dur::from_ns(150));
        let mut ports = Vec::new();
        let mut sinks = Vec::new();
        for i in 0..n {
            let sink = sim.add(format!("sink{i}"), Mailbox::<Frame>::new());
            switch.attach_rx(NodeAddr(i as u32), Endpoint::of(sink));
            let port = sim.add(
                format!("port{i}"),
                NetPort::new(
                    NodeAddr(i as u32),
                    Endpoint::of(switch_id),
                    100.0,
                    Dur::from_ns(150),
                ),
            );
            ports.push(port);
            sinks.push(sink);
        }
        sim.install(switch_id, switch);
        World {
            sim,
            switch: switch_id,
            ports,
            sinks,
        }
    }

    #[test]
    fn single_frame_end_to_end_latency() {
        let mut w = world(2);
        let payload = 1000u32;
        w.sim.post(
            Endpoint::of(w.ports[0]),
            Time::ZERO,
            Frame::new(NodeAddr(0), NodeAddr(1), payload, 42u32),
        );
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 1);
        let wire = u64::from(payload + WIRE_OVERHEAD_BYTES);
        let ser = Dur::for_bytes_gbps(wire, 100.0);
        let expect = Time::ZERO
            + ser                   // NIC egress serialization
            + Dur::from_ns(150)     // uplink propagation
            + Dur::from_ns(500)     // switch forwarding
            + ser                   // switch egress serialization
            + Dur::from_ns(150); // downlink propagation
        assert_eq!(mb.items()[0].0, expect);
        assert_eq!(mb.items()[0].1.body.peek::<u32>(), Some(&42));
        // Source address stamped by the port.
        assert_eq!(mb.items()[0].1.src, NodeAddr(0));
    }

    #[test]
    fn incast_queues_at_egress_port() {
        // Nodes 0 and 1 both blast node 2 at t=0; the shared egress port
        // must serialize them back to back.
        let mut w = world(3);
        for src in 0..2u32 {
            w.sim.post(
                Endpoint::of(w.ports[src as usize]),
                Time::ZERO,
                Frame::new(NodeAddr(src), NodeAddr(2), 4096, src),
            );
        }
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[2]);
        assert_eq!(mb.len(), 2);
        let gap = mb.items()[1].0 - mb.items()[0].0;
        let ser = Dur::for_bytes_gbps(u64::from(4096 + WIRE_OVERHEAD_BYTES), 100.0);
        // Second frame leaves exactly one serialization time after the first.
        assert_eq!(gap, ser);
        let ctr = w
            .sim
            .component::<Switch>(w.switch)
            .port_counters(NodeAddr(2));
        assert_eq!(ctr.frames_out, 2);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        // 0->1 and 2->3 in parallel must arrive at the same time.
        let mut w = world(4);
        for (src, dst) in [(0u32, 1u32), (2, 3)] {
            w.sim.post(
                Endpoint::of(w.ports[src as usize]),
                Time::ZERO,
                Frame::new(NodeAddr(src), NodeAddr(dst), 2048, ()),
            );
        }
        w.sim.run();
        let t1 = w.sim.component::<Mailbox<Frame>>(w.sinks[1]).items()[0].0;
        let t3 = w.sim.component::<Mailbox<Frame>>(w.sinks[3]).items()[0].0;
        assert_eq!(t1, t3);
    }

    #[test]
    fn fault_plan_drops_frames() {
        let mut w = world(2);
        w.sim
            .component_mut::<Switch>(w.switch)
            .set_fault_plan(FaultPlan::drop_frames([0]));
        for i in 0..2 {
            w.sim.post(
                Endpoint::of(w.ports[0]),
                Time::from_ps(i),
                Frame::new(NodeAddr(0), NodeAddr(1), 100, i),
            );
        }
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.items()[0].1.body.peek::<u64>(), Some(&1));
        assert_eq!(w.sim.component::<Switch>(w.switch).frames_dropped(), 1);
    }

    #[test]
    fn corrupted_frame_arrives_with_bad_fcs() {
        let mut w = world(2);
        w.sim
            .component_mut::<Switch>(w.switch)
            .set_fault_plan(FaultPlan::corrupt_frames([0]));
        for i in 0..2u64 {
            w.sim.post(
                Endpoint::of(w.ports[0]),
                Time::from_ps(i),
                Frame::new(NodeAddr(0), NodeAddr(1), 100, i),
            );
        }
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 2, "corrupted frames still arrive");
        assert!(!mb.items()[0].1.fcs_ok());
        assert!(mb.items()[1].1.fcs_ok());
        assert_eq!(w.sim.component::<Switch>(w.switch).frames_corrupted(), 1);
    }

    #[test]
    fn duplicated_frame_arrives_twice_and_pays_the_wire() {
        let mut w = world(2);
        w.sim
            .component_mut::<Switch>(w.switch)
            .set_fault_plan(FaultPlan::duplicate_frames([0]));
        w.sim.post(
            Endpoint::of(w.ports[0]),
            Time::ZERO,
            Frame::new(NodeAddr(0), NodeAddr(1), 1000, 5u64),
        );
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 2);
        for (_, f) in mb.items() {
            assert!(f.fcs_ok());
            assert_eq!(f.body.peek::<u64>(), Some(&5));
        }
        // The copy serializes behind the original on the egress pipe.
        let ser = Dur::for_bytes_gbps(u64::from(1000 + WIRE_OVERHEAD_BYTES), 100.0);
        assert_eq!(mb.items()[1].0 - mb.items()[0].0, ser);
        let sw = w.sim.component::<Switch>(w.switch);
        assert_eq!(sw.frames_duplicated(), 1);
        assert_eq!(sw.port_counters(NodeAddr(1)).frames_out, 2);
    }

    #[test]
    fn overflow_drop_policy_tail_drops() {
        // Buffer of 1 frame, three frames arriving back to back into the
        // same egress port: the first occupies the buffer, the other two
        // overflow and are tail-dropped.
        let mut w = world(2);
        w.sim
            .component_mut::<Switch>(w.switch)
            .set_buffer_limit(Some(1), OverloadPolicy::Drop);
        for i in 0..3u64 {
            w.sim.post(
                Endpoint::of(w.switch),
                Time::from_ps(i),
                Frame::new(NodeAddr(0), NodeAddr(1), 4096, i),
            );
        }
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.items()[0].1.body.peek::<u64>(), Some(&0));
        let sw = w.sim.component::<Switch>(w.switch);
        assert_eq!(sw.frames_overflow_dropped(), 2);
        assert_eq!(sw.frames_dropped(), 0, "disjoint from fault drops");
    }

    #[test]
    fn overflow_pause_policy_pauses_source_and_resumes() {
        // Buffer of 1; node 0 sends three frames to node 1 back to back.
        // The second and third arrivals overflow, pausing the source NIC;
        // all frames are still delivered (lossless) once the queue drains.
        let mut w = world(2);
        w.sim
            .component_mut::<Switch>(w.switch)
            .set_buffer_limit(Some(1), OverloadPolicy::Pause);
        for (i, &port) in w.ports.iter().enumerate() {
            w.sim
                .component_mut::<Switch>(w.switch)
                .attach_pause(NodeAddr(i as u32), Endpoint::of(port));
        }
        for i in 0..4u64 {
            w.sim.post(
                Endpoint::of(w.ports[0]),
                Time::from_ps(i),
                Frame::new(NodeAddr(0), NodeAddr(1), 4096, i),
            );
        }
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 4, "pause is lossless");
        // In-order delivery preserved through the hold queue.
        let order: Vec<u64> = mb
            .items()
            .iter()
            .map(|(_, f)| *f.body.peek::<u64>().unwrap())
            .collect();
        assert_eq!(order, [0, 1, 2, 3]);
        let sw = w.sim.component::<Switch>(w.switch);
        assert!(sw.pauses_sent() >= 1);
        assert_eq!(sw.frames_overflow_dropped(), 0);
        let port = w.sim.component::<NetPort>(w.ports[0]);
        assert!(port.pauses_received() >= 1);
        assert_eq!(port.frames_held(), 0, "everything flushed on resume");
    }

    #[test]
    fn credit_return_posts_at_serialization_end() {
        let mut w = world(2);
        let credits = w.sim.add("credits", Mailbox::<CreditReturn>::new());
        let payload = 1000u32;
        w.sim.post(
            Endpoint::of(w.ports[0]),
            Time::ZERO,
            Frame::new(NodeAddr(0), NodeAddr(1), payload, ())
                .with_credit_return(Endpoint::of(credits)),
        );
        w.sim.run();
        let mb = w.sim.component::<Mailbox<CreditReturn>>(credits);
        assert_eq!(mb.len(), 1);
        let ser = Dur::for_bytes_gbps(u64::from(payload + WIRE_OVERHEAD_BYTES), 100.0);
        // Returned exactly when the frame clears the NIC uplink: no
        // propagation, switch or downlink latency on the credit path.
        assert_eq!(mb.items()[0].0, Time::ZERO + ser);
        assert_eq!(mb.items()[0].1.credits, 1);
    }

    #[test]
    fn paused_port_reports_parked_work_and_resources() {
        let mut w = world(2);
        let credits = w.sim.add("credits", Mailbox::<CreditReturn>::new());
        // A pause storm with no matching resume traffic: frames sent while
        // paused are held, visible as parked work and a wait-for edge.
        w.sim.post(
            Endpoint::of(w.ports[0]),
            Time::ZERO,
            PauseFrame {
                until: Time::from_us(10),
            },
        );
        w.sim.post(
            Endpoint::of(w.ports[0]),
            Time::from_ns(1),
            Frame::new(NodeAddr(0), NodeAddr(1), 64, ()).with_credit_return(Endpoint::of(credits)),
        );
        w.sim.run_until(Time::from_us(1));
        let port = w.sim.component::<NetPort>(w.ports[0]);
        assert_eq!(port.frames_held(), 1);
        let parked = port.parked_work().expect("held frames are parked work");
        assert!(parked.op.contains("1 frames held"), "{}", parked.op);
        let st = port.resource_state().expect("paused port has state");
        assert_eq!(st.waits, vec!["net.pause(n0)".to_string()]);
        assert_eq!(st.holds, vec!["net.txcredit(n0)".to_string()]);
        // Running to completion lifts the pause and flushes the frame.
        w.sim.run();
        let port = w.sim.component::<NetPort>(w.ports[0]);
        assert_eq!(port.frames_held(), 0);
        assert_eq!(w.sim.component::<Mailbox<Frame>>(w.sinks[1]).len(), 1);
    }

    #[test]
    fn delayed_frame_is_reordered() {
        let mut w = world(2);
        w.sim
            .component_mut::<Switch>(w.switch)
            .set_fault_plan(FaultPlan::delay_frames([0], Dur::from_us(100)));
        for i in 0..2u64 {
            w.sim.post(
                Endpoint::of(w.ports[0]),
                Time::from_ps(i),
                Frame::new(NodeAddr(0), NodeAddr(1), 100, i),
            );
        }
        w.sim.run();
        let mb = w.sim.component::<Mailbox<Frame>>(w.sinks[1]);
        assert_eq!(mb.len(), 2);
        // Frame 1 overtakes frame 0.
        assert_eq!(mb.items()[0].1.body.peek::<u64>(), Some(&1));
        assert_eq!(mb.items()[1].1.body.peek::<u64>(), Some(&0));
    }
}
