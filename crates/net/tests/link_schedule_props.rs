//! Property tests for [`LinkSchedule`]'s window-merge representation.
//!
//! `LinkSchedule::down` keeps outage windows sorted and disjoint so
//! membership stays a binary search. The properties below feed it random
//! overlapping windows in random insertion order and check the merged
//! representation against the naive any-window-contains-t oracle.

use accl_net::fault::LinkSchedule;
use accl_sim::time::Time;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Builds a schedule from raw `[from, until)` pairs (filtering empties,
/// which `down` rejects by assertion).
fn schedule(windows: &[(u64, u64)]) -> LinkSchedule {
    let mut sched = LinkSchedule::new();
    for &(lo, hi) in windows {
        if lo < hi {
            sched = sched.down(Time::from_ps(lo), Time::from_ps(hi));
        }
    }
    sched
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merged_windows_are_sorted_and_disjoint(
        raw in pvec((0u64..2_000, 0u64..2_000), 0..24),
    ) {
        let sched = schedule(&raw);
        let windows = sched.windows();
        for w in windows {
            prop_assert!(w.0 < w.1, "empty window {w:?}");
        }
        for pair in windows.windows(2) {
            // Strictly separated: touching windows [a,b) [b,c) merge too.
            prop_assert!(
                pair[0].1 < pair[1].0,
                "windows not disjoint/sorted: {pair:?}"
            );
        }
    }

    #[test]
    fn membership_is_equivalent_to_the_naive_oracle(
        raw in pvec((0u64..500, 0u64..500), 0..16),
        probes in pvec(0u64..600, 32),
    ) {
        let sched = schedule(&raw);
        for &t in &probes {
            let oracle = raw
                .iter()
                .filter(|&&(lo, hi)| lo < hi)
                .any(|&(lo, hi)| lo <= t && t < hi);
            prop_assert_eq!(
                sched.is_down(Time::from_ps(t)),
                oracle,
                "t={} windows={:?}",
                t,
                raw
            );
        }
    }

    #[test]
    fn insertion_order_is_irrelevant(
        raw in pvec((0u64..300, 1u64..100), 1..12),
    ) {
        // Interpret pairs as (start, len) so every window is non-empty.
        let fwd: Vec<(u64, u64)> = raw.iter().map(|&(lo, len)| (lo, lo + len)).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        prop_assert_eq!(
            schedule(&fwd).windows().to_vec(),
            schedule(&rev).windows().to_vec()
        );
    }
}
