//! End-to-end CCLO engine tests on a simulated multi-FPGA cluster.
//!
//! Builds N nodes — each with a memory bus, a protocol offload engine and a
//! CCLO engine — on a switched 100 Gb/s fabric, runs collectives issued as
//! engine commands, and verifies both the resulting memory contents and
//! coarse timing properties.

use bytes::Bytes;

use accl_cclo::command::{CcloCommand, CcloDone, CollOp, DataLoc, SyncProto};
use accl_cclo::config::CcloConfig;
use accl_cclo::dmp::{ports as dmp_ports, KernelPush};
use accl_cclo::engine::{CcloEngine, CcloEngineSpec};
use accl_cclo::msg::{DType, ReduceFn};
use accl_cclo::rbm::RbmStream;
use accl_cclo::uc::ports as uc_ports;
use accl_mem::{MemAddr, MemBusConfig, MemTarget, MemoryBus};
use accl_net::{NetConfig, Network};
use accl_poe::iface::{ports as poe_ports, SessionId, SessionTable};
use accl_poe::rdma::{RdmaConfig, RdmaPoe};
use accl_poe::tcp::{TcpConfig, TcpPoe};
use accl_poe::udp::{UdpConfig, UdpPoe};
use accl_sim::prelude::*;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Proto {
    Udp,
    Tcp,
    Rdma,
}

const SCRATCH_BASE: u64 = 0x4000_0000;
const SRC_BASE: u64 = 0x1000_0000;
const DST_BASE: u64 = 0x2000_0000;

struct Cluster {
    sim: Simulator,
    engines: Vec<CcloEngine>,
    buses: Vec<ComponentId>,
    dones: Vec<ComponentId>,
    net_switch: ComponentId,
    proto: Proto,
}

impl Cluster {
    fn build(n: usize, proto: Proto) -> Cluster {
        Self::build_cfg(n, proto, CcloConfig::default())
    }

    fn build_with_fault(n: usize, proto: Proto, plan: accl_net::FaultPlan) -> Cluster {
        let mut c = Self::build_cfg(n, proto, CcloConfig::default());
        let switch = c.net_switch;
        c.sim
            .component_mut::<accl_net::Switch>(switch)
            .set_fault_plan(plan);
        c
    }

    fn build_cfg(n: usize, proto: Proto, cfg: CcloConfig) -> Cluster {
        let mut sim = Simulator::new(7);
        let net = Network::build(&mut sim, NetConfig::default(), n);
        let mut engines = Vec::new();
        let mut buses = Vec::new();
        let mut dones = Vec::new();
        for i in 0..n {
            let bus_cfg = if proto == Proto::Rdma {
                MemBusConfig::coyote()
            } else {
                MemBusConfig::default()
            };
            let bus = sim.add(format!("n{i}.bus"), MemoryBus::new(bus_cfg));
            if proto == Proto::Rdma {
                // Driver-style eager mapping of every region we will touch.
                let b = sim.component_mut::<MemoryBus>(bus);
                b.map_range(SRC_BASE, 64 << 20, MemTarget::Device);
                b.map_range(DST_BASE, 64 << 20, MemTarget::Device);
                b.map_range(SCRATCH_BASE, 64 << 20, MemTarget::Device);
            }
            let poe = sim.reserve(format!("n{i}.poe"));
            let scratch_mem = if proto == Proto::Rdma {
                MemAddr::Virt(SCRATCH_BASE)
            } else {
                MemAddr::Phys(MemTarget::Device, SCRATCH_BASE)
            };
            let engine = CcloEngine::build(
                &mut sim,
                &format!("n{i}.cclo"),
                &CcloEngineSpec {
                    cfg,
                    mem_bus: bus,
                    poe,
                    rendezvous_capable: proto == Proto::Rdma,
                    reliable: proto != Proto::Udp,
                    scratch_mem,
                },
            );
            let mut sessions = SessionTable::new();
            for j in 0..n {
                if i != j {
                    sessions.connect(SessionId(j as u32), net.addr(j), SessionId(i as u32));
                }
            }
            let up = engine.poe_upward();
            match proto {
                Proto::Udp => {
                    sim.install(
                        poe,
                        UdpPoe::new(UdpConfig::default(), net.tx(i), up, sessions),
                    );
                }
                Proto::Tcp => {
                    sim.install(
                        poe,
                        TcpPoe::new(TcpConfig::default(), net.tx(i), up, sessions),
                    );
                }
                Proto::Rdma => {
                    sim.install(
                        poe,
                        RdmaPoe::new(RdmaConfig::default(), net.tx(i), up, sessions)
                            .with_mem_bus(bus),
                    );
                }
            }
            net.attach_rx(&mut sim, i, Endpoint::new(poe, poe_ports::NET_RX));
            let comm = accl_cclo::config::CommunicatorCfg {
                rank: i as u32,
                peers: (0..n).map(|j| (net.addr(j), SessionId(j as u32))).collect(),
            };
            engine.set_communicator(&mut sim, 0, comm);
            let done = sim.add(format!("n{i}.done"), Mailbox::<CcloDone>::new());
            engines.push(engine);
            buses.push(bus);
            dones.push(done);
        }
        let net_switch = net.switch_id();
        Cluster {
            sim,
            engines,
            buses,
            dones,
            net_switch,
            proto,
        }
    }

    fn mem_addr(&self, base: u64) -> DataLoc {
        match self.proto {
            Proto::Rdma => DataLoc::Mem(MemAddr::Virt(base)),
            _ => DataLoc::Mem(MemAddr::Phys(MemTarget::Device, base)),
        }
    }

    fn write_src(&mut self, node: usize, data: &[u8]) {
        self.sim
            .component_mut::<MemoryBus>(self.buses[node])
            .device_write(SRC_BASE, data);
    }

    fn read_dst(&self, node: usize, len: usize) -> Vec<u8> {
        self.sim
            .component::<MemoryBus>(self.buses[node])
            .device_read(DST_BASE, len)
    }

    fn issue(&mut self, node: usize, cmd: CcloCommand) {
        self.sim.post(
            Endpoint::new(self.engines[node].uc, uc_ports::CMD),
            self.sim.now(),
            cmd,
        );
    }

    fn cmd(&self, node: usize, op: CollOp, count: u64, root: u32, sync: SyncProto) -> CcloCommand {
        CcloCommand {
            op,
            count,
            dtype: DType::I32,
            root,
            tag: 1,
            comm: 0,
            func: ReduceFn::Sum,
            src: self.mem_addr(SRC_BASE),
            dst: self.mem_addr(DST_BASE),
            sync,
            reply_to: Endpoint::of(self.dones[node]),
            ticket: node as u64,
            span: accl_sim::trace::SpanId::NONE,
        }
    }

    fn completions(&self, node: usize) -> usize {
        self.sim
            .component::<Mailbox<CcloDone>>(self.dones[node])
            .len()
    }
}

fn i32s(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn patterned(node: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| (node as i32 + 1) * 1000 + i as i32)
            .collect::<Vec<_>>(),
    )
}

fn summed(n: usize, count: u64) -> Vec<u8> {
    i32s(
        &(0..count)
            .map(|i| {
                (0..n as i32)
                    .map(|node| (node + 1) * 1000 + i as i32)
                    .sum::<i32>()
            })
            .collect::<Vec<_>>(),
    )
}

#[test]
fn send_recv_over_each_protocol() {
    for proto in [Proto::Udp, Proto::Tcp, Proto::Rdma] {
        let mut c = Cluster::build(2, proto);
        let count = 4096u64;
        let payload = patterned(0, count);
        c.write_src(0, &payload);
        let send = c.cmd(0, CollOp::Send, count, 1, SyncProto::Auto);
        let recv = c.cmd(1, CollOp::Recv, count, 0, SyncProto::Auto);
        c.issue(0, send);
        c.issue(1, recv);
        c.sim.run();
        assert_eq!(c.completions(0), 1);
        assert_eq!(c.completions(1), 1);
        assert_eq!(c.read_dst(1, payload.len()), payload);
    }
}

#[test]
fn rdma_rendezvous_send_recv_places_directly() {
    let mut c = Cluster::build(2, Proto::Rdma);
    let count = 64 * 1024u64; // 256 KiB > eager threshold
    let payload = patterned(0, count);
    c.write_src(0, &payload);
    let send = c.cmd(0, CollOp::Send, count, 1, SyncProto::Rendezvous);
    let recv = c.cmd(1, CollOp::Recv, count, 0, SyncProto::Rendezvous);
    c.issue(0, send);
    c.issue(1, recv);
    c.sim.run();
    assert_eq!(c.read_dst(1, payload.len()), payload);
    // The receiver's RBM never buffered the payload (direct placement).
    let rbm = c.sim.component::<accl_cclo::rbm::Rbm>(c.engines[1].rbm);
    assert_eq!(rbm.unmatched_messages(), 0);
    assert_eq!(rbm.free_buffers(), CcloConfig::default().rx_buf_count);
}

#[test]
fn nop_invocation_latency_is_sub_microsecond_from_kernel() {
    let mut c = Cluster::build(2, Proto::Rdma);
    let mut cmd = c.cmd(0, CollOp::Nop, 0, 0, SyncProto::Auto);
    cmd.src = DataLoc::None;
    cmd.dst = DataLoc::None;
    c.issue(0, cmd);
    c.sim.run();
    let done_at = c.sim.component::<Mailbox<CcloDone>>(c.dones[0]).items()[0].0;
    // Decode (150 cycles) + completion: ~0.8 us at 250 MHz.
    let us = done_at.as_us_f64();
    assert!(us > 0.3 && us < 2.0, "NOP invocation latency {us} us");
}

#[test]
fn bcast_all_protocols_and_sizes() {
    for proto in [Proto::Tcp, Proto::Rdma] {
        for count in [64u64, 65536] {
            let n = 4;
            let mut c = Cluster::build(n, proto);
            let payload = patterned(9, count);
            // Bcast operates on dst buffers; root provides the data there.
            c.sim
                .component_mut::<MemoryBus>(c.buses[0])
                .device_write(DST_BASE, &payload);
            for node in 0..n {
                let mut cmd = c.cmd(node, CollOp::Bcast, count, 0, SyncProto::Auto);
                cmd.src = DataLoc::None;
                c.issue(node, cmd);
            }
            c.sim.run();
            for node in 0..n {
                assert_eq!(c.completions(node), 1, "proto missing completion");
                assert_eq!(
                    c.read_dst(node, payload.len()),
                    payload,
                    "bcast node {node} count {count}"
                );
            }
        }
    }
}

#[test]
fn reduce_eager_and_rendezvous() {
    for (proto, sync, count) in [
        (Proto::Tcp, SyncProto::Auto, 1024u64),
        (Proto::Rdma, SyncProto::Eager, 1024),
        (Proto::Rdma, SyncProto::Rendezvous, 1024),
        (Proto::Rdma, SyncProto::Auto, 131072), // large → tree rendezvous
    ] {
        let n = 4;
        let mut c = Cluster::build(n, proto);
        for node in 0..n {
            let data = patterned(node, count);
            c.write_src(node, &data);
        }
        for node in 0..n {
            let cmd = c.cmd(node, CollOp::Reduce, count, 0, sync);
            c.issue(node, cmd);
        }
        c.sim.run();
        assert_eq!(
            c.read_dst(0, (count * 4) as usize),
            summed(n, count),
            "reduce failed"
        );
    }
}

#[test]
fn allreduce_delivers_everywhere() {
    let n = 4;
    let count = 4096u64;
    let mut c = Cluster::build(n, Proto::Rdma);
    for node in 0..n {
        c.write_src(node, &patterned(node, count));
    }
    for node in 0..n {
        let cmd = c.cmd(node, CollOp::AllReduce, count, 0, SyncProto::Auto);
        c.issue(node, cmd);
    }
    c.sim.run();
    let expect = summed(n, count);
    for node in 0..n {
        assert_eq!(
            c.read_dst(node, expect.len()),
            expect,
            "allreduce node {node}"
        );
    }
}

#[test]
fn gather_scatter_alltoall() {
    let n = 4;
    let count = 256u64;
    let b = (count * 4) as usize;
    // Gather.
    let mut c = Cluster::build(n, Proto::Rdma);
    for node in 0..n {
        c.write_src(node, &patterned(node, count));
    }
    for node in 0..n {
        let cmd = c.cmd(node, CollOp::Gather, count, 0, SyncProto::Auto);
        c.issue(node, cmd);
    }
    c.sim.run();
    let expect: Vec<u8> = (0..n).flat_map(|nd| patterned(nd, count)).collect();
    assert_eq!(c.read_dst(0, b * n), expect, "gather");

    // Scatter.
    let mut c = Cluster::build(n, Proto::Rdma);
    let root_src: Vec<u8> = (0..n).flat_map(|nd| patterned(nd + 7, count)).collect();
    c.write_src(0, &root_src);
    for node in 0..n {
        let cmd = c.cmd(node, CollOp::Scatter, count, 0, SyncProto::Auto);
        c.issue(node, cmd);
    }
    c.sim.run();
    for node in 0..n {
        assert_eq!(
            c.read_dst(node, b),
            root_src[node * b..(node + 1) * b],
            "scatter node {node}"
        );
    }

    // All-to-all.
    let mut c = Cluster::build(n, Proto::Rdma);
    for node in 0..n {
        let blocks: Vec<u8> = (0..n)
            .flat_map(|to| patterned(node * 10 + to, count))
            .collect();
        c.write_src(node, &blocks);
    }
    for node in 0..n {
        let cmd = c.cmd(node, CollOp::AllToAll, count, 0, SyncProto::Auto);
        c.issue(node, cmd);
    }
    c.sim.run();
    for node in 0..n {
        for from in 0..n {
            assert_eq!(
                c.read_dst(node, b * n)[from * b..(from + 1) * b],
                patterned(from * 10 + node, count),
                "alltoall dst {node} from {from}"
            );
        }
    }
}

#[test]
fn barrier_synchronizes() {
    let n = 4;
    let mut c = Cluster::build(n, Proto::Tcp);
    for node in 0..n {
        let mut cmd = c.cmd(node, CollOp::Barrier, 0, 0, SyncProto::Auto);
        cmd.src = DataLoc::None;
        cmd.dst = DataLoc::None;
        c.issue(node, cmd);
    }
    c.sim.run();
    for node in 0..n {
        assert_eq!(c.completions(node), 1, "barrier node {node}");
    }
}

#[test]
fn streaming_send_recv_kernel_to_kernel() {
    // Rank 0 kernel pushes data into the CCLO; rank 1's CCLO streams it
    // back out to its kernel (Listing 2 end-to-end).
    let mut c = Cluster::build(2, Proto::Rdma);
    let count = 8192u64;
    let payload = patterned(3, count);
    let kernel_sink = c.sim.add("kernel1.rx", Mailbox::<RbmStream>::new());
    c.engines[1].set_kernel_out(&mut c.sim, Endpoint::of(kernel_sink));
    let mut send = c.cmd(0, CollOp::Send, count, 1, SyncProto::Auto);
    send.src = DataLoc::Stream;
    let mut recv = c.cmd(1, CollOp::Recv, count, 0, SyncProto::Auto);
    recv.dst = DataLoc::Stream;
    c.issue(0, send);
    c.issue(1, recv);
    // Kernel pushes the payload (after the command, per Listing 2).
    c.sim.post(
        Endpoint::new(c.engines[0].dmp, dmp_ports::STREAM_IN),
        Time::from_ps(1),
        KernelPush {
            data: Bytes::from(payload.clone()),
        },
    );
    c.sim.run();
    let mut got = vec![0u8; payload.len()];
    for (_, s) in c.sim.component::<Mailbox<RbmStream>>(kernel_sink).items() {
        got[s.offset as usize..s.offset as usize + s.data.len()].copy_from_slice(&s.data);
    }
    assert_eq!(got, payload);
    assert_eq!(c.completions(0), 1);
    assert_eq!(c.completions(1), 1);
}

#[test]
fn large_transfer_throughput_is_line_rate_class() {
    let mut c = Cluster::build(2, Proto::Rdma);
    let count = (16 << 20) / 4u64; // 16 MiB
    let payload = patterned(0, count);
    c.write_src(0, &payload);
    c.issue(0, c.cmd(0, CollOp::Send, count, 1, SyncProto::Auto));
    c.issue(1, c.cmd(1, CollOp::Recv, count, 0, SyncProto::Auto));
    c.sim.run();
    assert_eq!(c.read_dst(1, payload.len()), payload);
    let t = c.sim.component::<Mailbox<CcloDone>>(c.dones[1]).items()[0].0;
    let gbps = (count * 4) as f64 * 8.0 / t.as_ns_f64();
    assert!(gbps > 70.0, "end-to-end goodput {gbps:.1} Gb/s");
}

#[test]
fn runtime_firmware_swap_changes_behaviour() {
    use accl_cclo::firmware::{CollectiveProgram, FwEnv, Place, Sched};

    /// A deliberately quirky bcast: root relays through rank 1.
    struct RelayBcast;
    impl CollectiveProgram for RelayBcast {
        fn name(&self) -> &str {
            "relay_bcast"
        }
        fn build(&self, env: &FwEnv, s: &mut Sched) {
            let len = env.bytes;
            match env.rank {
                0 => s.send(1, Place::dst(0), len, 0),
                1 => {
                    s.recv(0, Place::dst(0), len, 0);
                    s.wait_all();
                    for peer in 2..env.size {
                        s.send(peer, Place::dst(0), len, u64::from(peer));
                    }
                }
                r => s.recv(1, Place::dst(0), len, u64::from(r)),
            }
        }
    }

    let n = 4;
    let count = 1024u64;
    let mut c = Cluster::build(n, Proto::Tcp);
    let payload = patterned(5, count);
    c.sim
        .component_mut::<MemoryBus>(c.buses[0])
        .device_write(DST_BASE, &payload);
    for e in &c.engines {
        e.load_firmware(&mut c.sim, CollOp::Bcast, std::sync::Arc::new(RelayBcast));
    }
    for node in 0..n {
        let mut cmd = c.cmd(node, CollOp::Bcast, count, 0, SyncProto::Auto);
        cmd.src = DataLoc::None;
        c.issue(node, cmd);
    }
    c.sim.run();
    for node in 1..n {
        assert_eq!(
            c.read_dst(node, payload.len()),
            payload,
            "relay node {node}"
        );
    }
}

#[test]
fn back_to_back_collectives_on_one_engine() {
    // FIFO command execution: a reduce followed by a bcast with the same
    // tag must not cross-match.
    let n = 3;
    let count = 512u64;
    let mut c = Cluster::build(n, Proto::Rdma);
    for node in 0..n {
        c.write_src(node, &patterned(node, count));
    }
    for node in 0..n {
        let reduce = c.cmd(node, CollOp::Reduce, count, 0, SyncProto::Auto);
        c.issue(node, reduce);
        let mut bcast = c.cmd(node, CollOp::Bcast, count, 0, SyncProto::Auto);
        bcast.src = DataLoc::None;
        c.issue(node, bcast);
    }
    c.sim.run();
    let expect = summed(n, count);
    for node in 0..n {
        assert_eq!(c.completions(node), 2, "node {node} completions");
        assert_eq!(c.read_dst(node, expect.len()), expect, "node {node} result");
    }
}

#[test]
fn udp_loss_stalls_eager_collective_while_tcp_recovers() {
    // Drop one data frame. UDP has no recovery: the receive never
    // completes within the horizon. TCP retransmits and completes.
    let run = |proto: Proto| -> usize {
        let count = 4096u64;
        let mut c = Cluster::build_with_fault(2, proto, accl_net::FaultPlan::drop_frames([1]));
        let payload = patterned(0, count);
        c.write_src(0, &payload);
        let send = c.cmd(0, CollOp::Send, count, 1, SyncProto::Eager);
        let recv = c.cmd(1, CollOp::Recv, count, 0, SyncProto::Eager);
        c.issue(0, send);
        c.issue(1, recv);
        // Bounded: 100 ms of simulated time is eons for a 16 KB transfer.
        c.sim.run_until(Time::ZERO + Dur::from_ms(100));
        c.completions(1)
    };
    assert_eq!(run(Proto::Udp), 0, "UDP cannot recover a lost frame");
    assert_eq!(run(Proto::Tcp), 1, "TCP must retransmit and complete");
}
