//! # accl-cclo — the ACCL+ collective offload engine
//!
//! The paper's central artifact (§4.4): a collective engine decoupled into a
//! *flexible control plane* — an embedded micro-controller executing
//! swappable firmware — and a *parallel data plane* — a microcoded
//! data-movement processor, Rx buffer manager, Tx/Rx systems and streaming
//! plugins, all behind the POE-independent transport interface.
//!
//! Layout:
//! - [`msg`] — the lightweight message protocol (signatures, datatypes).
//! - [`command`] — the host/kernel-facing command interface.
//! - [`config`] — clocking, pools, communicators, Table-1 algorithm tuning.
//! - [`firmware`] — collective algorithms as swappable programs, plus an
//!   abstract interpreter for validating custom collectives.
//! - [`plugins`] — streaming reduction/compression operators.
//! - [`uc`], [`dmp`], [`rbm`], [`txsys`], [`rxsys`] — the engine blocks.
//! - [`engine`] — per-node assembly and wiring.

#![warn(missing_docs)]

pub mod command;
pub mod config;
pub mod dmp;
pub mod engine;
pub mod firmware;
pub mod msg;
pub mod plugins;
pub mod rbm;
pub mod rxsys;
pub mod txsys;
pub mod uc;

pub use command::{CcloCommand, CcloDone, CmdStatus, CollOp, DataLoc, SyncProto};
pub use config::{
    AdaptiveWatchdogCfg, AlgoConfig, Algorithm, CcloConfig, CommunicatorCfg, LegacyUcConfig,
};
pub use engine::{CcloEngine, CcloEngineSpec};
pub use firmware::{CollectiveProgram, FirmwareTable};
pub use msg::{DType, MsgSignature, MsgType, ReduceFn};
pub use rbm::{RbmPurge, RbmResync};
