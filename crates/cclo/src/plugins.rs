//! Streaming plugins: in-flight unary and binary operators (paper §4.4.2).
//!
//! The binary plugin implements reductions — two 64 B/cycle input streams
//! combined elementwise into one output stream. The unary plugin hosts
//! transformations such as compression. Plugins are selected by the control
//! plane via the NoC `dest` field; here they are plain functions invoked by
//! the data-movement processor, with their throughput charged to the shared
//! datapath pipe.

use bytes::Bytes;

use crate::msg::{DType, ReduceFn};

/// Q16.16 fixed-point helpers used by the DLRM use case.
pub mod fx32 {
    /// Converts an `f64` to Q16.16, saturating.
    pub fn from_f64(v: f64) -> i32 {
        (v * 65_536.0)
            .round()
            .clamp(i32::MIN as f64, i32::MAX as f64) as i32
    }

    /// Converts Q16.16 to `f64`.
    pub fn to_f64(v: i32) -> f64 {
        v as f64 / 65_536.0
    }

    /// Saturating Q16.16 multiply.
    pub fn mul(a: i32, b: i32) -> i32 {
        let wide = ((a as i64) * (b as i64)) >> 16;
        wide.clamp(i32::MIN as i64, i32::MAX as i64) as i32
    }
}

macro_rules! combine_as {
    ($ty:ty, $a:expr, $b:expr, $out:expr, $f:expr) => {{
        let step = core::mem::size_of::<$ty>();
        for (ca, cb) in $a.chunks_exact(step).zip($b.chunks_exact(step)) {
            let va = <$ty>::from_le_bytes(ca.try_into().unwrap());
            let vb = <$ty>::from_le_bytes(cb.try_into().unwrap());
            let r: $ty = $f(va, vb);
            $out.extend_from_slice(&r.to_le_bytes());
        }
    }};
}

/// Applies `func` elementwise over two equal-length byte buffers of `dtype`.
///
/// # Panics
///
/// Panics if lengths differ or are not a multiple of the element size —
/// the control plane guarantees aligned slot lengths.
pub fn combine(dtype: DType, func: ReduceFn, a: &[u8], b: &[u8]) -> Bytes {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    assert_eq!(
        a.len() % dtype.size(),
        0,
        "operand not a multiple of element size"
    );
    let mut out = Vec::with_capacity(a.len());
    match (dtype, func) {
        (DType::U8, ReduceFn::Sum) => combine_as!(u8, a, b, out, |x: u8, y: u8| x.wrapping_add(y)),
        (DType::U8, ReduceFn::Max) => combine_as!(u8, a, b, out, |x: u8, y: u8| x.max(y)),
        (DType::U8, ReduceFn::Min) => combine_as!(u8, a, b, out, |x: u8, y: u8| x.min(y)),
        (DType::U8, ReduceFn::Prod) => {
            combine_as!(u8, a, b, out, |x: u8, y: u8| x.wrapping_mul(y))
        }
        (DType::I32, ReduceFn::Sum) => {
            combine_as!(i32, a, b, out, |x: i32, y: i32| x.wrapping_add(y))
        }
        (DType::I32, ReduceFn::Max) => combine_as!(i32, a, b, out, |x: i32, y: i32| x.max(y)),
        (DType::I32, ReduceFn::Min) => combine_as!(i32, a, b, out, |x: i32, y: i32| x.min(y)),
        (DType::I32, ReduceFn::Prod) => {
            combine_as!(i32, a, b, out, |x: i32, y: i32| x.wrapping_mul(y))
        }
        (DType::I64, ReduceFn::Sum) => {
            combine_as!(i64, a, b, out, |x: i64, y: i64| x.wrapping_add(y))
        }
        (DType::I64, ReduceFn::Max) => combine_as!(i64, a, b, out, |x: i64, y: i64| x.max(y)),
        (DType::I64, ReduceFn::Min) => combine_as!(i64, a, b, out, |x: i64, y: i64| x.min(y)),
        (DType::I64, ReduceFn::Prod) => {
            combine_as!(i64, a, b, out, |x: i64, y: i64| x.wrapping_mul(y))
        }
        (DType::F32, ReduceFn::Sum) => combine_as!(f32, a, b, out, |x: f32, y: f32| x + y),
        (DType::F32, ReduceFn::Max) => combine_as!(f32, a, b, out, |x: f32, y: f32| x.max(y)),
        (DType::F32, ReduceFn::Min) => combine_as!(f32, a, b, out, |x: f32, y: f32| x.min(y)),
        (DType::F32, ReduceFn::Prod) => combine_as!(f32, a, b, out, |x: f32, y: f32| x * y),
        (DType::F64, ReduceFn::Sum) => combine_as!(f64, a, b, out, |x: f64, y: f64| x + y),
        (DType::F64, ReduceFn::Max) => combine_as!(f64, a, b, out, |x: f64, y: f64| x.max(y)),
        (DType::F64, ReduceFn::Min) => combine_as!(f64, a, b, out, |x: f64, y: f64| x.min(y)),
        (DType::F64, ReduceFn::Prod) => combine_as!(f64, a, b, out, |x: f64, y: f64| x * y),
        (DType::Fx32, ReduceFn::Sum) => {
            combine_as!(i32, a, b, out, |x: i32, y: i32| x.saturating_add(y))
        }
        (DType::Fx32, ReduceFn::Max) => combine_as!(i32, a, b, out, |x: i32, y: i32| x.max(y)),
        (DType::Fx32, ReduceFn::Min) => combine_as!(i32, a, b, out, |x: i32, y: i32| x.min(y)),
        (DType::Fx32, ReduceFn::Prod) => {
            combine_as!(i32, a, b, out, |x: i32, y: i32| fx32::mul(x, y))
        }
    }
    Bytes::from(out)
}

/// Unary plugin functions (compression and casts; paper §4.4.2 lists
/// compression/encryption as examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryFn {
    /// Identity pass-through.
    Identity,
    /// Run-length encodes the stream (toy compression: `(count, byte)*`).
    RleCompress,
    /// Inverse of [`UnaryFn::RleCompress`].
    RleDecompress,
    /// Length-preserving stream cipher (keystream XOR, keyed by the seed).
    /// Involutive: applying it twice with the same key decrypts — the
    /// §4.4.2 "encryption" plugin in its simplest deployable form.
    XorCipher(u64),
}

/// Applies a unary plugin function to a byte stream.
pub fn unary(func: UnaryFn, data: &[u8]) -> Bytes {
    match func {
        UnaryFn::Identity => Bytes::copy_from_slice(data),
        UnaryFn::RleCompress => {
            let mut out = Vec::new();
            let mut iter = data.iter().copied().peekable();
            while let Some(b) = iter.next() {
                let mut run = 1u8;
                while run < u8::MAX {
                    if iter.peek() == Some(&b) {
                        iter.next();
                        run += 1;
                    } else {
                        break;
                    }
                }
                out.push(run);
                out.push(b);
            }
            Bytes::from(out)
        }
        UnaryFn::XorCipher(key) => {
            // xorshift64* keystream, 8 bytes per step.
            let mut state = key | 1;
            let mut out = Vec::with_capacity(data.len());
            let mut ks = [0u8; 8];
            for (i, b) in data.iter().enumerate() {
                if i % 8 == 0 {
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    ks = state.wrapping_mul(0x2545_f491_4f6c_dd1d).to_le_bytes();
                }
                out.push(b ^ ks[i % 8]);
            }
            Bytes::from(out)
        }
        UnaryFn::RleDecompress => {
            assert!(data.len().is_multiple_of(2), "corrupt RLE stream");
            let mut out = Vec::new();
            for pair in data.chunks_exact(2) {
                out.extend(core::iter::repeat_n(pair[1], pair[0] as usize));
            }
            Bytes::from(out)
        }
    }
}

/// Convenience: reduces a whole set of equal-length buffers pairwise.
pub fn combine_all<'a>(
    dtype: DType,
    func: ReduceFn,
    bufs: impl IntoIterator<Item = &'a [u8]>,
) -> Bytes {
    let mut iter = bufs.into_iter();
    let first = iter.next().expect("empty reduction");
    let mut acc = Bytes::copy_from_slice(first);
    for b in iter {
        acc = combine(dtype, func, &acc, b);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32s(vals: &[f32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn f32_sum_matches_scalar() {
        let a = f32s(&[1.0, 2.5, -3.0]);
        let b = f32s(&[0.5, 0.5, 10.0]);
        let r = combine(DType::F32, ReduceFn::Sum, &a, &b);
        assert_eq!(r, f32s(&[1.5, 3.0, 7.0]));
    }

    #[test]
    fn i32_minmax() {
        let a: Vec<u8> = [1i32, -5, 7].iter().flat_map(|v| v.to_le_bytes()).collect();
        let b: Vec<u8> = [2i32, -9, 3].iter().flat_map(|v| v.to_le_bytes()).collect();
        let mx = combine(DType::I32, ReduceFn::Max, &a, &b);
        let mn = combine(DType::I32, ReduceFn::Min, &a, &b);
        let back = |bytes: &Bytes| -> Vec<i32> {
            bytes
                .chunks_exact(4)
                .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                .collect()
        };
        assert_eq!(back(&mx), vec![2, -5, 7]);
        assert_eq!(back(&mn), vec![1, -9, 3]);
    }

    #[test]
    fn integer_sum_wraps() {
        let a = i32::MAX.to_le_bytes();
        let b = 1i32.to_le_bytes();
        let r = combine(DType::I32, ReduceFn::Sum, &a, &b);
        assert_eq!(i32::from_le_bytes(r[..4].try_into().unwrap()), i32::MIN);
    }

    #[test]
    fn fx32_saturates_instead_of_wrapping() {
        let a = i32::MAX.to_le_bytes();
        let b = 1i32.to_le_bytes();
        let r = combine(DType::Fx32, ReduceFn::Sum, &a, &b);
        assert_eq!(i32::from_le_bytes(r[..4].try_into().unwrap()), i32::MAX);
    }

    #[test]
    fn fx32_roundtrip_and_mul() {
        let a = fx32::from_f64(1.5);
        let b = fx32::from_f64(-2.25);
        assert!((fx32::to_f64(a) - 1.5).abs() < 1e-4);
        assert!((fx32::to_f64(fx32::mul(a, b)) + 3.375).abs() < 1e-4);
    }

    #[test]
    fn combine_all_folds_many() {
        let bufs: Vec<Vec<u8>> = (1..=4).map(|i| f32s(&[i as f32, 1.0])).collect();
        let r = combine_all(DType::F32, ReduceFn::Sum, bufs.iter().map(|v| v.as_slice()));
        assert_eq!(r, f32s(&[10.0, 4.0]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_operands_panic() {
        combine(DType::U8, ReduceFn::Sum, &[1, 2], &[1]);
    }

    #[test]
    fn rle_roundtrip() {
        let data = [vec![0u8; 300], b"hello".to_vec(), vec![7u8; 17]].concat();
        let packed = unary(UnaryFn::RleCompress, &data);
        assert!(packed.len() < data.len());
        let unpacked = unary(UnaryFn::RleDecompress, &packed);
        assert_eq!(&unpacked[..], &data[..]);
    }

    #[test]
    fn xor_cipher_is_involutive_and_scrambles() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let enc = unary(UnaryFn::XorCipher(0xdead_beef), &data);
        assert_eq!(enc.len(), data.len(), "length preserving");
        assert_ne!(&enc[..], &data[..], "ciphertext differs");
        let dec = unary(UnaryFn::XorCipher(0xdead_beef), &enc);
        assert_eq!(&dec[..], &data[..], "involution decrypts");
        // A different key does not decrypt.
        let wrong = unary(UnaryFn::XorCipher(0x1234), &enc);
        assert_ne!(&wrong[..], &data[..]);
    }

    #[test]
    fn rle_handles_incompressible() {
        let data: Vec<u8> = (0..=255).collect();
        let packed = unary(UnaryFn::RleCompress, &data);
        assert_eq!(packed.len(), 512); // worst case: 2x expansion
        assert_eq!(&unary(UnaryFn::RleDecompress, &packed)[..], &data[..]);
    }
}
