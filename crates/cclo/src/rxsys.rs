//! The Rx system: parses message signatures and routes arrivals.
//!
//! Sits on the POE's Rx meta/data interfaces. For each incoming message it
//! reassembles the 64-byte signature (which may straddle chunk boundaries
//! on stream transports), then routes: eager payloads to the RxBuf manager,
//! rendezvous control messages to the uC (paper §4.4.2, Fig. 5 paths ③/⑤).
//! Rendezvous *payloads* never appear here — the RDMA engine writes them
//! straight to memory, bypassing the CCLO (§4.3).

use std::collections::BTreeMap;

use bytes::Bytes;

use accl_poe::iface::{RxChunk, SessionId};
use accl_sim::prelude::*;

use crate::msg::{MsgSignature, MsgType, SIGNATURE_BYTES};

/// Unique handle for an in-flight received message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RxMsgKey {
    /// POE session the message arrived on.
    pub session: SessionId,
    /// POE-assigned message id.
    pub msg_id: u64,
}

/// Notification to the uC: a rendezvous control message arrived.
#[derive(Debug, Clone, Copy)]
pub enum UcNotif {
    /// Peer announced its landing buffer (`sig.addr`).
    RndzvInit(MsgSignature),
    /// Peer's WRITE completed.
    RndzvDone(MsgSignature),
    /// The RBM's eager Rx buffer pool ran dry (sent only when
    /// `notify_rx_exhaustion` is configured). Lets the uC classify a
    /// subsequent watchdog abort as resource exhaustion rather than a
    /// remote-progress timeout. Not a progress event.
    RxExhausted,
}

/// To the RBM: an eager message's signature (one per message, before data).
#[derive(Debug, Clone, Copy)]
pub struct RbmMeta {
    /// Message handle.
    pub key: RxMsgKey,
    /// The parsed signature.
    pub sig: MsgSignature,
}

/// To the RBM: a slice of an eager message's payload.
#[derive(Debug, Clone)]
pub struct RbmData {
    /// Message handle.
    pub key: RxMsgKey,
    /// Offset within the payload (signature excluded).
    pub offset: u64,
    /// The bytes.
    pub data: Bytes,
}

/// Ports of the [`RxSys`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// POE Rx metas ([`accl_poe::PoeRxMeta`]) — informational.
    pub const POE_META: PortId = PortId(0);
    /// POE Rx data ([`accl_poe::RxChunk`]).
    pub const POE_DATA: PortId = PortId(1);
}

/// Parsing state for one in-flight message.
#[derive(Default)]
struct MsgParse {
    /// Chunks stashed before the signature is complete.
    stash: Vec<(u64, Bytes)>,
    sig: Option<MsgSignature>,
}

/// The Rx system component.
pub struct RxSys {
    rbm_meta: Endpoint,
    rbm_data: Endpoint,
    uc_notif: Endpoint,
    parse_latency: Dur,
    inflight: BTreeMap<RxMsgKey, MsgParse>,
    messages_parsed: u64,
}

impl RxSys {
    /// Creates an Rx system routing to the given RBM and uC endpoints.
    pub fn new(
        rbm_meta: Endpoint,
        rbm_data: Endpoint,
        uc_notif: Endpoint,
        parse_latency: Dur,
    ) -> Self {
        RxSys {
            rbm_meta,
            rbm_data,
            uc_notif,
            parse_latency,
            inflight: BTreeMap::new(),
            messages_parsed: 0,
        }
    }

    /// Messages whose signatures were parsed so far.
    pub fn messages_parsed(&self) -> u64 {
        self.messages_parsed
    }

    /// Attempts to assemble the signature from stashed chunks.
    fn try_parse(stash: &[(u64, Bytes)]) -> Option<MsgSignature> {
        let mut header = [0u8; SIGNATURE_BYTES];
        let mut covered = 0usize;
        let mut sorted: Vec<&(u64, Bytes)> = stash.iter().collect();
        sorted.sort_by_key(|(off, _)| *off);
        for (off, data) in sorted {
            let off = *off as usize;
            if off > covered {
                return None; // gap
            }
            let end = (off + data.len()).min(SIGNATURE_BYTES);
            if end > covered {
                let from = covered - off;
                header[covered..end].copy_from_slice(&data[from..from + (end - covered)]);
                covered = end;
            }
            if covered == SIGNATURE_BYTES {
                return Some(MsgSignature::decode(&header));
            }
        }
        None
    }

    /// Emits the payload portion of a raw message chunk.
    fn emit_payload(&self, ctx: &mut Ctx<'_>, key: RxMsgKey, off: u64, data: &Bytes) {
        let hdr = SIGNATURE_BYTES as u64;
        let end = off + data.len() as u64;
        if end <= hdr {
            return; // chunk entirely within the signature
        }
        let skip = hdr.saturating_sub(off);
        ctx.send(
            self.rbm_data,
            self.parse_latency,
            RbmData {
                key,
                offset: off + skip - hdr,
                data: data.slice(skip as usize..),
            },
        );
    }
}

impl Component for RxSys {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::POE_META => {
                // Message length is also carried in the CCLO signature; the
                // POE meta needs no separate action.
            }
            ports::POE_DATA => {
                let chunk = payload.downcast::<RxChunk>();
                let key = RxMsgKey {
                    session: chunk.session,
                    msg_id: chunk.msg_id,
                };
                let state = self.inflight.entry(key).or_default();
                if let Some(sig) = state.sig {
                    // Signature known: stream payload through.
                    debug_assert!(matches!(sig.mtype, MsgType::Eager));
                    let last = chunk.last;
                    self.emit_payload(ctx, key, chunk.offset, &chunk.data);
                    if last {
                        self.inflight.remove(&key);
                    }
                    return;
                }
                state.stash.push((chunk.offset, chunk.data));
                let Some(sig) = Self::try_parse(&state.stash) else {
                    assert!(
                        !chunk.last || state.stash.len() < 64,
                        "message ended before its signature completed"
                    );
                    return;
                };
                self.messages_parsed += 1;
                ctx.stats().add("rxsys.messages", 1);
                let state = self.inflight.get_mut(&key).unwrap();
                state.sig = Some(sig);
                let stash = core::mem::take(&mut state.stash);
                let complete = chunk.last;
                match sig.mtype {
                    MsgType::Eager => {
                        ctx.send(self.rbm_meta, self.parse_latency, RbmMeta { key, sig });
                        for (off, data) in &stash {
                            self.emit_payload(ctx, key, *off, data);
                        }
                        if complete {
                            self.inflight.remove(&key);
                        }
                    }
                    MsgType::RndzvInit => {
                        assert_eq!(sig.payload_len, 0, "rendezvous init carries no payload");
                        ctx.send(self.uc_notif, self.parse_latency, UcNotif::RndzvInit(sig));
                        self.inflight.remove(&key);
                    }
                    MsgType::RndzvDone => {
                        assert_eq!(sig.payload_len, 0, "rendezvous done carries no payload");
                        ctx.send(self.uc_notif, self.parse_latency, UcNotif::RndzvDone(sig));
                        self.inflight.remove(&key);
                    }
                }
            }
            other => panic!("Rx system has no port {other:?}"),
        }
    }

    fn state_digest(&self) -> Option<u64> {
        let mut h = 0u64;
        for v in [self.messages_parsed, self.inflight.len() as u64] {
            accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(mtype: MsgType, payload_len: u64) -> MsgSignature {
        MsgSignature {
            src_rank: 2,
            dst_rank: 0,
            mtype,
            payload_len,
            tag: 11,
            seq: 0,
            addr: 0xabc,
            comm: 0,
        }
    }

    struct Harness {
        sim: Simulator,
        rx: ComponentId,
        metas: ComponentId,
        datas: ComponentId,
        notifs: ComponentId,
    }

    fn harness() -> Harness {
        let mut sim = Simulator::new(0);
        let metas = sim.add("metas", Mailbox::<RbmMeta>::new());
        let datas = sim.add("datas", Mailbox::<RbmData>::new());
        let notifs = sim.add("notifs", Mailbox::<UcNotif>::new());
        let rx = sim.add(
            "rxsys",
            RxSys::new(
                Endpoint::of(metas),
                Endpoint::of(datas),
                Endpoint::of(notifs),
                Dur::from_ns(16),
            ),
        );
        Harness {
            sim,
            rx,
            metas,
            datas,
            notifs,
        }
    }

    fn chunk(h: &mut Harness, msg_id: u64, offset: u64, data: Vec<u8>, last: bool) {
        h.sim.post(
            Endpoint::new(h.rx, ports::POE_DATA),
            h.sim.now(),
            RxChunk {
                session: SessionId(1),
                msg_id,
                offset,
                data: Bytes::from(data),
                last,
            },
        );
        h.sim.run();
    }

    #[test]
    fn eager_message_routes_header_and_payload() {
        let mut h = harness();
        let s = sig(MsgType::Eager, 100);
        let mut wire = s.encode().to_vec();
        wire.extend(vec![7u8; 100]);
        chunk(&mut h, 0, 0, wire, true);
        let metas = h.sim.component::<Mailbox<RbmMeta>>(h.metas);
        assert_eq!(metas.len(), 1);
        assert_eq!(metas.items()[0].1.sig.payload_len, 100);
        let datas = h.sim.component::<Mailbox<RbmData>>(h.datas);
        assert_eq!(datas.len(), 1);
        assert_eq!(datas.items()[0].1.offset, 0);
        assert_eq!(datas.items()[0].1.data.len(), 100);
        assert!(datas.items()[0].1.data.iter().all(|&b| b == 7));
    }

    #[test]
    fn signature_straddling_chunks_is_reassembled() {
        // TCP-style: the 64-byte signature splits across three chunks.
        let mut h = harness();
        let s = sig(MsgType::Eager, 10);
        let mut wire = s.encode().to_vec();
        wire.extend(vec![9u8; 10]);
        chunk(&mut h, 0, 0, wire[0..10].to_vec(), false);
        assert_eq!(h.sim.component::<Mailbox<RbmMeta>>(h.metas).len(), 0);
        chunk(&mut h, 0, 10, wire[10..50].to_vec(), false);
        assert_eq!(h.sim.component::<Mailbox<RbmMeta>>(h.metas).len(), 0);
        chunk(&mut h, 0, 50, wire[50..].to_vec(), true);
        assert_eq!(h.sim.component::<Mailbox<RbmMeta>>(h.metas).len(), 1);
        let datas = h.sim.component::<Mailbox<RbmData>>(h.datas);
        let total: usize = datas.values().map(|d| d.data.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(datas.items()[0].1.offset, 0);
    }

    #[test]
    fn rndzv_ctrl_messages_notify_uc() {
        let mut h = harness();
        chunk(
            &mut h,
            0,
            0,
            sig(MsgType::RndzvInit, 0).encode().to_vec(),
            true,
        );
        chunk(
            &mut h,
            1,
            0,
            sig(MsgType::RndzvDone, 0).encode().to_vec(),
            true,
        );
        let notifs = h.sim.component::<Mailbox<UcNotif>>(h.notifs);
        assert_eq!(notifs.len(), 2);
        assert!(matches!(notifs.items()[0].1, UcNotif::RndzvInit(s) if s.addr == 0xabc));
        assert!(matches!(notifs.items()[1].1, UcNotif::RndzvDone(_)));
        // No RBM traffic for control messages.
        assert_eq!(h.sim.component::<Mailbox<RbmMeta>>(h.metas).len(), 0);
    }

    #[test]
    fn interleaved_messages_parse_independently() {
        let mut h = harness();
        let s1 = sig(MsgType::Eager, 20);
        let mut w1 = s1.encode().to_vec();
        w1.extend(vec![1u8; 20]);
        let s2 = sig(MsgType::Eager, 30);
        let mut w2 = s2.encode().to_vec();
        w2.extend(vec![2u8; 30]);
        chunk(&mut h, 10, 0, w1[0..40].to_vec(), false);
        chunk(&mut h, 11, 0, w2[0..40].to_vec(), false);
        chunk(&mut h, 10, 40, w1[40..].to_vec(), true);
        chunk(&mut h, 11, 40, w2[40..].to_vec(), true);
        let metas = h.sim.component::<Mailbox<RbmMeta>>(h.metas);
        assert_eq!(metas.len(), 2);
        let datas = h.sim.component::<Mailbox<RbmData>>(h.datas);
        let by_msg = |id: u64| -> usize {
            datas
                .values()
                .filter(|d| d.key.msg_id == id)
                .map(|d| d.data.len())
                .sum()
        };
        assert_eq!(by_msg(10), 20);
        assert_eq!(by_msg(11), 30);
    }
}
