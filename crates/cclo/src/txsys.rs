//! The Tx system: packetizes signatures + payloads and drives the POE.
//!
//! Accepts transmission jobs from the uC (rendezvous control messages) and
//! the DMP (eager data, rendezvous WRITE payloads), maintains per-session
//! sequence numbers, and serializes everything into the POE's Tx meta/data
//! interfaces. Jobs execute strictly in FIFO order — the engine has one
//! physical Tx data stream — with payload chunks buffered per ticket until
//! their job reaches the head of the queue (paper §4.4.2).

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;

use accl_poe::iface::{PoeTxCmd, SessionId, StreamChunk, TxKind};
use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, SpanId};

use crate::msg::{MsgSignature, SIGNATURE_BYTES};

/// A transmission job.
#[derive(Debug, Clone)]
pub enum TxJob {
    /// Signature-only control message (RNDZV_INIT / RNDZV_DONE), fire and
    /// forget.
    Ctrl {
        /// Session to send on.
        session: SessionId,
        /// The signature (seq is filled by the Tx system).
        sig: MsgSignature,
        /// Causal parent for the job's `tx.job` span.
        span: SpanId,
    },
    /// Eager message: signature followed by `sig.payload_len` bytes arriving
    /// as [`TxData`] for `ticket`.
    Eager {
        /// DMP ticket identifying the payload stream.
        ticket: u64,
        /// Session to send on.
        session: SessionId,
        /// The signature.
        sig: MsgSignature,
        /// Causal parent for the job's `tx.job` span.
        span: SpanId,
    },
    /// Rendezvous payload: RDMA WRITE of `len` bytes to `remote_addr`,
    /// followed automatically by a RNDZV_DONE control message.
    RndzvData {
        /// DMP ticket identifying the payload stream.
        ticket: u64,
        /// Session to send on.
        session: SessionId,
        /// Destination virtual address at the passive side.
        remote_addr: u64,
        /// Payload length.
        len: u64,
        /// The RNDZV_DONE signature to send upon completion.
        done_sig: MsgSignature,
        /// Causal parent for the job's `tx.job` span.
        span: SpanId,
    },
}

impl TxJob {
    fn ticket(&self) -> Option<u64> {
        match self {
            TxJob::Ctrl { .. } => None,
            TxJob::Eager { ticket, .. } | TxJob::RndzvData { ticket, .. } => Some(*ticket),
        }
    }

    fn span(&self) -> SpanId {
        match self {
            TxJob::Ctrl { span, .. }
            | TxJob::Eager { span, .. }
            | TxJob::RndzvData { span, .. } => *span,
        }
    }

    fn payload_len(&self) -> u64 {
        match self {
            TxJob::Ctrl { .. } => 0,
            TxJob::Eager { sig, .. } => sig.payload_len,
            TxJob::RndzvData { len, .. } => *len,
        }
    }
}

/// A chunk of payload for an in-flight job, produced by the DMP.
#[derive(Debug, Clone)]
pub struct TxData {
    /// The DMP ticket the chunk belongs to.
    pub ticket: u64,
    /// The bytes.
    pub data: Bytes,
}

/// Completion notification back to the DMP: the job's data fully left.
#[derive(Debug, Clone, Copy)]
pub struct TxJobDone {
    /// The completed ticket.
    pub ticket: u64,
}

/// A standby POE the Tx system can retarget to when the primary keeps
/// failing — the graceful-degradation path that fails RDMA collectives
/// over to a co-resident TCP engine after repeated QP errors.
#[derive(Debug, Clone, Copy)]
pub struct TxFallback {
    /// The fallback POE's Tx command port.
    pub tx_cmd: Endpoint,
    /// The fallback POE's Tx data port.
    pub tx_data: Endpoint,
    /// Where to announce the switch (the uC's `FAILOVER` port).
    pub notify: Endpoint,
    /// Capabilities the uC must downgrade to after the switch.
    pub profile: crate::uc::TransportFailover,
    /// Session errors on the primary that trigger the switch.
    pub threshold: u64,
}

/// Ports of the [`TxSys`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Job submissions ([`super::TxJob`]).
    pub const JOB: PortId = PortId(0);
    /// Payload chunks ([`super::TxData`]).
    pub const DATA: PortId = PortId(1);
    /// POE Tx completions (accepted, currently informational).
    pub const POE_DONE: PortId = PortId(2);
}

/// Per-ticket payload buffering.
#[derive(Default)]
struct TicketBuf {
    chunks: VecDeque<Bytes>,
    buffered: u64,
}

/// The Tx system component.
pub struct TxSys {
    poe_tx_cmd: Endpoint,
    poe_tx_data: Endpoint,
    dmp_done: Endpoint,
    /// Per-session Tx sequence numbers (part of the message signature).
    seq: BTreeMap<SessionId, u64>,
    jobs: VecDeque<TxJob>,
    bufs: BTreeMap<u64, TicketBuf>,
    /// Bytes of the head job already handed to the POE.
    head_sent: u64,
    /// Whether the head job's POE command + header went out.
    head_started: bool,
    /// The head job's `tx.job` span ([`SpanId::NONE`] when tracing is off).
    head_span: SpanId,
    /// Fixed per-job processing latency.
    job_latency: Dur,
    jobs_completed: u64,
    session_errors: u64,
    /// Armed standby POE; taken when the switch engages.
    fallback: Option<TxFallback>,
    failovers: u64,
}

impl TxSys {
    /// Creates a Tx system driving the given POE endpoints.
    pub fn new(
        poe_tx_cmd: Endpoint,
        poe_tx_data: Endpoint,
        dmp_done: Endpoint,
        job_latency: Dur,
    ) -> Self {
        TxSys {
            poe_tx_cmd,
            poe_tx_data,
            dmp_done,
            seq: BTreeMap::new(),
            jobs: VecDeque::new(),
            bufs: BTreeMap::new(),
            head_sent: 0,
            head_started: false,
            head_span: SpanId::NONE,
            job_latency,
            jobs_completed: 0,
            session_errors: 0,
            fallback: None,
            failovers: 0,
        }
    }

    /// Jobs fully transmitted so far.
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed
    }

    /// Session errors observed on the POE completion queue.
    pub fn session_errors(&self) -> u64 {
        self.session_errors
    }

    /// Arms a standby POE for graceful degradation.
    pub fn set_fallback(&mut self, fallback: TxFallback) {
        self.fallback = Some(fallback);
    }

    /// Times the Tx path switched to a fallback POE.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Switches to the armed fallback once the primary's session-error
    /// count crosses the threshold. Only called between jobs — a message
    /// must never be split across two engines — so with a job mid-flight
    /// the check simply re-runs when the head finishes.
    fn maybe_failover(&mut self, ctx: &mut Ctx<'_>) {
        let engage = self
            .fallback
            .is_some_and(|fb| self.session_errors >= fb.threshold);
        if !engage {
            return;
        }
        let fb = self.fallback.take().expect("fallback checked above");
        self.poe_tx_cmd = fb.tx_cmd;
        self.poe_tx_data = fb.tx_data;
        self.failovers += 1;
        ctx.stats().add("txsys.failovers", 1);
        // Queued rendezvous WRITEs cannot run on the (two-sided) fallback;
        // flush them, reporting their tickets done so the DMP unwinds. The
        // owning calls were already aborted by the watchdog when the
        // primary's sessions failed, and the driver reissues them — now
        // routed through the fallback with eager protocol selection.
        let jobs = std::mem::take(&mut self.jobs);
        for job in jobs {
            if let TxJob::RndzvData { ticket, .. } = &job {
                self.bufs.remove(ticket);
                ctx.stats().add("txsys.jobs_flushed", 1);
                ctx.send(
                    self.dmp_done,
                    self.job_latency,
                    TxJobDone { ticket: *ticket },
                );
            } else {
                self.jobs.push_back(job);
            }
        }
        ctx.send(fb.notify, self.job_latency, fb.profile);
    }

    fn next_seq(&mut self, session: SessionId) -> u64 {
        let s = self.seq.entry(session).or_insert(0);
        let v = *s;
        *s += 1;
        v
    }

    /// Drives the head job as far as available data allows.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            if !self.head_started {
                self.maybe_failover(ctx);
            }
            let Some(job) = self.jobs.front().cloned() else {
                return;
            };
            if !self.head_started {
                self.head_started = true;
                self.start_job(ctx, &job);
                // Ctrl jobs are complete once their signature is out.
                if matches!(job, TxJob::Ctrl { .. }) {
                    self.finish_head(ctx, &job);
                    continue;
                }
            }
            // Stream available payload.
            let ticket = job.ticket().expect("data job without ticket");
            let total = job.payload_len();
            let buf = self.bufs.entry(ticket).or_default();
            while let Some(chunk) = buf.chunks.pop_front() {
                buf.buffered -= chunk.len() as u64;
                self.head_sent += chunk.len() as u64;
                assert!(
                    self.head_sent <= total,
                    "job overfed: {} > {total}",
                    self.head_sent
                );
                let last = self.head_sent == total;
                // Same latency as the header so payload chunks can never
                // overtake their job's signature.
                ctx.send(
                    self.poe_tx_data,
                    self.job_latency,
                    StreamChunk { data: chunk, last },
                );
            }
            if self.head_sent == total {
                self.finish_head(ctx, &job);
                continue;
            }
            return; // waiting for more DMP data
        }
    }

    fn start_job(&mut self, ctx: &mut Ctx<'_>, job: &TxJob) {
        if ctx.spans_enabled() {
            self.head_span = ctx.span_begin_attrs(
                "tx.job",
                job.span(),
                &[Attr {
                    key: "bytes",
                    value: AttrValue::Bytes(job.payload_len()),
                }],
            );
        }
        match job {
            TxJob::Ctrl { session, sig, .. } | TxJob::Eager { session, sig, .. } => {
                let mut sig = *sig;
                sig.seq = self.next_seq(*session);
                let total = SIGNATURE_BYTES as u64 + sig.payload_len;
                ctx.stats().add("txsys.bytes", total);
                ctx.send(
                    self.poe_tx_cmd,
                    self.job_latency,
                    PoeTxCmd {
                        session: *session,
                        len: total,
                        kind: TxKind::Send,
                        tag: sig.tag,
                        span: self.head_span,
                    },
                );
                ctx.send(
                    self.poe_tx_data,
                    self.job_latency,
                    StreamChunk {
                        data: sig.encode(),
                        last: sig.payload_len == 0,
                    },
                );
            }
            TxJob::RndzvData {
                session,
                remote_addr,
                len,
                ..
            } => {
                ctx.stats().add("txsys.bytes", *len);
                ctx.send(
                    self.poe_tx_cmd,
                    self.job_latency,
                    PoeTxCmd {
                        session: *session,
                        len: *len,
                        kind: TxKind::Write {
                            remote_addr: *remote_addr,
                        },
                        tag: 0,
                        span: self.head_span,
                    },
                );
            }
        }
    }

    fn finish_head(&mut self, ctx: &mut Ctx<'_>, job: &TxJob) {
        self.jobs.pop_front();
        self.head_sent = 0;
        self.head_started = false;
        self.jobs_completed += 1;
        ctx.stats().add("txsys.jobs", 1);
        ctx.span_end(self.head_span);
        self.head_span = SpanId::NONE;
        match job {
            TxJob::Ctrl { .. } => {}
            TxJob::Eager { ticket, .. } => {
                self.bufs.remove(ticket);
                ctx.send(
                    self.dmp_done,
                    self.job_latency,
                    TxJobDone { ticket: *ticket },
                );
            }
            TxJob::RndzvData {
                ticket,
                session,
                done_sig,
                span,
                ..
            } => {
                self.bufs.remove(ticket);
                // The WRITE is on the wire; announce completion to the peer
                // (RNDZV_DONE travels the same in-order session, so it
                // cannot overtake the payload).
                self.jobs.push_front(TxJob::Ctrl {
                    session: *session,
                    sig: *done_sig,
                    span: *span,
                });
                ctx.send(
                    self.dmp_done,
                    self.job_latency,
                    TxJobDone { ticket: *ticket },
                );
            }
        }
    }
}

impl Component for TxSys {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::JOB => {
                let job = payload.downcast::<TxJob>();
                self.jobs.push_back(job);
                self.pump(ctx);
            }
            ports::DATA => {
                let data = payload.downcast::<TxData>();
                let buf = self.bufs.entry(data.ticket).or_default();
                buf.buffered += data.data.len() as u64;
                buf.chunks.push_back(data.data);
                self.pump(ctx);
            }
            ports::POE_DONE => {
                // Transmit completions need no action (pacing is handled
                // by the network pipes), but session errors arriving on
                // the shared completion queue are counted: the uC's
                // watchdog handles the actual abort.
                if payload.try_downcast::<accl_poe::PoeSessionError>().is_ok() {
                    self.session_errors += 1;
                    ctx.stats().add("txsys.session_errors", 1);
                    if !self.head_started {
                        self.maybe_failover(ctx);
                    }
                }
            }
            other => panic!("Tx system has no port {other:?}"),
        }
    }

    fn state_digest(&self) -> Option<u64> {
        // Job totals, the head job's progress, and every session's Tx
        // sequence number (part of the message signature contract).
        let mut h = 0u64;
        let mut fold = |v: u64| accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        for v in [
            self.jobs_completed,
            self.session_errors,
            self.failovers,
            self.head_sent,
            u64::from(self.head_started),
            self.jobs.len() as u64,
        ] {
            fold(v);
        }
        for (s, seq) in &self.seq {
            fold(u64::from(s.0));
            fold(*seq);
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgType;

    fn sig(payload_len: u64, mtype: MsgType) -> MsgSignature {
        MsgSignature {
            src_rank: 0,
            dst_rank: 1,
            mtype,
            payload_len,
            tag: 5,
            seq: 0,
            addr: 0,
            comm: 0,
        }
    }

    struct Harness {
        sim: Simulator,
        tx: ComponentId,
        cmds: ComponentId,
        datas: ComponentId,
        dones: ComponentId,
    }

    fn harness() -> Harness {
        let mut sim = Simulator::new(0);
        let cmds = sim.add("cmds", Mailbox::<PoeTxCmd>::new());
        let datas = sim.add("datas", Mailbox::<StreamChunk>::new());
        let dones = sim.add("dones", Mailbox::<TxJobDone>::new());
        let tx = sim.add(
            "txsys",
            TxSys::new(
                Endpoint::of(cmds),
                Endpoint::of(datas),
                Endpoint::of(dones),
                Dur::from_ns(16),
            ),
        );
        Harness {
            sim,
            tx,
            cmds,
            datas,
            dones,
        }
    }

    #[test]
    fn ctrl_job_sends_signature_only() {
        let mut h = harness();
        h.sim.post(
            Endpoint::new(h.tx, ports::JOB),
            Time::ZERO,
            TxJob::Ctrl {
                session: SessionId(3),
                sig: sig(0, MsgType::RndzvInit),
                span: SpanId::NONE,
            },
        );
        h.sim.run();
        let cmds = h.sim.component::<Mailbox<PoeTxCmd>>(h.cmds);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds.items()[0].1.len, SIGNATURE_BYTES as u64);
        let datas = h.sim.component::<Mailbox<StreamChunk>>(h.datas);
        assert_eq!(datas.len(), 1);
        assert!(datas.items()[0].1.last);
        let parsed = MsgSignature::decode(&datas.items()[0].1.data);
        assert_eq!(parsed.mtype, MsgType::RndzvInit);
    }

    #[test]
    fn eager_job_streams_header_then_payload() {
        let mut h = harness();
        h.sim.post(
            Endpoint::new(h.tx, ports::JOB),
            Time::ZERO,
            TxJob::Eager {
                ticket: 7,
                session: SessionId(0),
                sig: sig(100, MsgType::Eager),
                span: SpanId::NONE,
            },
        );
        h.sim.post(
            Endpoint::new(h.tx, ports::DATA),
            Time::from_ps(1),
            TxData {
                ticket: 7,
                data: Bytes::from(vec![9u8; 60]),
            },
        );
        h.sim.post(
            Endpoint::new(h.tx, ports::DATA),
            Time::from_ps(2),
            TxData {
                ticket: 7,
                data: Bytes::from(vec![8u8; 40]),
            },
        );
        h.sim.run();
        let datas = h.sim.component::<Mailbox<StreamChunk>>(h.datas);
        assert_eq!(datas.len(), 3); // header + 2 payload chunks
        assert_eq!(datas.items()[0].1.data.len(), SIGNATURE_BYTES);
        assert!(!datas.items()[1].1.last);
        assert!(datas.items()[2].1.last);
        let dones = h.sim.component::<Mailbox<TxJobDone>>(h.dones);
        assert_eq!(dones.len(), 1);
        assert_eq!(dones.items()[0].1.ticket, 7);
    }

    #[test]
    fn jobs_serialize_in_fifo_order() {
        let mut h = harness();
        // Job 2's data is ready long before job 1's; job 1 still goes first.
        h.sim.post(
            Endpoint::new(h.tx, ports::JOB),
            Time::ZERO,
            TxJob::Eager {
                ticket: 1,
                session: SessionId(0),
                sig: sig(10, MsgType::Eager),
                span: SpanId::NONE,
            },
        );
        h.sim.post(
            Endpoint::new(h.tx, ports::JOB),
            Time::from_ps(1),
            TxJob::Eager {
                ticket: 2,
                session: SessionId(0),
                sig: sig(10, MsgType::Eager),
                span: SpanId::NONE,
            },
        );
        h.sim.post(
            Endpoint::new(h.tx, ports::DATA),
            Time::from_ps(2),
            TxData {
                ticket: 2,
                data: Bytes::from(vec![2u8; 10]),
            },
        );
        h.sim.post(
            Endpoint::new(h.tx, ports::DATA),
            Time::ZERO + Dur::from_us(5),
            TxData {
                ticket: 1,
                data: Bytes::from(vec![1u8; 10]),
            },
        );
        h.sim.run();
        let dones = h.sim.component::<Mailbox<TxJobDone>>(h.dones);
        assert_eq!(dones.len(), 2);
        assert_eq!(dones.items()[0].1.ticket, 1);
        assert_eq!(dones.items()[1].1.ticket, 2);
        // Payload bytes left in job order: ticket 1's bytes first.
        let datas = h.sim.component::<Mailbox<StreamChunk>>(h.datas);
        let payloads: Vec<u8> = datas
            .values()
            .filter(|c| c.data.len() == 10)
            .map(|c| c.data[0])
            .collect();
        assert_eq!(payloads, vec![1, 2]);
    }

    #[test]
    fn rndzv_data_emits_write_then_done_ctrl() {
        let mut h = harness();
        h.sim.post(
            Endpoint::new(h.tx, ports::JOB),
            Time::ZERO,
            TxJob::RndzvData {
                ticket: 4,
                session: SessionId(2),
                remote_addr: 0xbeef,
                len: 50,
                done_sig: sig(0, MsgType::RndzvDone),
                span: SpanId::NONE,
            },
        );
        h.sim.post(
            Endpoint::new(h.tx, ports::DATA),
            Time::from_ps(5),
            TxData {
                ticket: 4,
                data: Bytes::from(vec![3u8; 50]),
            },
        );
        h.sim.run();
        let cmds = h.sim.component::<Mailbox<PoeTxCmd>>(h.cmds);
        assert_eq!(cmds.len(), 2);
        assert!(matches!(
            cmds.items()[0].1.kind,
            TxKind::Write {
                remote_addr: 0xbeef
            }
        ));
        assert!(matches!(cmds.items()[1].1.kind, TxKind::Send));
        // WRITE data (no header) then the DONE signature.
        let datas = h.sim.component::<Mailbox<StreamChunk>>(h.datas);
        assert_eq!(datas.len(), 2);
        assert_eq!(datas.items()[0].1.data.len(), 50);
        assert_eq!(datas.items()[1].1.data.len(), SIGNATURE_BYTES);
        assert_eq!(
            h.sim.component::<Mailbox<TxJobDone>>(h.dones).items()[0]
                .1
                .ticket,
            4
        );
    }

    #[test]
    fn sequence_numbers_increment_per_session() {
        let mut h = harness();
        for i in 0..3u64 {
            h.sim.post(
                Endpoint::new(h.tx, ports::JOB),
                Time::from_ps(i),
                TxJob::Ctrl {
                    session: SessionId(0),
                    sig: sig(0, MsgType::RndzvInit),
                    span: SpanId::NONE,
                },
            );
        }
        h.sim.post(
            Endpoint::new(h.tx, ports::JOB),
            Time::from_ps(10),
            TxJob::Ctrl {
                session: SessionId(1),
                sig: sig(0, MsgType::RndzvInit),
                span: SpanId::NONE,
            },
        );
        h.sim.run();
        let datas = h.sim.component::<Mailbox<StreamChunk>>(h.datas);
        let seqs: Vec<u64> = datas
            .values()
            .map(|c| MsgSignature::decode(&c.data).seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 0]);
    }
}
