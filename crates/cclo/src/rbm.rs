//! The RxBuf Manager: eager-message buffering, reassembly and matching.
//!
//! The RBM owns the pool of Rx buffers in FPGA memory. Incoming eager
//! messages (possibly interleaved across sessions) are reassembled into a
//! buffer; when the DMP asks for a `(comm, src, tag)` message, the RBM
//! matches FIFO against completed messages and streams the payload into the
//! datapath, freeing the buffer afterwards (paper §4.4.1, paths ⑤/⑥ of
//! Fig. 5).
//!
//! In legacy-ACCL mode the per-packet reassembly bookkeeping is charged to
//! the (slow, sequential) embedded micro-controller instead of dedicated
//! hardware — the architectural difference the paper credits for ACCL+'s
//! advantage over ACCL in Fig. 13.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;

use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, SpanId};

use crate::config::CcloConfig;
use crate::msg::MsgSignature;
use crate::rxsys::{RbmData, RbmMeta, RxMsgKey};

/// Matching key for eager messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatchKey {
    /// Communicator id.
    pub comm: u32,
    /// Sending rank.
    pub src_rank: u32,
    /// Message tag.
    pub tag: u64,
}

impl MatchKey {
    fn of(sig: &MsgSignature) -> MatchKey {
        MatchKey {
            comm: sig.comm,
            src_rank: sig.src_rank,
            tag: sig.tag,
        }
    }
}

/// A DMP request for an expected eager message.
#[derive(Debug, Clone, Copy)]
pub struct RbmQuery {
    /// What to match.
    pub key: MatchKey,
    /// Expected payload length (checked on match).
    pub len: u64,
    /// Ticket echoed in the streamed chunks.
    pub ticket: u64,
    /// Where to stream the payload.
    pub reply: Endpoint,
    /// Causal parent for the match's `rbm.msg` span (the querying DMP
    /// instruction's span).
    pub span: SpanId,
}

/// A payload chunk streamed from an Rx buffer into the datapath.
#[derive(Debug, Clone)]
pub struct RbmStream {
    /// Ticket from the matching [`RbmQuery`].
    pub ticket: u64,
    /// Offset within the payload.
    pub offset: u64,
    /// The bytes.
    pub data: Bytes,
    /// Whether the payload is complete after this chunk.
    pub last: bool,
}

/// Ports of the [`Rbm`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Message signatures from the Rx system ([`super::RbmMeta`]).
    pub const META: PortId = PortId(0);
    /// Payload data from the Rx system ([`super::RbmData`]).
    pub const DATA: PortId = PortId(1);
    /// Match requests from the DMP ([`super::RbmQuery`]).
    pub const QUERY: PortId = PortId(2);
    /// Abort cleanup from the uC ([`super::RbmPurge`]).
    pub const PURGE: PortId = PortId(3);
    /// Fault injection: permanently remove buffers from the pool
    /// ([`super::RbmShrink`]).
    pub const SHRINK: PortId = PortId(4);
    /// Restart recovery: drop all Rx state and restore the pool
    /// ([`super::RbmResync`]).
    pub const RESYNC: PortId = PortId(5);
}

/// uC request to drop all eager state belonging to an aborted collective:
/// buffered messages go back to the pool, waiting DMP queries are
/// cancelled. Wire tags namespace collective steps under the user tag
/// (`user_tag << 32 | step`), so one purge covers every step of the call.
#[derive(Debug, Clone, Copy)]
pub struct RbmPurge {
    /// Communicator of the aborted call.
    pub comm: u32,
    /// The aborted command's user tag.
    pub user_tag: u64,
}

/// Restart recovery: the node rebooted and its Rx-buffer contents did not
/// survive. Every buffered or in-flight message, waiting DMP query,
/// deferred admission and orphan piece is dropped, and the pool is
/// restored to its full post-shrink capacity. Posted by the cluster at a
/// node's restart instant, before any rejoin traffic arrives, so the new
/// incarnation starts from a clean reassembly state instead of mixing
/// pre-crash fragments into post-rejoin messages.
#[derive(Debug, Clone, Copy)]
pub struct RbmResync;

/// Chaos fault: permanently removes `bufs` buffers from the Rx pool,
/// modelling memory pressure or a buffer-accounting bug. Free buffers are
/// taken first; any remainder is debited as held buffers drain back.
#[derive(Debug, Clone, Copy)]
pub struct RbmShrink {
    /// Buffers to remove.
    pub bufs: u32,
}

/// One buffered (or in-flight) eager message.
struct MsgState {
    sig: MsgSignature,
    pieces: Vec<(u64, Bytes)>,
    received: u64,
    admitted: bool,
    /// Earliest time the assembled message is usable (buffer writes and,
    /// in legacy mode, uC per-packet work).
    ready_at: Time,
    matched: bool,
}

/// The RxBuf manager component.
pub struct Rbm {
    cfg: CcloConfig,
    msgs: BTreeMap<RxMsgKey, MsgState>,
    /// Arrival-ordered completed-or-inflight messages per matching key.
    by_match: BTreeMap<MatchKey, VecDeque<RxMsgKey>>,
    /// Waiting DMP queries per matching key, each with the time it was
    /// posted (feeds the `rbm.meta_wait_ps` histogram at match commit).
    queries: BTreeMap<MatchKey, VecDeque<(RbmQuery, Time)>>,
    /// Data pieces that arrived before their message's [`RbmMeta`]. The Rx
    /// system always *sends* META no later than the first DATA of a
    /// message, so an orphan can only exist while both deliveries share a
    /// timestamp — it is drained as soon as the META executes. Keeping the
    /// two handlers commutative keeps the RBM off the sim-time race
    /// detector's radar (see accl-sim's `race` module).
    orphan_data: BTreeMap<RxMsgKey, Vec<RbmData>>,
    /// Free Rx buffers.
    free_bufs: u32,
    /// Messages waiting for a buffer.
    waiting_admission: VecDeque<RxMsgKey>,
    /// Rx-buffer write bandwidth (packets landing).
    write_pipe: Pipe,
    /// Rx-buffer read-out bandwidth (matched payloads to the DMP) —
    /// a separate physical stream interface from the write path.
    read_pipe: Pipe,
    /// Legacy mode: serialized uC per-packet work.
    legacy_pipe: Option<Pipe>,
    /// Times the pool ran dry (eager backpressure events).
    pub exhaustion_events: u64,
    /// Buffers permanently removed by [`RbmShrink`] faults.
    shrunk: u32,
    /// Shrink remainder still to be debited as held buffers free up.
    shrink_debt: u32,
    /// Exhaustion notifications to the uC (`notify_rx_exhaustion`).
    notify: Option<Endpoint>,
    /// Resource name for stall diagnosis (scoped per node by the engine).
    resource: String,
    chunk_bytes: u64,
}

impl Rbm {
    /// Creates an RBM per the engine configuration.
    pub fn new(cfg: CcloConfig) -> Self {
        let datapath_bps = cfg.datapath_bytes_per_cycle as f64 * cfg.clock_mhz * 1e6;
        let legacy_pipe = cfg.legacy_uc.map(|l| {
            Pipe::bytes_per_sec(1e30)
                .with_per_item(Dur::for_cycles(l.per_packet_cycles, l.clock_mhz))
        });
        Rbm {
            free_bufs: cfg.rx_buf_count,
            msgs: BTreeMap::new(),
            by_match: BTreeMap::new(),
            queries: BTreeMap::new(),
            orphan_data: BTreeMap::new(),
            waiting_admission: VecDeque::new(),
            write_pipe: Pipe::bytes_per_sec(datapath_bps),
            read_pipe: Pipe::bytes_per_sec(datapath_bps),
            legacy_pipe,
            exhaustion_events: 0,
            shrunk: 0,
            shrink_debt: 0,
            notify: None,
            resource: "cclo.rxbuf".to_string(),
            chunk_bytes: 4096,
            cfg,
        }
    }

    /// Routes pool-exhaustion notifications to the uC's NOTIF port.
    pub fn set_exhaustion_notify(&mut self, ep: Endpoint) {
        self.notify = Some(ep);
    }

    /// Scopes the pool's resource name for stall diagnosis
    /// (e.g. `"cclo.rxbuf(n0)"`).
    pub fn set_resource_label(&mut self, label: impl Into<String>) {
        self.resource = label.into();
    }

    /// Buffers currently free.
    pub fn free_buffers(&self) -> u32 {
        self.free_bufs
    }

    /// Buffers permanently removed by shrink faults so far.
    pub fn shrunk(&self) -> u32 {
        self.shrunk
    }

    /// Returns one buffer to the pool, paying down shrink debt first.
    fn release_buf(&mut self) {
        if self.shrink_debt > 0 {
            self.shrink_debt -= 1;
        } else {
            self.free_bufs += 1;
        }
    }

    /// Wipes all Rx state after the node's own restart: a rebooted RBM
    /// has no in-flight messages, no pending queries, and a full buffer
    /// pool. Shrink faults model permanent capacity loss and survive the
    /// reboot; any outstanding debt is settled by the wipe.
    fn resync(&mut self, ctx: &mut Ctx<'_>) {
        let dropped_msgs = self.msgs.len() as u64;
        let dropped_queries = self.queries.values().map(VecDeque::len).sum::<usize>();
        self.msgs.clear();
        self.by_match.clear();
        self.queries.clear();
        self.orphan_data.clear();
        self.waiting_admission.clear();
        self.free_bufs = self.cfg.rx_buf_count.saturating_sub(self.shrunk);
        self.shrink_debt = 0;
        ctx.stats().add("rbm.resyncs", 1);
        ctx.stats().add("rbm.resync_dropped_msgs", dropped_msgs);
        ctx.stats()
            .add("rbm.resync_dropped_queries", dropped_queries as u64);
    }

    /// Messages buffered but not yet matched.
    pub fn unmatched_messages(&self) -> usize {
        self.msgs.values().filter(|m| !m.matched).count()
    }

    /// DMP queries waiting for a matching message.
    pub fn pending_queries(&self) -> usize {
        self.queries.values().map(VecDeque::len).sum()
    }

    /// Drops all state belonging to an aborted collective and returns its
    /// Rx buffers to the pool (admitting deferred messages into them).
    fn purge(&mut self, ctx: &mut Ctx<'_>, p: RbmPurge) {
        let hit = |key: &MatchKey| key.comm == p.comm && key.tag >> 32 == p.user_tag;
        let mut dropped_queries = 0u64;
        self.queries.retain(|key, q| {
            if hit(key) {
                dropped_queries += q.len() as u64;
                false
            } else {
                true
            }
        });
        let mut victims: Vec<RxMsgKey> = self
            .msgs
            .iter()
            .filter(|(_, m)| hit(&MatchKey::of(&m.sig)))
            .map(|(k, _)| *k)
            .collect();
        victims.sort_by_key(|k| (k.session, k.msg_id));
        let mut freed = 0u64;
        for k in &victims {
            let Some(m) = self.msgs.remove(k) else {
                continue;
            };
            if m.admitted {
                self.release_buf();
                freed += 1;
            }
        }
        self.waiting_admission.retain(|k| self.msgs.contains_key(k));
        self.by_match.retain(|key, _| !hit(key));
        // Freed buffers admit deferred messages in arrival order.
        let mut to_match = Vec::new();
        while self.free_bufs > 0 {
            let Some(wkey) = self.waiting_admission.pop_front() else {
                break;
            };
            self.free_bufs -= 1;
            let m = self.msgs.get_mut(&wkey).expect("waiting msg vanished");
            m.admitted = true;
            to_match.push(MatchKey::of(&m.sig));
        }
        for key in to_match {
            self.try_match(ctx, key);
        }
        ctx.stats().add("rbm.purged_bufs", freed);
        ctx.stats().add("rbm.purged_queries", dropped_queries);
    }

    /// Folds one payload piece into its message's reassembly state.
    fn on_data(&mut self, ctx: &mut Ctx<'_>, data: RbmData) {
        let Some(msg) = self.msgs.get_mut(&data.key) else {
            // META and this DATA share a timestamp and the tie-break rule
            // delivered DATA first; park the piece until META executes.
            self.orphan_data.entry(data.key).or_default().push(data);
            return;
        };
        let n = data.data.len() as u64;
        msg.received += n;
        ctx.stats().add("rbm.rx_bytes", n);
        debug_assert!(
            msg.received <= msg.sig.payload_len,
            "RBM overflow: {} > {}",
            msg.received,
            msg.sig.payload_len
        );
        // Charge the buffer write.
        let (_, wr_end) = self.write_pipe.reserve(ctx.now(), n);
        let mut ready = wr_end;
        if let Some(lp) = &mut self.legacy_pipe {
            // Legacy ACCL: the uC touches every packet.
            let (_, uc_end) = lp.reserve(ctx.now(), 1);
            ready = ready.max(uc_end);
        }
        msg.pieces.push((data.offset, data.data));
        msg.ready_at = msg.ready_at.max(ready);
        if msg.received == msg.sig.payload_len {
            let key = MatchKey::of(&msg.sig);
            self.try_match(ctx, key);
        }
    }

    fn try_match(&mut self, ctx: &mut Ctx<'_>, key: MatchKey) {
        loop {
            let Some((q, posted)) = self.queries.get(&key).and_then(|q| q.front().copied()) else {
                return;
            };
            // Head message for this key must be complete and admitted.
            let Some(&mkey) = self.by_match.get(&key).and_then(VecDeque::front) else {
                return;
            };
            let msg = self.msgs.get(&mkey).expect("match index out of sync");
            if !msg.admitted || msg.received < msg.sig.payload_len {
                return;
            }
            assert_eq!(
                q.len, msg.sig.payload_len,
                "eager match length mismatch for {key:?}"
            );
            // Commit the match. The query waited from its post until now
            // for a complete, admitted message — the "RBM meta wait" that
            // dominates small-message latency; exported as a histogram so
            // the windowed SLO series can track it over sim time.
            let waited = ctx.now().since(posted);
            ctx.stats().observe("rbm.meta_wait_ps", waited.as_ps());
            self.queries.get_mut(&key).unwrap().pop_front();
            self.by_match.get_mut(&key).unwrap().pop_front();
            let mut msg = self.msgs.remove(&mkey).unwrap();
            msg.matched = true;
            self.stream_out(ctx, &q, msg);
            // Buffer freed; admit a waiting message if any (unless the
            // freed buffer went to pay down shrink debt).
            self.release_buf();
            if self.free_bufs > 0 {
                if let Some(wkey) = self.waiting_admission.pop_front() {
                    self.free_bufs -= 1;
                    let wmatch = {
                        let m = self.msgs.get_mut(&wkey).expect("waiting msg vanished");
                        m.admitted = true;
                        MatchKey::of(&m.sig)
                    };
                    if wmatch == key {
                        continue;
                    }
                    self.try_match(ctx, wmatch);
                }
            }
        }
    }

    /// Streams a matched message's payload to the DMP.
    fn stream_out(&mut self, ctx: &mut Ctx<'_>, q: &RbmQuery, msg: MsgState) {
        // Discovery is quantized by the DMP's polling interval (§4.4.1:
        // "the DMP sends out requests periodically to the RBM").
        let poll = self.cfg.cycles(self.cfg.rbm_poll_cycles);
        let start = msg.ready_at.max(ctx.now()) + poll;
        if msg.sig.payload_len == 0 {
            if ctx.spans_enabled() {
                ctx.span_interval("rbm.msg", q.span, start, start);
            }
            ctx.send_at(
                q.reply,
                start,
                RbmStream {
                    ticket: q.ticket,
                    offset: 0,
                    data: Bytes::new(),
                    last: true,
                },
            );
            return;
        }
        // Reassemble in offset order and emit datapath-paced chunks.
        let mut pieces = msg.pieces;
        pieces.sort_by_key(|(off, _)| *off);
        let mut buf = Vec::with_capacity(msg.sig.payload_len as usize);
        for (off, data) in pieces {
            assert_eq!(off as usize, buf.len(), "payload reassembly gap");
            buf.extend_from_slice(&data);
        }
        let payload = Bytes::from(buf);
        let total = payload.len() as u64;
        let mut off = 0u64;
        let mut last_end = start;
        while off < total {
            let n = self.chunk_bytes.min(total - off);
            let (_, end) = self.read_pipe.reserve(start, n);
            last_end = last_end.max(end);
            ctx.send_at(
                q.reply,
                end,
                RbmStream {
                    ticket: q.ticket,
                    offset: off,
                    data: payload.slice(off as usize..(off + n) as usize),
                    last: off + n == total,
                },
            );
            off += n;
        }
        if ctx.spans_enabled() {
            ctx.span_interval_attrs(
                "rbm.msg",
                q.span,
                start,
                last_end,
                &[Attr {
                    key: "bytes",
                    value: AttrValue::Bytes(total),
                }],
            );
        }
    }
}

impl Component for Rbm {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::META => {
                let meta = payload.downcast::<RbmMeta>();
                assert!(
                    meta.sig.payload_len <= self.cfg.rx_buf_bytes,
                    "eager message ({} B) exceeds Rx buffer size ({} B)",
                    meta.sig.payload_len,
                    self.cfg.rx_buf_bytes
                );
                let admitted = if self.free_bufs > 0 {
                    self.free_bufs -= 1;
                    true
                } else {
                    self.exhaustion_events += 1;
                    ctx.stats().add("rbm.exhausted", 1);
                    if let Some(uc) = self.notify {
                        ctx.send(uc, Dur::ZERO, crate::rxsys::UcNotif::RxExhausted);
                    }
                    self.waiting_admission.push_back(meta.key);
                    false
                };
                let key = MatchKey::of(&meta.sig);
                self.msgs.insert(
                    meta.key,
                    MsgState {
                        sig: meta.sig,
                        pieces: Vec::new(),
                        received: 0,
                        admitted,
                        ready_at: ctx.now(),
                        matched: false,
                    },
                );
                self.by_match.entry(key).or_default().push_back(meta.key);
                if let Some(orphans) = self.orphan_data.remove(&meta.key) {
                    for data in orphans {
                        self.on_data(ctx, data);
                    }
                }
                if meta.sig.payload_len == 0 {
                    self.try_match(ctx, key);
                }
            }
            ports::DATA => {
                let data = payload.downcast::<RbmData>();
                self.on_data(ctx, data);
            }
            ports::QUERY => {
                let q = payload.downcast::<RbmQuery>();
                let posted = ctx.now();
                self.queries
                    .entry(q.key)
                    .or_default()
                    .push_back((q, posted));
                self.try_match(ctx, q.key);
            }
            ports::PURGE => {
                let p = payload.downcast::<RbmPurge>();
                self.purge(ctx, p);
            }
            ports::RESYNC => {
                payload.downcast::<RbmResync>();
                self.resync(ctx);
            }
            ports::SHRINK => {
                let s = payload.downcast::<RbmShrink>();
                let from_free = s.bufs.min(self.free_bufs);
                self.free_bufs -= from_free;
                self.shrink_debt += s.bufs - from_free;
                self.shrunk += s.bufs;
                ctx.stats().add("rbm.bufs_shrunk", s.bufs as u64);
            }
            other => panic!("RBM has no port {other:?}"),
        }
    }

    fn resource_state(&self) -> Option<ResourceState> {
        let held = self.msgs.values().filter(|m| m.admitted).count() as u64;
        let deferred = self.waiting_admission.len() as u64;
        if held == 0 && deferred == 0 && self.shrunk == 0 {
            return None;
        }
        let capacity = self.cfg.rx_buf_count.saturating_sub(self.shrunk) as u64;
        let mut st = ResourceState::gauges_only(vec![ResourceGauge {
            name: self.resource.clone(),
            used: held,
            capacity: Some(capacity),
        }]);
        if deferred > 0 {
            st.gauges.push(ResourceGauge {
                name: format!("{}.deferred", self.resource),
                used: deferred,
                capacity: None,
            });
            st.waits.push(self.resource.clone());
        }
        if held > 0 {
            st.holds.push(self.resource.clone());
        }
        Some(st)
    }

    fn state_digest(&self) -> Option<u64> {
        // Pool accounting (free/shrunk/debt), backpressure totals, and the
        // message/queue populations (BTreeMap order is canonical).
        let mut h = 0u64;
        for v in [
            u64::from(self.free_bufs),
            u64::from(self.shrunk),
            u64::from(self.shrink_debt),
            self.exhaustion_events,
            self.msgs.len() as u64,
            self.waiting_admission.len() as u64,
            self.write_pipe.next_free().as_ps(),
            self.read_pipe.next_free().as_ps(),
        ] {
            accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgType;
    use accl_poe::iface::SessionId;

    fn sig(src: u32, tag: u64, len: u64) -> MsgSignature {
        MsgSignature {
            src_rank: src,
            dst_rank: 0,
            mtype: MsgType::Eager,
            payload_len: len,
            tag,
            seq: 0,
            addr: 0,
            comm: 0,
        }
    }

    struct Harness {
        sim: Simulator,
        rbm: ComponentId,
        out: ComponentId,
    }

    fn harness(cfg: CcloConfig) -> Harness {
        let mut sim = Simulator::new(0);
        let out = sim.add("out", Mailbox::<RbmStream>::new());
        let rbm = sim.add("rbm", Rbm::new(cfg));
        Harness { sim, rbm, out }
    }

    fn meta(h: &mut Harness, msg_id: u64, sig: MsgSignature) {
        h.sim.post(
            Endpoint::new(h.rbm, ports::META),
            h.sim.now(),
            RbmMeta {
                key: RxMsgKey {
                    session: SessionId(0),
                    msg_id,
                },
                sig,
            },
        );
        h.sim.run();
    }

    fn data(h: &mut Harness, msg_id: u64, offset: u64, bytes: Vec<u8>) {
        h.sim.post(
            Endpoint::new(h.rbm, ports::DATA),
            h.sim.now(),
            RbmData {
                key: RxMsgKey {
                    session: SessionId(0),
                    msg_id,
                },
                offset,
                data: Bytes::from(bytes),
            },
        );
        h.sim.run();
    }

    fn query(h: &mut Harness, src: u32, tag: u64, len: u64, ticket: u64) {
        let reply = Endpoint::of(h.out);
        h.sim.post(
            Endpoint::new(h.rbm, ports::QUERY),
            h.sim.now(),
            RbmQuery {
                key: MatchKey {
                    comm: 0,
                    src_rank: src,
                    tag,
                },
                len,
                ticket,
                reply,
                span: SpanId::NONE,
            },
        );
        h.sim.run();
    }

    fn collect(h: &Harness, ticket: u64) -> Vec<u8> {
        let mut out = Vec::new();
        for s in h
            .sim
            .component::<Mailbox<RbmStream>>(h.out)
            .values()
            .filter(|s| s.ticket == ticket)
        {
            assert_eq!(s.offset as usize, out.len());
            out.extend_from_slice(&s.data);
        }
        out
    }

    #[test]
    fn message_then_query_matches() {
        let mut h = harness(CcloConfig::default());
        meta(&mut h, 0, sig(3, 7, 100));
        data(&mut h, 0, 0, vec![5u8; 100]);
        query(&mut h, 3, 7, 100, 42);
        assert_eq!(collect(&h, 42), vec![5u8; 100]);
        assert_eq!(h.sim.component::<Rbm>(h.rbm).free_buffers(), 16);
    }

    #[test]
    fn query_then_message_matches() {
        let mut h = harness(CcloConfig::default());
        query(&mut h, 1, 9, 50, 1);
        assert!(h.sim.component::<Mailbox<RbmStream>>(h.out).is_empty());
        meta(&mut h, 5, sig(1, 9, 50));
        data(&mut h, 5, 0, vec![8u8; 50]);
        assert_eq!(collect(&h, 1), vec![8u8; 50]);
    }

    #[test]
    fn out_of_order_pieces_reassemble() {
        let mut h = harness(CcloConfig::default());
        meta(&mut h, 0, sig(0, 0, 10));
        data(&mut h, 0, 6, vec![2u8; 4]);
        data(&mut h, 0, 0, vec![1u8; 6]);
        query(&mut h, 0, 0, 10, 0);
        assert_eq!(collect(&h, 0), [vec![1u8; 6], vec![2u8; 4]].concat());
    }

    #[test]
    fn same_key_messages_match_fifo() {
        let mut h = harness(CcloConfig::default());
        meta(&mut h, 0, sig(2, 4, 4));
        data(&mut h, 0, 0, vec![1u8; 4]);
        meta(&mut h, 1, sig(2, 4, 4));
        data(&mut h, 1, 0, vec![2u8; 4]);
        query(&mut h, 2, 4, 4, 100);
        query(&mut h, 2, 4, 4, 101);
        assert_eq!(collect(&h, 100), vec![1u8; 4]);
        assert_eq!(collect(&h, 101), vec![2u8; 4]);
    }

    #[test]
    fn pool_exhaustion_defers_admission() {
        let cfg = CcloConfig {
            rx_buf_count: 1,
            ..CcloConfig::default()
        };
        let mut h = harness(cfg);
        meta(&mut h, 0, sig(0, 0, 4));
        data(&mut h, 0, 0, vec![1u8; 4]);
        // Second message finds no buffer.
        meta(&mut h, 1, sig(0, 1, 4));
        data(&mut h, 1, 0, vec![2u8; 4]);
        assert_eq!(h.sim.component::<Rbm>(h.rbm).exhaustion_events, 1);
        // The second message cannot match until the first is consumed.
        query(&mut h, 0, 1, 4, 7);
        assert!(collect(&h, 7).is_empty());
        query(&mut h, 0, 0, 4, 8);
        assert_eq!(collect(&h, 8), vec![1u8; 4]);
        // Consuming message 0 freed the buffer; message 1 now matches.
        assert_eq!(collect(&h, 7), vec![2u8; 4]);
    }

    #[test]
    fn legacy_mode_delays_availability() {
        let run = |legacy: bool| -> f64 {
            let cfg = if legacy {
                CcloConfig::legacy_accl()
            } else {
                CcloConfig::default()
            };
            let mut h = harness(cfg);
            query(&mut h, 0, 0, 64 * 1024, 0);
            meta(&mut h, 0, sig(0, 0, 64 * 1024));
            // 16 packets of 4 KiB.
            for i in 0..16 {
                data(&mut h, 0, i * 4096, vec![1u8; 4096]);
            }
            h.sim
                .component::<Mailbox<RbmStream>>(h.out)
                .last_arrival()
                .unwrap()
                .as_us_f64()
        };
        let fast = run(false);
        let slow = run(true);
        // 16 packets × 50 cycles at 100 MHz = 8 us of serialized uC work,
        // partially overlapped with the buffer writes (~4 us).
        assert!(slow > fast + 3.0, "fast={fast} slow={slow}");
    }

    #[test]
    #[should_panic(expected = "exceeds Rx buffer size")]
    fn oversized_message_panics() {
        let cfg = CcloConfig {
            rx_buf_bytes: 1024,
            ..CcloConfig::default()
        };
        let mut h = harness(cfg);
        meta(&mut h, 0, sig(0, 0, 4096));
    }

    #[test]
    fn purge_releases_buffers_and_cancels_queries() {
        let cfg = CcloConfig {
            rx_buf_count: 1,
            ..CcloConfig::default()
        };
        let mut h = harness(cfg);
        // An aborted call's message (user tag 5) holds the only buffer; an
        // unrelated message (user tag 6) waits for admission; a query for
        // the aborted call's next step is parked.
        meta(&mut h, 0, sig(2, 5 << 32, 8));
        data(&mut h, 0, 0, vec![1u8; 8]);
        meta(&mut h, 1, sig(2, 6 << 32, 8));
        data(&mut h, 1, 0, vec![2u8; 8]);
        query(&mut h, 2, (5 << 32) | 1, 8, 77);
        assert_eq!(h.sim.component::<Rbm>(h.rbm).free_buffers(), 0);
        assert_eq!(h.sim.component::<Rbm>(h.rbm).pending_queries(), 1);
        h.sim.post(
            Endpoint::new(h.rbm, ports::PURGE),
            h.sim.now(),
            RbmPurge {
                comm: 0,
                user_tag: 5,
            },
        );
        h.sim.run();
        // The aborted call's buffer went back to the pool and was handed to
        // the waiting message; its query is gone.
        let rbm = h.sim.component::<Rbm>(h.rbm);
        assert_eq!(rbm.pending_queries(), 0);
        assert_eq!(rbm.unmatched_messages(), 1);
        query(&mut h, 2, 6 << 32, 8, 78);
        assert_eq!(collect(&h, 78), vec![2u8; 8]);
        assert_eq!(h.sim.component::<Rbm>(h.rbm).free_buffers(), 1);
    }

    #[test]
    fn shrink_fault_removes_buffers_and_surfaces_in_resource_state() {
        let cfg = CcloConfig {
            rx_buf_count: 2,
            ..CcloConfig::default()
        };
        let mut h = harness(cfg);
        // Shrink by 1 while both buffers are free: the pool drops to 1.
        h.sim.post(
            Endpoint::new(h.rbm, ports::SHRINK),
            h.sim.now(),
            RbmShrink { bufs: 1 },
        );
        h.sim.run();
        assert_eq!(h.sim.component::<Rbm>(h.rbm).free_buffers(), 1);
        assert_eq!(h.sim.component::<Rbm>(h.rbm).shrunk(), 1);
        // First message takes the last buffer; the second must defer.
        meta(&mut h, 0, sig(0, 0, 4));
        data(&mut h, 0, 0, vec![1u8; 4]);
        meta(&mut h, 1, sig(0, 1, 4));
        data(&mut h, 1, 0, vec![2u8; 4]);
        assert_eq!(h.sim.component::<Rbm>(h.rbm).exhaustion_events, 1);
        let st = h
            .sim
            .component::<Rbm>(h.rbm)
            .resource_state()
            .expect("exhausted pool must publish state");
        assert_eq!(st.waits, vec!["cclo.rxbuf".to_string()]);
        assert_eq!(st.holds, vec!["cclo.rxbuf".to_string()]);
        assert_eq!(st.gauges[0].used, 1);
        assert_eq!(st.gauges[0].capacity, Some(1));
        assert_eq!(st.gauges[1].name, "cclo.rxbuf.deferred");
        assert_eq!(st.gauges[1].used, 1);
        // Consuming the first message hands its buffer to the deferred one.
        query(&mut h, 0, 0, 4, 7);
        assert_eq!(collect(&h, 7), vec![1u8; 4]);
        query(&mut h, 0, 1, 4, 8);
        assert_eq!(collect(&h, 8), vec![2u8; 4]);
    }

    #[test]
    fn shrink_debt_is_paid_from_released_buffers() {
        let cfg = CcloConfig {
            rx_buf_count: 1,
            ..CcloConfig::default()
        };
        let mut h = harness(cfg);
        // The only buffer is held by a message; the shrink becomes debt.
        meta(&mut h, 0, sig(0, 0, 4));
        data(&mut h, 0, 0, vec![1u8; 4]);
        h.sim.post(
            Endpoint::new(h.rbm, ports::SHRINK),
            h.sim.now(),
            RbmShrink { bufs: 1 },
        );
        h.sim.run();
        assert_eq!(h.sim.component::<Rbm>(h.rbm).free_buffers(), 0);
        // Matching the message releases its buffer straight into the debt:
        // the pool stays empty forever (capacity shrunk to zero).
        query(&mut h, 0, 0, 4, 7);
        assert_eq!(collect(&h, 7), vec![1u8; 4]);
        assert_eq!(h.sim.component::<Rbm>(h.rbm).free_buffers(), 0);
        let st = h.sim.component::<Rbm>(h.rbm).resource_state().unwrap();
        assert_eq!(st.gauges[0].capacity, Some(0));
        assert_eq!(st.gauges[0].used, 0);
    }

    #[test]
    fn resync_wipes_rx_state_and_restores_the_pool() {
        let cfg = CcloConfig {
            rx_buf_count: 2,
            ..CcloConfig::default()
        };
        let mut h = harness(cfg);
        // A half-received message holds a buffer, a query is parked, and a
        // shrink left a debt of one — the full mess a crash leaves behind.
        meta(&mut h, 0, sig(1, 3, 8));
        data(&mut h, 0, 0, vec![1u8; 4]);
        query(&mut h, 2, 9, 8, 55);
        h.sim.post(
            Endpoint::new(h.rbm, ports::SHRINK),
            h.sim.now(),
            RbmShrink { bufs: 1 },
        );
        h.sim.run();
        h.sim
            .post(Endpoint::new(h.rbm, ports::RESYNC), h.sim.now(), RbmResync);
        h.sim.run();
        let rbm = h.sim.component::<Rbm>(h.rbm);
        assert_eq!(rbm.unmatched_messages(), 0);
        assert_eq!(rbm.pending_queries(), 0);
        // Pool restored to capacity minus the (permanent) shrink.
        assert_eq!(rbm.free_buffers(), 1);
        // The wiped state does not leak: a fresh message matches cleanly.
        meta(&mut h, 7, sig(1, 3, 8));
        data(&mut h, 7, 0, vec![9u8; 8]);
        query(&mut h, 1, 3, 8, 56);
        assert_eq!(collect(&h, 56), vec![9u8; 8]);
    }

    #[test]
    fn zero_length_message_matches() {
        let mut h = harness(CcloConfig::default());
        meta(&mut h, 0, sig(1, 2, 0));
        query(&mut h, 1, 2, 0, 3);
        let streams = h.sim.component::<Mailbox<RbmStream>>(h.out);
        assert_eq!(streams.len(), 1);
        assert!(streams.items()[0].1.last);
        assert!(streams.items()[0].1.data.is_empty());
    }
}
