//! The Data Movement Processor: executes uC microcode in the data plane.
//!
//! Each microcode instruction has two operand slots (data into the CCLO:
//! memory reads, eager messages via the RBM, the kernel stream) and one
//! result slot (memory writes, eager/rendezvous transmissions, the kernel
//! stream). Slots run independently and instructions pipeline — FIFO
//! queues keep multiple in flight (paper §4.4.1). Two-operand instructions
//! route both streams through the binary plugin (reduction).

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;

use accl_mem::bus::{ports as mem_ports, MemAddr, MemChunk, MemDone, MemReadReq, MemWriteReq};
use accl_poe::iface::SessionId;
use accl_sim::prelude::*;
use accl_sim::trace::{Attr, AttrValue, SpanId};

use crate::config::CcloConfig;
use crate::msg::{DType, MsgSignature, ReduceFn};
use crate::plugins;
use crate::rbm::{ports as rbm_ports, MatchKey, RbmQuery, RbmStream};
use crate::txsys::{ports as tx_ports, TxData, TxJob, TxJobDone};

/// A resolved operand source.
#[derive(Debug, Clone, Copy)]
pub enum RSrc {
    /// Read `len` bytes from memory.
    Mem(MemAddr),
    /// Match an eager message through the RBM.
    Eager(MatchKey),
    /// Pull from the kernel data stream.
    Stream,
}

/// A resolved result destination.
#[derive(Debug, Clone)]
pub enum RDst {
    /// Write to memory.
    Mem(MemAddr),
    /// Eager transmission (signature prepared by the uC).
    Eager {
        /// POE session.
        session: SessionId,
        /// Message signature.
        sig: MsgSignature,
    },
    /// Rendezvous transmission (landing address already resolved).
    Rndzv {
        /// POE session.
        session: SessionId,
        /// Remote landing address.
        remote_addr: u64,
        /// The RNDZV_DONE signature to send after the WRITE.
        done_sig: MsgSignature,
    },
    /// Push to the kernel data stream.
    Stream,
}

/// A fully resolved microcode instruction.
#[derive(Debug, Clone)]
pub struct Microcode {
    /// Completion ticket (reported back to the uC).
    pub ticket: u64,
    /// First operand.
    pub op0: RSrc,
    /// Optional second operand.
    pub op1: Option<RSrc>,
    /// Result slot.
    pub res: RDst,
    /// Bytes to move.
    pub len: u64,
    /// Element type for combines.
    pub dtype: DType,
    /// Combine function (two-operand instructions).
    pub func: ReduceFn,
    /// Causal parent for the instruction's `dmp.instr` span.
    pub span: SpanId,
}

/// Completion notification to the uC.
#[derive(Debug, Clone, Copy)]
pub struct DmpDone {
    /// The completed instruction's ticket.
    pub ticket: u64,
}

/// A chunk pushed by the local kernel into the CCLO (`data.push` of
/// Listing 2).
#[derive(Debug, Clone)]
pub struct KernelPush {
    /// The bytes (64 B per cycle in hardware; chunked here).
    pub data: Bytes,
}

/// Ports of the [`Dmp`] component.
pub mod ports {
    use accl_sim::event::PortId;

    /// Microcode from the uC ([`super::Microcode`]).
    pub const INSTR: PortId = PortId(0);
    /// Read data returning from the memory bus.
    pub const MEM_DATA: PortId = PortId(1);
    /// Eager payloads streaming from the RBM.
    pub const RBM_REPLY: PortId = PortId(2);
    /// Kernel stream input ([`super::KernelPush`]).
    pub const STREAM_IN: PortId = PortId(3);
    /// Memory write completions.
    pub const MEM_WDONE: PortId = PortId(4);
    /// Tx job completions from the Tx system.
    pub const TX_DONE: PortId = PortId(5);
}

/// Runtime state of one in-flight instruction.
struct InstrState {
    mc: Microcode,
    /// Buffered operand bytes not yet consumed by the result stage.
    bufs: [VecDeque<Bytes>; 2],
    avail: [u64; 2],
    received: [u64; 2],
    /// Result bytes produced so far.
    emitted: u64,
    /// For memory results: whether the final write completed.
    finished: bool,
    /// The instruction's open `dmp.instr` span.
    span: SpanId,
}

impl InstrState {
    fn operand_count(&self) -> usize {
        if self.mc.op1.is_some() {
            2
        } else {
            1
        }
    }
}

/// The data-movement processor component.
pub struct Dmp {
    cfg: CcloConfig,
    mem_bus: ComponentId,
    rbm: ComponentId,
    txsys: ComponentId,
    uc_done: Endpoint,
    /// Kernel stream output endpoint (streaming collectives).
    kernel_out: Option<Endpoint>,
    inflight: BTreeMap<u64, InstrState>,
    /// Instructions wanting kernel-stream data, in issue order.
    stream_waiters: VecDeque<(u64, u8)>,
    /// Kernel bytes not yet claimed by an instruction.
    stream_buf: VecDeque<Bytes>,
    stream_buf_len: u64,
    /// Tx-direction datapath pacing (results leaving toward the POE).
    tx_path: Pipe,
    /// Local-direction datapath pacing (results to memory/kernel stream).
    /// Separate physical stream interfaces — the paper's Coyote integration
    /// widened the shell to three streaming interfaces for the CCLO (§4.2).
    local_path: Pipe,
    instrs_completed: u64,
}

impl Dmp {
    /// Creates a DMP wired to the node's memory bus, RBM and Tx system.
    pub fn new(
        cfg: CcloConfig,
        mem_bus: ComponentId,
        rbm: ComponentId,
        txsys: ComponentId,
        uc_done: Endpoint,
    ) -> Self {
        let bps = cfg.datapath_bytes_per_cycle as f64 * cfg.clock_mhz * 1e6;
        Dmp {
            cfg,
            mem_bus,
            rbm,
            txsys,
            uc_done,
            kernel_out: None,
            inflight: BTreeMap::new(),
            stream_waiters: VecDeque::new(),
            stream_buf: VecDeque::new(),
            stream_buf_len: 0,
            tx_path: Pipe::bytes_per_sec(bps),
            local_path: Pipe::bytes_per_sec(bps),
            instrs_completed: 0,
        }
    }

    /// Sets the endpoint receiving kernel-stream output chunks.
    pub fn set_kernel_out(&mut self, ep: Endpoint) {
        self.kernel_out = Some(ep);
    }

    /// Instructions retired so far.
    pub fn instrs_completed(&self) -> u64 {
        self.instrs_completed
    }

    /// Launches operand fetches and (for Tx results) enqueues the Tx job.
    fn launch(&mut self, ctx: &mut Ctx<'_>, mc: Microcode) {
        let ticket = mc.ticket;
        let decode = self.cfg.cycles(self.cfg.dmp_instr_cycles);
        ctx.stats().add("dmp.instrs", 1);
        let mut instr_span = SpanId::NONE;
        if ctx.spans_enabled() {
            instr_span = ctx.span_begin_attrs(
                "dmp.instr",
                mc.span,
                &[Attr {
                    key: "bytes",
                    value: AttrValue::Bytes(mc.len),
                }],
            );
        }
        // Result-side job setup happens at decode so the Tx system sees
        // jobs in issue order.
        match &mc.res {
            RDst::Eager { session, sig } => {
                ctx.send(
                    Endpoint::new(self.txsys, tx_ports::JOB),
                    decode,
                    TxJob::Eager {
                        ticket,
                        session: *session,
                        sig: *sig,
                        span: instr_span,
                    },
                );
            }
            RDst::Rndzv {
                session,
                remote_addr,
                done_sig,
            } => {
                ctx.send(
                    Endpoint::new(self.txsys, tx_ports::JOB),
                    decode,
                    TxJob::RndzvData {
                        ticket,
                        session: *session,
                        remote_addr: *remote_addr,
                        len: mc.len,
                        done_sig: *done_sig,
                        span: instr_span,
                    },
                );
            }
            RDst::Mem(_) | RDst::Stream => {}
        }
        // Operand fetches.
        let ops = [Some(mc.op0), mc.op1];
        for (slot, op) in ops.iter().enumerate() {
            let Some(op) = op else { continue };
            let slot_tag = ticket * 2 + slot as u64;
            match op {
                RSrc::Mem(addr) => {
                    ctx.send(
                        Endpoint::new(self.mem_bus, mem_ports::READ),
                        decode,
                        MemReadReq {
                            addr: *addr,
                            len: mc.len,
                            data_to: Endpoint::new(ctx.self_id(), ports::MEM_DATA),
                            done_to: None,
                            tag: slot_tag,
                            span: instr_span,
                        },
                    );
                }
                RSrc::Eager(key) => {
                    ctx.send(
                        Endpoint::new(self.rbm, rbm_ports::QUERY),
                        decode,
                        RbmQuery {
                            key: *key,
                            len: mc.len,
                            ticket: slot_tag,
                            reply: Endpoint::new(ctx.self_id(), ports::RBM_REPLY),
                            span: instr_span,
                        },
                    );
                }
                RSrc::Stream => {
                    self.stream_waiters.push_back((ticket, slot as u8));
                }
            }
        }
        let zero_len = mc.len == 0;
        self.inflight.insert(
            ticket,
            InstrState {
                mc,
                bufs: [VecDeque::new(), VecDeque::new()],
                avail: [0, 0],
                received: [0, 0],
                emitted: 0,
                finished: false,
                span: instr_span,
            },
        );
        if zero_len {
            // Degenerate zero-length moves: memory/stream results have
            // nothing to wait for; Tx results complete through the Tx
            // system's zero-payload job.
            let res = &self.inflight[&ticket].mc.res;
            if matches!(res, RDst::Mem(_) | RDst::Stream) {
                self.complete(ctx, ticket);
            }
            return;
        }
        self.feed_stream(ctx);
        self.advance(ctx, ticket);
    }

    /// Distributes buffered kernel bytes to waiting instructions in order.
    fn feed_stream(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            let Some(&(ticket, slot)) = self.stream_waiters.front() else {
                return;
            };
            if self.stream_buf_len == 0 {
                return;
            }
            let Some(st) = self.inflight.get_mut(&ticket) else {
                // Instruction already retired (shouldn't happen while it
                // still waits for stream data).
                self.stream_waiters.pop_front();
                continue;
            };
            let want = st.mc.len - st.received[slot as usize];
            let take = want.min(self.stream_buf_len);
            let mut moved = 0u64;
            while moved < take {
                let mut head = self.stream_buf.pop_front().unwrap();
                let n = (take - moved).min(head.len() as u64);
                let piece = head.split_to(n as usize);
                if !head.is_empty() {
                    self.stream_buf.push_front(head);
                }
                self.stream_buf_len -= n;
                moved += n;
                let st = self.inflight.get_mut(&ticket).unwrap();
                st.bufs[slot as usize].push_back(piece);
                st.avail[slot as usize] += n;
                st.received[slot as usize] += n;
            }
            let st = self.inflight.get(&ticket).unwrap();
            let done = st.received[slot as usize] == st.mc.len;
            if done {
                self.stream_waiters.pop_front();
            }
            self.advance(ctx, ticket);
            if !done {
                return;
            }
        }
    }

    /// Feeds operand data into an instruction slot.
    fn operand_data(&mut self, ctx: &mut Ctx<'_>, slot_tag: u64, data: Bytes) {
        let ticket = slot_tag / 2;
        let slot = (slot_tag % 2) as usize;
        let Some(st) = self.inflight.get_mut(&ticket) else {
            panic!("operand data for unknown ticket {ticket}");
        };
        let n = data.len() as u64;
        st.avail[slot] += n;
        st.received[slot] += n;
        debug_assert!(st.received[slot] <= st.mc.len, "operand overrun");
        st.bufs[slot].push_back(data);
        self.advance(ctx, ticket);
    }

    /// Produces result chunks from available operand data.
    fn advance(&mut self, ctx: &mut Ctx<'_>, ticket: u64) {
        let chunk = 4096u64;
        loop {
            // Borrow the instruction afresh each iteration so the emission
            // paths below can use the rest of `self`.
            let Some(st) = self.inflight.get_mut(&ticket) else {
                return;
            };
            let remaining = st.mc.len - st.emitted;
            if remaining == 0 {
                return; // waiting for write/Tx completion
            }
            let ready = match st.operand_count() {
                1 => st.avail[0],
                _ => st.avail[0].min(st.avail[1]),
            };
            if ready == 0 {
                return;
            }
            let n = ready.min(chunk).min(remaining);
            let a = take_bytes(&mut st.bufs[0], n);
            st.avail[0] -= n;
            let out = if st.operand_count() == 2 {
                let b = take_bytes(&mut st.bufs[1], n);
                st.avail[1] -= n;
                plugins::combine(st.mc.dtype, st.mc.func, &a, &b)
            } else {
                a
            };
            let off = st.emitted;
            st.emitted += n;
            let last = st.emitted == st.mc.len;
            let res = st.mc.res.clone();
            let instr_span = st.span;
            // Pace the internal datapath (NoC + plugin), per direction.
            let pipe = match res {
                RDst::Eager { .. } | RDst::Rndzv { .. } => &mut self.tx_path,
                RDst::Mem(_) | RDst::Stream => &mut self.local_path,
            };
            let (_, at) = pipe.reserve(ctx.now(), n);
            match res {
                RDst::Mem(addr) => {
                    ctx.send_at(
                        Endpoint::new(self.mem_bus, mem_ports::WRITE),
                        at,
                        MemWriteReq {
                            addr: addr.offset(off),
                            data: out,
                            done_to: last.then(|| Endpoint::new(ctx.self_id(), ports::MEM_WDONE)),
                            tag: ticket,
                            span: instr_span,
                        },
                    );
                }
                RDst::Eager { .. } | RDst::Rndzv { .. } => {
                    ctx.send_at(
                        Endpoint::new(self.txsys, tx_ports::DATA),
                        at,
                        TxData { ticket, data: out },
                    );
                }
                RDst::Stream => {
                    let out_ep = self
                        .kernel_out
                        .expect("stream result without a kernel output endpoint");
                    ctx.send_at(
                        out_ep,
                        at,
                        RbmStream {
                            ticket,
                            offset: off,
                            data: out,
                            last,
                        },
                    );
                    if last {
                        // Stream results complete at emission.
                        self.complete(ctx, ticket);
                        return;
                    }
                }
            }
        }
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>, ticket: u64) {
        let st = self.inflight.remove(&ticket).expect("double completion");
        debug_assert!(!st.finished || st.emitted == st.mc.len);
        self.instrs_completed += 1;
        ctx.span_end(st.span);
        ctx.send(
            self.uc_done,
            self.cfg.cycles(self.cfg.dmp_instr_cycles),
            DmpDone { ticket },
        );
    }
}

/// Removes exactly `n` bytes from a chunk queue.
fn take_bytes(q: &mut VecDeque<Bytes>, n: u64) -> Bytes {
    let n = n as usize;
    let head = q.front_mut().expect("take from empty operand buffer");
    if head.len() > n {
        return head.split_to(n);
    }
    if head.len() == n {
        return q.pop_front().unwrap();
    }
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let head = q.front_mut().expect("operand underrun");
        let take = (n - out.len()).min(head.len());
        out.extend_from_slice(&head.split_to(take));
        if head.is_empty() {
            q.pop_front();
        }
    }
    Bytes::from(out)
}

impl Component for Dmp {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
        match port {
            ports::INSTR => {
                let mc = payload.downcast::<Microcode>();
                self.launch(ctx, mc);
            }
            ports::MEM_DATA => {
                let chunk = payload.downcast::<MemChunk>();
                self.operand_data(ctx, chunk.tag, chunk.data);
            }
            ports::RBM_REPLY => {
                let stream = payload.downcast::<RbmStream>();
                if stream.data.is_empty() {
                    // Zero-length eager message: the operand is complete.
                    let ticket = stream.ticket / 2;
                    self.advance(ctx, ticket);
                    return;
                }
                self.operand_data(ctx, stream.ticket, stream.data);
            }
            ports::STREAM_IN => {
                let push = payload.downcast::<KernelPush>();
                self.stream_buf_len += push.data.len() as u64;
                self.stream_buf.push_back(push.data);
                self.feed_stream(ctx);
            }
            ports::MEM_WDONE => {
                let done = payload.downcast::<MemDone>();
                self.complete(ctx, done.tag);
            }
            ports::TX_DONE => {
                let done = payload.downcast::<TxJobDone>();
                self.complete(ctx, done.ticket);
            }
            other => panic!("DMP has no port {other:?}"),
        }
    }

    fn state_digest(&self) -> Option<u64> {
        // Completion totals, stream-buffer occupancy, in-flight
        // instruction population, and both datapath horizons.
        let mut h = 0u64;
        for v in [
            self.instrs_completed,
            self.stream_buf_len,
            self.inflight.len() as u64,
            self.stream_waiters.len() as u64,
            self.tx_path.next_free().as_ps(),
            self.local_path.next_free().as_ps(),
        ] {
            accl_sim::digest::fnv_fold(&mut h, &v.to_le_bytes());
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CcloConfig;
    use crate::msg::MsgType;
    use accl_mem::{MemBusConfig, MemTarget, MemoryBus};
    use accl_sim::prelude::{Endpoint, Mailbox, Simulator, Time};

    struct Harness {
        sim: Simulator,
        dmp: ComponentId,
        bus: ComponentId,
        tx_jobs: ComponentId,
        tx_data: ComponentId,
        uc_done: ComponentId,
        kernel: ComponentId,
    }

    fn harness() -> Harness {
        let mut sim = Simulator::new(0);
        let bus = sim.add("bus", MemoryBus::new(MemBusConfig::default()));
        let tx_jobs = sim.add("txjobs", Mailbox::<crate::txsys::TxJob>::new());
        let tx_data = sim.add("txdata", Mailbox::<TxData>::new());
        let uc_done = sim.add("ucdone", Mailbox::<DmpDone>::new());
        let kernel = sim.add("kernel", Mailbox::<crate::rbm::RbmStream>::new());
        // The DMP addresses the Tx system's JOB/DATA ports by component id;
        // stand in with one mailbox per port via a tiny router component.
        struct TxRouter {
            jobs: Endpoint,
            data: Endpoint,
        }
        impl Component for TxRouter {
            fn on_event(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload) {
                match port {
                    crate::txsys::ports::JOB => ctx.send(
                        self.jobs,
                        Dur::ZERO,
                        payload.downcast::<crate::txsys::TxJob>(),
                    ),
                    crate::txsys::ports::DATA => {
                        ctx.send(self.data, Dur::ZERO, payload.downcast::<TxData>())
                    }
                    other => panic!("router has no port {other:?}"),
                }
            }
        }
        let router = sim.add(
            "router",
            TxRouter {
                jobs: Endpoint::of(tx_jobs),
                data: Endpoint::of(tx_data),
            },
        );
        let rbm = sim.add("rbm", crate::rbm::Rbm::new(CcloConfig::default()));
        let mut dmp = Dmp::new(
            CcloConfig::default(),
            bus,
            rbm,
            router,
            Endpoint::of(uc_done),
        );
        dmp.set_kernel_out(Endpoint::of(kernel));
        let dmp = sim.add("dmp", dmp);
        Harness {
            sim,
            dmp,
            bus,
            tx_jobs,
            tx_data,
            uc_done,
            kernel,
        }
    }

    fn sig() -> crate::msg::MsgSignature {
        crate::msg::MsgSignature {
            src_rank: 0,
            dst_rank: 1,
            mtype: MsgType::Eager,
            payload_len: 0,
            tag: 0,
            seq: 0,
            addr: 0,
            comm: 0,
        }
    }

    #[test]
    fn mem_to_mem_copy_completes_and_moves_bytes() {
        let mut h = harness();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        h.sim
            .component_mut::<MemoryBus>(h.bus)
            .device_write(0x1000, &data);
        h.sim.post(
            Endpoint::new(h.dmp, ports::INSTR),
            Time::ZERO,
            Microcode {
                ticket: 5,
                op0: RSrc::Mem(MemAddr::Phys(MemTarget::Device, 0x1000)),
                op1: None,
                res: RDst::Mem(MemAddr::Phys(MemTarget::Device, 0x8000)),
                len: data.len() as u64,
                dtype: DType::U8,
                func: ReduceFn::Sum,
                span: SpanId::NONE,
            },
        );
        h.sim.run();
        assert_eq!(
            h.sim
                .component::<MemoryBus>(h.bus)
                .device_read(0x8000, data.len()),
            data
        );
        let done = h.sim.component::<Mailbox<DmpDone>>(h.uc_done);
        assert_eq!(done.len(), 1);
        assert_eq!(done.items()[0].1.ticket, 5);
        assert_eq!(h.sim.component::<Dmp>(h.dmp).instrs_completed(), 1);
    }

    #[test]
    fn two_operand_combine_reduces_through_the_plugin() {
        let mut h = harness();
        let a: Vec<u8> = (0..256u32).flat_map(|i| (i as i32).to_le_bytes()).collect();
        let b: Vec<u8> = (0..256u32)
            .flat_map(|i| (10 * i as i32).to_le_bytes())
            .collect();
        let bus = h.sim.component_mut::<MemoryBus>(h.bus);
        bus.device_write(0x1000, &a);
        bus.device_write(0x2000, &b);
        h.sim.post(
            Endpoint::new(h.dmp, ports::INSTR),
            Time::ZERO,
            Microcode {
                ticket: 1,
                op0: RSrc::Mem(MemAddr::Phys(MemTarget::Device, 0x1000)),
                op1: Some(RSrc::Mem(MemAddr::Phys(MemTarget::Device, 0x2000))),
                res: RDst::Mem(MemAddr::Phys(MemTarget::Device, 0x3000)),
                len: a.len() as u64,
                dtype: DType::I32,
                func: ReduceFn::Sum,
                span: SpanId::NONE,
            },
        );
        h.sim.run();
        let got = h
            .sim
            .component::<MemoryBus>(h.bus)
            .device_read(0x3000, a.len());
        let expect: Vec<u8> = (0..256u32)
            .flat_map(|i| (11 * i as i32).to_le_bytes())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn stream_in_feeds_instructions_in_issue_order() {
        let mut h = harness();
        // Two stream→kernel instructions; pushed bytes split between them
        // in issue order (AXI discipline).
        for ticket in [1u64, 2] {
            h.sim.post(
                Endpoint::new(h.dmp, ports::INSTR),
                Time::ZERO,
                Microcode {
                    ticket,
                    op0: RSrc::Stream,
                    op1: None,
                    res: RDst::Stream,
                    len: 100,
                    dtype: DType::U8,
                    func: ReduceFn::Sum,
                    span: SpanId::NONE,
                },
            );
        }
        h.sim.post(
            Endpoint::new(h.dmp, ports::STREAM_IN),
            Time::from_ps(1),
            KernelPush {
                data: Bytes::from(vec![1u8; 150]),
            },
        );
        h.sim.post(
            Endpoint::new(h.dmp, ports::STREAM_IN),
            Time::from_ps(2),
            KernelPush {
                data: Bytes::from(vec![2u8; 50]),
            },
        );
        h.sim.run();
        let done = h.sim.component::<Mailbox<DmpDone>>(h.uc_done);
        assert_eq!(done.len(), 2);
        assert_eq!(done.items()[0].1.ticket, 1);
        assert_eq!(done.items()[1].1.ticket, 2);
        // The kernel received 200 bytes over two messages.
        let chunks = h.sim.component::<Mailbox<crate::rbm::RbmStream>>(h.kernel);
        let total: usize = chunks.values().map(|c| c.data.len()).sum();
        assert_eq!(total, 200);
        // First message all 1s; second ends with the 2s.
        let first: Vec<u8> = chunks
            .values()
            .filter(|c| c.ticket == 1)
            .flat_map(|c| c.data.iter().copied())
            .collect();
        assert_eq!(first, vec![1u8; 100]);
    }

    #[test]
    fn tx_results_enqueue_jobs_at_decode_in_issue_order() {
        let mut h = harness();
        let bus = h.sim.component_mut::<MemoryBus>(h.bus);
        bus.device_write(0x1000, &[7u8; 64]);
        for (ticket, session) in [(1u64, 4u32), (2, 5)] {
            h.sim.post(
                Endpoint::new(h.dmp, ports::INSTR),
                Time::ZERO,
                Microcode {
                    ticket,
                    op0: RSrc::Mem(MemAddr::Phys(MemTarget::Device, 0x1000)),
                    op1: None,
                    res: RDst::Eager {
                        session: SessionId(session),
                        sig: sig(),
                    },
                    len: 64,
                    dtype: DType::U8,
                    func: ReduceFn::Sum,
                    span: SpanId::NONE,
                },
            );
        }
        h.sim.run();
        let jobs = h.sim.component::<Mailbox<crate::txsys::TxJob>>(h.tx_jobs);
        assert_eq!(jobs.len(), 2);
        match (&jobs.items()[0].1, &jobs.items()[1].1) {
            (
                crate::txsys::TxJob::Eager { ticket: t1, .. },
                crate::txsys::TxJob::Eager { ticket: t2, .. },
            ) => {
                assert_eq!((*t1, *t2), (1, 2));
            }
            other => panic!("expected two eager jobs, got {other:?}"),
        }
        // Data chunks arrive tagged per ticket.
        let data = h.sim.component::<Mailbox<TxData>>(h.tx_data);
        assert!(data.values().any(|d| d.ticket == 1));
        assert!(data.values().any(|d| d.ticket == 2));
    }
}
