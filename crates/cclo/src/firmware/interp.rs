//! Abstract schedule interpreter: functional validation of firmware.
//!
//! Executes the per-rank schedules of a collective jointly, moving real
//! bytes but no simulated time, and reports the final buffer contents. This
//! is the tool for validating custom collectives before deploying them —
//! the simulation-platform idea of §4.2 distilled to pure functionality —
//! and it powers the exhaustive algorithm test matrix in this crate.
//!
//! The interpreter reproduces the engine's concurrency semantics:
//! instructions issue in order but complete out of order; `WaitAll` is the
//! only intra-rank barrier; memory operands snapshot at execution time;
//! rendezvous sends block until the matching init announces a landing zone.

use std::collections::{BTreeMap, VecDeque};

use crate::firmware::{BufRef, DmpInstr, FwEnv, FwOp, Schedule, SlotDst, SlotSrc};
use crate::msg::ReduceFn;
use crate::plugins;

/// Per-rank buffer state for interpretation.
#[derive(Debug, Clone, Default)]
pub struct RankState {
    /// Source buffer contents.
    pub src: Vec<u8>,
    /// Destination buffer contents.
    pub dst: Vec<u8>,
    /// Scratch region.
    pub scratch: Vec<u8>,
    /// Bytes the kernel will push on the stream-in interface.
    pub stream_in: VecDeque<u8>,
    /// Bytes the CCLO pushed to the kernel.
    pub stream_out: Vec<u8>,
}

impl RankState {
    /// A rank whose source holds `src` and whose destination has room for
    /// `dst_len` bytes.
    pub fn with_src(src: Vec<u8>, dst_len: usize) -> Self {
        RankState {
            src,
            dst: vec![0; dst_len],
            ..Self::default()
        }
    }

    fn buf(&self, r: BufRef) -> &Vec<u8> {
        match r {
            BufRef::Src => &self.src,
            BufRef::Dst => &self.dst,
            BufRef::Scratch => &self.scratch,
        }
    }

    fn buf_mut(&mut self, r: BufRef) -> &mut Vec<u8> {
        match r {
            BufRef::Src => &mut self.src,
            BufRef::Dst => &mut self.dst,
            BufRef::Scratch => &mut self.scratch,
        }
    }

    fn read(&self, r: BufRef, off: u64, len: u64) -> Vec<u8> {
        let b = self.buf(r);
        let (off, len) = (off as usize, len as usize);
        assert!(
            off + len <= b.len(),
            "read past end of {r:?}: {}..{} > {}",
            off,
            off + len,
            b.len()
        );
        b[off..off + len].to_vec()
    }

    fn write(&mut self, r: BufRef, off: u64, data: &[u8]) {
        let b = self.buf_mut(r);
        let off = off as usize;
        assert!(
            off + data.len() <= b.len(),
            "write past end of {r:?}: {}..{} > {}",
            off,
            off + data.len(),
            b.len()
        );
        b[off..off + data.len()].copy_from_slice(data);
    }
}

/// Why interpretation failed.
#[derive(Debug)]
pub enum InterpError {
    /// No rank could make progress but work remains.
    Deadlock {
        /// Human-readable description of each stuck rank.
        stuck: Vec<String>,
    },
    /// Messages were sent that nobody received.
    UnconsumedMessages {
        /// `(src, dst, tag)` keys with leftover messages.
        keys: Vec<(u32, u32, u64)>,
    },
}

/// In-flight interpreter state for one rank.
struct RankRun {
    ops: VecDeque<FwOp>,
    /// Issued-but-incomplete DMP instructions.
    pending: Vec<DmpInstr>,
    /// Rendezvous receives awaiting the DONE signal.
    waiting_done: Vec<(u32, u64)>,
}

/// Joint interpreter over all ranks of a communicator.
pub struct Interp {
    ranks: Vec<RankState>,
    runs: Vec<RankRun>,
    dtype_func: (crate::msg::DType, ReduceFn),
    /// (src, dst, tag) → FIFO of eager messages.
    eager: BTreeMap<(u32, u32, u64), VecDeque<Vec<u8>>>,
    /// (sender, receiver, tag) → landing zone announced by receiver.
    rndzv_init: BTreeMap<(u32, u32, u64), (BufRef, u64, u64)>,
    /// (sender, receiver, tag) → data landed.
    rndzv_done: BTreeMap<(u32, u32, u64), bool>,
    /// Total messages transferred (for test assertions on message counts).
    messages: u64,
}

impl Interp {
    /// Creates an interpreter for `schedules[r]` running against `states[r]`.
    pub fn new(env0: &FwEnv, schedules: Vec<Schedule>, mut states: Vec<RankState>) -> Self {
        assert_eq!(schedules.len(), states.len());
        for (st, sched) in states.iter_mut().zip(&schedules) {
            st.scratch.resize(sched.scratch_bytes as usize, 0);
        }
        Interp {
            runs: schedules
                .into_iter()
                .map(|s| RankRun {
                    ops: s.ops.into(),
                    pending: Vec::new(),
                    waiting_done: Vec::new(),
                })
                .collect(),
            ranks: states,
            dtype_func: (env0.dtype, env0.func),
            eager: BTreeMap::new(),
            rndzv_init: BTreeMap::new(),
            rndzv_done: BTreeMap::new(),
            messages: 0,
        }
    }

    /// Messages transferred during the run.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Runs all schedules to completion.
    pub fn run(mut self) -> Result<Vec<RankState>, InterpError> {
        loop {
            let mut progressed = false;
            for r in 0..self.runs.len() {
                progressed |= self.step_rank(r as u32);
            }
            if self.done() {
                let leftovers: Vec<(u32, u32, u64)> = self
                    .eager
                    .iter()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(&k, _)| k)
                    .collect();
                if !leftovers.is_empty() {
                    return Err(InterpError::UnconsumedMessages { keys: leftovers });
                }
                return Ok(self.ranks);
            }
            if !progressed {
                let stuck = self
                    .runs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| {
                        !r.ops.is_empty() || !r.pending.is_empty() || !r.waiting_done.is_empty()
                    })
                    .map(|(i, r)| {
                        format!(
                            "rank {i}: {} ops left (next: {:?}), {} pending instrs ({:?}), awaiting dones: {:?}",
                            r.ops.len(),
                            r.ops.front(),
                            r.pending.len(),
                            r.pending,
                            r.waiting_done
                        )
                    })
                    .collect();
                return Err(InterpError::Deadlock { stuck });
            }
        }
    }

    fn done(&self) -> bool {
        self.runs
            .iter()
            .all(|r| r.ops.is_empty() && r.pending.is_empty() && r.waiting_done.is_empty())
    }

    /// Advances one rank as far as possible; returns whether anything moved.
    #[allow(clippy::while_let_loop)] // the loop has several distinct exits
    fn step_rank(&mut self, rank: u32) -> bool {
        let mut progressed = false;
        // Retry pending instructions first (their inputs may have arrived).
        let pending = core::mem::take(&mut self.runs[rank as usize].pending);
        for instr in pending {
            if self.try_exec(rank, &instr) {
                progressed = true;
                self.messages +=
                    matches!(instr.res, SlotDst::EagerTx { .. } | SlotDst::RndzvTx { .. }) as u64;
            } else {
                self.runs[rank as usize].pending.push(instr);
            }
        }
        // Issue further ops.
        loop {
            let Some(op) = self.runs[rank as usize].ops.front().copied() else {
                break;
            };
            match op {
                FwOp::WaitAll => {
                    let run = &self.runs[rank as usize];
                    if run.pending.is_empty() && run.waiting_done.is_empty() {
                        self.runs[rank as usize].ops.pop_front();
                        progressed = true;
                        continue;
                    }
                    break;
                }
                FwOp::Dmp(instr) => {
                    self.runs[rank as usize].ops.pop_front();
                    progressed = true;
                    if self.try_exec(rank, &instr) {
                        self.messages +=
                            matches!(instr.res, SlotDst::EagerTx { .. } | SlotDst::RndzvTx { .. })
                                as u64;
                    } else {
                        self.runs[rank as usize].pending.push(instr);
                    }
                }
                FwOp::RndzvRecvInit {
                    peer,
                    buf,
                    off,
                    len,
                    tag,
                } => {
                    self.runs[rank as usize].ops.pop_front();
                    progressed = true;
                    let prev = self.rndzv_init.insert((peer, rank, tag), (buf, off, len));
                    assert!(
                        prev.is_none(),
                        "duplicate rendezvous init (peer={peer}, rank={rank}, tag={tag})"
                    );
                }
                FwOp::WaitRndzvDone { peer, tag } => {
                    // Blocking: the op stream must not pass an unfinished
                    // rendezvous (subsequent instructions may read the
                    // landing buffer).
                    if self.rndzv_done.remove(&(peer, rank, tag)).is_some() {
                        self.runs[rank as usize].ops.pop_front();
                        progressed = true;
                        continue;
                    }
                    break;
                }
            }
        }
        progressed
    }

    /// Attempts to execute a DMP instruction; returns false if inputs are
    /// not yet available.
    fn try_exec(&mut self, rank: u32, instr: &DmpInstr) -> bool {
        // Rendezvous sends additionally need the landing zone.
        if let SlotDst::RndzvTx { peer, tag } = instr.res {
            if !self.rndzv_init.contains_key(&(rank, peer, tag)) {
                return false;
            }
        }
        // Check operand availability without consuming.
        for slot in [Some(&instr.op0), instr.op1.as_ref()].into_iter().flatten() {
            match *slot {
                SlotSrc::EagerRx { peer, tag } => {
                    let ready = self
                        .eager
                        .get(&(peer, rank, tag))
                        .is_some_and(|q| !q.is_empty());
                    if !ready {
                        return false;
                    }
                }
                SlotSrc::Stream => {
                    if (self.ranks[rank as usize].stream_in.len() as u64) < instr.len {
                        return false;
                    }
                }
                SlotSrc::Mem(..) => {}
            }
        }
        // Gather operand bytes (consuming).
        let mut fetch = |slot: &SlotSrc, ranks: &mut Vec<RankState>| -> Vec<u8> {
            match *slot {
                SlotSrc::Mem(buf, off) => ranks[rank as usize].read(buf, off, instr.len),
                SlotSrc::EagerRx { peer, tag } => {
                    let msg = self
                        .eager
                        .get_mut(&(peer, rank, tag))
                        .and_then(VecDeque::pop_front)
                        .expect("checked above");
                    assert_eq!(
                        msg.len() as u64,
                        instr.len,
                        "eager message length mismatch (peer={peer}, tag={tag})"
                    );
                    msg
                }
                SlotSrc::Stream => {
                    let st = &mut ranks[rank as usize].stream_in;
                    (0..instr.len).map(|_| st.pop_front().unwrap()).collect()
                }
            }
        };
        let a = fetch(&instr.op0, &mut self.ranks);
        let result = match instr.op1 {
            None => a,
            Some(op1) => {
                let b = fetch(&op1, &mut self.ranks);
                let (dtype, func) = self.dtype_func;
                plugins::combine(dtype, func, &a, &b).to_vec()
            }
        };
        // Deliver the result.
        match instr.res {
            SlotDst::Mem(buf, off) => self.ranks[rank as usize].write(buf, off, &result),
            SlotDst::Stream => self.ranks[rank as usize]
                .stream_out
                .extend_from_slice(&result),
            SlotDst::EagerTx { peer, tag } => {
                self.eager
                    .entry((rank, peer, tag))
                    .or_default()
                    .push_back(result);
            }
            SlotDst::RndzvTx { peer, tag } => {
                let (buf, off, len) = self.rndzv_init.remove(&(rank, peer, tag)).unwrap();
                assert_eq!(len, instr.len, "rendezvous length mismatch");
                self.ranks[peer as usize].write(buf, off, &result);
                self.rndzv_done.insert((rank, peer, tag), true);
            }
        }
        true
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // rank loops index parallel arrays
mod tests {
    use super::*;
    use crate::command::{CollOp, DataLoc};
    use crate::config::Algorithm;
    use crate::firmware::FirmwareTable;
    use crate::msg::DType;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Builds envs/states and interprets `op` for all ranks; returns states.
    #[allow(clippy::too_many_arguments)] // a test harness mirroring FwEnv
    fn run_collective(
        op: CollOp,
        size: u32,
        root: u32,
        count: u64,
        eager: bool,
        algorithm: Algorithm,
        srcs: &[Vec<u8>],
        dst_len: usize,
        src_loc_len: usize,
    ) -> Vec<RankState> {
        let table = FirmwareTable::stock();
        let mut schedules = Vec::new();
        let mut states = Vec::new();
        for rank in 0..size {
            let env = FwEnv {
                rank,
                size,
                count,
                dtype: DType::I32,
                func: ReduceFn::Sum,
                root,
                bytes: count * 4,
                eager,
                algorithm,
                src: DataLoc::Mem(accl_mem::MemAddr::Virt(0)),
                dst: DataLoc::Mem(accl_mem::MemAddr::Virt(0)),
            };
            schedules.push(table.schedule(op, &env));
            let mut st = RankState::with_src(srcs[rank as usize].clone(), dst_len);
            st.src.resize(src_loc_len, 0);
            states.push(st);
        }
        let env0 = FwEnv {
            rank: 0,
            size,
            count,
            dtype: DType::I32,
            func: ReduceFn::Sum,
            root,
            bytes: count * 4,
            eager,
            algorithm,
            src: DataLoc::None,
            dst: DataLoc::None,
        };
        Interp::new(&env0, schedules, states)
            .run()
            .unwrap_or_else(|e| {
                panic!("{op:?} p={size} root={root} eager={eager} {algorithm:?}: {e:?}")
            })
    }

    fn i32s(vals: &[i32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn rand_i32s(rng: &mut StdRng, n: u64) -> Vec<u8> {
        let vals: Vec<i32> = (0..n).map(|_| rng.random_range(-1000..1000)).collect();
        i32s(&vals)
    }

    fn sum_vecs(srcs: &[Vec<u8>]) -> Vec<u8> {
        crate::plugins::combine_all(DType::I32, ReduceFn::Sum, srcs.iter().map(|v| v.as_slice()))
            .to_vec()
    }

    /// The full matrix: every algorithm × protocol × odd/even/pow2 sizes ×
    /// several roots must produce the textbook result.
    #[test]
    fn bcast_all_variants_match() {
        let mut rng = StdRng::seed_from_u64(1);
        for &size in &[2u32, 3, 4, 5, 7, 8] {
            for root in [0, size - 1, size / 2] {
                for eager in [true, false] {
                    for algo in [Algorithm::OneToAll, Algorithm::RecursiveDoubling] {
                        let count = 16u64;
                        let payload = rand_i32s(&mut rng, count);
                        // Bcast operates on dst: root's dst holds the data.
                        let srcs: Vec<Vec<u8>> = (0..size).map(|_| vec![]).collect();
                        let mut states: Vec<RankState> = (0..size)
                            .map(|_| RankState::with_src(vec![], (count * 4) as usize))
                            .collect();
                        states[root as usize].dst = payload.clone();
                        let table = FirmwareTable::stock();
                        let mut schedules = Vec::new();
                        for rank in 0..size {
                            let env = FwEnv {
                                rank,
                                size,
                                count,
                                dtype: DType::I32,
                                func: ReduceFn::Sum,
                                root,
                                bytes: count * 4,
                                eager,
                                algorithm: algo,
                                src: DataLoc::None,
                                dst: DataLoc::Mem(accl_mem::MemAddr::Virt(0)),
                            };
                            schedules.push(table.schedule(CollOp::Bcast, &env));
                        }
                        let env0 = FwEnv {
                            rank: 0,
                            size,
                            count,
                            dtype: DType::I32,
                            func: ReduceFn::Sum,
                            root,
                            bytes: count * 4,
                            eager,
                            algorithm: algo,
                            src: DataLoc::None,
                            dst: DataLoc::None,
                        };
                        let out = Interp::new(&env0, schedules, states).run().unwrap();
                        for (r, st) in out.iter().enumerate() {
                            assert_eq!(
                                st.dst, payload,
                                "bcast p={size} root={root} eager={eager} algo={algo:?} rank={r}"
                            );
                        }
                        let _ = srcs;
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_all_variants_match() {
        let mut rng = StdRng::seed_from_u64(2);
        for &size in &[2u32, 3, 5, 8] {
            for root in [0, size - 1] {
                for (eager, algo) in [
                    (true, Algorithm::Ring),
                    (true, Algorithm::OneToAll),
                    (false, Algorithm::OneToAll),
                    (false, Algorithm::BinaryTree),
                    (true, Algorithm::BinaryTree),
                ] {
                    let count = 32u64;
                    let srcs: Vec<Vec<u8>> =
                        (0..size).map(|_| rand_i32s(&mut rng, count)).collect();
                    let expect = sum_vecs(&srcs);
                    let out = run_collective(
                        CollOp::Reduce,
                        size,
                        root,
                        count,
                        eager,
                        algo,
                        &srcs,
                        (count * 4) as usize,
                        (count * 4) as usize,
                    );
                    assert_eq!(
                        out[root as usize].dst, expect,
                        "reduce p={size} root={root} eager={eager} algo={algo:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn gather_all_variants_match() {
        let mut rng = StdRng::seed_from_u64(3);
        for &size in &[2u32, 3, 5, 8] {
            for root in [0, 1 % size] {
                for (eager, algo) in [
                    (true, Algorithm::Ring),
                    (true, Algorithm::OneToAll),
                    (false, Algorithm::OneToAll),
                    (false, Algorithm::BinaryTree),
                ] {
                    let count = 8u64;
                    let b = (count * 4) as usize;
                    let srcs: Vec<Vec<u8>> =
                        (0..size).map(|_| rand_i32s(&mut rng, count)).collect();
                    let out = run_collective(
                        CollOp::Gather,
                        size,
                        root,
                        count,
                        eager,
                        algo,
                        &srcs,
                        b * size as usize,
                        b,
                    );
                    let expect: Vec<u8> = srcs.concat();
                    assert_eq!(
                        out[root as usize].dst, expect,
                        "gather p={size} root={root} eager={eager} algo={algo:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scatter_matches() {
        let mut rng = StdRng::seed_from_u64(4);
        for &size in &[2u32, 5, 8] {
            for root in [0, size - 1] {
                for eager in [true, false] {
                    let count = 8u64;
                    let b = (count * 4) as usize;
                    let root_src = rand_i32s(&mut rng, count * u64::from(size));
                    let srcs: Vec<Vec<u8>> = (0..size)
                        .map(|r| {
                            if r == root {
                                root_src.clone()
                            } else {
                                vec![0; b * size as usize]
                            }
                        })
                        .collect();
                    let out = run_collective(
                        CollOp::Scatter,
                        size,
                        root,
                        count,
                        eager,
                        Algorithm::Linear,
                        &srcs,
                        b,
                        b * size as usize,
                    );
                    for r in 0..size as usize {
                        assert_eq!(
                            out[r].dst,
                            root_src[r * b..(r + 1) * b].to_vec(),
                            "scatter p={size} root={root} eager={eager} rank={r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn allgather_matches() {
        let mut rng = StdRng::seed_from_u64(5);
        for &size in &[2u32, 3, 6, 8] {
            for eager in [true, false] {
                let count = 8u64;
                let b = (count * 4) as usize;
                let srcs: Vec<Vec<u8>> = (0..size).map(|_| rand_i32s(&mut rng, count)).collect();
                let expect: Vec<u8> = srcs.concat();
                let out = run_collective(
                    CollOp::AllGather,
                    size,
                    0,
                    count,
                    eager,
                    Algorithm::Ring,
                    &srcs,
                    b * size as usize,
                    b,
                );
                for (r, st) in out.iter().enumerate() {
                    assert_eq!(st.dst, expect, "allgather p={size} eager={eager} rank={r}");
                }
            }
        }
    }

    #[test]
    fn allreduce_matches() {
        let mut rng = StdRng::seed_from_u64(6);
        for &size in &[2u32, 3, 5, 8] {
            for (eager, algo) in [
                (true, Algorithm::Ring),
                (false, Algorithm::OneToAll),
                (false, Algorithm::BinaryTree),
            ] {
                let count = 16u64;
                let srcs: Vec<Vec<u8>> = (0..size).map(|_| rand_i32s(&mut rng, count)).collect();
                let expect = sum_vecs(&srcs);
                let out = run_collective(
                    CollOp::AllReduce,
                    size,
                    0,
                    count,
                    eager,
                    algo,
                    &srcs,
                    (count * 4) as usize,
                    (count * 4) as usize,
                );
                for (r, st) in out.iter().enumerate() {
                    assert_eq!(
                        st.dst, expect,
                        "allreduce p={size} eager={eager} algo={algo:?} rank={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_allreduce_matches_including_uneven_blocks() {
        let mut rng = StdRng::seed_from_u64(17);
        // Counts chosen so blocks are uneven (count % size != 0) and tiny
        // (base == 0 → fallback composition).
        for &size in &[2u32, 3, 5, 8] {
            for count in [1u64, 2, 7, 33, 64] {
                for eager in [true, false] {
                    let srcs: Vec<Vec<u8>> =
                        (0..size).map(|_| rand_i32s(&mut rng, count)).collect();
                    let expect = sum_vecs(&srcs);
                    let out = run_collective(
                        CollOp::AllReduce,
                        size,
                        0,
                        count,
                        eager,
                        Algorithm::Ring,
                        &srcs,
                        (count * 4) as usize,
                        (count * 4) as usize,
                    );
                    for (r, st) in out.iter().enumerate() {
                        assert_eq!(
                            st.dst, expect,
                            "ring allreduce p={size} count={count} eager={eager} rank={r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ring_allreduce_moves_less_data_than_star() {
        // Bandwidth optimality: ring moves 2·(p-1)/p·N per rank; the
        // reduce+bcast composition moves ~2·N on the root's links alone.
        let table = FirmwareTable::stock();
        let size = 8u32;
        let count = 1024u64;
        let run_msgs = |algo: Algorithm| -> u64 {
            let mk = |rank: u32| FwEnv {
                rank,
                size,
                count,
                dtype: DType::I32,
                func: ReduceFn::Sum,
                root: 0,
                bytes: count * 4,
                eager: true,
                algorithm: algo,
                src: DataLoc::Mem(accl_mem::MemAddr::Virt(0)),
                dst: DataLoc::Mem(accl_mem::MemAddr::Virt(0)),
            };
            let schedules: Vec<_> = (0..size)
                .map(|r| table.schedule(CollOp::AllReduce, &mk(r)))
                .collect();
            let states: Vec<RankState> = (0..size)
                .map(|r| {
                    RankState::with_src(
                        rand_i32s(&mut StdRng::seed_from_u64(r.into()), count),
                        (count * 4) as usize,
                    )
                })
                .collect();
            let mut i = Interp::new(&mk(0), schedules, states);
            loop {
                let mut progressed = false;
                for r in 0..size {
                    progressed |= i.step_rank(r);
                }
                if i.done() {
                    break i.messages();
                }
                assert!(progressed, "deadlock");
            }
        };
        let ring = run_msgs(Algorithm::Ring);
        let star = run_msgs(Algorithm::OneToAll);
        // Ring: 2·(p-1)·p messages of N/p bytes — more messages, but the
        // largest single-link volume is far smaller. Message-count-wise the
        // ring sends p·2(p-1) small blocks.
        assert_eq!(ring, u64::from(2 * (size - 1) * size));
        assert!(star < ring, "star sends fewer, bigger messages");
    }

    #[test]
    fn reduce_scatter_matches() {
        let mut rng = StdRng::seed_from_u64(7);
        for &size in &[2u32, 3, 4, 7] {
            for eager in [true, false] {
                let count = 4u64; // per-block elements
                let b = (count * 4) as usize;
                let full = b * size as usize;
                let srcs: Vec<Vec<u8>> = (0..size)
                    .map(|_| rand_i32s(&mut rng, count * u64::from(size)))
                    .collect();
                let expect = sum_vecs(&srcs);
                let out = run_collective(
                    CollOp::ReduceScatter,
                    size,
                    0,
                    count,
                    eager,
                    Algorithm::Ring,
                    &srcs,
                    b,
                    full,
                );
                for (r, st) in out.iter().enumerate() {
                    assert_eq!(
                        st.dst,
                        expect[r * b..(r + 1) * b].to_vec(),
                        "reduce_scatter p={size} eager={eager} rank={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn alltoall_matches() {
        let mut rng = StdRng::seed_from_u64(8);
        for &size in &[2u32, 4, 8] {
            for eager in [true, false] {
                let count = 8u64;
                let b = (count * 4) as usize;
                let srcs: Vec<Vec<u8>> = (0..size)
                    .map(|_| rand_i32s(&mut rng, count * u64::from(size)))
                    .collect();
                let out = run_collective(
                    CollOp::AllToAll,
                    size,
                    0,
                    count,
                    eager,
                    Algorithm::Linear,
                    &srcs,
                    b * size as usize,
                    b * size as usize,
                );
                for r in 0..size as usize {
                    for p in 0..size as usize {
                        assert_eq!(
                            &out[r].dst[p * b..(p + 1) * b],
                            &srcs[p][r * b..(r + 1) * b],
                            "alltoall p={size} eager={eager} dst rank={r} from={p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn barrier_completes_without_deadlock() {
        for &size in &[2u32, 3, 8] {
            for eager in [true, false] {
                let srcs: Vec<Vec<u8>> = (0..size).map(|_| vec![]).collect();
                run_collective(
                    CollOp::Barrier,
                    size,
                    0,
                    0,
                    eager,
                    Algorithm::OneToAll,
                    &srcs,
                    0,
                    0,
                );
            }
        }
    }

    #[test]
    fn send_recv_pair_via_stream() {
        // Rank 0 streams out of its kernel; rank 1 receives into memory.
        let table = FirmwareTable::stock();
        let count = 16u64;
        let payload = i32s(&(0..16).collect::<Vec<i32>>());
        let mk_env = |rank: u32, op_src: DataLoc, op_dst: DataLoc, root: u32| FwEnv {
            rank,
            size: 2,
            count,
            dtype: DType::I32,
            func: ReduceFn::Sum,
            root,
            bytes: count * 4,
            eager: true,
            algorithm: Algorithm::Linear,
            src: op_src,
            dst: op_dst,
        };
        let env_s = mk_env(0, DataLoc::Stream, DataLoc::None, 1);
        let env_r = mk_env(
            1,
            DataLoc::None,
            DataLoc::Mem(accl_mem::MemAddr::Virt(0)),
            0,
        );
        let schedules = vec![
            table.schedule(CollOp::Send, &env_s),
            table.schedule(CollOp::Recv, &env_r),
        ];
        let mut s0 = RankState::default();
        s0.stream_in.extend(payload.iter());
        let s1 = RankState::with_src(vec![], payload.len());
        let out = Interp::new(&env_s, schedules, vec![s0, s1]).run().unwrap();
        assert_eq!(out[1].dst, payload);
    }

    #[test]
    fn mismatched_schedules_deadlock_with_diagnostics() {
        // A recv with nobody sending must report a deadlock, not hang.
        let table = FirmwareTable::stock();
        let env = FwEnv {
            rank: 0,
            size: 2,
            count: 4,
            dtype: DType::I32,
            func: ReduceFn::Sum,
            root: 1,
            bytes: 16,
            eager: true,
            algorithm: Algorithm::Linear,
            src: DataLoc::None,
            dst: DataLoc::Mem(accl_mem::MemAddr::Virt(0)),
        };
        let schedules = vec![
            table.schedule(CollOp::Recv, &env),
            Schedule {
                ops: vec![],
                scratch_bytes: 0,
            },
        ];
        let states = vec![RankState::with_src(vec![], 16), RankState::default()];
        let err = Interp::new(&env, schedules, states).run().unwrap_err();
        match err {
            InterpError::Deadlock { stuck } => {
                assert_eq!(stuck.len(), 1);
                assert!(stuck[0].contains("rank 0"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn one_to_all_message_count_is_linear() {
        // 8-rank one-to-all bcast sends exactly 7 messages; binomial also 7
        // (same total, different critical path).
        for algo in [Algorithm::OneToAll, Algorithm::RecursiveDoubling] {
            let table = FirmwareTable::stock();
            let size = 8u32;
            let mk = |rank: u32| FwEnv {
                rank,
                size,
                count: 4,
                dtype: DType::I32,
                func: ReduceFn::Sum,
                root: 0,
                bytes: 16,
                eager: true,
                algorithm: algo,
                src: DataLoc::None,
                dst: DataLoc::Mem(accl_mem::MemAddr::Virt(0)),
            };
            let schedules: Vec<_> = (0..size)
                .map(|r| table.schedule(CollOp::Bcast, &mk(r)))
                .collect();
            let mut states: Vec<RankState> =
                (0..size).map(|_| RankState::with_src(vec![], 16)).collect();
            states[0].dst = i32s(&[1, 2, 3, 4]);
            let interp = Interp::new(&mk(0), schedules, states);
            let messages = {
                let mut i = interp;
                let _ = core::mem::replace(&mut i, Interp::new(&mk(0), vec![], vec![]));
                // run consumes; recompute below instead.
                0
            };
            let _ = messages;
            // Recount properly: rebuild and run.
            let schedules: Vec<_> = (0..size)
                .map(|r| table.schedule(CollOp::Bcast, &mk(r)))
                .collect();
            let mut states: Vec<RankState> =
                (0..size).map(|_| RankState::with_src(vec![], 16)).collect();
            states[0].dst = i32s(&[1, 2, 3, 4]);
            let mut i = Interp::new(&mk(0), schedules, states);
            let msgs = loop {
                let mut progressed = false;
                for r in 0..size {
                    progressed |= i.step_rank(r);
                }
                if i.done() {
                    break i.messages();
                }
                assert!(progressed, "deadlock");
            };
            assert_eq!(msgs, 7, "algo={algo:?}");
        }
    }
}
