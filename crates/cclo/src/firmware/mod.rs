//! CCLO firmware: collective algorithms as swappable programs.
//!
//! The paper's key flexibility claim (§4.4.1) is that collectives are
//! implemented in micro-controller *firmware* — "a communication pattern as
//! a C function in uC firmware" — so new collectives deploy without
//! re-synthesizing the FPGA. This module reproduces that structure: a
//! [`CollectiveProgram`] emits a schedule of coarse-grained control
//! operations ([`FwOp`]) which the uC executes, issuing microcode to the
//! data-movement processor and control messages to the Tx system. Programs
//! are registered in a [`FirmwareTable`] at runtime; `accl-core` exposes
//! `load_firmware` so applications can install their own.

pub mod interp;
pub mod programs;

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::command::{CollOp, DataLoc};
use crate::config::Algorithm;
use crate::msg::{DType, ReduceFn};

/// A buffer reference resolved by the uC against the current call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufRef {
    /// The call's source buffer.
    Src,
    /// The call's destination buffer.
    Dst,
    /// The CCLO scratch region (collective-internal temporaries).
    Scratch,
}

/// A data endpoint within a schedule step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Place {
    /// `buf + offset` in memory.
    Buf(BufRef, u64),
    /// The CCLO's kernel data stream.
    Stream,
}

impl Place {
    /// The call's source buffer at `off`.
    pub fn src(off: u64) -> Place {
        Place::Buf(BufRef::Src, off)
    }

    /// The call's destination buffer at `off`.
    pub fn dst(off: u64) -> Place {
        Place::Buf(BufRef::Dst, off)
    }
}

/// An operand slot of a DMP microcode instruction (data *into* the CCLO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotSrc {
    /// Read from memory.
    Mem(BufRef, u64),
    /// An eager message from `peer` with `tag` (matched through the RBM).
    EagerRx {
        /// Sending rank.
        peer: u32,
        /// Matching tag.
        tag: u64,
    },
    /// Pull from the kernel data stream.
    Stream,
}

/// The result slot of a DMP microcode instruction (data *out of* the CCLO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotDst {
    /// Write to memory.
    Mem(BufRef, u64),
    /// Send as an eager message to `peer` with `tag`.
    EagerTx {
        /// Destination rank.
        peer: u32,
        /// Matching tag.
        tag: u64,
    },
    /// Rendezvous-send to `peer`: the uC holds this instruction until the
    /// peer's `RNDZV_INIT` for `tag` resolves the remote address, then the
    /// data leaves as an RDMA WRITE followed by `RNDZV_DONE`.
    RndzvTx {
        /// Destination rank.
        peer: u32,
        /// Matching tag.
        tag: u64,
    },
    /// Push to the kernel data stream.
    Stream,
}

/// One DMP microcode instruction: up to two operand slots and one result
/// slot (paper §4.4.1, "each microcode instruction has three slots").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmpInstr {
    /// First operand.
    pub op0: SlotSrc,
    /// Optional second operand (reductions).
    pub op1: Option<SlotSrc>,
    /// Result slot.
    pub res: SlotDst,
    /// Transfer length in bytes (all slots move exactly this much).
    pub len: u64,
}

/// A coarse-grained control operation issued by the uC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FwOp {
    /// Issue DMP microcode (proceeds asynchronously; FIFO queues allow
    /// multiple in flight).
    Dmp(DmpInstr),
    /// Block until every DMP instruction issued so far has completed.
    WaitAll,
    /// Rendezvous receive, part 1: announce our landing buffer to `peer`.
    RndzvRecvInit {
        /// The sending rank.
        peer: u32,
        /// Landing buffer.
        buf: BufRef,
        /// Offset within the landing buffer.
        off: u64,
        /// Expected length.
        len: u64,
        /// Matching tag.
        tag: u64,
    },
    /// Rendezvous receive, part 2: block until `peer`'s `RNDZV_DONE`.
    WaitRndzvDone {
        /// The sending rank.
        peer: u32,
        /// Matching tag.
        tag: u64,
    },
}

/// Everything a program needs to emit its per-rank schedule.
#[derive(Debug, Clone)]
pub struct FwEnv {
    /// This rank.
    pub rank: u32,
    /// Communicator size.
    pub size: u32,
    /// Element count (MPI semantics per collective: total for
    /// bcast/reduce, per-block for gather/scatter/alltoall/allgather).
    pub count: u64,
    /// Element type.
    pub dtype: DType,
    /// Reduction function.
    pub func: ReduceFn,
    /// Root rank (peer rank for send/recv).
    pub root: u32,
    /// Block size in bytes (`count * dtype.size()`).
    pub bytes: u64,
    /// Whether this call runs the eager protocol (else rendezvous).
    pub eager: bool,
    /// The algorithm selected by the runtime configuration (Table 1).
    pub algorithm: Algorithm,
    /// Source data location.
    pub src: DataLoc,
    /// Destination data location.
    pub dst: DataLoc,
}

impl FwEnv {
    /// `(rank - root) mod size`: this rank's position relative to the root.
    pub fn vrank(&self) -> u32 {
        (self.rank + self.size - self.root % self.size) % self.size
    }

    /// Inverse of [`FwEnv::vrank`].
    pub fn from_vrank(&self, v: u32) -> u32 {
        (v + self.root) % self.size
    }
}

/// Schedule builder handed to programs.
///
/// The builder encapsulates the eager/rendezvous split: `send`/`recv` emit
/// the right op sequences for the call's protocol, so most programs are
/// protocol-oblivious. Steps that touch the kernel stream always use eager
/// (rendezvous needs a memory landing zone).
pub struct Sched {
    eager: bool,
    ops: Vec<FwOp>,
    scratch_used: u64,
    tag_base: u64,
}

impl Sched {
    /// Creates a builder for `env`.
    pub fn new(env: &FwEnv) -> Self {
        Sched {
            eager: env.eager,
            ops: Vec::new(),
            scratch_used: 0,
            tag_base: 0,
        }
    }

    /// Offsets every subsequent tag by `base` — lets composed collectives
    /// (e.g. allreduce's reduce and bcast phases) keep their tag spaces
    /// disjoint.
    pub fn set_tag_namespace(&mut self, base: u64) {
        self.tag_base = base;
    }

    /// Allocates `len` bytes of scratch, returning its [`Place`].
    pub fn alloc_scratch(&mut self, len: u64) -> Place {
        let off = self.scratch_used;
        // Keep scratch 64 B aligned (one datapath beat).
        self.scratch_used += len.div_ceil(64) * 64;
        Place::Buf(BufRef::Scratch, off)
    }

    /// Total scratch bytes this schedule requires.
    pub fn scratch_bytes(&self) -> u64 {
        self.scratch_used
    }

    /// Raw op emission, for custom programs needing full control.
    pub fn emit(&mut self, op: FwOp) {
        self.ops.push(op);
    }

    fn src_slot(place: Place) -> SlotSrc {
        match place {
            Place::Buf(b, off) => SlotSrc::Mem(b, off),
            Place::Stream => SlotSrc::Stream,
        }
    }

    fn dst_slot(place: Place) -> SlotDst {
        match place {
            Place::Buf(b, off) => SlotDst::Mem(b, off),
            Place::Stream => SlotDst::Stream,
        }
    }

    fn eager_for(&self, place: Place) -> bool {
        self.eager || matches!(place, Place::Stream)
    }

    /// Sends `len` bytes from `from` to rank `peer` under `tag`.
    pub fn send(&mut self, peer: u32, from: Place, len: u64, tag: u64) {
        let tag = self.tag_base + tag;
        let res = if self.eager_for(from) {
            SlotDst::EagerTx { peer, tag }
        } else {
            SlotDst::RndzvTx { peer, tag }
        };
        self.ops.push(FwOp::Dmp(DmpInstr {
            op0: Self::src_slot(from),
            op1: None,
            res,
            len,
        }));
    }

    /// Receives `len` bytes from rank `peer` under `tag` into `into`.
    pub fn recv(&mut self, peer: u32, into: Place, len: u64, tag: u64) {
        let tag = self.tag_base + tag;
        self.recv_abs(peer, into, len, tag);
    }

    /// Like [`Sched::recv`], but `tag` is absolute (no namespace offset).
    fn recv_abs(&mut self, peer: u32, into: Place, len: u64, tag: u64) {
        if self.eager_for(into) {
            self.ops.push(FwOp::Dmp(DmpInstr {
                op0: SlotSrc::EagerRx { peer, tag },
                op1: None,
                res: Self::dst_slot(into),
                len,
            }));
        } else {
            let Place::Buf(buf, off) = into else {
                unreachable!("stream destinations always take the eager path")
            };
            self.ops.push(FwOp::RndzvRecvInit {
                peer,
                buf,
                off,
                len,
                tag,
            });
            self.ops.push(FwOp::WaitRndzvDone { peer, tag });
        }
    }

    /// Receives from `peer`, combines with `local`, and stores to `into`.
    ///
    /// Under rendezvous the incoming data first lands in scratch, then a
    /// DMP instruction performs the combine — exactly the temporary-free
    /// vs. buffered trade-off of §4.4.3.
    pub fn recv_combine(&mut self, peer: u32, local: Place, into: Place, len: u64, tag: u64) {
        let tag = self.tag_base + tag;
        if self.eager_for(local) || self.eager_for(into) || self.eager {
            self.ops.push(FwOp::Dmp(DmpInstr {
                op0: SlotSrc::EagerRx { peer, tag },
                op1: Some(Self::src_slot(local)),
                res: Self::dst_slot(into),
                len,
            }));
        } else {
            let landing = self.alloc_scratch(len);
            self.recv_abs(peer, landing, len, tag);
            self.ops.push(FwOp::Dmp(DmpInstr {
                op0: Self::src_slot(landing),
                op1: Some(Self::src_slot(local)),
                res: Self::dst_slot(into),
                len,
            }));
        }
    }

    /// Receives from `peer_from`, combines with `local`, forwards to `peer_to`.
    pub fn recv_combine_send(
        &mut self,
        peer_from: u32,
        local: Place,
        peer_to: u32,
        len: u64,
        tag_in: u64,
        tag_out: u64,
    ) {
        let (tag_in, tag_out) = (self.tag_base + tag_in, self.tag_base + tag_out);
        if self.eager {
            self.ops.push(FwOp::Dmp(DmpInstr {
                op0: SlotSrc::EagerRx {
                    peer: peer_from,
                    tag: tag_in,
                },
                op1: Some(Self::src_slot(local)),
                res: SlotDst::EagerTx {
                    peer: peer_to,
                    tag: tag_out,
                },
                len,
            }));
        } else {
            let landing = self.alloc_scratch(len);
            self.recv_abs(peer_from, landing, len, tag_in);
            self.ops.push(FwOp::Dmp(DmpInstr {
                op0: Self::src_slot(landing),
                op1: Some(Self::src_slot(local)),
                res: SlotDst::RndzvTx {
                    peer: peer_to,
                    tag: tag_out,
                },
                len,
            }));
        }
    }

    /// Posts several receives at once: all rendezvous inits go out before
    /// any wait, so the peers' transfers overlap (the uC's op stream blocks
    /// on each `WaitRndzvDone`, which would otherwise serialize them).
    /// Under eager the RBM buffers arrivals regardless, so this is simply
    /// the individual receives.
    pub fn recv_many(&mut self, recvs: &[(u32, Place, u64, u64)]) {
        if self.eager || recvs.iter().any(|&(_, p, _, _)| matches!(p, Place::Stream)) {
            for &(peer, into, len, tag) in recvs {
                self.recv(peer, into, len, tag);
            }
            return;
        }
        for &(peer, into, len, tag) in recvs {
            let tag = self.tag_base + tag;
            let Place::Buf(buf, off) = into else {
                unreachable!()
            };
            self.ops.push(FwOp::RndzvRecvInit {
                peer,
                buf,
                off,
                len,
                tag,
            });
        }
        for &(peer, _, _, tag) in recvs {
            let tag = self.tag_base + tag;
            self.ops.push(FwOp::WaitRndzvDone { peer, tag });
        }
    }

    /// Posts rendezvous inits only (no waits); pair with
    /// [`Sched::wait_done`]. Must not be used on eager calls.
    pub fn post_inits(&mut self, recvs: &[(u32, Place, u64, u64)]) {
        assert!(!self.eager, "post_inits is a rendezvous-only primitive");
        for &(peer, into, len, tag) in recvs {
            let tag = self.tag_base + tag;
            let Place::Buf(buf, off) = into else {
                unreachable!("rendezvous landing zones are memory buffers")
            };
            self.ops.push(FwOp::RndzvRecvInit {
                peer,
                buf,
                off,
                len,
                tag,
            });
        }
    }

    /// Blocks until `peer`'s rendezvous done for `tag` arrives.
    pub fn wait_done(&mut self, peer: u32, tag: u64) {
        let tag = self.tag_base + tag;
        self.ops.push(FwOp::WaitRndzvDone { peer, tag });
    }

    /// Local copy of `len` bytes.
    pub fn copy(&mut self, from: Place, to: Place, len: u64) {
        self.ops.push(FwOp::Dmp(DmpInstr {
            op0: Self::src_slot(from),
            op1: None,
            res: Self::dst_slot(to),
            len,
        }));
    }

    /// Local combine: `into = a ⊕ b`.
    pub fn combine(&mut self, a: Place, b: Place, into: Place, len: u64) {
        self.ops.push(FwOp::Dmp(DmpInstr {
            op0: Self::src_slot(a),
            op1: Some(Self::src_slot(b)),
            res: Self::dst_slot(into),
            len,
        }));
    }

    /// Barrier: every DMP instruction issued so far must complete before
    /// later ops run.
    pub fn wait_all(&mut self) {
        self.ops.push(FwOp::WaitAll);
    }

    /// Finalizes the schedule.
    pub fn finish(self) -> Schedule {
        Schedule {
            ops: self.ops,
            scratch_bytes: self.scratch_used,
        }
    }
}

/// A finished per-rank schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// The control ops, in program order.
    pub ops: Vec<FwOp>,
    /// Scratch bytes the schedule requires.
    pub scratch_bytes: u64,
}

/// A collective algorithm implemented "in firmware".
pub trait CollectiveProgram: Send + Sync {
    /// Human-readable name (diagnostics).
    fn name(&self) -> &str;

    /// Emits this rank's schedule for the call described by `env`.
    fn build(&self, env: &FwEnv, sched: &mut Sched);

    /// Modelled uC cycles spent computing the schedule, beyond the
    /// per-op issue cost. Defaults to a small constant.
    fn planning_cycles(&self, _env: &FwEnv) -> u64 {
        120
    }
}

/// The uC's firmware table: which program serves each collective op.
///
/// Swapping entries at runtime is the reproduction of "modifying the
/// collective implementation without hardware recompilation".
#[derive(Clone)]
pub struct FirmwareTable {
    programs: BTreeMap<CollOp, Arc<dyn CollectiveProgram>>,
}

impl FirmwareTable {
    /// An empty table (no collectives loadable).
    pub fn empty() -> Self {
        FirmwareTable {
            programs: BTreeMap::new(),
        }
    }

    /// The stock firmware implementing Table 1.
    pub fn stock() -> Self {
        let mut t = Self::empty();
        programs::register_stock(&mut t);
        t
    }

    /// Installs (or replaces) the program serving `op`.
    pub fn load(&mut self, op: CollOp, program: Arc<dyn CollectiveProgram>) {
        self.programs.insert(op, program);
    }

    /// Looks up the program for `op`.
    ///
    /// # Panics
    ///
    /// Panics if no firmware is loaded for `op`.
    pub fn get(&self, op: CollOp) -> &Arc<dyn CollectiveProgram> {
        self.programs
            .get(&op)
            .unwrap_or_else(|| panic!("no firmware loaded for {op:?}"))
    }

    /// Whether firmware is loaded for `op`.
    pub fn has(&self, op: CollOp) -> bool {
        self.programs.contains_key(&op)
    }

    /// Builds the schedule for `env` using the loaded firmware.
    pub fn schedule(&self, op: CollOp, env: &FwEnv) -> Schedule {
        let mut sched = Sched::new(env);
        self.get(op).build(env, &mut sched);
        sched.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(eager: bool) -> FwEnv {
        FwEnv {
            rank: 1,
            size: 4,
            count: 16,
            dtype: DType::F32,
            func: ReduceFn::Sum,
            root: 0,
            bytes: 64,
            eager,
            algorithm: Algorithm::OneToAll,
            src: DataLoc::None,
            dst: DataLoc::None,
        }
    }

    #[test]
    fn eager_send_recv_are_single_ops() {
        let e = env(true);
        let mut s = Sched::new(&e);
        s.send(2, Place::src(0), 64, 7);
        s.recv(3, Place::dst(0), 64, 8);
        let sched = s.finish();
        assert_eq!(sched.ops.len(), 2);
        assert!(matches!(
            sched.ops[0],
            FwOp::Dmp(DmpInstr {
                res: SlotDst::EagerTx { peer: 2, tag: 7 },
                ..
            })
        ));
        assert!(matches!(
            sched.ops[1],
            FwOp::Dmp(DmpInstr {
                op0: SlotSrc::EagerRx { peer: 3, tag: 8 },
                ..
            })
        ));
        assert_eq!(sched.scratch_bytes, 0);
    }

    #[test]
    fn rendezvous_recv_expands_to_handshake() {
        let e = env(false);
        let mut s = Sched::new(&e);
        s.recv(3, Place::dst(128), 64, 9);
        let sched = s.finish();
        assert_eq!(
            sched.ops,
            vec![
                FwOp::RndzvRecvInit {
                    peer: 3,
                    buf: BufRef::Dst,
                    off: 128,
                    len: 64,
                    tag: 9
                },
                FwOp::WaitRndzvDone { peer: 3, tag: 9 },
            ]
        );
    }

    #[test]
    fn rendezvous_combine_lands_in_scratch() {
        let e = env(false);
        let mut s = Sched::new(&e);
        s.recv_combine(2, Place::src(0), Place::dst(0), 100, 1);
        let sched = s.finish();
        // init + wait + combine instruction.
        assert_eq!(sched.ops.len(), 3);
        assert_eq!(sched.scratch_bytes, 128); // 100 rounded to 64B beats
        assert!(matches!(
            sched.ops[2],
            FwOp::Dmp(DmpInstr {
                op0: SlotSrc::Mem(BufRef::Scratch, 0),
                op1: Some(SlotSrc::Mem(BufRef::Src, 0)),
                ..
            })
        ));
    }

    #[test]
    fn stream_places_force_eager() {
        let e = env(false); // rendezvous call
        let mut s = Sched::new(&e);
        s.send(2, Place::Stream, 64, 0);
        let sched = s.finish();
        assert!(matches!(
            sched.ops[0],
            FwOp::Dmp(DmpInstr {
                op0: SlotSrc::Stream,
                res: SlotDst::EagerTx { .. },
                ..
            })
        ));
    }

    #[test]
    fn scratch_allocations_are_aligned_and_disjoint() {
        let e = env(true);
        let mut s = Sched::new(&e);
        let a = s.alloc_scratch(10);
        let b = s.alloc_scratch(100);
        assert_eq!(a, Place::Buf(BufRef::Scratch, 0));
        assert_eq!(b, Place::Buf(BufRef::Scratch, 64));
        assert_eq!(s.scratch_bytes(), 64 + 128);
    }

    #[test]
    fn firmware_table_load_and_replace() {
        struct Dummy(&'static str);
        impl CollectiveProgram for Dummy {
            fn name(&self) -> &str {
                self.0
            }
            fn build(&self, _env: &FwEnv, _s: &mut Sched) {}
        }
        let mut t = FirmwareTable::empty();
        assert!(!t.has(CollOp::Bcast));
        t.load(CollOp::Bcast, Arc::new(Dummy("v1")));
        assert_eq!(t.get(CollOp::Bcast).name(), "v1");
        t.load(CollOp::Bcast, Arc::new(Dummy("v2")));
        assert_eq!(t.get(CollOp::Bcast).name(), "v2");
    }

    #[test]
    #[should_panic(expected = "no firmware loaded")]
    fn missing_firmware_panics() {
        FirmwareTable::empty().get(CollOp::Reduce);
    }

    #[test]
    fn vrank_roundtrip() {
        let mut e = env(true);
        e.root = 2;
        e.rank = 1;
        assert_eq!(e.vrank(), 3);
        assert_eq!(e.from_vrank(3), 1);
        for v in 0..4 {
            let mut e2 = e.clone();
            e2.rank = e.from_vrank(v);
            assert_eq!(e2.vrank(), v);
        }
    }
}
